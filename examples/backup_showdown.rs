//! Backup vs live filesystem: why a Compressed Snapshot (Cumulus) or a
//! content-addressable store is great at backup yet hopeless as a *live*
//! filesystem — the argument of the paper's §2, dramatised.
//!
//! The same user tree is hosted on Cumulus, CAS and H2Cloud; we time a
//! backup-style workload (bulk import + full restore read) and then a
//! live-editing workload (renames, deletes, new files in hot directories).
//!
//! ```bash
//! cargo run --release --example backup_showdown
//! ```

use h2baselines::{CasFs, CumulusFs};
use h2cloud_repro::prelude::*;
use h2util::rng::rng;
use h2workload::{FsSpec, UserProfile};

fn main() -> Result<()> {
    let cost = std::sync::Arc::new(CostModel::rack_default());
    let systems: Vec<(&str, Box<dyn CloudFs>)> = vec![
        (
            "Cumulus (Snapshot)",
            Box::new(CumulusFs::new(swiftsim::Cluster::rack())),
        ),
        (
            "CAS (Multi-Layer)",
            Box::new(CasFs::new(swiftsim::Cluster::rack())),
        ),
        ("H2Cloud", Box::new(H2Cloud::rack())),
    ];

    // A heavy user (§5.1): thousands of directories, tens of thousands of
    // files — large enough that O(N) metadata costs dominate.
    let mut r = rng(77);
    let spec = FsSpec::generate(&mut r, UserProfile::Heavy, 0.8);
    println!(
        "workload: {} dirs, {} files, {}\n",
        spec.dirs.len(),
        spec.files.len(),
        h2util::fmt::bytes(spec.bytes())
    );

    println!(
        "{:<20} {:>12} {:>12} {:>12} {:>12}",
        "system", "import", "restore", "live edits", "live reads"
    );
    for (name, fs) in &systems {
        let mut setup = OpCtx::new(cost.clone());
        fs.create_account(&mut setup, "user")?;

        // Backup: bulk import the whole tree.
        let mut import = OpCtx::new(cost.clone());
        spec.populate(fs.as_ref(), &mut import, "user")?;

        // Restore: read every file back (lookup + content).
        let mut restore = OpCtx::new(cost.clone());
        for (path, _) in spec.files.iter().take(50) {
            fs.read(&mut restore, "user", path)?;
        }

        // Live edits: rename a hot directory, delete files, create files.
        let mut edits = OpCtx::new(cost.clone());
        let hot = spec.dirs.first().expect("generated tree has dirs").clone();
        let renamed = FsPath::parse("/renamed-hot")?;
        fs.mv(&mut edits, "user", &hot, &renamed)?;
        for i in 0..10 {
            fs.write(
                &mut edits,
                "user",
                &renamed.child(&format!("new{i}.txt")).unwrap(),
                FileContent::from_str("fresh data"),
            )?;
        }
        let victims: Vec<_> = spec
            .files
            .iter()
            .filter(|(p, _)| !hot.is_ancestor_of(p))
            .take(10)
            .map(|(p, _)| p.clone())
            .collect();
        for v in &victims {
            fs.delete_file(&mut edits, "user", v)?;
        }

        // Live reads after the churn.
        let mut reads = OpCtx::new(cost.clone());
        for i in 0..10 {
            fs.read(
                &mut reads,
                "user",
                &renamed.child(&format!("new{i}.txt")).unwrap(),
            )?;
        }

        println!(
            "{:<20} {:>12} {:>12} {:>12} {:>12}",
            name,
            h2util::fmt::millis(import.elapsed()),
            h2util::fmt::millis(restore.elapsed()),
            h2util::fmt::millis(edits.elapsed()),
            h2util::fmt::millis(reads.elapsed()),
        );
    }

    println!(
        "\nCumulus backs up and restores fine, but every live read scans its \
         O(N) metadata log and every rename rewrites it; CAS pays a full \
         pointer-block index rebuild per structural change; H2Cloud serves \
         the same live workload with O(d) lookups and O(1) NameRing patches."
    );
    Ok(())
}
