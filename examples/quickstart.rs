//! Quickstart: spin up an in-process H2Cloud over a simulated 8-node
//! object-storage rack and run the everyday filesystem operations.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use h2cloud_repro::prelude::*;

fn main() -> Result<()> {
    // A rack-shaped cloud: 8 storage nodes, 3 replicas per object,
    // calibrated latency model; one H2Middleware with eager maintenance.
    let fs = H2Cloud::rack();
    let cost = fs.cost_model();

    // Each operation carries an OpCtx that accumulates the operation's
    // virtual service time — the paper's "operation time".
    let mut ctx = OpCtx::new(cost.clone());
    fs.create_account(&mut ctx, "alice")?;

    println!("== building a small filesystem ==");
    for dir in ["/home", "/home/alice", "/home/alice/photos", "/etc"] {
        let mut ctx = OpCtx::new(cost.clone());
        fs.mkdir(&mut ctx, "alice", &FsPath::parse(dir)?)?;
        println!("MKDIR {dir:<22} {}", h2util::fmt::millis(ctx.elapsed()));
    }
    for (file, content) in [
        ("/etc/motd", FileContent::from_str("welcome to h2cloud")),
        (
            "/home/alice/notes.txt",
            FileContent::from_str("remember the NameRings"),
        ),
        (
            "/home/alice/photos/trip.jpg",
            FileContent::Simulated(4 << 20),
        ),
        (
            "/home/alice/photos/cat.jpg",
            FileContent::Simulated(2 << 20),
        ),
    ] {
        let mut ctx = OpCtx::new(cost.clone());
        fs.write(&mut ctx, "alice", &FsPath::parse(file)?, content)?;
        println!("WRITE {file:<22} {}", h2util::fmt::millis(ctx.elapsed()));
    }

    println!("\n== reading back ==");
    let mut ctx = OpCtx::new(cost.clone());
    let motd = fs.read(&mut ctx, "alice", &FsPath::parse("/etc/motd")?)?;
    if let FileContent::Inline(bytes) = &motd {
        println!(
            "READ /etc/motd → {:?} ({})",
            String::from_utf8_lossy(bytes),
            h2util::fmt::millis(ctx.elapsed())
        );
    }

    println!("\n== directory operations (the paper's headline) ==");
    let mut ctx = OpCtx::new(cost.clone());
    let names = fs.list(&mut ctx, "alice", &FsPath::parse("/home/alice/photos")?)?;
    println!(
        "LIST /home/alice/photos → {names:?} ({})",
        h2util::fmt::millis(ctx.elapsed())
    );

    let mut ctx = OpCtx::new(cost.clone());
    fs.mv(
        &mut ctx,
        "alice",
        &FsPath::parse("/home/alice/photos")?,
        &FsPath::parse("/home/alice/pictures")?,
    )?;
    println!(
        "MOVE photos → pictures: {} (O(1): two NameRing patches, \
              whatever the directory holds)",
        h2util::fmt::millis(ctx.elapsed())
    );

    let mut ctx = OpCtx::new(cost.clone());
    fs.copy(
        &mut ctx,
        "alice",
        &FsPath::parse("/home/alice/pictures")?,
        &FsPath::parse("/home/alice/pictures-backup")?,
    )?;
    println!(
        "COPY pictures → pictures-backup: {}",
        h2util::fmt::millis(ctx.elapsed())
    );

    let mut ctx = OpCtx::new(cost.clone());
    fs.rmdir(
        &mut ctx,
        "alice",
        &FsPath::parse("/home/alice/pictures-backup")?,
    )?;
    println!(
        "RMDIR pictures-backup: {} (tombstone only; GC reclaims later)",
        h2util::fmt::millis(ctx.elapsed())
    );

    // The lazy reclamation pass the paper defers to "when the NameRing is
    // in use".
    let mut ctx = OpCtx::new(cost.clone());
    let report = h2cloud::gc::collect(
        &fs,
        &mut ctx,
        "alice",
        h2util::Timestamp::new(u64::MAX, 0, h2util::NodeId(0)),
    )?;
    println!(
        "\nGC: compacted {} tombstones, deleted {} objects",
        report.tuples_compacted, report.objects_deleted
    );

    let stats = fs.storage_stats();
    println!(
        "\ncloud now holds {} objects, {} — and zero separate index records",
        stats.objects,
        h2util::fmt::bytes(stats.bytes)
    );

    // §4.2's system monitoring: what this session cost, per operation.
    println!("\n== middleware metrics ==\n{}", fs.metrics().render());
    Ok(())
}
