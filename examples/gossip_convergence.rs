//! The asynchronous NameRing maintenance protocol, live: several
//! H2Middlewares (real threads, crossbeam-channel gossip) concurrently
//! update the same directories; the CRDT merge + gossip flooding converge
//! every node to the same view — §3.3.2 end to end.
//!
//! ```bash
//! cargo run --release --example gossip_convergence
//! ```

use std::sync::Arc;

use h2cloud_repro::prelude::*;

fn main() -> Result<()> {
    const MIDDLEWARES: usize = 4;
    const WRITERS_PER_MW: usize = 2;
    const FILES_PER_WRITER: usize = 25;

    let fs = Arc::new(H2Cloud::new(H2Config {
        middlewares: MIDDLEWARES,
        mode: MaintenanceMode::Deferred,
        cluster: ClusterConfig::default(),
        cache_capacity: 0,
        trace_sample: 0.0,
        ..H2Config::default()
    }));
    let mut ctx = OpCtx::new(fs.cost_model());
    fs.create_account(&mut ctx, "team")?;
    fs.mkdir(&mut ctx, "team", &FsPath::parse("/shared")?)?;
    fs.quiesce();

    println!(
        "{MIDDLEWARES} middlewares, {} writer threads, {} files each, \
         deferred maintenance + threaded gossip…",
        MIDDLEWARES * WRITERS_PER_MW,
        FILES_PER_WRITER
    );

    // Start the background gossip/merger threads.
    let gossip = fs.layer().run_threaded();

    // Writers hammer the same directory through different middlewares.
    std::thread::scope(|scope| {
        for mw in 0..MIDDLEWARES {
            for w in 0..WRITERS_PER_MW {
                let fs = fs.clone();
                scope.spawn(move || {
                    let view = fs.via(mw);
                    for i in 0..FILES_PER_WRITER {
                        let mut ctx = OpCtx::new(fs.cost_model());
                        let path = FsPath::parse(&format!("/shared/mw{mw}-w{w}-f{i:03}")).unwrap();
                        view.write(&mut ctx, "team", &path, FileContent::Simulated(1024)) // h2lint: allow(panic-safety): demo exits on first error by design
                            .expect("write");
                    }
                });
            }
        }
    });

    // Wait for every middleware to see every file.
    let expected = MIDDLEWARES * WRITERS_PER_MW * FILES_PER_WRITER;
    let start = h2util::clock::wall_now();
    loop {
        let counts: Vec<usize> = (0..MIDDLEWARES)
            .map(|i| {
                let mut ctx = OpCtx::new(fs.cost_model());
                fs.via(i)
                    .list(&mut ctx, "team", &FsPath::parse("/shared").unwrap())
                    .map(|l| l.len())
                    .unwrap_or(0)
            })
            .collect();
        print!("\rviews: {counts:?} / {expected}    ");
        use std::io::Write;
        std::io::stdout().flush().ok();
        if counts.iter().all(|&c| c == expected) {
            println!(
                "\nconverged in {:.2}s of wall time",
                start.elapsed().as_secs_f64()
            );
            break;
        }
        if start.elapsed() > std::time::Duration::from_secs(30) {
            println!("\ndid not converge within 30s — gossip threads starved?");
            break;
        }
        h2util::clock::wall_sleep(std::time::Duration::from_millis(20));
    }
    gossip.stop();

    // Show the per-middleware background maintenance spend (virtual time).
    for (i, mw) in fs.layer().middlewares().iter().enumerate() {
        let (bg, counts) = mw.background_spend();
        println!(
            "middleware {i}: background {} across {} backend ops",
            h2util::fmt::millis(bg),
            counts.total()
        );
    }
    Ok(())
}
