//! A Dropbox-style cloud-drive scenario: host a generated user population
//! (the paper's "light" and "heavy" users, §5.1) on H2Cloud and on the
//! two comparison architectures, replay a realistic operation mix against
//! each, and print per-operation mean latencies and storage overheads —
//! the paper's evaluation story in one binary.
//!
//! ```bash
//! cargo run --release --example cloud_drive
//! ```

use h2baselines::{DpFs, SwiftFs};
use h2cloud_repro::prelude::*;
use h2util::rng::{derive_seed, rng};
use h2workload::{FsSpec, Trace, TraceMix, UserProfile};

fn main() -> Result<()> {
    const SEED: u64 = 2018;
    const OPS_PER_USER: usize = 150;

    let systems: Vec<(&str, Box<dyn CloudFs>)> = vec![
        ("H2Cloud", Box::new(H2Cloud::rack())),
        (
            "Swift (CH+DB)",
            Box::new(SwiftFs::new(swiftsim::Cluster::rack(), true)),
        ),
        (
            "Dropbox (DP)",
            Box::new(DpFs::new(swiftsim::Cluster::rack(), 4)),
        ),
    ];
    let cost = std::sync::Arc::new(CostModel::rack_default());

    // A small user population: 4 light users, 2 heavy (scaled).
    let users: Vec<(String, UserProfile, f64)> = (0..6)
        .map(|i| {
            if i < 4 {
                (format!("light{i}"), UserProfile::Light, 1.0)
            } else {
                (format!("heavy{i}"), UserProfile::Heavy, 0.05)
            }
        })
        .collect();

    for (name, fs) in &systems {
        println!("\n===== {name} =====");
        let mut all_results = Vec::new();
        for (account, profile, scale) in &users {
            let mut setup = OpCtx::new(cost.clone());
            fs.create_account(&mut setup, account)?;
            // Host the user's filesystem.
            let mut r = rng(derive_seed(SEED, account));
            let spec = FsSpec::generate(&mut r, *profile, *scale);
            if std::ptr::eq(fs, &systems[0].1) {
                // Describe each user's workload once (same seeds per system).
                println!(
                    "  {account}: {}",
                    h2workload::SpecStats::describe(&spec).render()
                );
            }
            spec.populate(fs.as_ref(), &mut setup, account)?;
            // Replay a realistic op mix from the post-import state.
            let mut model = spec.to_model();
            let trace = Trace::generate(&mut r, &mut model, OPS_PER_USER, &TraceMix::default());
            let results = trace.replay(fs.as_ref(), account, cost.clone())?;
            all_results.extend(results);
        }
        fs.quiesce();

        println!("{:<14} {:>10} {:>6}", "operation", "mean time", "count");
        for (kind, mean_ms, n) in h2workload::trace::mean_ms_by_kind(&all_results) {
            println!("{:<14} {:>8.1}ms {:>6}", format!("{kind:?}"), mean_ms, n);
        }
        let stats = fs.storage_stats();
        println!(
            "storage: {} objects / {}; separate index: {} records / {}",
            stats.objects,
            h2util::fmt::bytes(stats.bytes),
            stats.index_records,
            h2util::fmt::bytes(stats.index_bytes),
        );
    }

    println!(
        "\nTakeaway: H2Cloud's directory operations (Mkdir/Rmdir/Mv/List) stay \
         flat like Dropbox's while Swift pays O(n); and unlike Dropbox, the \
         index row count is zero — the whole filesystem lives in the object \
         cloud."
    );
    Ok(())
}
