//! # h2cloud-repro
//!
//! A from-scratch Rust reproduction of **"H2Cloud: Maintaining the Whole
//! Filesystem in an Object Storage Cloud"** (Zhao et al., ICPP 2018).
//!
//! H2Cloud stores a complete POSIX-like filesystem — file content *and*
//! directory structure — inside a single flat object-storage cloud, with no
//! separate index cloud. The key data structure is **Hierarchical Hash
//! (H2)**: every directory owns a *NameRing* object listing its direct
//! children, directories are identified by namespace UUIDs, and everything
//! is placed on one consistent-hashing ring. NameRings are maintained by an
//! asynchronous patch/merge/gossip protocol whose merge is a CRDT join.
//!
//! This facade re-exports the workspace:
//!
//! * [`h2cloud`] — the paper's contribution: NameRings, the Formatter, the
//!   H2Middleware and the [`h2cloud::H2Cloud`] filesystem.
//! * [`swiftsim`] — the OpenStack-Swift-like object cloud substrate.
//! * [`h2ring`] — the consistent-hashing ring.
//! * [`h2baselines`] — every comparison system from the paper's Table 1.
//! * [`h2workload`] — workload generation matching the paper's user study.
//! * [`h2fsapi`] — the common `CloudFs` interface.
//! * [`h2util`] — hashing, clocks, ids and the virtual-time cost model.
//!
//! ## Quickstart
//!
//! ```
//! use h2cloud_repro::prelude::*;
//!
//! let fs = H2Cloud::new(H2Config::for_test());
//! let mut ctx = OpCtx::for_test();
//! fs.create_account(&mut ctx, "alice").unwrap();
//! fs.mkdir(&mut ctx, "alice", &FsPath::parse("/docs").unwrap()).unwrap();
//! fs.write(
//!     &mut ctx,
//!     "alice",
//!     &FsPath::parse("/docs/hello.txt").unwrap(),
//!     FileContent::from_str("hello, object cloud"),
//! )
//! .unwrap();
//! assert_eq!(
//!     fs.list(&mut ctx, "alice", &FsPath::parse("/docs").unwrap()).unwrap(),
//!     vec!["hello.txt".to_string()]
//! );
//! ```

pub use h2baselines;
pub use h2cloud;
pub use h2fsapi;
pub use h2ring;
pub use h2util;
pub use h2workload;
pub use swiftsim;

/// Everything a typical user needs in scope.
pub mod prelude {
    pub use h2cloud::{H2Cloud, H2Config, MaintenanceMode};
    pub use h2fsapi::{CloudFs, DirEntry, EntryKind, FileContent, FsPath, StoreStats};
    pub use h2util::{CostModel, H2Error, OpCtx, Result};
    pub use swiftsim::ClusterConfig;
}
