//! A full client session driven purely through the §4.3 web API — the way
//! the paper's PC/mobile clients talk to H2Cloud — including the measured
//! operation times the responses carry.

use h2cloud::{H2Api, H2Cloud, Method, ResponseBody, WebRequest};
use h2fsapi::FileContent;

fn put_dir(api: &H2Api, path: &str) {
    let r = api.handle(&WebRequest::new(Method::Put, path).with_query("type", "dir"));
    assert!(r.is_success(), "mkdir {path}: {} {:?}", r.status, r.body);
}

fn put_file(api: &H2Api, path: &str, body: &str) {
    let r = api.handle(&WebRequest::new(Method::Put, path).with_body(FileContent::from_str(body)));
    assert!(r.is_success(), "write {path}: {} {:?}", r.status, r.body);
}

#[test]
fn a_sync_client_session_over_the_wire() {
    let fs = H2Cloud::rack();
    let api = H2Api::new(&fs);

    // Sign up.
    assert_eq!(
        api.handle(&WebRequest::new(Method::Put, "/v1/mobile-user"))
            .status,
        201
    );

    // First sync: push a small photo library.
    put_dir(&api, "/v1/mobile-user/fs/Photos");
    put_dir(&api, "/v1/mobile-user/fs/Photos/2026-06");
    for i in 0..5 {
        put_file(
            &api,
            &format!("/v1/mobile-user/fs/Photos/2026-06/IMG_{i:04}.jpg"),
            &format!("jpeg bytes {i}"),
        );
    }

    // Browse: names-only listing (H2's O(1) LIST), then detailed.
    let browse = api.handle(
        &WebRequest::new(Method::Get, "/v1/mobile-user/fs/Photos/2026-06").with_query("op", "list"),
    );
    match &browse.body {
        ResponseBody::Names(names) => assert_eq!(names.len(), 5),
        other => panic!("expected names, got {other:?}"),
    }
    let detailed = api.handle(
        &WebRequest::new(Method::Get, "/v1/mobile-user/fs/Photos/2026-06")
            .with_query("op", "list")
            .with_query("detail", "1"),
    );
    match &detailed.body {
        ResponseBody::Entries(entries) => {
            assert_eq!(entries.len(), 5);
            assert!(entries.iter().all(|e| e.size > 0));
        }
        other => panic!("expected entries, got {other:?}"),
    }
    // Detailed listing costs more than names-only (O(m) vs O(1) fetches).
    assert!(
        detailed.op_time > browse.op_time,
        "detailed {:?} should exceed names-only {:?}",
        detailed.op_time,
        browse.op_time
    );

    // Reorganise: rename the month folder (server-side, O(1)).
    let mv = api.handle(
        &WebRequest::new(Method::Post, "/v1/mobile-user/fs/Photos/2026-06")
            .with_query("op", "move")
            .with_query("dest", "/Photos/June 2026"),
    );
    assert!(mv.is_success());

    // Download one photo after the rename.
    let get = api.handle(&WebRequest::new(
        Method::Get,
        "/v1/mobile-user/fs/Photos/June 2026/IMG_0003.jpg",
    ));
    assert_eq!(get.status, 200);
    assert_eq!(
        get.body,
        ResponseBody::Content(FileContent::from_str("jpeg bytes 3"))
    );

    // Duplicate the album, then clear the original.
    assert!(api
        .handle(
            &WebRequest::new(Method::Post, "/v1/mobile-user/fs/Photos/June 2026")
                .with_query("op", "copy")
                .with_query("dest", "/Photos/June 2026 (backup)")
        )
        .is_success());
    assert_eq!(
        api.handle(
            &WebRequest::new(Method::Delete, "/v1/mobile-user/fs/Photos/June 2026")
                .with_query("type", "dir")
        )
        .status,
        204
    );
    // The backup is intact.
    let backup = api.handle(
        &WebRequest::new(Method::Get, "/v1/mobile-user/fs/Photos/June 2026 (backup)")
            .with_query("op", "list"),
    );
    match &backup.body {
        ResponseBody::Names(names) => assert_eq!(names.len(), 5),
        other => panic!("expected names, got {other:?}"),
    }

    // The session never touched a separate index.
    let stats = {
        use h2fsapi::CloudFs;
        fs.storage_stats()
    };
    assert_eq!(stats.index_records, 0);
}

#[test]
fn api_surfaces_operation_time_like_the_papers_measurements() {
    let fs = H2Cloud::rack();
    let api = H2Api::new(&fs);
    api.handle(&WebRequest::new(Method::Put, "/v1/u"));
    put_dir(&api, "/v1/u/fs/a");
    put_dir(&api, "/v1/u/fs/a/b");
    put_dir(&api, "/v1/u/fs/a/b/c");
    put_file(&api, "/v1/u/fs/a/b/c/deep.txt", "x");
    // Lookup time grows with depth — the Figure 13 effect, observable
    // straight from the API's op_time field.
    let shallow = api.handle(&WebRequest::new(Method::Get, "/v1/u/fs/a").with_query("op", "stat"));
    let deep = api
        .handle(&WebRequest::new(Method::Get, "/v1/u/fs/a/b/c/deep.txt").with_query("op", "stat"));
    assert!(deep.op_time > shallow.op_time * 2);
}
