//! Failure injection: storage-node outages, replica repair, and account
//! survival — the reliability story that motivates keeping the whole
//! filesystem in the (replicated) object cloud in the first place.

use h2cloud::{H2Cloud, H2Config, MaintenanceMode};
use h2fsapi::{CloudFs, FileContent, FsPath};
use h2ring::DeviceId;
use h2util::OpCtx;
use swiftsim::ClusterConfig;

fn p(s: &str) -> FsPath {
    FsPath::parse(s).unwrap()
}

fn h2_rack() -> H2Cloud {
    // 8 nodes, 3 replicas, zero-latency (semantics only).
    H2Cloud::new(H2Config {
        middlewares: 1,
        mode: MaintenanceMode::Eager,
        cluster: ClusterConfig {
            cost: std::sync::Arc::new(h2util::CostModel::zero()),
            ..ClusterConfig::default()
        },
        // Failure tests assert reads fail while the cluster is down — a
        // cache hit would mask the outage, so keep it off here.
        cache_capacity: 0,
        trace_sample: 0.0,
        ..H2Config::default()
    })
}

#[test]
fn filesystem_survives_single_node_outage() {
    let fs = h2_rack();
    let mut ctx = OpCtx::for_test();
    fs.create_account(&mut ctx, "alice").unwrap();
    fs.mkdir(&mut ctx, "alice", &p("/docs")).unwrap();
    for i in 0..30 {
        fs.write(
            &mut ctx,
            "alice",
            &p(&format!("/docs/f{i}")),
            FileContent::from_str("pre-outage"),
        )
        .unwrap();
    }
    // Take a node down. Reads and writes keep working through replicas
    // and handoffs.
    fs.cluster().set_node_down(DeviceId(2), true);
    for i in 0..30 {
        assert_eq!(
            fs.read(&mut ctx, "alice", &p(&format!("/docs/f{i}")))
                .unwrap(),
            FileContent::from_str("pre-outage"),
            "read of f{i} failed during outage"
        );
    }
    for i in 30..60 {
        fs.write(
            &mut ctx,
            "alice",
            &p(&format!("/docs/f{i}")),
            FileContent::from_str("during-outage"),
        )
        .unwrap();
    }
    fs.mkdir(&mut ctx, "alice", &p("/new-dir-during-outage"))
        .unwrap();
    assert_eq!(fs.list(&mut ctx, "alice", &p("/docs")).unwrap().len(), 60);

    // Node returns; the replicator moves handoff copies home.
    fs.cluster().set_node_down(DeviceId(2), false);
    let moved = fs.cluster().repair();
    assert!(moved > 0, "repair had nothing to do after an outage");
    assert_eq!(fs.cluster().repair(), 0, "repair is not idempotent");
    for i in 0..60 {
        assert!(fs
            .read(&mut ctx, "alice", &p(&format!("/docs/f{i}")))
            .is_ok());
    }
}

#[test]
fn two_node_outage_with_three_replicas_still_serves() {
    let fs = h2_rack();
    let mut ctx = OpCtx::for_test();
    fs.create_account(&mut ctx, "alice").unwrap();
    for i in 0..20 {
        fs.write(
            &mut ctx,
            "alice",
            &p(&format!("/f{i}")),
            FileContent::from_str("x"),
        )
        .unwrap();
    }
    fs.cluster().set_node_down(DeviceId(0), true);
    fs.cluster().set_node_down(DeviceId(5), true);
    for i in 0..20 {
        assert!(
            fs.read(&mut ctx, "alice", &p(&format!("/f{i}"))).is_ok(),
            "f{i} unreadable with 2/8 nodes down and 3 replicas"
        );
    }
    // Directory operations (NameRing reads/patches) also survive.
    fs.mkdir(&mut ctx, "alice", &p("/survivor")).unwrap();
    fs.mv(&mut ctx, "alice", &p("/f0"), &p("/survivor/f0"))
        .unwrap();
    assert!(fs.read(&mut ctx, "alice", &p("/survivor/f0")).is_ok());
}

#[test]
fn total_outage_reports_unavailable_not_corruption() {
    let fs = h2_rack();
    let mut ctx = OpCtx::for_test();
    fs.create_account(&mut ctx, "alice").unwrap();
    fs.write(&mut ctx, "alice", &p("/f"), FileContent::from_str("x"))
        .unwrap();
    for i in 0..8 {
        fs.cluster().set_node_down(DeviceId(i), true);
    }
    let err = fs
        .write(&mut ctx, "alice", &p("/g"), FileContent::from_str("y"))
        .unwrap_err();
    assert_eq!(err.code(), "unavailable");
    assert!(err.is_retryable());
    // Recovery: bring the cluster back, the write retries fine.
    for i in 0..8 {
        fs.cluster().set_node_down(DeviceId(i), false);
    }
    fs.write(&mut ctx, "alice", &p("/g"), FileContent::from_str("y"))
        .unwrap();
    assert_eq!(
        fs.read(&mut ctx, "alice", &p("/f")).unwrap(),
        FileContent::from_str("x")
    );
}

#[test]
fn stale_replica_never_wins_after_outage() {
    let fs = h2_rack();
    let mut ctx = OpCtx::for_test();
    fs.create_account(&mut ctx, "alice").unwrap();
    fs.write(
        &mut ctx,
        "alice",
        &p("/versioned"),
        FileContent::from_str("v1"),
    )
    .unwrap();
    // Every node in turn goes down while the file is overwritten, so the
    // downed node holds a stale replica on return.
    for (node, version) in [(1u16, "v2"), (4, "v3"), (6, "v4")] {
        fs.cluster().set_node_down(DeviceId(node), true);
        fs.write(
            &mut ctx,
            "alice",
            &p("/versioned"),
            FileContent::from_str(version),
        )
        .unwrap();
        fs.cluster().set_node_down(DeviceId(node), false);
        assert_eq!(
            fs.read(&mut ctx, "alice", &p("/versioned")).unwrap(),
            FileContent::from_str(version),
            "stale replica surfaced after node {node} returned"
        );
    }
    fs.cluster().repair();
    assert_eq!(
        fs.read(&mut ctx, "alice", &p("/versioned")).unwrap(),
        FileContent::from_str("v4")
    );
}

#[test]
fn namering_updates_survive_outage_of_their_primary() {
    // Take down nodes *while directories churn*, then verify the tree.
    let fs = h2_rack();
    let mut ctx = OpCtx::for_test();
    fs.create_account(&mut ctx, "alice").unwrap();
    for round in 0..4u16 {
        fs.cluster().set_node_down(DeviceId(round * 2), true);
        let dir = format!("/round{round}");
        fs.mkdir(&mut ctx, "alice", &p(&dir)).unwrap();
        for i in 0..5 {
            fs.write(
                &mut ctx,
                "alice",
                &p(&format!("{dir}/f{i}")),
                FileContent::from_str("data"),
            )
            .unwrap();
        }
        fs.cluster().set_node_down(DeviceId(round * 2), false);
    }
    fs.cluster().repair();
    let roots = fs.list(&mut ctx, "alice", &p("/")).unwrap();
    assert_eq!(roots.len(), 4);
    for round in 0..4 {
        let listing = fs
            .list(&mut ctx, "alice", &p(&format!("/round{round}")))
            .unwrap();
        assert_eq!(listing.len(), 5, "round {round} lost files");
    }
}
