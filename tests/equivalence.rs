//! Cross-backend equivalence: every filesystem design must implement the
//! same `CloudFs` semantics. Random operation sequences are applied to the
//! in-memory reference model and to each backend; outcomes (success or
//! error class) and resulting directory listings must agree.

use h2baselines::{CasFs, CumulusFs, DpFs, SingleIndexFs, StaticPartitionFs, SwiftFs};
use h2cloud::{H2Cloud, H2Config, MaintenanceMode};
use h2fsapi::{CloudFs, FsPath};
use h2util::rng::rng;
use h2util::OpCtx;
use h2workload::{ModelFs, Op, Trace, TraceMix};
use swiftsim::{Cluster, ClusterConfig};

fn backends() -> Vec<Box<dyn CloudFs>> {
    let tiny = || Cluster::new(ClusterConfig::tiny());
    vec![
        Box::new(H2Cloud::new(H2Config::for_test())) as Box<dyn CloudFs>,
        Box::new(H2Cloud::new(H2Config {
            middlewares: 1,
            mode: MaintenanceMode::Deferred,
            cluster: ClusterConfig::tiny(),
            cache_capacity: 64,
            trace_sample: 0.0,
            ..H2Config::default()
        })),
        Box::new(SwiftFs::new(tiny(), true)),
        Box::new(SwiftFs::new(tiny(), false)),
        Box::new(DpFs::new(tiny(), 3)),
        Box::new(SingleIndexFs::new(tiny())),
        Box::new(StaticPartitionFs::new(tiny(), 4, u64::MAX)),
        Box::new(CumulusFs::new(tiny())),
        Box::new(CasFs::new(tiny())),
    ]
}

/// Compare full recursive listings between model and backend.
fn assert_same_tree(model: &ModelFs, fs: &dyn CloudFs, account: &str, label: &str) {
    let mut ctx = OpCtx::for_test();
    let mut stack = vec![FsPath::root()];
    while let Some(dir) = stack.pop() {
        let mut expected = model.list_detailed(&dir).expect("model dir listing");
        let mut got = fs
            .list_detailed(&mut ctx, account, &dir)
            .unwrap_or_else(|e| panic!("{label}: LIST {dir} failed: {e}"));
        expected.sort_by(|a, b| a.name.cmp(&b.name));
        got.sort_by(|a, b| a.name.cmp(&b.name));
        assert_eq!(
            got.len(),
            expected.len(),
            "{label}: {dir} child count mismatch: {:?} vs {:?}",
            got.iter().map(|e| &e.name).collect::<Vec<_>>(),
            expected.iter().map(|e| &e.name).collect::<Vec<_>>()
        );
        for (g, e) in got.iter().zip(&expected) {
            assert_eq!(g.name, e.name, "{label}: {dir} name mismatch");
            assert_eq!(g.kind, e.kind, "{label}: {dir}/{} kind mismatch", g.name);
            if g.kind == h2fsapi::EntryKind::File {
                assert_eq!(g.size, e.size, "{label}: {dir}/{} size mismatch", g.name);
            }
        }
        for e in expected {
            if e.kind == h2fsapi::EntryKind::Directory {
                stack.push(dir.child(&e.name).expect("valid name"));
            }
        }
    }
}

#[test]
fn random_traces_agree_with_the_model_on_every_backend() {
    for seed in [1u64, 7, 1234] {
        // Generate a valid trace once (against a throwaway model).
        let mut gen_model = ModelFs::new();
        let trace = Trace::generate(&mut rng(seed), &mut gen_model, 250, &TraceMix::dir_heavy());
        for fs in backends() {
            let label = format!("{} (seed {seed})", fs.name());
            let mut ctx = OpCtx::for_test();
            fs.create_account(&mut ctx, "acct").expect("account");
            let mut model = ModelFs::new();
            for op in &trace.ops {
                let expected = Trace::apply_model(&mut model, op);
                let got = Trace::apply_fs(fs.as_ref(), &mut ctx, "acct", op);
                match (&expected, &got) {
                    (Ok(()), Ok(())) => {}
                    (Err(e), Err(g)) => assert_eq!(
                        e.class(),
                        g.class(),
                        "{label}: {op:?} error class mismatch ({e} vs {g})"
                    ),
                    _ => panic!("{label}: {op:?} diverged: model={expected:?} fs={got:?}"),
                }
            }
            fs.quiesce();
            assert_same_tree(&model, fs.as_ref(), "acct", &label);
        }
    }
}

#[test]
fn invalid_operations_fail_identically_everywhere() {
    let cases: Vec<(&str, Op)> = vec![
        ("rmdir root", Op::Rmdir(FsPath::root())),
        ("read missing", Op::Read(FsPath::parse("/ghost").unwrap())),
        (
            "mkdir without parent",
            Op::Mkdir(FsPath::parse("/no/such/parent").unwrap()),
        ),
        (
            "mv into own subtree",
            Op::Mv(
                FsPath::parse("/a").unwrap(),
                FsPath::parse("/a/b/c").unwrap(),
            ),
        ),
        (
            "delete a directory as file",
            Op::Delete(FsPath::parse("/a").unwrap()),
        ),
        (
            "copy onto existing",
            Op::Copy(FsPath::parse("/a").unwrap(), FsPath::parse("/d").unwrap()),
        ),
    ];
    for fs in backends() {
        let mut ctx = OpCtx::for_test();
        fs.create_account(&mut ctx, "acct").expect("account");
        let mut model = ModelFs::new();
        for setup in [
            Op::Mkdir(FsPath::parse("/a").unwrap()),
            Op::Mkdir(FsPath::parse("/a/b").unwrap()),
            Op::Mkdir(FsPath::parse("/d").unwrap()),
        ] {
            Trace::apply_model(&mut model, &setup).unwrap();
            Trace::apply_fs(fs.as_ref(), &mut ctx, "acct", &setup).unwrap();
        }
        for (what, op) in &cases {
            let expected = Trace::apply_model(&mut model, op).expect_err("model rejects");
            let got = Trace::apply_fs(fs.as_ref(), &mut ctx, "acct", op);
            match got {
                Ok(()) => panic!(
                    "{}: '{what}' unexpectedly succeeded (model said {expected})",
                    fs.name()
                ),
                Err(err) => assert_eq!(
                    err.code(),
                    expected.code(),
                    "{}: '{what}' error class mismatch",
                    fs.name()
                ),
            }
        }
    }
}
