//! Edge cases: hostile names, extreme depths, account isolation — across
//! H2Cloud and representative baselines.

use h2baselines::{DpFs, SwiftFs};
use h2cloud::check::fsck;
use h2cloud::{H2Cloud, H2Config};
use h2fsapi::{CloudFs, FileContent, FsPath};
use h2util::OpCtx;
use swiftsim::{Cluster, ClusterConfig};

fn p(s: &str) -> FsPath {
    FsPath::parse(s).unwrap()
}

fn backends() -> Vec<Box<dyn CloudFs>> {
    vec![
        Box::new(H2Cloud::new(H2Config::for_test())) as Box<dyn CloudFs>,
        Box::new(SwiftFs::new(Cluster::new(ClusterConfig::tiny()), true)),
        Box::new(DpFs::new(Cluster::new(ClusterConfig::tiny()), 2)),
    ]
}

#[test]
fn unusual_but_legal_names_roundtrip() {
    // Unicode, spaces, dots, long-ish names — all legal per FsPath.
    let long = "a".repeat(255);
    let names = [
        "héllo wörld",
        "数据备份",
        "file.with.many.dots.txt",
        "  leading-and-trailing  ",
        long.as_str(),
        "mixed 北京 and ascii",
        "quotes'and\"ticks",
    ];
    for fs in backends() {
        let mut ctx = OpCtx::for_test();
        fs.create_account(&mut ctx, "u").unwrap();
        fs.mkdir(&mut ctx, "u", &p("/dir")).unwrap();
        for (i, name) in names.iter().enumerate() {
            let path = FsPath::parse("/dir").unwrap().child(name).unwrap();
            fs.write(
                &mut ctx,
                "u",
                &path,
                FileContent::from_str(&format!("payload {i}")),
            )
            .unwrap_or_else(|e| panic!("{}: write {name:?} failed: {e}", fs.name()));
            assert_eq!(
                fs.read(&mut ctx, "u", &path).unwrap(),
                FileContent::from_str(&format!("payload {i}")),
                "{}: {name:?}",
                fs.name()
            );
        }
        let mut listing = fs.list(&mut ctx, "u", &p("/dir")).unwrap();
        listing.sort();
        let mut want: Vec<String> = names.iter().map(|s| s.to_string()).collect();
        want.sort();
        assert_eq!(listing, want, "{}", fs.name());
    }
}

#[test]
fn illegal_names_are_rejected_at_the_path_layer() {
    assert!(FsPath::parse("/a\tb").is_err()); // tab would break the Formatter
    assert!(FsPath::parse("/a\nb").is_err());
    assert!(FsPath::root().child("has/slash").is_err());
    assert!(FsPath::root().child("").is_err());
    assert!(FsPath::root().child(&"x".repeat(256)).is_err());
}

#[test]
fn depth_twenty_plus_paths_work_everywhere() {
    // The paper's workload reaches depth > 20; directory chains that deep
    // must work on every design.
    let mut path = String::new();
    for i in 0..22 {
        path.push_str(&format!("/L{i:02}"));
    }
    let leaf = format!("{path}/deep.dat");
    for fs in backends() {
        let mut ctx = OpCtx::for_test();
        fs.create_account(&mut ctx, "u").unwrap();
        let mut cur = String::new();
        for i in 0..22 {
            cur.push_str(&format!("/L{i:02}"));
            fs.mkdir(&mut ctx, "u", &p(&cur)).unwrap();
        }
        fs.write(&mut ctx, "u", &p(&leaf), FileContent::Simulated(77))
            .unwrap();
        assert_eq!(
            fs.stat(&mut ctx, "u", &p(&leaf)).unwrap().size,
            77,
            "{}",
            fs.name()
        );
        // Move the depth-1 ancestor: the whole chain relocates.
        fs.mv(&mut ctx, "u", &p("/L00"), &p("/moved")).unwrap();
        let moved_leaf = leaf.replacen("/L00", "/moved", 1);
        assert!(
            fs.stat(&mut ctx, "u", &p(&moved_leaf)).is_ok(),
            "{}",
            fs.name()
        );
    }
}

#[test]
fn accounts_are_fully_isolated() {
    for fs in backends() {
        let mut ctx = OpCtx::for_test();
        fs.create_account(&mut ctx, "alice").unwrap();
        fs.create_account(&mut ctx, "bob").unwrap();
        // Identical paths, different content, no interference.
        fs.write(
            &mut ctx,
            "alice",
            &p("/same"),
            FileContent::from_str("alice's"),
        )
        .unwrap();
        fs.write(&mut ctx, "bob", &p("/same"), FileContent::from_str("bob's"))
            .unwrap();
        assert_eq!(
            fs.read(&mut ctx, "alice", &p("/same")).unwrap(),
            FileContent::from_str("alice's"),
            "{}",
            fs.name()
        );
        assert_eq!(
            fs.read(&mut ctx, "bob", &p("/same")).unwrap(),
            FileContent::from_str("bob's"),
            "{}",
            fs.name()
        );
        // Deleting alice's account leaves bob intact.
        fs.delete_account(&mut ctx, "alice").unwrap();
        assert!(fs.read(&mut ctx, "alice", &p("/same")).is_err());
        assert_eq!(
            fs.read(&mut ctx, "bob", &p("/same")).unwrap(),
            FileContent::from_str("bob's"),
            "{}",
            fs.name()
        );
    }
}

#[test]
fn h2_stays_consistent_under_hostile_names_and_depth() {
    let fs = H2Cloud::new(H2Config::for_test());
    let mut ctx = OpCtx::for_test();
    fs.create_account(&mut ctx, "u").unwrap();
    fs.mkdir(&mut ctx, "u", &p("/目录")).unwrap();
    fs.write(
        &mut ctx,
        "u",
        &FsPath::parse("/目录")
            .unwrap()
            .child("文件 με space")
            .unwrap(),
        FileContent::Simulated(9),
    )
    .unwrap();
    let mut cur = "/目录".to_string();
    for i in 0..20 {
        cur.push_str(&format!("/d{i}"));
        fs.mkdir(&mut ctx, "u", &p(&cur)).unwrap();
    }
    let report = fsck(&fs, &mut ctx, "u").unwrap();
    assert!(report.is_clean(), "{:?}", report.violations);
    assert_eq!(report.dirs, 21);
    assert_eq!(report.files, 1);
}

#[test]
fn empty_directories_list_and_remove_cleanly() {
    for fs in backends() {
        let mut ctx = OpCtx::for_test();
        fs.create_account(&mut ctx, "u").unwrap();
        fs.mkdir(&mut ctx, "u", &p("/empty")).unwrap();
        assert!(fs.list(&mut ctx, "u", &p("/empty")).unwrap().is_empty());
        assert!(fs
            .list_detailed(&mut ctx, "u", &p("/empty"))
            .unwrap()
            .is_empty());
        fs.rmdir(&mut ctx, "u", &p("/empty")).unwrap();
        assert!(
            fs.list(&mut ctx, "u", &p("/empty")).is_err(),
            "{}",
            fs.name()
        );
    }
}

#[test]
fn zero_byte_files_roundtrip() {
    for fs in backends() {
        let mut ctx = OpCtx::for_test();
        fs.create_account(&mut ctx, "u").unwrap();
        fs.write(
            &mut ctx,
            "u",
            &p("/empty.txt"),
            FileContent::Inline(h2util::SharedBuf::new()),
        )
        .unwrap();
        assert_eq!(
            fs.read(&mut ctx, "u", &p("/empty.txt")).unwrap().len(),
            0,
            "{}",
            fs.name()
        );
        assert_eq!(fs.stat(&mut ctx, "u", &p("/empty.txt")).unwrap().size, 0);
    }
}
