//! Chaos suite: the full H2 stack driven against the request-level fault
//! plane (`h2util::faults`) with retry/backoff in the loop.
//!
//! Everything here is deterministic: faults are drawn from a seeded
//! injector, clocks are hybrid-logical, and the driver is single-threaded —
//! so a failing run replays exactly from its seed. Each scenario:
//!
//! 1. drives writes/deletes through three Deferred-mode middlewares while
//!    errors, latency inflation and torn writes are injected;
//! 2. records which operations the client saw acknowledged;
//! 3. clears the fault plan, quiesces maintenance and repairs replicas;
//! 4. asserts every middleware's view converged to exactly the acknowledged
//!    state — nothing lost, nothing resurrected.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use h2cloud::{H2Cloud, H2Config, MaintenanceMode};
use h2fsapi::{CloudFs, FileContent, FsPath};
use h2util::faults::{FaultPlan, FaultSpec, FaultStats};
use h2util::{retry, OpCtx};
use swiftsim::ClusterConfig;

fn p(s: &str) -> FsPath {
    FsPath::parse(s).unwrap()
}

fn h2() -> H2Cloud {
    H2Cloud::new(H2Config {
        middlewares: 3,
        mode: MaintenanceMode::Deferred,
        cluster: ClusterConfig {
            cost: Arc::new(h2util::CostModel::zero()),
            ..ClusterConfig::default()
        },
        cache_capacity: 0,
        trace_sample: 0.0,
        ..H2Config::default()
    })
}

/// Everything a chaos run produces — two runs with the same seed must
/// compare equal on all of it.
#[derive(Debug, PartialEq)]
struct ChaosOutcome {
    /// Per-operation acknowledgements, in driving order.
    acks: Vec<(String, bool)>,
    /// Final listing of `/chaos`, identical on every middleware.
    listing: Vec<String>,
    /// Final file contents keyed by name.
    contents: BTreeMap<String, FileContent>,
    /// Injector accounting.
    faults: FaultStats,
    /// `op_retries` / `op_gave_up` counter values.
    retries: u64,
    gave_up: u64,
}

/// Drive one deterministic chaos run at the given error rate. `rate` feeds
/// error, slowdown and replica-fault probabilities; torn writes run at half
/// of it.
fn run_chaos(seed: u64, rate: f64) -> ChaosOutcome {
    run_chaos_with(seed, rate, false)
}

/// [`run_chaos`] with an optional live rebalance woven through the fault
/// window: a device is added a third of the way in (migrator throttled to a
/// few partitions per op, so most of the run works against a
/// partially-moved ring) and a founding device is drained two thirds in —
/// all while errors, torn writes and replica faults are being injected.
fn run_chaos_with(seed: u64, rate: f64, rebalance: bool) -> ChaosOutcome {
    let fs = h2();
    let mut ctx = OpCtx::for_test();
    fs.create_account(&mut ctx, "team").unwrap();
    fs.mkdir(&mut ctx, "team", &p("/chaos")).unwrap();
    fs.quiesce();

    let spec = FaultSpec::errors(rate)
        .with_slow(rate, Duration::from_millis(2))
        .with_torn(rate / 2.0);
    fs.cluster().set_fault_plan(Some(
        FaultPlan::uniform(seed, spec).with_replica_errors(rate),
    ));

    // Ops on a given name always route through the same middleware, so
    // same-name overwrites are ordered by that middleware's monotone clock
    // and "last acknowledged op wins" is the ground truth. One caveat: a
    // FAILED overwrite is indeterminate, not invisible — §3.3.3(b) streams
    // content before the tuple, so the content object may already hold the
    // new bytes when the patch submission fails. Each name therefore maps
    // to the set of values it may legally hold.
    let mut possible: BTreeMap<String, std::collections::BTreeSet<String>> = BTreeMap::new();
    let mut acks: Vec<(String, bool)> = Vec::new();
    let mut drained = false;
    for i in 0..120usize {
        if rebalance {
            if i == 40 {
                // Swap the ring under fire but do NOT finish the migration:
                // the following ops interleave with pending partitions.
                fs.cluster().add_node(0, 1.0).unwrap();
            }
            if i == 80 {
                // Finish what the add started (replica faults may leave
                // blocked partitions behind; they stay pending and reads
                // fall back to the old assignment), then drain device 0.
                fs.cluster().migrate_all();
                if !fs.cluster().migration_active() {
                    fs.cluster().drain_node(swiftsim::DeviceId(0)).unwrap();
                    drained = true;
                }
            }
            if i > 40 {
                fs.cluster().migrate_step(4);
            }
        }
        let slot = i % 24;
        let mw = slot % 3;
        let name = format!("f{slot:02}");
        let path = format!("/chaos/{name}");
        let mut c = OpCtx::for_test();
        if i >= 96 && slot % 4 == 0 {
            // Late rounds delete some slots to exercise tombstones under
            // injected faults.
            let ok = fs.via(mw).delete_file(&mut c, "team", &p(&path)).is_ok();
            acks.push((format!("del {name}"), ok));
            if ok {
                // Tombstone-first delete: an acked delete removed the name;
                // a failed one changed nothing visible.
                possible.remove(&name);
            }
        } else {
            let value = format!("v{i}");
            let ok = fs
                .via(mw)
                .write(&mut c, "team", &p(&path), FileContent::from_str(&value))
                .is_ok();
            acks.push((format!("put {name}"), ok));
            if ok {
                possible.insert(name, [value].into());
            } else if let Some(values) = possible.get_mut(&name) {
                // Failed overwrite of an existing name: the content object
                // may or may not have been replaced before the failure.
                values.insert(value);
            }
        }
        if i % 10 == 9 {
            // Mid-run maintenance under fire. Failures are tolerated here —
            // restored patch chains and the final clean quiesce reconcile.
            let _ = fs.layer().pump();
        }
    }

    // Snapshot injector accounting before the plan (and its stats) is
    // cleared for the clean phase.
    let faults = fs.cluster().fault_stats().expect("plan was active");

    // Clean phase: no more injection, drain maintenance, repair replicas.
    fs.cluster().set_fault_plan(None);
    if rebalance {
        // With the injector off every partition can move; the drain that a
        // blocked migration deferred mid-run lands now.
        fs.cluster().migrate_all();
        if !drained {
            fs.cluster().drain_node(swiftsim::DeviceId(0)).unwrap();
            fs.cluster().migrate_all();
        }
        assert!(
            !fs.cluster().migration_active(),
            "migration must complete once faults clear (seed {seed})"
        );
        fs.layer().resync().unwrap();
    }
    fs.quiesce();
    fs.cluster().repair();

    let listing: Vec<String> = {
        let mut c = OpCtx::for_test();
        fs.via(0).list(&mut c, "team", &p("/chaos")).unwrap()
    };
    // Every middleware sees the same namespace...
    for mw in 1..3 {
        let mut c = OpCtx::for_test();
        assert_eq!(
            fs.via(mw).list(&mut c, "team", &p("/chaos")).unwrap(),
            listing,
            "middleware {mw} diverged (seed {seed}, rate {rate})"
        );
    }
    // ...which is exactly the acknowledged state: no lost updates, no
    // resurrected deletes.
    let expected_names: Vec<String> = possible.keys().cloned().collect();
    assert_eq!(
        listing, expected_names,
        "acked state mismatch (seed {seed}, rate {rate})"
    );
    let mut contents = BTreeMap::new();
    for (name, values) in &possible {
        let mut per_mw = Vec::new();
        for mw in 0..3 {
            let mut c = OpCtx::for_test();
            let got = fs
                .via(mw)
                .read(&mut c, "team", &p(&format!("/chaos/{name}")))
                .unwrap_or_else(|e| panic!("acked {name} unreadable on mw {mw}: {e}"));
            per_mw.push(got);
        }
        assert!(
            per_mw.windows(2).all(|w| w[0] == w[1]),
            "{name} differs across middlewares"
        );
        assert!(
            values.iter().any(|v| per_mw[0] == FileContent::from_str(v)),
            "{name} holds a value no op ever wrote"
        );
        contents.insert(name.clone(), per_mw.remove(0));
    }

    let m = fs.layer().mw(0).metrics().clone();
    ChaosOutcome {
        acks,
        listing,
        contents,
        faults,
        retries: m.counter_value(retry::OP_RETRIES),
        gave_up: m.counter_value(retry::OP_GAVE_UP),
    }
}

#[test]
fn chaos_at_five_percent_converges_with_no_give_ups() {
    let out = run_chaos(0xC0FFEE, 0.05);
    assert!(out.faults.errors + out.faults.replica_errors > 0, "{out:?}");
    // The retry budget (5 attempts) absorbs a 5% error rate completely.
    assert_eq!(out.gave_up, 0, "{out:?}");
    assert!(out.retries > 0, "faults at 5% must have caused retries");
    // Every client-acknowledged op is reflected in the final state (the
    // run_chaos assertions), and the namespace is non-trivial.
    assert!(!out.listing.is_empty());
}

#[test]
fn chaos_at_one_percent_converges() {
    let out = run_chaos(0xBEE, 0.01);
    assert_eq!(out.gave_up, 0, "{out:?}");
    assert!(!out.listing.is_empty());
}

#[test]
fn chaos_at_ten_percent_converges_even_if_ops_fail() {
    // At 10% some client ops may exhaust their retries and fail — that is
    // allowed; what matters is that failed ops are invisible and acked ops
    // are durable (asserted inside run_chaos).
    let out = run_chaos(0xD00D, 0.10);
    assert!(out.faults.errors > 0, "{out:?}");
    assert!(!out.listing.is_empty());
}

#[test]
fn traced_chaos_run_exports_valid_chrome_trace() {
    // Tracing every op through a faulty run must yield a chrome://tracing-
    // loadable export in which the injected failures are visible: backoff
    // intervals from the retry layer and per-replica votes from the quorum
    // paths.
    let fs = H2Cloud::new(H2Config {
        middlewares: 3,
        mode: MaintenanceMode::Deferred,
        cluster: ClusterConfig {
            cost: Arc::new(h2util::CostModel::zero()),
            ..ClusterConfig::default()
        },
        cache_capacity: 0,
        trace_sample: 1.0,
        ..H2Config::default()
    });
    let mut ctx = OpCtx::for_test();
    fs.create_account(&mut ctx, "team").unwrap();
    fs.mkdir(&mut ctx, "team", &p("/chaos")).unwrap();
    fs.quiesce();
    let spec = FaultSpec::errors(0.10).with_slow(0.10, Duration::from_millis(2));
    fs.cluster().set_fault_plan(Some(
        FaultPlan::uniform(0xFACADE, spec).with_replica_errors(0.10),
    ));
    for i in 0..60usize {
        let mut c = OpCtx::for_test();
        let path = p(&format!("/chaos/f{:02}", i % 12));
        let _ = fs.via(i % 3).write(
            &mut c,
            "team",
            &path,
            FileContent::from_str(&format!("v{i}")),
        );
        let mut c = OpCtx::for_test();
        let _ = fs.via(i % 3).read(&mut c, "team", &path);
    }
    fs.cluster().set_fault_plan(None);

    let traces = fs.recent_traces(usize::MAX);
    assert!(!traces.is_empty(), "sampling at 1.0 collected nothing");
    let json = h2util::trace::chrome_trace_json(&traces);
    assert!(json.contains("\"traceEvents\""), "{json}");
    assert!(json.contains("\"displayTimeUnit\""), "{json}");
    // Injected faults left their marks: retry backoffs and replica votes.
    for cat in ["op", "mw", "cloud", "quorum", "replica", "backoff"] {
        assert!(
            json.contains(&format!("\"cat\": \"{cat}\"")),
            "no {cat} events in the export"
        );
    }
    assert!(json.contains("\"vote\""), "replica votes missing");
    assert!(json.contains("retry"), "retry annotations missing");
    // Structurally valid JSON: braces and brackets balance outside strings.
    let (mut braces, mut brackets, mut in_str, mut esc) = (0i64, 0i64, false, false);
    for ch in json.chars() {
        if esc {
            esc = false;
            continue;
        }
        match ch {
            '\\' if in_str => esc = true,
            '"' => in_str = !in_str,
            '{' if !in_str => braces += 1,
            '}' if !in_str => braces -= 1,
            '[' if !in_str => brackets += 1,
            ']' if !in_str => brackets -= 1,
            _ => {}
        }
        assert!(braces >= 0 && brackets >= 0, "negative nesting");
    }
    assert_eq!((braces, brackets, in_str), (0, 0, false), "unbalanced JSON");
}

#[test]
fn chaos_with_live_rebalance_at_five_percent_loses_no_acks() {
    // The tentpole property: a live rebalance (add + throttled migration +
    // drain) woven through a 5% fault window must not lose a single
    // acknowledged operation — run_chaos_with asserts acked state ==
    // converged state on every middleware. The counters prove the run
    // actually exercised the moving ring rather than racing past it.
    let out = run_chaos_with(0x5CA1E, 0.05, true);
    assert!(out.faults.errors + out.faults.replica_errors > 0, "{out:?}");
    assert_eq!(out.gave_up, 0, "{out:?}");
    assert!(!out.listing.is_empty());
}

#[test]
fn chaos_rebalance_replays_byte_identically_from_its_seed() {
    // Migration copies use the repair path (no injector draws), so a live
    // rebalance must not perturb the deterministic replay guarantee.
    let a = run_chaos_with(0xB07ED, 0.05, true);
    let b = run_chaos_with(0xB07ED, 0.05, true);
    assert_eq!(a, b, "same seed + same rebalance must replay exactly");
}

#[test]
fn fault_window_then_resync_reconverges_without_writes() {
    // Regression for the post-fault re-convergence gap: gossip dropped
    // during a fault window used to leave a middleware's untouched rings
    // stale FOREVER — nothing would ever re-announce them, and the old
    // workaround was to write fresh data into every directory just to force
    // a re-flood. The anti-entropy sweep (`H2Layer::resync`) must close the
    // gap with no new writes at all.
    let fs = h2();
    let mut ctx = OpCtx::for_test();
    fs.create_account(&mut ctx, "team").unwrap();
    for d in ["a", "b", "c"] {
        fs.mkdir(&mut ctx, "team", &p(&format!("/{d}"))).unwrap();
    }
    fs.quiesce();
    // Fault window: each middleware writes into its own directory while a
    // third of gossip is dropped and replicas misbehave.
    fs.cluster()
        .set_fault_plan(Some(FaultPlan::uniform(0x57A1E, FaultSpec::errors(0.05))));
    for (i, d) in ["a", "b", "c"].iter().enumerate() {
        for f in 0..4 {
            let mut c = OpCtx::for_test();
            fs.via(i)
                .write(
                    &mut c,
                    "team",
                    &p(&format!("/{d}/f{f}")),
                    FileContent::from_str(&format!("{d}{f}")),
                )
                .unwrap();
        }
        let _ = fs.layer().pump_with_faults(h2cloud::layer::GossipFaults {
            drop_every: 3,
            duplicate_every: 4,
        });
    }
    fs.cluster().set_fault_plan(None);
    // No writes from here on: the sweep alone must reconverge every view.
    fs.layer().resync().unwrap();
    let mut c = OpCtx::for_test();
    let reference = fs.via(0).list(&mut c, "team", &p("/")).unwrap();
    assert_eq!(reference, vec!["a", "b", "c"]);
    for mw in 0..3 {
        for d in ["a", "b", "c"] {
            let mut c = OpCtx::for_test();
            assert_eq!(
                fs.via(mw)
                    .list(&mut c, "team", &p(&format!("/{d}")))
                    .unwrap(),
                vec!["f0", "f1", "f2", "f3"],
                "middleware {mw} still stale on /{d} after resync"
            );
        }
    }
}

#[test]
fn chaos_replays_byte_identically_from_its_seed() {
    let a = run_chaos(0x5EED, 0.07);
    let b = run_chaos(0x5EED, 0.07);
    assert_eq!(a, b, "same seed must replay the same run exactly");
    // And a different seed actually takes a different path. The retry
    // budget can absorb every fault at this rate, so client-visible acks
    // may match — the injector accounting must still differ.
    let c = run_chaos(0x5EED + 1, 0.07);
    assert_ne!(
        (a.faults, a.retries),
        (c.faults, c.retries),
        "different seeds should draw different faults"
    );
}
