//! Workload replay across systems: generated user filesystems and traces
//! drive every backend; final state must match the model, bulk import must
//! equal slow per-op population, and the headline complexity differences
//! must be visible in backend-op counts.

use h2baselines::SwiftFs;
use h2cloud::{H2Cloud, H2Config};
use h2fsapi::{CloudFs, FsPath};
use h2util::rng::rng;
use h2util::OpCtx;
use h2workload::{FsSpec, Trace, TraceMix, UserProfile};
use swiftsim::{Cluster, ClusterConfig};

fn p(s: &str) -> FsPath {
    FsPath::parse(s).unwrap()
}

#[test]
fn bulk_import_equals_slow_population_on_h2() {
    let spec = FsSpec::generate(&mut rng(5), UserProfile::Light, 0.5);

    let fast = H2Cloud::new(H2Config::for_test());
    let mut ctx = OpCtx::for_test();
    fast.create_account(&mut ctx, "u").unwrap();
    spec.populate(&fast, &mut ctx, "u").unwrap();

    let slow = H2Cloud::new(H2Config::for_test());
    let mut ctx2 = OpCtx::for_test();
    slow.create_account(&mut ctx2, "u").unwrap();
    spec.populate_slow(&slow, &mut ctx2, "u").unwrap();

    // Same tree, recursively.
    let mut stack = vec![FsPath::root()];
    while let Some(dir) = stack.pop() {
        let mut a = fast.list_detailed(&mut ctx, "u", &dir).unwrap();
        let mut b = slow.list_detailed(&mut ctx2, "u", &dir).unwrap();
        a.sort_by(|x, y| x.name.cmp(&y.name));
        b.sort_by(|x, y| x.name.cmp(&y.name));
        assert_eq!(a.len(), b.len(), "{dir}");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.size, y.size);
            if x.kind == h2fsapi::EntryKind::Directory {
                stack.push(dir.child(&x.name).unwrap());
            }
        }
    }
    // Same object count in the cloud (a descriptor + ring per dir, one
    // object per file, one root ring).
    assert_eq!(fast.storage_stats().objects, slow.storage_stats().objects);
}

#[test]
fn heavy_user_filesystem_hosts_and_operates() {
    let spec = FsSpec::generate(&mut rng(8), UserProfile::Heavy, 0.1);
    let fs = H2Cloud::new(H2Config::for_test());
    let mut ctx = OpCtx::for_test();
    fs.create_account(&mut ctx, "heavy").unwrap();
    spec.populate(&fs, &mut ctx, "heavy").unwrap();

    let model = spec.to_model();
    if fs.layer().mw(0).cas_active() {
        // CAS plane: one manifest per file, plus the deduplicated block set
        // (leaves and branches) that the cluster's refcount index tracks.
        // Pinning objects against `cas_live_blocks` proves no block leaked
        // outside the refcount discipline during a bulk import.
        assert_eq!(
            fs.storage_stats().objects,
            spec.files.len() as u64
                + fs.cluster().cas_live_blocks()
                + 2 * spec.dirs.len() as u64
                + 1
        );
    } else {
        // One object per small file, manifest + parts per striped file,
        // 2 per dir (descriptor + NameRing), plus the root ring.
        let content_objects: u64 = spec
            .files
            .iter()
            .map(|(_, size)| {
                if *size > h2cloud::middleware::PART_BYTES {
                    1 + size.div_ceil(h2cloud::middleware::PART_BYTES)
                } else {
                    1
                }
            })
            .sum();
        assert_eq!(
            fs.storage_stats().objects,
            content_objects + 2 * spec.dirs.len() as u64 + 1
        );
    }
    // Spot-check twenty files.
    for (path, size) in model.all_files().into_iter().take(20) {
        let st = fs.stat(&mut ctx, "heavy", &path).unwrap();
        assert_eq!(st.size, size, "{path}");
    }
    // Directory ops on the populated tree work.
    let deepest = model
        .all_dirs()
        .into_iter()
        .max_by_key(|d| d.depth())
        .unwrap();
    assert!(deepest.depth() >= 5, "heavy profile too shallow");
    fs.mkdir(&mut ctx, "heavy", &deepest.child("fresh").unwrap())
        .unwrap();
    assert!(fs
        .list(&mut ctx, "heavy", &deepest)
        .unwrap()
        .contains(&"fresh".to_string()));
}

#[test]
fn replay_reports_show_complexity_gap_between_swift_and_h2() {
    // One directory of 200 files, then RMDIR: Swift's backend-op count
    // scales with n, H2Cloud's does not — Table 1 in two numbers.
    let spec = FsSpec::flat_dir(&p("/big"), 200, 1024);

    let h2 = H2Cloud::new(H2Config::for_test());
    let mut ctx = OpCtx::for_test();
    h2.create_account(&mut ctx, "u").unwrap();
    spec.populate(&h2, &mut ctx, "u").unwrap();
    let mut h2_rm = OpCtx::for_test();
    h2.rmdir(&mut h2_rm, "u", &p("/big")).unwrap();

    let swift = SwiftFs::new(Cluster::new(ClusterConfig::tiny()), true);
    let mut ctx2 = OpCtx::for_test();
    swift.create_account(&mut ctx2, "u").unwrap();
    spec.populate(&swift, &mut ctx2, "u").unwrap();
    let mut sw_rm = OpCtx::for_test();
    swift.rmdir(&mut sw_rm, "u", &p("/big")).unwrap();

    assert!(
        sw_rm.counts().total() >= 200,
        "Swift RMDIR must touch every object, used {} ops",
        sw_rm.counts().total()
    );
    assert!(
        h2_rm.counts().total() <= 15,
        "H2 RMDIR must be O(1), used {} ops",
        h2_rm.counts().total()
    );
}

#[test]
fn long_mixed_trace_replays_identically_on_h2_and_swift() {
    let mut model_gen = h2workload::ModelFs::new();
    let trace = Trace::generate(&mut rng(99), &mut model_gen, 400, &TraceMix::default());

    let systems: Vec<Box<dyn CloudFs>> = vec![
        Box::new(H2Cloud::new(H2Config::for_test())),
        Box::new(SwiftFs::new(Cluster::new(ClusterConfig::tiny()), true)),
    ];
    let mut final_listings: Vec<Vec<String>> = Vec::new();
    for fs in &systems {
        let mut ctx = OpCtx::for_test();
        fs.create_account(&mut ctx, "u").unwrap();
        let results = trace
            .replay(
                fs.as_ref(),
                "u",
                std::sync::Arc::new(h2util::CostModel::zero()),
            )
            .unwrap();
        assert_eq!(results.len(), trace.ops.len());
        fs.quiesce();
        let mut names = fs.list(&mut ctx, "u", &FsPath::root()).unwrap();
        names.sort();
        final_listings.push(names);
    }
    assert_eq!(
        final_listings[0], final_listings[1],
        "H2 and Swift disagree after replaying the same trace"
    );
}
