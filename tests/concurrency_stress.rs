//! Concurrency stress: the simulated cluster and H2Cloud are shared-state
//! concurrent systems (parking_lot locks, atomics, crossbeam channels);
//! these tests hammer them from many threads — with failures injected —
//! and assert the invariants that must survive: no lost updates after
//! quiescence, stable reads after repair, fsck-clean metadata.

use std::sync::Arc;

use h2cloud::check::fsck;
use h2cloud::{H2Cloud, H2Config, H2Keys, MaintenanceMode, NameRing, Tuple};
use h2fsapi::{CloudFs, FileContent, FsPath};
use h2ring::DeviceId;
use h2util::{CostModel, H2Error, NamespaceId, OpCtx};
use swiftsim::{Cluster, ClusterConfig, Meta, ObjectKey, ObjectStore, Payload};

fn p(s: &str) -> FsPath {
    FsPath::parse(s).unwrap()
}

#[test]
fn cluster_survives_concurrent_writers_readers_and_flapping_nodes() {
    const WRITERS: usize = 4;
    const KEYS: usize = 32;
    const ROUNDS: usize = 40;

    let cluster = Cluster::new(ClusterConfig {
        nodes: 8,
        replicas: 3,
        part_power: 8,
        cost: Arc::new(CostModel::zero()),
        faults: None,
    });
    cluster.create_account("acct").unwrap();
    cluster.create_container("acct", "c", true).unwrap();

    std::thread::scope(|scope| {
        // Writers: every (writer, round) writes a distinct marker value to
        // a shared key set.
        for w in 0..WRITERS {
            let cluster = cluster.clone();
            scope.spawn(move || {
                let mut ctx = OpCtx::for_test();
                for r in 0..ROUNDS {
                    let key = ObjectKey::new("acct", "c", &format!("k{:02}", (w * 7 + r) % KEYS));
                    let body = format!("w{w}-r{r}");
                    cluster
                        .put(&mut ctx, &key, Payload::from_string(body), Meta::new())
                        .unwrap();
                }
            });
        }
        // Readers: concurrent gets must never see corruption (absence is
        // fine while writers race).
        for _ in 0..2 {
            let cluster = cluster.clone();
            scope.spawn(move || {
                let mut ctx = OpCtx::for_test();
                for r in 0..ROUNDS * 2 {
                    let key = ObjectKey::new("acct", "c", &format!("k{:02}", r % KEYS));
                    if let Ok(obj) = cluster.get(&mut ctx, &key) {
                        let s = obj.payload.as_str().expect("string payload");
                        assert!(s.starts_with('w'), "corrupt payload {s:?}");
                    }
                }
            });
        }
        // Chaos: one thread flaps nodes and runs the replicator.
        {
            let cluster = cluster.clone();
            scope.spawn(move || {
                for i in 0..20u16 {
                    let dev = DeviceId(i % 8);
                    cluster.set_node_down(dev, true);
                    std::thread::yield_now();
                    cluster.set_node_down(dev, false);
                    cluster.repair();
                }
            });
        }
    });

    // All nodes up: repair to convergence, then every key written must be
    // present with a well-formed value, stable across reads.
    cluster.repair();
    assert_eq!(cluster.repair(), 0, "repair did not converge");
    let mut ctx = OpCtx::for_test();
    for k in 0..KEYS {
        let key = ObjectKey::new("acct", "c", &format!("k{k:02}"));
        let a = cluster.get(&mut ctx, &key).expect("key lost").payload;
        let b = cluster.get(&mut ctx, &key).expect("key lost").payload;
        assert_eq!(a, b, "unstable read for k{k:02}");
    }
}

#[test]
fn repair_loop_under_concurrent_puts_and_deletes_loses_nothing() {
    // The replicator runs as a loop *while* clients mutate the store and a
    // node flaps. Two invariants must hold once the dust settles: no live
    // object is lost (repair must never purge a replica a racing writer
    // just wrote), and no deleted object is resurrected (tombstones may
    // only be reclaimed once every holder of a stale copy is reachable).
    const LIVE: usize = 24;
    const DOOMED: usize = 16;
    const WRITERS: usize = 3;
    const ROUNDS: usize = 24;

    let cluster = Cluster::new(ClusterConfig {
        nodes: 8,
        replicas: 3,
        part_power: 8,
        cost: Arc::new(CostModel::zero()),
        faults: None,
    });
    cluster.create_account("acct").unwrap();
    cluster.create_container("acct", "c", true).unwrap();

    // Pre-populate the keys the deleter will remove mid-churn.
    let mut ctx = OpCtx::for_test();
    for d in 0..DOOMED {
        cluster
            .put(
                &mut ctx,
                &ObjectKey::new("acct", "c", &format!("doomed{d:02}")),
                Payload::from_string(format!("d{d}")),
                Meta::new(),
            )
            .unwrap();
    }

    std::thread::scope(|scope| {
        // Writers: together they cover every live key (writer w steps by
        // WRITERS from offset w).
        for w in 0..WRITERS {
            let cluster = cluster.clone();
            scope.spawn(move || {
                let mut ctx = OpCtx::for_test();
                for r in 0..ROUNDS {
                    let key = ObjectKey::new(
                        "acct",
                        "c",
                        &format!("live{:02}", (w + WRITERS * r) % LIVE),
                    );
                    cluster
                        .put(
                            &mut ctx,
                            &key,
                            Payload::from_string(format!("w{w}-r{r}")),
                            Meta::new(),
                        )
                        .unwrap();
                }
            });
        }
        // Deleter: removes every doomed key exactly once, racing repair.
        {
            let cluster = cluster.clone();
            scope.spawn(move || {
                let mut ctx = OpCtx::for_test();
                for d in 0..DOOMED {
                    cluster
                        .delete(
                            &mut ctx,
                            &ObjectKey::new("acct", "c", &format!("doomed{d:02}")),
                        )
                        .unwrap();
                    std::thread::yield_now();
                }
            });
        }
        // Repair loop + node chaos: one node down at a time, replicator
        // passes interleaved with the mutations above.
        {
            let cluster = cluster.clone();
            scope.spawn(move || {
                for i in 0..20u16 {
                    let dev = DeviceId(i % 8);
                    cluster.set_node_down(dev, true);
                    cluster.repair();
                    std::thread::yield_now();
                    cluster.set_node_down(dev, false);
                    cluster.repair();
                }
            });
        }
    });

    // All nodes up: repair to convergence (tombstone reclaim may take an
    // extra pass after the flapped replicas come home).
    for _ in 0..4 {
        cluster.repair();
    }
    assert_eq!(cluster.repair(), 0, "repair did not converge");

    let mut ctx = OpCtx::for_test();
    for k in 0..LIVE {
        let key = ObjectKey::new("acct", "c", &format!("live{k:02}"));
        let got = cluster
            .get(&mut ctx, &key)
            .unwrap_or_else(|e| panic!("live{k:02} lost: {e:?}"))
            .payload;
        let s = got.as_str().expect("string payload");
        assert!(s.starts_with('w'), "corrupt payload {s:?}");
    }
    for d in 0..DOOMED {
        let key = ObjectKey::new("acct", "c", &format!("doomed{d:02}"));
        assert!(
            cluster.get(&mut ctx, &key).is_err(),
            "doomed{d:02} resurrected after repair"
        );
    }
    assert_eq!(cluster.object_count() as usize, LIVE);
}

#[test]
fn h2cloud_concurrent_writers_one_middleware_lose_nothing() {
    const THREADS: usize = 6;
    const FILES: usize = 30;

    let fs = Arc::new(H2Cloud::new(H2Config {
        middlewares: 1,
        mode: MaintenanceMode::Eager,
        cluster: ClusterConfig {
            cost: Arc::new(CostModel::zero()),
            ..ClusterConfig::default()
        },
        cache_capacity: 128,
        trace_sample: 0.0,
        ..H2Config::default()
    }));
    let mut ctx = OpCtx::for_test();
    fs.create_account(&mut ctx, "team").unwrap();
    fs.mkdir(&mut ctx, "team", &p("/hot")).unwrap();

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let fs = fs.clone();
            scope.spawn(move || {
                // Half the threads write into the shared hot directory,
                // half build private subtrees.
                let mut ctx = OpCtx::for_test();
                if t % 2 == 0 {
                    for i in 0..FILES {
                        fs.write(
                            &mut ctx,
                            "team",
                            &p(&format!("/hot/t{t}-f{i:02}")),
                            FileContent::Simulated(64),
                        )
                        .unwrap();
                    }
                } else {
                    fs.mkdir(&mut ctx, "team", &p(&format!("/own{t}"))).unwrap();
                    for i in 0..FILES {
                        fs.write(
                            &mut ctx,
                            "team",
                            &p(&format!("/own{t}/f{i:02}")),
                            FileContent::Simulated(64),
                        )
                        .unwrap();
                    }
                }
            });
        }
    });
    fs.quiesce();

    let mut ctx = OpCtx::for_test();
    let hot = fs.list(&mut ctx, "team", &p("/hot")).unwrap();
    assert_eq!(
        hot.len(),
        (THREADS / 2) * FILES,
        "lost updates in the shared directory"
    );
    for t in (1..THREADS).step_by(2) {
        let own = fs.list(&mut ctx, "team", &p(&format!("/own{t}"))).unwrap();
        assert_eq!(own.len(), FILES, "thread {t} subtree incomplete");
    }
    let report = fsck(&fs, &mut ctx, "team").unwrap();
    assert!(report.is_clean(), "{:?}", report.violations);
}

#[test]
fn submit_patch_chain_survives_concurrent_merges() {
    // Regression for a double-lock race in `submit_patch`: the patch number
    // used to be allocated in one lock scope and recorded in the pending
    // chain in a *second* lock scope after the PUT. A merge cycle racing the
    // PUT could run in between, consume the (not yet chained) number's
    // object as NotFound, and leave the freshly written patch object
    // orphaned in the cloud — referenced by no chain, never merged, never
    // deleted — while `is_quiescent` reported a quiet layer. This hammers
    // direct patch submissions against a concurrent merger and asserts
    // nothing is lost and nothing leaks.
    const WRITERS: usize = 4;
    const PATCHES: usize = 50;

    let fs = Arc::new(H2Cloud::new(H2Config {
        middlewares: 1,
        mode: MaintenanceMode::Deferred,
        cluster: ClusterConfig {
            cost: Arc::new(CostModel::zero()),
            ..ClusterConfig::default()
        },
        cache_capacity: 128,
        trace_sample: 0.0,
        ..H2Config::default()
    }));
    let mut ctx = OpCtx::for_test();
    fs.create_account(&mut ctx, "team").unwrap();

    let mw = fs.layer().mw(0).clone();
    let keys = H2Keys::new("team");
    let ns = NamespaceId::ROOT;

    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let mw = mw.clone();
            let keys = keys.clone();
            scope.spawn(move || {
                let mut ctx = OpCtx::for_test();
                for i in 0..PATCHES {
                    let mut patch = NameRing::new();
                    patch.apply(&format!("w{w}-f{i:03}"), Tuple::file(mw.tick(), 1));
                    mw.submit_patch(&mut ctx, &keys, ns, patch).unwrap();
                }
            });
        }
        // Merger: runs merge cycles concurrently with the submissions. The
        // race window is a cycle consuming the chain while a patch PUT is
        // still in flight.
        {
            let mw = mw.clone();
            scope.spawn(move || {
                for _ in 0..400 {
                    mw.step_merges();
                    std::thread::yield_now();
                }
            });
        }
    });
    fs.quiesce();
    assert_eq!(mw.pending_descriptors(), 0, "quiesce left pending chains");

    // No lost updates: every submitted entry made it into the global ring.
    let mut ctx = OpCtx::for_test();
    let global = mw.fetch_global_ring(&mut ctx, &keys, ns).unwrap();
    for w in 0..WRITERS {
        for i in 0..PATCHES {
            let name = format!("w{w}-f{i:03}");
            assert!(
                global.get(&name).is_some(),
                "update {name} lost in the submit/merge race"
            );
        }
    }
    assert_eq!(global.live_len(), WRITERS * PATCHES);

    // No orphaned patch objects: numbers are allocated densely from 0, so
    // every object a writer ever PUT lives at one of these keys — all must
    // have been merged and deleted (probe a little past the end too).
    let total = (WRITERS * PATCHES) as u32;
    for no in 0..total + 8 {
        let key = keys.patch(ns, mw.node(), no);
        assert!(
            matches!(fs.cluster().get(&mut ctx, &key), Err(H2Error::NotFound(_))),
            "orphaned patch object #{no} left in the cloud"
        );
    }
}

#[test]
fn h2cloud_concurrent_structure_churn_stays_consistent() {
    // Threads repeatedly create + remove their own directories while one
    // thread GCs concurrently — the tree must end consistent and fsck
    // clean, with all survivors intact.
    let fs = Arc::new(H2Cloud::new(H2Config {
        middlewares: 1,
        mode: MaintenanceMode::Eager,
        cluster: ClusterConfig {
            cost: Arc::new(CostModel::zero()),
            ..ClusterConfig::default()
        },
        cache_capacity: 128,
        trace_sample: 0.0,
        ..H2Config::default()
    }));
    let mut ctx = OpCtx::for_test();
    fs.create_account(&mut ctx, "team").unwrap();

    std::thread::scope(|scope| {
        for t in 0..4 {
            let fs = fs.clone();
            scope.spawn(move || {
                let mut ctx = OpCtx::for_test();
                for round in 0..10 {
                    let dir = p(&format!("/churn-t{t}-r{round}"));
                    fs.mkdir(&mut ctx, "team", &dir).unwrap();
                    fs.write(
                        &mut ctx,
                        "team",
                        &dir.child("payload").unwrap(),
                        FileContent::Simulated(32),
                    )
                    .unwrap();
                    if round % 2 == 0 {
                        fs.rmdir(&mut ctx, "team", &dir).unwrap();
                    }
                }
            });
        }
        {
            let fs = fs.clone();
            scope.spawn(move || {
                let mut ctx = OpCtx::for_test();
                for _ in 0..5 {
                    // GC with an old horizon: concurrent-safe grace window.
                    let _ = h2cloud::gc::collect(
                        &fs,
                        &mut ctx,
                        "team",
                        h2util::Timestamp::new(1, 0, h2util::NodeId(0)),
                    );
                    std::thread::yield_now();
                }
            });
        }
    });
    fs.quiesce();

    let mut ctx = OpCtx::for_test();
    let survivors = fs.list(&mut ctx, "team", &p("/")).unwrap();
    // Odd rounds survive: 5 per thread × 4 threads.
    assert_eq!(survivors.len(), 20, "{survivors:?}");
    for dir in &survivors {
        let listing = fs.list(&mut ctx, "team", &p(&format!("/{dir}"))).unwrap();
        assert_eq!(listing, vec!["payload".to_string()], "/{dir}");
    }
    let report = fsck(&fs, &mut ctx, "team").unwrap();
    assert!(report.is_clean(), "{:?}", report.violations);
}

#[test]
fn eager_contention_ring_fetches_stay_linear() {
    // Regression for the submit_patch contention blowup: under Eager
    // maintenance, every submitter used to run its own merge cycle, and a
    // cycle stalled behind the per-ring merge lock re-fetched the global
    // ring it had already read — N contending writers cost O(N²) ring GETs.
    // With group commit the batch leader merges once per batch and reuses
    // one fetched ring, so the total must stay linear in submissions (a
    // quadratic regression here would be ~30× over the bound).
    const THREADS: usize = 8;
    const PER_THREAD: usize = 8;

    let fs = Arc::new(H2Cloud::new(H2Config {
        middlewares: 1,
        mode: MaintenanceMode::Eager,
        cluster: ClusterConfig {
            cost: Arc::new(CostModel::zero()),
            ..ClusterConfig::default()
        },
        cache_capacity: 0,
        trace_sample: 0.0,
        group_commit: true,
        path_cache: false,
        neg_cache: false,
        hedged_reads: false,
        cas: false,
    }));
    let mut ctx = OpCtx::for_test();
    fs.create_account(&mut ctx, "team").unwrap();

    let mw = fs.layer().mw(0).clone();
    let keys = H2Keys::new("team");
    let ns = NamespaceId::ROOT;
    let before = fs.metrics().counter_value("ring_fetches");

    let barrier = Arc::new(std::sync::Barrier::new(THREADS));
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let mw = mw.clone();
            let keys = keys.clone();
            let barrier = barrier.clone();
            scope.spawn(move || {
                barrier.wait();
                let mut ctx = OpCtx::for_test();
                for i in 0..PER_THREAD {
                    let mut patch = NameRing::new();
                    patch.apply(&format!("c{t}-f{i}"), Tuple::file(mw.tick(), 1));
                    mw.submit_patch(&mut ctx, &keys, ns, patch).unwrap();
                }
            });
        }
    });
    fs.quiesce();

    let submissions = (THREADS * PER_THREAD) as u64;
    let fetches = fs.metrics().counter_value("ring_fetches") - before;
    assert!(
        fetches <= 2 * submissions,
        "{fetches} ring GETs for {submissions} contended submissions — \
         quadratic refetching is back"
    );

    // And nothing was lost along the way.
    let mut ctx = OpCtx::for_test();
    let global = mw.fetch_global_ring(&mut ctx, &keys, ns).unwrap();
    assert_eq!(global.live_len() as u64, submissions);
}
