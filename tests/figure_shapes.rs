//! Shape assertions over the experiment harness: the qualitative claims of
//! the paper's figures must hold in the reproduction — who wins, by what
//! kind of factor, and where the curves bend. (Release-quality absolute
//! numbers come from `cargo run -p h2bench --release --bin figures`.)

use h2bench::{experiments, rtt, systems::SystemKind, table1};

/// Columns in the fig7 table: n, then [MOVE, RENAME] per trio system.
const SWIFT_MOVE: usize = 1;
const H2_MOVE: usize = 3;
const DP_MOVE: usize = 5;

#[test]
fn fig7_swift_grows_h2_and_dp_stay_flat() {
    let t = experiments::fig7(true); // quick: n = 10, 100, 1000
    let rows = t.rows.len();
    let first = 0;
    let last = rows - 1;
    // Swift MOVE grows by ~n (10 → 1000 = two orders of magnitude).
    let swift_growth = t.value(last, SWIFT_MOVE) / t.value(first, SWIFT_MOVE);
    assert!(
        swift_growth > 20.0,
        "Swift MOVE should grow ~linearly, grew only {swift_growth:.1}x"
    );
    // H2 and DP stay flat.
    for (col, name) in [(H2_MOVE, "H2"), (DP_MOVE, "DP")] {
        let growth = t.value(last, col) / t.value(first, col);
        assert!(
            growth < 1.5,
            "{name} MOVE should be O(1), grew {growth:.1}x"
        );
    }
    // At n = 1000, Swift is orders of magnitude slower than H2.
    assert!(
        t.value(last, SWIFT_MOVE) > 10.0 * t.value(last, H2_MOVE),
        "Swift should lose by orders of magnitude at n=1000"
    );
}

#[test]
fn fig8_rmdir_same_shape() {
    let t = experiments::fig8(true);
    let last = t.rows.len() - 1;
    let swift_growth = t.value(last, 1) / t.value(0, 1);
    let h2_growth = t.value(last, 2) / t.value(0, 2);
    assert!(swift_growth > 20.0, "Swift RMDIR growth {swift_growth:.1}x");
    assert!(h2_growth < 1.5, "H2 RMDIR growth {h2_growth:.1}x");
}

#[test]
fn fig9_list_depends_on_m_not_n() {
    let t = experiments::fig9(true);
    let last = t.rows.len() - 1;
    for (col, name) in [(1, "Swift"), (2, "H2"), (3, "DP")] {
        let growth = t.value(last, col) / t.value(0, col);
        assert!(
            growth < 2.0,
            "{name} LIST must not scale with n (m fixed), grew {growth:.1}x"
        );
    }
}

#[test]
fn fig10_list_scales_with_m_and_swift_is_slowest() {
    let t = experiments::fig10(true); // m = 10, 100, 1000
    let last = t.rows.len() - 1;
    // All three grow with m…
    for (col, name) in [(1, "Swift"), (2, "H2"), (3, "DP")] {
        let growth = t.value(last, col) / t.value(0, col);
        assert!(
            growth > 3.0,
            "{name} LIST should grow with m, grew {growth:.1}x"
        );
    }
    // …and Swift is the slowest at m = 1000.
    assert!(
        t.value(last, 1) > t.value(last, 2),
        "Swift not slower than H2"
    );
    assert!(
        t.value(last, 1) > t.value(last, 3),
        "Swift not slower than DP"
    );
    // H2 LIST of 1000 files lands near the paper's 0.35 s (±50%).
    let h2_1000_s = t.value(last, 2) / 1000.0; // value() normalises to ms
    assert!(
        (0.15..0.8).contains(&h2_1000_s),
        "H2 LIST(1000) = {h2_1000_s:.3}s, expected ≈0.35s"
    );
}

#[test]
fn fig11_copy_similar_for_all_and_linear() {
    let t = experiments::fig11(true);
    let last = t.rows.len() - 1;
    for (col, name) in [(1, "Swift"), (2, "H2"), (3, "DP")] {
        let growth = t.value(last, col) / t.value(0, col);
        assert!(
            growth > 10.0,
            "{name} COPY should be O(n), grew {growth:.1}x"
        );
    }
    // Similar magnitudes: within 3x of each other at the largest n.
    let vals = [t.value(last, 1), t.value(last, 2), t.value(last, 3)];
    let (min, max) = (
        vals.iter().cloned().fold(f64::MAX, f64::min),
        vals.iter().cloned().fold(0.0, f64::max),
    );
    assert!(max / min < 3.0, "COPY times too far apart: {vals:?}");
}

#[test]
fn fig12_mkdir_constant_and_ordered() {
    let t = experiments::fig12(true);
    let last = t.rows.len() - 1;
    for (col, name) in [(1, "Swift"), (2, "H2"), (3, "DP")] {
        let growth = t.value(last, col) / t.value(0, col);
        assert!(
            growth < 1.3,
            "{name} MKDIR should be constant, grew {growth:.1}x"
        );
    }
    // Swift fastest; H2 and DP in the 100–260 ms band.
    assert!(t.value(0, 1) < t.value(0, 2) && t.value(0, 1) < t.value(0, 3));
    for col in [2, 3] {
        let v = t.value(0, col);
        assert!((90.0..260.0).contains(&v), "MKDIR {v:.0}ms outside band");
    }
}

#[test]
fn fig13_access_swift_flat_h2_linear_in_d() {
    let t = experiments::fig13(true); // d = 1, 4, 8
    let last = t.rows.len() - 1;
    let swift_growth = t.value(last, 1) / t.value(0, 1);
    assert!(
        swift_growth < 1.2,
        "Swift access should be flat, grew {swift_growth:.1}x"
    );
    let h2_growth = t.value(last, 2) / t.value(0, 2);
    assert!(
        h2_growth > 4.0,
        "H2 access should grow ~linearly with d (1→8), grew {h2_growth:.1}x"
    );
    // Swift ≈ 10 ms; H2 at d = 4 near the paper's 61 ms.
    let swift = t.value(0, 1);
    assert!(
        (6.0..16.0).contains(&swift),
        "Swift access {swift:.1}ms, expected ≈10ms"
    );
    let h2_d4 = experiments::h2_access_ms_at_depth(4);
    assert!(
        (40.0..85.0).contains(&h2_d4),
        "H2 access at d=4 {h2_d4:.1}ms, expected ≈61ms"
    );
}

#[test]
fn fig14_15_h2_more_objects_but_negligible_bytes() {
    let t = experiments::fig14_15(true);
    // Row 0: objects — H2 > Swift.
    let swift_objects = t.value(0, 1);
    let h2_objects = t.value(0, 2);
    assert!(h2_objects > swift_objects, "H2 should store more objects");
    // Byte overhead under 2%.
    let overhead_pct = t.value(1, 3);
    assert!(
        overhead_pct.abs() < 2.0,
        "byte overhead should be negligible, got {overhead_pct}%"
    );
    // And no separate index rows for H2 (row 2, col 2).
    assert_eq!(t.rows[2][2], "0");
}

#[test]
fn rtt_alpha_matches_paper_bands() {
    let t = rtt::rtt_table();
    // Directory ops for H2 (col 2): α stays below ~1 (operation dominates).
    for row in 0..4 {
        let alpha = t.value(row, 2);
        assert!(
            alpha < 1.0,
            "H2 {} α = {alpha} — directory op should dominate RTT",
            t.rows[row][0]
        );
    }
    // File access: Swift α ≈ 5–7 at any depth; H2 α falls monotonically
    // with depth; Dropbox α ≈ 0.5.
    let swift_alpha = t.value(4, 1);
    assert!((3.0..9.0).contains(&swift_alpha), "Swift α {swift_alpha}");
    let h2_shallow = t.value(4, 2);
    let h2_deep = t.value(7, 2);
    assert!(h2_shallow > 2.0, "H2 shallow α {h2_shallow}");
    assert!(h2_deep < 0.5, "H2 deep α {h2_deep}");
    let dp_alpha = t.value(4, 3);
    assert!((0.2..1.2).contains(&dp_alpha), "DP α {dp_alpha}");
}

#[test]
fn table1_h2_row_matches_paper() {
    let t = table1::table1(&[SystemKind::H2Cloud, SystemKind::SwiftDb]);
    let h2 = &t.rows[0];
    // Columns: System, FA meas, FA paper, MKDIR meas, …
    assert!(h2[1].starts_with("O(x)"), "H2 FileAccess: {}", h2[1]); // O(d)
    assert!(h2[3].starts_with("O(1)"), "H2 MKDIR: {}", h2[3]);
    assert!(h2[5].starts_with("O(1)"), "H2 RMDIR: {}", h2[5]);
    assert!(h2[7].starts_with("O(1)"), "H2 MOVE: {}", h2[7]);
    assert!(h2[9].starts_with("O(x)"), "H2 LIST: {}", h2[9]); // O(m)
    assert!(h2[11].starts_with("O(x)"), "H2 COPY: {}", h2[11]); // O(n)
    let swift = &t.rows[1];
    assert!(
        swift[1].starts_with("O(1)"),
        "Swift FileAccess: {}",
        swift[1]
    );
    assert!(swift[5].starts_with("O(x)"), "Swift RMDIR: {}", swift[5]);
    assert!(swift[7].starts_with("O(x)"), "Swift MOVE: {}", swift[7]);
}
