//! Eventual consistency end to end: Swift's asynchronous container
//! updates (the behaviour §3.3.1 cites as the reason H2 chose an
//! asynchronous protocol too) observed through the filesystem interface.

use h2baselines::SwiftFs;
use h2fsapi::{CloudFs, FileContent, FsPath};
use h2util::OpCtx;
use swiftsim::{Cluster, ClusterConfig};

fn p(s: &str) -> FsPath {
    FsPath::parse(s).unwrap()
}

#[test]
fn swift_listings_lag_object_writes_until_quiesce() {
    let cluster = Cluster::new(ClusterConfig::tiny());
    let fs = SwiftFs::new(cluster.clone(), true);
    let mut ctx = OpCtx::for_test();
    fs.create_account(&mut ctx, "u").unwrap();
    fs.mkdir(&mut ctx, "u", &p("/d")).unwrap();
    fs.quiesce();

    cluster.set_async_index(true);
    for i in 0..5 {
        fs.write(
            &mut ctx,
            "u",
            &p(&format!("/d/f{i}")),
            FileContent::from_str("x"),
        )
        .unwrap();
    }
    // Objects are durably written and directly readable…
    for i in 0..5 {
        assert!(fs.read(&mut ctx, "u", &p(&format!("/d/f{i}"))).is_ok());
    }
    // …but the listing (backed by the container DB) hasn't caught up.
    assert!(
        fs.list(&mut ctx, "u", &p("/d")).unwrap().is_empty(),
        "listing should lag under async container updates"
    );
    // The container updater runs → the view converges.
    fs.quiesce();
    assert_eq!(fs.list(&mut ctx, "u", &p("/d")).unwrap().len(), 5);
}

#[test]
fn swift_directory_sweeps_see_only_indexed_state() {
    // RMDIR enumerates via the container DB: under async updates it only
    // removes what the index knows — the lagging remainder shows up after
    // the updater runs. (H2Cloud's NameRing patches sidestep this class of
    // anomaly: its rings ARE the directory state.)
    let cluster = Cluster::new(ClusterConfig::tiny());
    let fs = SwiftFs::new(cluster.clone(), true);
    let mut ctx = OpCtx::for_test();
    fs.create_account(&mut ctx, "u").unwrap();
    fs.mkdir(&mut ctx, "u", &p("/d")).unwrap();
    fs.write(&mut ctx, "u", &p("/d/early"), FileContent::from_str("x"))
        .unwrap();
    fs.quiesce();

    cluster.set_async_index(true);
    fs.write(&mut ctx, "u", &p("/d/late"), FileContent::from_str("y"))
        .unwrap();
    // Sweep the directory while "late" is not yet indexed.
    fs.rmdir(&mut ctx, "u", &p("/d")).unwrap();
    fs.quiesce();
    // The anomaly Swift operators know well: the un-indexed object
    // survived the sweep (it was invisible to the enumeration).
    assert!(
        fs.read(&mut ctx, "u", &p("/d/late")).is_ok(),
        "expected the lagging object to survive the sweep"
    );
    assert!(fs.read(&mut ctx, "u", &p("/d/early")).is_err());
}
