//! Multi-middleware convergence: the asynchronous NameRing maintenance
//! protocol (§3.3) under concurrent writers, gossip faults, and real
//! threads — every middleware must end with the same filesystem view.

use std::sync::Arc;

use h2cloud::layer::GossipFaults;
use h2cloud::{H2Cloud, H2Config, MaintenanceMode};
use h2fsapi::{CloudFs, FileContent, FsPath};
use h2util::OpCtx;
use swiftsim::ClusterConfig;

fn p(s: &str) -> FsPath {
    FsPath::parse(s).unwrap()
}

fn h2(middlewares: usize) -> H2Cloud {
    H2Cloud::new(H2Config {
        middlewares,
        mode: MaintenanceMode::Deferred,
        cluster: ClusterConfig {
            cost: std::sync::Arc::new(h2util::CostModel::zero()),
            ..ClusterConfig::default()
        },
        // These tests read through specific middlewares (`via`) after lossy
        // gossip and rely on read-through-global freshness — cache off.
        cache_capacity: 0,
        trace_sample: 0.0,
        ..H2Config::default()
    })
}

fn listing_on(fs: &H2Cloud, mw: usize, dir: &FsPath) -> Vec<String> {
    let mut ctx = OpCtx::for_test();
    fs.via(mw).list(&mut ctx, "team", dir).unwrap()
}

#[test]
fn concurrent_updates_to_one_directory_converge() {
    let fs = h2(4);
    let mut ctx = OpCtx::for_test();
    fs.create_account(&mut ctx, "team").unwrap();
    fs.mkdir(&mut ctx, "team", &p("/shared")).unwrap();
    fs.quiesce();
    // Interleave writes from all four middlewares before any merging.
    for round in 0..5 {
        for mw in 0..4 {
            let mut ctx = OpCtx::for_test();
            fs.via(mw)
                .write(
                    &mut ctx,
                    "team",
                    &p(&format!("/shared/r{round}-m{mw}")),
                    FileContent::Simulated(100),
                )
                .unwrap();
        }
    }
    fs.quiesce();
    let reference = listing_on(&fs, 0, &p("/shared"));
    assert_eq!(reference.len(), 20);
    for mw in 1..4 {
        assert_eq!(
            listing_on(&fs, mw, &p("/shared")),
            reference,
            "mw {mw} diverged"
        );
    }
}

#[test]
fn create_delete_races_resolve_by_timestamp() {
    let fs = h2(2);
    let mut ctx = OpCtx::for_test();
    fs.create_account(&mut ctx, "team").unwrap();
    fs.mkdir(&mut ctx, "team", &p("/d")).unwrap();
    fs.quiesce();
    // mw0 creates, both merge, then mw1 deletes and mw0 recreates —
    // delivery order of the final two is scrambled by the pump, but the
    // newer recreate must win deterministically.
    let mut c0 = OpCtx::for_test();
    fs.via(0)
        .write(
            &mut c0,
            "team",
            &p("/d/contested"),
            FileContent::from_str("v1"),
        )
        .unwrap();
    fs.quiesce();
    let mut c1 = OpCtx::for_test();
    fs.via(1)
        .delete_file(&mut c1, "team", &p("/d/contested"))
        .unwrap();
    let mut c0 = OpCtx::for_test();
    // mw0 has not yet heard the delete (it's unmerged on mw1)...
    fs.via(0)
        .write(
            &mut c0,
            "team",
            &p("/d/contested"),
            FileContent::from_str("v2"),
        )
        .unwrap();
    fs.quiesce();
    // Both views agree; hybrid timestamps give a total order. (Which write
    // wins depends on clock interleaving; views must simply agree.)
    let a = listing_on(&fs, 0, &p("/d"));
    let b = listing_on(&fs, 1, &p("/d"));
    assert_eq!(a, b);
}

#[test]
fn gossip_faults_do_not_prevent_convergence() {
    let fs = h2(4);
    let mut ctx = OpCtx::for_test();
    fs.create_account(&mut ctx, "team").unwrap();
    fs.mkdir(&mut ctx, "team", &p("/lossy")).unwrap();
    fs.layer().pump().unwrap();
    for round in 0..4 {
        for mw in 0..4 {
            let mut ctx = OpCtx::for_test();
            fs.via(mw)
                .write(
                    &mut ctx,
                    "team",
                    &p(&format!("/lossy/r{round}-m{mw}")),
                    FileContent::Simulated(10),
                )
                .unwrap();
        }
        // Drop a third of gossip, duplicate a quarter.
        fs.layer()
            .pump_with_faults(GossipFaults {
                drop_every: 3,
                duplicate_every: 4,
            })
            .unwrap();
    }
    // A final clean pump reconciles whatever the losses left behind.
    fs.layer().pump().unwrap();
    let reference = listing_on(&fs, 0, &p("/lossy"));
    assert_eq!(reference.len(), 16);
    for mw in 1..4 {
        assert_eq!(listing_on(&fs, mw, &p("/lossy")), reference);
    }
}

#[test]
fn threaded_writers_with_threaded_gossip_converge() {
    let fs = Arc::new(h2(3));
    let mut ctx = OpCtx::for_test();
    fs.create_account(&mut ctx, "team").unwrap();
    fs.mkdir(&mut ctx, "team", &p("/hot")).unwrap();
    fs.quiesce();
    let gossip = fs.layer().run_threaded();
    std::thread::scope(|scope| {
        for mw in 0..3 {
            let fs = fs.clone();
            scope.spawn(move || {
                let view = fs.via(mw);
                for i in 0..20 {
                    let mut ctx = OpCtx::for_test();
                    view.write(
                        &mut ctx,
                        "team",
                        &p(&format!("/hot/t{mw}-{i:02}")),
                        FileContent::Simulated(64),
                    )
                    .unwrap();
                }
            });
        }
    });
    // All writers are done. Stop the threaded fabric (joins the gossip
    // threads, so every in-flight inbox application has finished) and
    // settle the remainder with the deterministic pump. The threaded phase
    // exercised concurrent gossip under real contention; final convergence
    // must not depend on how the scheduler treated those threads — on a
    // loaded machine they can be starved for minutes, which is exactly the
    // wall-clock flake the old 120 s polling deadline papered over.
    gossip.stop();
    fs.layer().pump().unwrap();
    // Convergence is now deterministic; the deadline is a tight safety net.
    let deadline = h2util::clock::wall_now() + std::time::Duration::from_secs(30);
    loop {
        let views: Vec<usize> = (0..3)
            .map(|mw| listing_on(&fs, mw, &p("/hot")).len())
            .collect();
        if views.iter().all(|&v| v == 60) {
            break;
        }
        assert!(
            h2util::clock::wall_now() < deadline,
            "no convergence; views {views:?}"
        );
        h2util::clock::wall_sleep(std::time::Duration::from_millis(10));
    }
    // And the contents agree everywhere.
    let reference = listing_on(&fs, 0, &p("/hot"));
    for mw in 1..3 {
        assert_eq!(listing_on(&fs, mw, &p("/hot")), reference);
    }
}

#[test]
fn gc_compaction_is_not_resurrected_by_peer_local_rings() {
    // Regression for a tombstone-resurrection hazard: GC compacts a
    // tombstone out of the global ring, but a peer middleware's *local*
    // ring still holds it. That peer's next merge cycle folds its local
    // overlay into the global object — before the fix, the reclaimed
    // tombstone re-entered the ring and GC had to compact it all over
    // again (and a recreate racing that window could be shadowed).
    use h2cloud::H2Keys;
    use h2util::{NamespaceId, NodeId, Timestamp};
    let far_future = Timestamp::new(u64::MAX, 0, NodeId(0));
    let fs = h2(2);
    let mut ctx = OpCtx::for_test();
    fs.create_account(&mut ctx, "team").unwrap();
    fs.via(0)
        .write(&mut ctx, "team", &p("/zombie"), FileContent::from_str("z"))
        .unwrap();
    fs.quiesce(); // both middlewares now hold the tuple locally
    fs.via(0)
        .delete_file(&mut ctx, "team", &p("/zombie"))
        .unwrap();
    fs.quiesce(); // ... and now the tombstone
    let report = h2cloud::gc::collect(&fs, &mut ctx, "team", far_future).unwrap();
    assert!(report.tuples_compacted >= 1, "{report:?}");
    // mw1 touches the same ring and merges. Its stale local tombstone must
    // NOT rejoin the global object.
    let mut c1 = OpCtx::for_test();
    fs.via(1)
        .write(&mut c1, "team", &p("/fresh"), FileContent::from_str("f"))
        .unwrap();
    fs.quiesce();
    let keys = H2Keys::new("team");
    let mut c = OpCtx::for_test();
    let global = fs
        .layer()
        .mw(0)
        .fetch_global_ring(&mut c, &keys, NamespaceId::ROOT)
        .unwrap();
    assert!(
        global.get_raw("zombie").is_none(),
        "compacted tombstone resurrected into the global ring"
    );
    // A second pass finds nothing to re-reclaim, and views agree.
    let second = h2cloud::gc::collect(&fs, &mut ctx, "team", far_future).unwrap();
    assert_eq!(second.tuples_compacted, 0, "{second:?}");
    assert_eq!(listing_on(&fs, 0, &p("/")), vec!["fresh"]);
    assert_eq!(listing_on(&fs, 0, &p("/")), listing_on(&fs, 1, &p("/")));
}

#[test]
fn deferred_mode_reads_your_own_writes_before_merge() {
    let fs = h2(2);
    let mut ctx = OpCtx::for_test();
    fs.create_account(&mut ctx, "team").unwrap();
    // Written through mw0 and immediately visible there — before any
    // merge/gossip (the File Descriptor Cache overlay).
    let mut c0 = OpCtx::for_test();
    fs.via(0)
        .write(&mut c0, "team", &p("/ryw"), FileContent::from_str("mine"))
        .unwrap();
    assert_eq!(
        fs.via(0).read(&mut c0, "team", &p("/ryw")).unwrap(),
        FileContent::from_str("mine")
    );
    // mw1 does not see it yet (eventual consistency)…
    let mut c1 = OpCtx::for_test();
    assert!(fs.via(1).read(&mut c1, "team", &p("/ryw")).is_err());
    // …until maintenance runs.
    fs.quiesce();
    assert!(fs.via(1).read(&mut c1, "team", &p("/ryw")).is_ok());
}
