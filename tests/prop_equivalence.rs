//! Property-based adversarial equivalence: *arbitrary* operation sequences
//! (mostly invalid!) must produce identical outcomes on the reference
//! model, H2Cloud and Swift — and H2Cloud's on-cloud representation must
//! pass fsck afterwards no matter what was thrown at it.

use proptest::prelude::*;

use h2baselines::SwiftFs;
use h2cloud::check::fsck;
use h2cloud::layer::GossipFaults;
use h2cloud::{H2Cloud, H2Config, MaintenanceMode};
use h2fsapi::{CloudFs, FsPath};
use h2util::OpCtx;
use h2workload::{ModelFs, Op, Trace};
use swiftsim::{Cluster, ClusterConfig};

/// Small path universe: names from a 4-letter alphabet, depth ≤ 3 — dense
/// enough that random ops frequently collide, alias and conflict.
fn arb_path() -> impl Strategy<Value = FsPath> {
    prop::collection::vec(prop::sample::select(vec!["a", "b", "c", "d"]), 0..4)
        .prop_map(|parts| FsPath::from_components(parts).expect("letters are valid names"))
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        arb_path().prop_map(Op::Mkdir),
        arb_path().prop_map(Op::Rmdir),
        (arb_path(), 0u64..10_000).prop_map(|(p, s)| Op::Write(p, s)),
        arb_path().prop_map(Op::Read),
        arb_path().prop_map(Op::Delete),
        (arb_path(), arb_path()).prop_map(|(a, b)| Op::Mv(a, b)),
        (arb_path(), arb_path()).prop_map(|(a, b)| Op::Copy(a, b)),
        arb_path().prop_map(Op::List),
        arb_path().prop_map(Op::ListDetailed),
        arb_path().prop_map(Op::Stat),
    ]
}

/// Multi-middleware Deferred-mode H2Cloud with the given NameRing cache
/// capacity and trace sampling rate — everything else identical, so any
/// observable difference between two instances is that knob's fault.
fn h2_deferred(cache_capacity: usize, trace_sample: f64) -> H2Cloud {
    H2Cloud::new(H2Config {
        middlewares: 3,
        mode: MaintenanceMode::Deferred,
        cluster: ClusterConfig::tiny(),
        cache_capacity,
        trace_sample,
        ..H2Config::default()
    })
}

/// Multi-middleware Deferred-mode H2Cloud differing only in the
/// group-commit knob (cache and tracing off).
fn h2_deferred_commit(group_commit: bool) -> H2Cloud {
    H2Cloud::new(H2Config {
        middlewares: 3,
        mode: MaintenanceMode::Deferred,
        cluster: ClusterConfig::tiny(),
        cache_capacity: 0,
        trace_sample: 0.0,
        group_commit,
        path_cache: false,
        neg_cache: false,
        hedged_reads: false,
        cas: false,
    })
}

/// Multi-middleware Deferred-mode H2Cloud differing only in the read-path
/// knobs (full-path cache, negative cache, hedged reads), with a ring/path
/// cache sized far beyond the proptest path universe so eviction never
/// enters the picture — the equivalence argument is about invalidation,
/// not capacity.
fn h2_deferred_readopt(on: bool) -> H2Cloud {
    H2Cloud::new(H2Config {
        middlewares: 3,
        mode: MaintenanceMode::Deferred,
        cluster: ClusterConfig::tiny(),
        cache_capacity: 512,
        trace_sample: 0.0,
        group_commit: false,
        path_cache: on,
        neg_cache: on,
        hedged_reads: on,
        cas: false,
    })
}

/// Multi-middleware Deferred-mode H2Cloud differing only in the CAS
/// content-plane knob: one chunks every file into content-addressed,
/// refcounted blocks, the other stores whole content objects. Storage
/// layout is the one thing a filesystem client must never observe.
fn h2_deferred_cas(cas: bool) -> H2Cloud {
    H2Cloud::new(H2Config {
        middlewares: 3,
        mode: MaintenanceMode::Deferred,
        cluster: ClusterConfig::tiny(),
        cache_capacity: 0,
        trace_sample: 0.0,
        group_commit: false,
        path_cache: false,
        neg_cache: false,
        hedged_reads: false,
        cas,
    })
}

/// The base op universe plus the content-churn ops the CAS plane exists
/// for: overwrites, growing appends and shared-content uploads. Sizes span
/// sub-chunk to multi-chunk so both single-leaf and branch-bearing trees
/// come up.
fn arb_op_cas() -> impl Strategy<Value = Op> {
    // The shim's `prop_oneof!` picks uniformly, so the base universe is
    // listed four times to keep content churn at ~3/7 of the mix.
    prop_oneof![
        arb_op(),
        arb_op(),
        arb_op(),
        arb_op(),
        (arb_path(), 0u64..3_000_000).prop_map(|(p, s)| Op::Overwrite(p, s)),
        (arb_path(), 1u64..3_000_000).prop_map(|(p, s)| Op::Append(p, s)),
        (arb_path(), 0u64..4, 1u64..2_000_000).prop_map(|(p, seed, s)| Op::WriteShared(p, s, seed)),
    ]
}

/// Flatten the whole tree (paths, kinds, file sizes) into a sorted,
/// comparable snapshot.
fn tree_snapshot(fs: &dyn CloudFs, account: &str) -> Vec<String> {
    let mut ctx = OpCtx::for_test();
    let mut out = Vec::new();
    let mut stack = vec![FsPath::root()];
    while let Some(dir) = stack.pop() {
        let mut entries = fs
            .list_detailed(&mut ctx, account, &dir)
            .unwrap_or_else(|e| panic!("LIST {dir} failed: {e}"));
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        for e in entries {
            if e.kind == h2fsapi::EntryKind::Directory {
                out.push(format!("{dir} {} dir", e.name));
                stack.push(dir.child(&e.name).expect("valid name"));
            } else {
                out.push(format!("{dir} {} file {}", e.name, e.size));
            }
        }
    }
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_op_sequences_agree_and_leave_h2_consistent(
        ops in prop::collection::vec(arb_op(), 1..60)
    ) {
        let h2 = H2Cloud::new(H2Config::for_test());
        let swift = SwiftFs::new(Cluster::new(ClusterConfig::tiny()), true);
        let mut ctx = OpCtx::for_test();
        h2.create_account(&mut ctx, "u").unwrap();
        swift.create_account(&mut ctx, "u").unwrap();
        let mut model = ModelFs::new();

        for op in &ops {
            let want = Trace::apply_model(&mut model, op);
            for (fs, label) in [(&h2 as &dyn CloudFs, "h2"), (&swift, "swift")] {
                let got = Trace::apply_fs(fs, &mut ctx, "u", op);
                match (&want, &got) {
                    (Ok(()), Ok(())) => {}
                    (Err(e), Err(g)) => prop_assert_eq!(
                        e.class(), g.class(),
                        "{}: {:?}: {} vs {}", label, op, e, g
                    ),
                    _ => prop_assert!(
                        false,
                        "{}: {:?} diverged: model={:?} fs={:?}", label, op, want, got
                    ),
                }
            }
        }

        // Final trees agree with the model.
        let mut want_root = model.list(&FsPath::root()).unwrap();
        want_root.sort();
        for (fs, label) in [(&h2 as &dyn CloudFs, "h2"), (&swift, "swift")] {
            let mut got = fs.list(&mut ctx, "u", &FsPath::root()).unwrap();
            got.sort();
            prop_assert_eq!(&got, &want_root, "{} final root listing", label);
        }

        // However hostile the sequence, H2's representation is consistent.
        let report = fsck(&h2, &mut ctx, "u").unwrap();
        prop_assert!(report.is_clean(), "fsck violations: {:?}", report.violations);
    }

    #[test]
    fn namering_cache_is_observably_transparent(
        ops in prop::collection::vec(arb_op(), 1..60)
    ) {
        // Same random sequence against a cache-on and a cache-off H2Cloud —
        // three middlewares, Deferred maintenance, gossip pumped with drops
        // and duplicates mid-sequence. Clients go through the sticky
        // `CloudFs` routing (one middleware per account), which is exactly
        // the regime where the per-middleware cache must be invisible:
        // every outcome, error class and final tree must match the
        // uncached instance's.
        let cached = h2_deferred(64, 0.0);
        let plain = h2_deferred(0, 0.0);
        let mut ctx = OpCtx::for_test();
        cached.create_account(&mut ctx, "u").unwrap();
        plain.create_account(&mut ctx, "u").unwrap();

        for (i, op) in ops.iter().enumerate() {
            let with_cache = Trace::apply_fs(&cached, &mut ctx, "u", op);
            let without = Trace::apply_fs(&plain, &mut ctx, "u", op);
            match (&with_cache, &without) {
                (Ok(()), Ok(())) => {}
                (Err(a), Err(b)) => prop_assert_eq!(
                    a.class(), b.class(),
                    "{:?}: cached={} plain={}", op, a, b
                ),
                _ => prop_assert!(
                    false,
                    "{:?} diverged: cached={:?} plain={:?}", op, with_cache, without
                ),
            }
            // Periodically run lossy gossip on both instances: a third of
            // notifications dropped, a quarter duplicated.
            if i % 3 == 2 {
                for fs in [&cached, &plain] {
                    fs.layer()
                        .pump_with_faults(GossipFaults {
                            drop_every: 3,
                            duplicate_every: 4,
                        })
                        .unwrap();
                }
            }
        }

        // Drain maintenance on both; observable state must be identical.
        cached.quiesce();
        plain.quiesce();
        prop_assert_eq!(
            tree_snapshot(&cached, "u"),
            tree_snapshot(&plain, "u"),
            "cache changed the observable filesystem"
        );
        // And the cached instance's on-cloud representation is consistent.
        let report = fsck(&cached, &mut ctx, "u").unwrap();
        prop_assert!(report.is_clean(), "fsck violations: {:?}", report.violations);
    }

    #[test]
    fn group_commit_is_observably_transparent(
        ops in prop::collection::vec(arb_op(), 1..60)
    ) {
        // Same random sequence against a group-commit and a direct-submit
        // H2Cloud — three middlewares, Deferred maintenance, gossip pumped
        // with drops and duplicates mid-sequence. Group commit changes HOW
        // patches reach the cloud (one combined object per batch, a
        // contiguous patch-number range) but must not change WHAT any
        // client observes: every ack, error class and final tree must
        // match the direct instance's.
        let grouped = h2_deferred_commit(true);
        let direct = h2_deferred_commit(false);
        let mut ctx = OpCtx::for_test();
        grouped.create_account(&mut ctx, "u").unwrap();
        direct.create_account(&mut ctx, "u").unwrap();

        for (i, op) in ops.iter().enumerate() {
            let with_gc = Trace::apply_fs(&grouped, &mut ctx, "u", op);
            let without = Trace::apply_fs(&direct, &mut ctx, "u", op);
            match (&with_gc, &without) {
                (Ok(()), Ok(())) => {}
                (Err(a), Err(b)) => prop_assert_eq!(
                    a.class(), b.class(),
                    "{:?}: grouped={} direct={}", op, a, b
                ),
                _ => prop_assert!(
                    false,
                    "{:?} diverged: grouped={:?} direct={:?}", op, with_gc, without
                ),
            }
            if i % 3 == 2 {
                for fs in [&grouped, &direct] {
                    fs.layer()
                        .pump_with_faults(GossipFaults {
                            drop_every: 3,
                            duplicate_every: 4,
                        })
                        .unwrap();
                }
            }
        }

        grouped.quiesce();
        direct.quiesce();
        prop_assert_eq!(
            tree_snapshot(&grouped, "u"),
            tree_snapshot(&direct, "u"),
            "group commit changed the observable filesystem"
        );
        let report = fsck(&grouped, &mut ctx, "u").unwrap();
        prop_assert!(report.is_clean(), "fsck violations: {:?}", report.violations);
    }

    #[test]
    fn read_path_caches_are_observably_transparent(
        ops in prop::collection::vec(arb_op(), 1..60)
    ) {
        // Same random sequence against a read-path-optimised (full-path
        // cache + negative cache + hedged reads) and a plain H2Cloud —
        // three middlewares, Deferred maintenance, gossip pumped with
        // drops and duplicates mid-sequence. The caches change how a
        // resolve is *answered*, never what it answers: every outcome,
        // error class and final tree must match the plain instance's,
        // including NotFound results served from the negative cache.
        let opt = h2_deferred_readopt(true);
        let plain = h2_deferred_readopt(false);
        let mut ctx = OpCtx::for_test();
        opt.create_account(&mut ctx, "u").unwrap();
        plain.create_account(&mut ctx, "u").unwrap();

        for (i, op) in ops.iter().enumerate() {
            let with_opt = Trace::apply_fs(&opt, &mut ctx, "u", op);
            let without = Trace::apply_fs(&plain, &mut ctx, "u", op);
            match (&with_opt, &without) {
                (Ok(()), Ok(())) => {}
                (Err(a), Err(b)) => prop_assert_eq!(
                    a.class(), b.class(),
                    "{:?}: optimised={} plain={}", op, a, b
                ),
                _ => prop_assert!(
                    false,
                    "{:?} diverged: optimised={:?} plain={:?}", op, with_opt, without
                ),
            }
            if i % 3 == 2 {
                for fs in [&opt, &plain] {
                    fs.layer()
                        .pump_with_faults(GossipFaults {
                            drop_every: 3,
                            duplicate_every: 4,
                        })
                        .unwrap();
                }
            }
        }

        opt.quiesce();
        plain.quiesce();
        prop_assert_eq!(
            tree_snapshot(&opt, "u"),
            tree_snapshot(&plain, "u"),
            "read-path caches changed the observable filesystem"
        );
        let report = fsck(&opt, &mut ctx, "u").unwrap();
        prop_assert!(report.is_clean(), "fsck violations: {:?}", report.violations);
    }

    #[test]
    fn cas_plane_is_observably_transparent(
        ops in prop::collection::vec(arb_op_cas(), 1..60)
    ) {
        // Same random sequence — including overwrites, appends and
        // shared-content uploads — against a CAS-chunking and a
        // whole-object H2Cloud, three middlewares, Deferred maintenance,
        // gossip pumped with drops and duplicates mid-sequence. The CAS
        // plane rearranges how bytes live in the cloud (chunked,
        // deduplicated, refcounted) but must not change anything a client
        // can observe: every outcome, error class and final tree must
        // match the whole-object instance's.
        let cas = h2_deferred_cas(true);
        let plain = h2_deferred_cas(false);
        let mut ctx = OpCtx::for_test();
        cas.create_account(&mut ctx, "u").unwrap();
        plain.create_account(&mut ctx, "u").unwrap();

        for (i, op) in ops.iter().enumerate() {
            let with_cas = Trace::apply_fs(&cas, &mut ctx, "u", op);
            let without = Trace::apply_fs(&plain, &mut ctx, "u", op);
            match (&with_cas, &without) {
                (Ok(()), Ok(())) => {}
                (Err(a), Err(b)) => prop_assert_eq!(
                    a.class(), b.class(),
                    "{:?}: cas={} plain={}", op, a, b
                ),
                _ => prop_assert!(
                    false,
                    "{:?} diverged: cas={:?} plain={:?}", op, with_cas, without
                ),
            }
            if i % 3 == 2 {
                for fs in [&cas, &plain] {
                    fs.layer()
                        .pump_with_faults(GossipFaults {
                            drop_every: 3,
                            duplicate_every: 4,
                        })
                        .unwrap();
                }
            }
        }

        cas.quiesce();
        plain.quiesce();
        prop_assert_eq!(
            tree_snapshot(&cas, "u"),
            tree_snapshot(&plain, "u"),
            "the CAS plane changed the observable filesystem"
        );
        let report = fsck(&cas, &mut ctx, "u").unwrap();
        prop_assert!(report.is_clean(), "fsck violations: {:?}", report.violations);
    }

    #[test]
    fn tracing_is_observably_transparent(
        ops in prop::collection::vec(arb_op(), 1..60)
    ) {
        // Same random sequence against a trace-everything and a trace-off
        // H2Cloud (both with the NameRing cache on, gossip pumped lossily
        // mid-sequence). Spans observe virtual time but never charge it,
        // so every ack, error class, listing and final tree must be
        // identical — tracing is pure observation.
        let traced = h2_deferred(64, 1.0);
        let silent = h2_deferred(64, 0.0);
        let mut ctx = OpCtx::for_test();
        traced.create_account(&mut ctx, "u").unwrap();
        silent.create_account(&mut ctx, "u").unwrap();

        for (i, op) in ops.iter().enumerate() {
            let with_trace = Trace::apply_fs(&traced, &mut ctx, "u", op);
            let without = Trace::apply_fs(&silent, &mut ctx, "u", op);
            match (&with_trace, &without) {
                (Ok(()), Ok(())) => {}
                (Err(a), Err(b)) => prop_assert_eq!(
                    a.class(), b.class(),
                    "{:?}: traced={} silent={}", op, a, b
                ),
                _ => prop_assert!(
                    false,
                    "{:?} diverged: traced={:?} silent={:?}", op, with_trace, without
                ),
            }
            if i % 3 == 2 {
                for fs in [&traced, &silent] {
                    fs.layer()
                        .pump_with_faults(GossipFaults {
                            drop_every: 3,
                            duplicate_every: 4,
                        })
                        .unwrap();
                }
            }
        }

        traced.quiesce();
        silent.quiesce();
        prop_assert_eq!(
            tree_snapshot(&traced, "u"),
            tree_snapshot(&silent, "u"),
            "tracing changed the observable filesystem"
        );
        // Sampling at 1.0 really did collect something: every client op
        // went through a middleware whose collector kept its root span.
        let collected = traced.recent_traces(usize::MAX);
        prop_assert!(
            !collected.is_empty(),
            "trace_sample = 1.0 collected no traces over {} ops", ops.len()
        );
        let report = fsck(&traced, &mut ctx, "u").unwrap();
        prop_assert!(report.is_clean(), "fsck violations: {:?}", report.violations);
    }

    #[test]
    fn h2_gc_after_arbitrary_ops_preserves_live_tree(
        ops in prop::collection::vec(arb_op(), 1..40)
    ) {
        let h2 = H2Cloud::new(H2Config::for_test());
        let mut ctx = OpCtx::for_test();
        h2.create_account(&mut ctx, "u").unwrap();
        let mut model = ModelFs::new();
        for op in &ops {
            let want = Trace::apply_model(&mut model, op);
            let got = Trace::apply_fs(&h2, &mut ctx, "u", op);
            prop_assert_eq!(want.is_ok(), got.is_ok());
        }
        let before = fsck(&h2, &mut ctx, "u").unwrap();
        h2cloud::gc::collect(
            &h2,
            &mut ctx,
            "u",
            h2util::Timestamp::new(u64::MAX, 0, h2util::NodeId(0)),
        )
        .unwrap();
        let after = fsck(&h2, &mut ctx, "u").unwrap();
        prop_assert!(after.is_clean(), "{:?}", after.violations);
        // GC removes tombstones, never live entries.
        prop_assert_eq!(after.dirs, before.dirs);
        prop_assert_eq!(after.files, before.files);
        prop_assert_eq!(after.tombstones, 0);
        // Every live model file still reads correctly.
        for (path, size) in model.all_files() {
            let st = h2.stat(&mut ctx, "u", &path).unwrap();
            prop_assert_eq!(st.size, size);
        }
    }

    #[test]
    fn mid_workload_rebalance_is_observably_transparent(
        ops in prop::collection::vec(arb_op(), 8..60)
    ) {
        // Same random sequence against a topology-stable instance and one
        // whose ring is rebalanced LIVE mid-sequence: a device is added a
        // third of the way in with the migrator deliberately throttled (a
        // few partitions per client op, so most ops run against a
        // partially-moved ring), and a founding device is drained two
        // thirds of the way in. Placement is the one thing a filesystem
        // client must never observe: every ack, every error class and the
        // final tree must match the stable instance's exactly.
        let moving = h2_deferred(0, 0.0);
        let stable = h2_deferred(0, 0.0);
        let mut ctx = OpCtx::for_test();
        moving.create_account(&mut ctx, "u").unwrap();
        stable.create_account(&mut ctx, "u").unwrap();

        let add_at = ops.len() / 3;
        let drain_at = 2 * ops.len() / 3;
        for (i, op) in ops.iter().enumerate() {
            if i == add_at {
                // Swap the ring but do NOT finish the migration: the next
                // stretch of ops interleaves with pending partitions,
                // exercising dual-apply writes and old-assignment reads.
                moving.cluster().add_node(0, 1.0).unwrap();
            }
            if i == drain_at {
                moving.cluster().migrate_all();
                moving.layer().drain_node(0, 4).unwrap();
            }
            let on_moving = Trace::apply_fs(&moving, &mut ctx, "u", op);
            let on_stable = Trace::apply_fs(&stable, &mut ctx, "u", op);
            match (&on_moving, &on_stable) {
                (Ok(()), Ok(())) => {}
                (Err(a), Err(b)) => prop_assert_eq!(
                    a.class(), b.class(),
                    "{:?}: moving={} stable={}", op, a, b
                ),
                _ => prop_assert!(
                    false,
                    "{:?} diverged: moving={:?} stable={:?}", op, on_moving, on_stable
                ),
            }
            // Trickle the migrator between ops, a few partitions at a time.
            if i > add_at {
                moving.cluster().migrate_step(4);
            }
            if i % 5 == 4 {
                moving.layer().pump().unwrap();
                stable.layer().pump().unwrap();
            }
        }

        // Let movement finish, then settle both instances.
        moving.cluster().migrate_all();
        prop_assert!(
            !moving.cluster().migration_active(),
            "healthy devices only — migration must complete"
        );
        moving.layer().resync().unwrap();
        moving.quiesce();
        stable.quiesce();
        prop_assert_eq!(
            tree_snapshot(&moving, "u"),
            tree_snapshot(&stable, "u"),
            "live rebalance changed the observable filesystem"
        );
        let report = fsck(&moving, &mut ctx, "u").unwrap();
        prop_assert!(report.is_clean(), "fsck violations: {:?}", report.violations);
    }
}

#[test]
fn batched_gossip_apply_loses_nothing_under_5pct_faults() {
    use h2util::faults::{FaultPlan, FaultSpec};

    // Two identical Deferred instances build the same tree through all
    // three middlewares (so convergence genuinely rides on gossip), then
    // run maintenance under 5% transient faults — one applying gossip
    // per-message, the other in batches. Batching must lose nothing: after
    // the faults clear, every middleware on both instances holds the same
    // tree.
    let per_msg = h2_deferred_commit(false);
    let batched = h2_deferred_commit(true);
    let mut ctx = OpCtx::for_test();
    for fs in [&per_msg, &batched] {
        fs.create_account(&mut ctx, "u").unwrap();
        for (i, d) in ["a", "b", "c"].iter().enumerate() {
            let view = fs.via(i);
            let dir = FsPath::parse(&format!("/{d}")).unwrap();
            view.mkdir(&mut ctx, "u", &dir).unwrap();
            for f in 0..4 {
                let file = FsPath::parse(&format!("/{d}/f{f}")).unwrap();
                view.write(&mut ctx, "u", &file, h2fsapi::FileContent::Simulated(64))
                    .unwrap();
            }
        }
    }

    let spec = FaultSpec::errors(0.05);
    for fs in [&per_msg, &batched] {
        fs.cluster()
            .set_fault_plan(Some(FaultPlan::uniform(0xBA7C4ED, spec)));
    }
    // Maintenance under fire: rounds may error out once a message burns
    // its whole retry budget — state is still never lost, so keep going.
    for _ in 0..6 {
        let _ = per_msg.layer().pump();
        let _ = batched.layer().pump_batched();
    }
    for fs in [&per_msg, &batched] {
        fs.cluster().set_fault_plan(None);
    }
    per_msg.layer().pump().unwrap();
    batched.layer().pump_batched().unwrap();

    let want = tree_snapshot(&per_msg, "u");
    assert_eq!(want.len(), 3 + 12, "per-message instance lost writes");
    assert_eq!(
        tree_snapshot(&batched, "u"),
        want,
        "batched apply diverged from per-message apply"
    );
    for i in 0..3 {
        assert_eq!(
            tree_snapshot(&per_msg.via(i), "u"),
            want,
            "per-message middleware {i} diverged"
        );
        assert_eq!(
            tree_snapshot(&batched.via(i), "u"),
            want,
            "batched middleware {i} diverged"
        );
    }
    let report = fsck(&batched, &mut ctx, "u").unwrap();
    assert!(report.is_clean(), "{:?}", report.violations);
}

#[test]
fn read_path_caches_lose_nothing_under_5pct_faults() {
    use h2util::faults::{FaultPlan, FaultSpec};

    // Chaos leg for the read-path caches: an optimised and a plain
    // instance build the same tree through all three middlewares, then run
    // gossip maintenance under 5% transient faults *and* lossy delivery.
    // Once the faults clear, every middleware on both instances must hold
    // the identical tree — a cache that served anything stale past
    // convergence would show up as a diverged snapshot here.
    let opt = h2_deferred_readopt(true);
    let plain = h2_deferred_readopt(false);
    let mut ctx = OpCtx::for_test();
    for fs in [&opt, &plain] {
        fs.create_account(&mut ctx, "u").unwrap();
        for (i, d) in ["a", "b", "c"].iter().enumerate() {
            let view = fs.via(i);
            let dir = FsPath::parse(&format!("/{d}")).unwrap();
            view.mkdir(&mut ctx, "u", &dir).unwrap();
            for f in 0..4 {
                let file = FsPath::parse(&format!("/{d}/f{f}")).unwrap();
                view.write(&mut ctx, "u", &file, h2fsapi::FileContent::Simulated(64))
                    .unwrap();
            }
        }
    }

    let spec = FaultSpec::errors(0.05);
    for fs in [&opt, &plain] {
        fs.cluster()
            .set_fault_plan(Some(FaultPlan::uniform(0xBA7C4ED, spec)));
    }
    for _ in 0..6 {
        let _ = opt.layer().pump_with_faults(GossipFaults {
            drop_every: 3,
            duplicate_every: 4,
        });
        let _ = plain.layer().pump_with_faults(GossipFaults {
            drop_every: 3,
            duplicate_every: 4,
        });
    }
    for fs in [&opt, &plain] {
        fs.cluster().set_fault_plan(None);
    }
    // Convergence point: with the ring cache on, a middleware that lost a
    // gossip message serves its cached ring until the next message for
    // that ring arrives (the documented cache trade-off — true with or
    // without the path cache). The anti-entropy sweep closes exactly that
    // gap: every middleware re-fetches each ring it holds state for, joins
    // its local overlay, and re-floods the merged result — no fresh writes
    // needed to nudge untouched rings back into circulation.
    for fs in [&opt, &plain] {
        fs.layer().resync().unwrap();
    }

    let want = tree_snapshot(&plain, "u");
    assert_eq!(want.len(), 3 + 12, "plain instance lost writes");
    assert_eq!(
        tree_snapshot(&opt, "u"),
        want,
        "read-path caches diverged from the plain instance"
    );
    for i in 0..3 {
        assert_eq!(
            tree_snapshot(&opt.via(i), "u"),
            want,
            "optimised middleware {i} diverged"
        );
        assert_eq!(
            tree_snapshot(&plain.via(i), "u"),
            want,
            "plain middleware {i} diverged"
        );
    }
    // The comparison was not vacuous: the optimised instance really served
    // resolves out of the path cache during the tree walks above.
    assert!(
        opt.metrics().counter_value("path_cache_hits") > 0,
        "path cache never hit — the chaos leg exercised nothing"
    );
    let report = fsck(&opt, &mut ctx, "u").unwrap();
    assert!(report.is_clean(), "{:?}", report.violations);
}

#[test]
fn cas_plane_loses_nothing_under_5pct_faults() {
    use h2util::faults::{FaultPlan, FaultSpec};

    // Chaos leg for the CAS content plane: a chunking and a whole-object
    // instance build the same tree — including deduplicated shared content
    // — through all three middlewares, then run gossip maintenance under
    // 5% transient faults *and* lossy delivery. After the faults clear,
    // every middleware on both instances must hold the identical tree: a
    // lost leaf block, a miscounted refcount or a torn manifest would
    // surface as a diverged snapshot or an fsck violation here.
    let cas = h2_deferred_cas(true);
    let plain = h2_deferred_cas(false);
    let mut ctx = OpCtx::for_test();
    for fs in [&cas, &plain] {
        fs.create_account(&mut ctx, "u").unwrap();
        for (i, d) in ["a", "b", "c"].iter().enumerate() {
            let view = fs.via(i);
            let dir = FsPath::parse(&format!("/{d}")).unwrap();
            view.mkdir(&mut ctx, "u", &dir).unwrap();
            for f in 0..4 {
                let file = FsPath::parse(&format!("/{d}/f{f}")).unwrap();
                // Every middleware uploads the same shared identities, so
                // the CAS instance dedups across all three front doors.
                view.write(
                    &mut ctx,
                    "u",
                    &file,
                    h2fsapi::FileContent::SimulatedShared {
                        size: 700_000 + f * 100_000,
                        seed: f,
                    },
                )
                .unwrap();
            }
        }
    }

    let spec = FaultSpec::errors(0.05);
    for fs in [&cas, &plain] {
        fs.cluster()
            .set_fault_plan(Some(FaultPlan::uniform(0xBA7C4ED, spec)));
    }
    for _ in 0..6 {
        let _ = cas.layer().pump_with_faults(GossipFaults {
            drop_every: 3,
            duplicate_every: 4,
        });
        let _ = plain.layer().pump_with_faults(GossipFaults {
            drop_every: 3,
            duplicate_every: 4,
        });
    }
    for fs in [&cas, &plain] {
        fs.cluster().set_fault_plan(None);
    }
    for fs in [&cas, &plain] {
        fs.layer().resync().unwrap();
    }

    let want = tree_snapshot(&plain, "u");
    assert_eq!(want.len(), 3 + 12, "whole-object instance lost writes");
    assert_eq!(
        tree_snapshot(&cas, "u"),
        want,
        "the CAS plane diverged from the whole-object instance"
    );
    for i in 0..3 {
        assert_eq!(
            tree_snapshot(&cas.via(i), "u"),
            want,
            "CAS middleware {i} diverged"
        );
        assert_eq!(
            tree_snapshot(&plain.via(i), "u"),
            want,
            "whole-object middleware {i} diverged"
        );
    }
    // Not vacuous: the CAS instance really chunked, and really deduplicated
    // the shared identities the three middlewares uploaded.
    assert!(
        cas.cluster().cas_blocks_written_count() > 0,
        "CAS plane never wrote a block"
    );
    assert!(
        cas.cluster().dedup_bytes_saved_count() > 0,
        "shared uploads deduplicated nothing"
    );
    let report = fsck(&cas, &mut ctx, "u").unwrap();
    assert!(report.is_clean(), "{:?}", report.violations);
}

#[test]
fn stale_negative_cannot_hide_acked_file_past_convergence() {
    // The negative cache's one dangerous failure mode: middleware A caches
    // "path missing", the file is then created — through another
    // middleware or through A itself — and A keeps serving NotFound. The
    // epoch fingerprint must kill the negative in both cases.
    let fs = h2_deferred_readopt(true);
    let mut ctx = OpCtx::for_test();
    fs.create_account(&mut ctx, "u").unwrap();
    let a = fs.via(0);
    let b = fs.via(1);

    // Cross-middleware: A proves /a/f absent (negative cached against the
    // root ring's epoch), B creates it, gossip converges, A must see it.
    let file = FsPath::parse("/a/f").unwrap();
    // Three probes: the first walks cold (its negative dies with the ring
    // fetch's own epoch bump — the protocol's deliberate cold-start cost),
    // the second re-walks warm and stores a live negative, the third hits.
    for _ in 0..3 {
        assert!(a.stat(&mut ctx, "u", &file).is_err());
    }
    b.mkdir(&mut ctx, "u", &FsPath::parse("/a").unwrap())
        .unwrap();
    b.write(&mut ctx, "u", &file, h2fsapi::FileContent::Simulated(64))
        .unwrap();
    fs.layer().pump().unwrap();
    let st = a
        .stat(&mut ctx, "u", &file)
        .expect("stale negative outlived convergence");
    assert_eq!(st.size, 64);

    // Same-middleware write-through: no gossip needed — A's own write must
    // invalidate A's own negative immediately (read-your-writes).
    let local = FsPath::parse("/b/g").unwrap();
    assert!(a.stat(&mut ctx, "u", &local).is_err());
    assert!(
        a.stat(&mut ctx, "u", &local).is_err(),
        "repeat hits the negative"
    );
    a.mkdir(&mut ctx, "u", &FsPath::parse("/b").unwrap())
        .unwrap();
    a.write(&mut ctx, "u", &local, h2fsapi::FileContent::Simulated(32))
        .unwrap();
    let st = a
        .stat(&mut ctx, "u", &local)
        .expect("negative survived the middleware's own write");
    assert_eq!(st.size, 32);
    // And the negatives did real work: the misses above were cache hits.
    assert!(
        fs.metrics().counter_value("neg_cache_hits") > 0,
        "negative cache never hit"
    );
}
