//! Shared utilities for the H2Cloud reproduction.
//!
//! This crate hosts the foundational pieces every other crate builds on:
//!
//! * [`error`] — the common [`error::H2Error`] type.
//! * [`hash`] — deterministic 64/128-bit hashing (XXH64) used for ring
//!   placement and content addressing.
//! * [`clock`] — hybrid logical timestamps (Unix millis + logical counter +
//!   node id) that order concurrent NameRing updates deterministically.
//! * [`id`] — namespace UUIDs in the paper's `seq.node.timestamp` form.
//! * [`cost`] — the virtual-time cost model ([`cost::CostModel`],
//!   [`cost::OpCtx`]) that replaces the paper's rack-scale wall-clock
//!   measurements with calibrated, deterministic latency accounting.
//! * [`lockorder`] — rank-carrying [`lockorder::OrderedMutex`] /
//!   [`lockorder::OrderedRwLock`] newtypes that validate the workspace lock
//!   hierarchy at runtime (debug builds / `lock-order-validation` feature)
//!   and recover from poisoning instead of unwrapping.
//! * [`faults`] — deterministic request-level fault injection
//!   ([`faults::FaultPlan`] / [`faults::FaultInjector`]) for the chaos
//!   harness.
//! * [`retry`] — capped-exponential-backoff [`retry::RetryPolicy`] with
//!   deterministic jitter, charging virtual time on the client path and
//!   sleeping through the clock facade on background threads.
//! * [`trace`] — deterministic span tracing ([`trace::TraceCollector`],
//!   chrome-trace export) with per-stage latency breakdown, timed by the
//!   virtual clock in [`cost::OpCtx`].
//! * [`chunker`] — FastCDC-style content-defined chunking for the CAS
//!   content plane (real-byte gear cutter + digest-seeded simulated
//!   schedule).
//! * [`lru`] — a bounded LRU map backing the middleware's NameRing cache.
//! * [`buf`] — reference-counted [`buf::SharedBuf`] payload buffers with
//!   process-wide shallow/deep copy accounting for the content path.
//! * [`rng`] — seeded random-number helpers and the distributions used by the
//!   workload generator.
//! * [`fmt`] — small formatting helpers (byte sizes, durations).

pub mod buf;
pub mod chunker;
pub mod clock;
pub mod cost;
pub mod error;
pub mod faults;
pub mod fmt;
pub mod hash;
pub mod id;
pub mod lockorder;
pub mod lru;
pub mod metrics;
pub mod retry;
pub mod rng;
pub mod trace;

pub use buf::SharedBuf;
pub use clock::{HybridClock, Timestamp};
pub use cost::{BackendCounts, CostModel, OpCtx, PrimKind, RttModel};
pub use error::{H2Error, Result};
pub use faults::{FaultDecision, FaultInjector, FaultPlan, FaultSpec, FaultStats, OpClass};
pub use hash::{hash128, hash64, Digest128};
pub use id::{NamespaceId, NodeId};
pub use lockorder::{lock_or_recover, OrderedMutex, OrderedRwLock};
pub use lru::LruCache;
pub use retry::RetryPolicy;
pub use trace::{RootTrace, Span, TraceCollector};
