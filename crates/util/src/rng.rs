//! Seeded randomness helpers used by the workload generator and benches.
//!
//! Everything in the reproduction is deterministic given a seed; these
//! helpers centralise RNG construction and provide the two distributions the
//! workload generator needs that `rand` does not ship without `rand_distr`:
//! a Zipf sampler (popularity of directories/files) and a bounded log-normal
//! approximation (file sizes spanning sub-KB configs to multi-GB videos).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Construct the workspace-standard RNG from a u64 seed.
pub fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Derive a child seed from a parent seed and a label, so independent
/// components (users, phases) get decorrelated streams reproducibly.
pub fn derive_seed(parent: u64, label: &str) -> u64 {
    crate::hash::hash64_seeded(label.as_bytes(), parent)
}

/// Zipf(s) over ranks `1..=n`, sampled by inversion on a precomputed CDF.
///
/// Used for directory popularity and operation targeting: real filesystem
/// traffic is heavily skewed towards a few hot directories.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler for `n` ranks with exponent `s` (s = 0 is uniform).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Sample a 0-based rank.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).unwrap()) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

/// Approximate log-normal sampler: `exp(N(mu, sigma))`, clamped to
/// `[min, max]`. The normal draw uses the Box–Muller transform.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    pub mu: f64,
    pub sigma: f64,
    pub min: f64,
    pub max: f64,
}

impl LogNormal {
    pub fn new(mu: f64, sigma: f64, min: f64, max: f64) -> Self {
        assert!(min <= max);
        LogNormal {
            mu,
            sigma,
            min,
            max,
        }
    }

    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        // Box–Muller; u1 in (0,1] to avoid ln(0).
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (self.mu + self.sigma * z).exp().clamp(self.min, self.max)
    }
}

/// Pick an index according to explicit weights (workload op mix).
pub fn weighted_pick<R: Rng>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must not all be zero");
    let mut u = rng.gen::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        if u < *w {
            return i;
        }
        u -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = rng(42);
        let mut b = rng(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn derive_seed_decorrelates() {
        let a = derive_seed(1, "users");
        let b = derive_seed(1, "ops");
        let c = derive_seed(2, "users");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, derive_seed(1, "users"));
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let z = Zipf::new(100, 1.0);
        let mut r = rng(7);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            let k = z.sample(&mut r);
            assert!(k < 100);
            counts[k] += 1;
        }
        // Rank 0 should dominate rank 50 heavily under s=1.
        assert!(
            counts[0] > counts[50] * 5,
            "{} vs {}",
            counts[0],
            counts[50]
        );
    }

    #[test]
    fn zipf_s0_is_roughly_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut r = rng(9);
        let mut counts = vec![0usize; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut r)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 5000.0).abs() < 600.0, "count {c}");
        }
    }

    #[test]
    fn lognormal_respects_bounds() {
        let ln = LogNormal::new(10.0, 3.0, 128.0, 4.0e9);
        let mut r = rng(11);
        for _ in 0..10_000 {
            let v = ln.sample(&mut r);
            assert!((128.0..=4.0e9).contains(&v));
        }
    }

    #[test]
    fn weighted_pick_matches_weights() {
        let mut r = rng(3);
        let w = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[weighted_pick(&mut r, &w)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }
}
