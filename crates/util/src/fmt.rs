//! Small human-facing formatting helpers for the figures harness and
//! examples (byte sizes, durations, aligned table cells).

use std::time::Duration;

/// `1536` → `"1.5 KiB"`, `0` → `"0 B"`, etc.
pub fn bytes(n: u64) -> String {
    const UNITS: [&str; 6] = ["B", "KiB", "MiB", "GiB", "TiB", "PiB"];
    if n < 1024 {
        return format!("{n} B");
    }
    let mut v = n as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    if v >= 100.0 {
        format!("{v:.0} {}", UNITS[unit])
    } else {
        format!("{v:.1} {}", UNITS[unit])
    }
}

/// Millisecond rendering with sub-ms precision for small values:
/// `"0.35 ms"`, `"12.4 ms"`, `"3.21 s"`.
pub fn millis(d: Duration) -> String {
    let ms = d.as_secs_f64() * 1e3;
    if ms >= 1000.0 {
        format!("{:.2} s", ms / 1000.0)
    } else if ms >= 100.0 {
        format!("{ms:.0} ms")
    } else if ms >= 1.0 {
        format!("{ms:.1} ms")
    } else {
        format!("{ms:.3} ms")
    }
}

/// Fixed-width right-aligned cell for plain-text tables.
pub fn cell(s: &str, width: usize) -> String {
    format!("{s:>width$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_units() {
        assert_eq!(bytes(0), "0 B");
        assert_eq!(bytes(512), "512 B");
        assert_eq!(bytes(1536), "1.5 KiB");
        assert_eq!(bytes(3 * 1024 * 1024), "3.0 MiB");
        assert_eq!(bytes(250 * 1024 * 1024), "250 MiB");
        assert_eq!(bytes(5 * 1024 * 1024 * 1024), "5.0 GiB");
    }

    #[test]
    fn millis_ranges() {
        assert_eq!(millis(Duration::from_micros(350)), "0.350 ms");
        assert_eq!(millis(Duration::from_millis(12)), "12.0 ms");
        assert_eq!(millis(Duration::from_millis(350)), "350 ms");
        assert_eq!(millis(Duration::from_millis(3210)), "3.21 s");
    }

    #[test]
    fn cell_alignment() {
        assert_eq!(cell("ab", 5), "   ab");
        assert_eq!(cell("abcdef", 3), "abcdef");
    }
}
