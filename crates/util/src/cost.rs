//! Virtual-time cost accounting — the stand-in for the paper's rack.
//!
//! The paper measures "operation time … excluding the round trip time",
//! i.e. how long the storage system itself takes to execute a filesystem
//! operation, on a 9-server rack (1 Gbps LAN, 15k-RPM SAS disks). We cannot
//! reproduce the rack, so every backend primitive charges a calibrated
//! latency to an [`OpCtx`] instead; the accumulated virtual duration plays
//! the role of the measured operation time. Because the *sequence* of
//! primitives is exactly what each design (H2, Swift CH+DB, DP, …) would
//! issue, complexity shapes and crossovers are preserved, and the calibrated
//! constants put magnitudes in the same range the paper reports.
//!
//! Calibration anchors taken from §5.3:
//! * Swift file access ≈ 10 ms (one ring lookup + one small GET);
//! * H2 file access ≈ 15 ms per directory level (≈ 61 ms at the average
//!   depth d = 4);
//! * LISTing 1000 files ≈ 0.35 s (detail fetches fan out in parallel);
//! * COPYing 1000 files ≈ 10 s (≈ 10 ms per copied object);
//! * MKDIR on H2Cloud/Dropbox ≈ 150–200 ms, Swift markedly faster.

use std::time::Duration;

use crate::error::{H2Error, Result};

/// Classes of backend primitives we count (the paper's PUT/GET/DELETE plus
/// the auxiliary operations its baselines rely on). The counts drive the
/// empirical Table 1 reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrimKind {
    /// Object GET.
    Get,
    /// Object PUT.
    Put,
    /// Object DELETE.
    Delete,
    /// Object HEAD (metadata only).
    Head,
    /// Server-side object copy (Swift `X-Copy-From` style).
    Copy,
    /// File-path DB point query (binary search, O(log N)).
    DbQuery,
    /// File-path DB insert/update/delete of one record.
    DbUpdate,
    /// RPC to a metadata/index server (DP, single-index baselines).
    IndexRpc,
}

impl PrimKind {
    pub const ALL: [PrimKind; 8] = [
        PrimKind::Get,
        PrimKind::Put,
        PrimKind::Delete,
        PrimKind::Head,
        PrimKind::Copy,
        PrimKind::DbQuery,
        PrimKind::DbUpdate,
        PrimKind::IndexRpc,
    ];

    pub fn name(self) -> &'static str {
        match self {
            PrimKind::Get => "GET",
            PrimKind::Put => "PUT",
            PrimKind::Delete => "DELETE",
            PrimKind::Head => "HEAD",
            PrimKind::Copy => "COPY",
            PrimKind::DbQuery => "DB-QUERY",
            PrimKind::DbUpdate => "DB-UPDATE",
            PrimKind::IndexRpc => "INDEX-RPC",
        }
    }
}

/// Per-operation counters of backend primitives.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BackendCounts {
    pub gets: u64,
    pub puts: u64,
    pub deletes: u64,
    pub heads: u64,
    pub copies: u64,
    pub db_queries: u64,
    pub db_updates: u64,
    pub index_rpcs: u64,
}

impl BackendCounts {
    pub fn total(&self) -> u64 {
        self.gets
            + self.puts
            + self.deletes
            + self.heads
            + self.copies
            + self.db_queries
            + self.db_updates
            + self.index_rpcs
    }

    pub fn bump(&mut self, kind: PrimKind) {
        match kind {
            PrimKind::Get => self.gets += 1,
            PrimKind::Put => self.puts += 1,
            PrimKind::Delete => self.deletes += 1,
            PrimKind::Head => self.heads += 1,
            PrimKind::Copy => self.copies += 1,
            PrimKind::DbQuery => self.db_queries += 1,
            PrimKind::DbUpdate => self.db_updates += 1,
            PrimKind::IndexRpc => self.index_rpcs += 1,
        }
    }

    pub fn get(&self, kind: PrimKind) -> u64 {
        match kind {
            PrimKind::Get => self.gets,
            PrimKind::Put => self.puts,
            PrimKind::Delete => self.deletes,
            PrimKind::Head => self.heads,
            PrimKind::Copy => self.copies,
            PrimKind::DbQuery => self.db_queries,
            PrimKind::DbUpdate => self.db_updates,
            PrimKind::IndexRpc => self.index_rpcs,
        }
    }

    pub fn add(&mut self, other: &BackendCounts) {
        self.gets += other.gets;
        self.puts += other.puts;
        self.deletes += other.deletes;
        self.heads += other.heads;
        self.copies += other.copies;
        self.db_queries += other.db_queries;
        self.db_updates += other.db_updates;
        self.index_rpcs += other.index_rpcs;
    }
}

/// Latency constants of the simulated rack.
///
/// All values are *service* latencies inside the cloud (the paper excludes
/// client RTT; see [`RttModel`] for the α analysis).
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Fixed per-primitive cost: proxy handling + one LAN round trip +
    /// request parsing.
    pub request_overhead: Duration,
    /// Media read for a small object (metadata-sized).
    pub disk_read: Duration,
    /// Media write for a small object (journal + commit).
    pub disk_write: Duration,
    /// Additional transfer+media time per KiB moved.
    pub per_kib: Duration,
    /// Server-side copy of one object (read+write absorbed on the storage
    /// node, cheaper than GET+PUT through the proxy).
    pub server_copy: Duration,
    /// File-path DB: fixed query cost…
    pub db_base: Duration,
    /// …plus this much per log2(N) step of the binary search.
    pub db_per_log2: Duration,
    /// File-path DB single-record write.
    pub db_update: Duration,
    /// One RPC to a metadata/index server (DP / namenode baselines); index
    /// lookups are memory-resident, so this is cheap.
    pub index_rpc: Duration,
    /// Middleware CPU time per processed child entry (parsing NameRing
    /// tuples, building listings).
    pub per_entry_cpu: Duration,
    /// Middleware processing per lookup level (hashing the decorated
    /// path, locating the tuple, HTTP plumbing inside the H2Middleware).
    pub lookup_cpu: Duration,
    /// Lookup level served from the middleware's parsed-ring cache: a hash
    /// probe on an in-memory map — no ring GET, no parse, no store-side
    /// plumbing. Charged instead of `lookup_cpu` on a cache hit.
    pub cached_lookup_cpu: Duration,
    /// Middleware processing per patch submission or merge cycle (file
    /// descriptor bookkeeping, formatter work, Keystone re-validation) —
    /// the overhead that puts H2Cloud's MKDIR in the paper's 150–200 ms
    /// band while Swift stays in the tens of ms.
    pub patch_cycle_cpu: Duration,
    /// Middleware processing on the patch *submission* side only: descriptor
    /// bookkeeping and patch-object formatting, without the merge-side
    /// formatter/re-validation work. Submission used to charge the full
    /// `patch_cycle_cpu` as well, double-counting the cycle overhead that the
    /// merge charges again when it folds the chain; group-commit splits the
    /// two so batched submissions pay only the publication share.
    pub patch_submit_cpu: Duration,
    /// Full-path resolve-cache probe: one hash lookup plus an epoch
    /// fingerprint check against the per-namespace version stamps. Charged
    /// once per resolve when the path cache is enabled — on a hit it
    /// *replaces* the per-level lookup charges entirely.
    pub path_cache_cpu: Duration,
    /// Fan-out width for batched backend calls (bounded client pool).
    pub parallelism: usize,
    /// If true, replica writes are charged as parallel (quorum waits on the
    /// slowest of concurrent writes, modelled as 1× + small skew) rather
    /// than serial.
    pub parallel_replicas: bool,
}

impl CostModel {
    /// Constants calibrated against the §5.3 anchors (see module docs).
    pub fn rack_default() -> Self {
        CostModel {
            request_overhead: Duration::from_micros(3_000),
            disk_read: Duration::from_micros(6_500),
            disk_write: Duration::from_micros(9_000),
            per_kib: Duration::from_nanos(12_000), // ≈ 12 µs/KiB ≈ 1 Gbps + media
            server_copy: Duration::from_micros(9_500),
            db_base: Duration::from_micros(500),
            db_per_log2: Duration::from_micros(120),
            db_update: Duration::from_micros(1_800),
            index_rpc: Duration::from_micros(450),
            per_entry_cpu: Duration::from_micros(12),
            lookup_cpu: Duration::from_micros(4_500),
            cached_lookup_cpu: Duration::from_micros(300),
            patch_cycle_cpu: Duration::from_micros(15_000),
            patch_submit_cpu: Duration::from_micros(4_500),
            path_cache_cpu: Duration::from_micros(40),
            parallelism: 32,
            parallel_replicas: true,
        }
    }

    /// A zero-latency model: only primitive *counts* matter (used by the
    /// Table 1 complexity fits and by most unit tests).
    pub fn zero() -> Self {
        CostModel {
            request_overhead: Duration::ZERO,
            disk_read: Duration::ZERO,
            disk_write: Duration::ZERO,
            per_kib: Duration::ZERO,
            server_copy: Duration::ZERO,
            db_base: Duration::ZERO,
            db_per_log2: Duration::ZERO,
            db_update: Duration::ZERO,
            index_rpc: Duration::ZERO,
            per_entry_cpu: Duration::ZERO,
            lookup_cpu: Duration::ZERO,
            cached_lookup_cpu: Duration::ZERO,
            patch_cycle_cpu: Duration::ZERO,
            patch_submit_cpu: Duration::ZERO,
            path_cache_cpu: Duration::ZERO,
            parallelism: 32,
            parallel_replicas: true,
        }
    }

    /// Cost of a GET returning `size` bytes.
    pub fn get_cost(&self, size: usize) -> Duration {
        self.request_overhead + self.disk_read + self.transfer(size)
    }

    /// Cost of a PUT of `size` bytes (per replica; see `parallel_replicas`).
    pub fn put_cost(&self, size: usize) -> Duration {
        self.request_overhead + self.disk_write + self.transfer(size)
    }

    pub fn delete_cost(&self) -> Duration {
        self.request_overhead + self.disk_write
    }

    pub fn head_cost(&self) -> Duration {
        self.request_overhead + self.disk_read
    }

    pub fn copy_cost(&self, size: usize) -> Duration {
        self.request_overhead + self.server_copy + self.transfer(size) / 4
    }

    /// Binary-search query against a DB of `records` rows.
    pub fn db_query_cost(&self, records: u64) -> Duration {
        let log2 = 64 - records.max(1).leading_zeros() as u64;
        self.db_base + self.db_per_log2 * log2 as u32
    }

    pub fn db_update_cost(&self) -> Duration {
        self.db_base + self.db_update
    }

    pub fn index_rpc_cost(&self) -> Duration {
        self.index_rpc
    }

    fn transfer(&self, size: usize) -> Duration {
        // Round up to whole KiB so tiny objects still pay one unit.
        let kib = (size as u64).div_ceil(1024);
        Duration::from_nanos(self.per_kib.as_nanos() as u64 * kib)
    }
}

/// Per-operation context: accumulates virtual time and primitive counts.
///
/// Passed explicitly through every layer (no thread-locals) so tests and the
/// figures harness stay deterministic, and so batched fan-out can be modelled
/// where it actually happens.
#[derive(Debug, Clone)]
pub struct OpCtx {
    pub model: std::sync::Arc<CostModel>,
    elapsed: Duration,
    counts: BackendCounts,
    /// Depth of `parallel(..)` nesting; inside a parallel section,
    /// `charge` contributions are collected by the section instead.
    batch: Option<BatchState>,
    /// Live span buffer when this op was sampled for tracing (boxed so the
    /// untraced fast path only pays a null check).
    trace: Option<Box<crate::trace::TraceBuf>>,
}

#[derive(Debug, Clone)]
struct BatchState {
    /// Durations of items completed so far in this batch.
    items: Vec<Duration>,
    /// Time charged to the currently open item.
    current: Duration,
    /// Virtual time at which the section opened (for span timing).
    base: Duration,
}

impl OpCtx {
    pub fn new(model: std::sync::Arc<CostModel>) -> Self {
        OpCtx {
            model,
            elapsed: Duration::ZERO,
            counts: BackendCounts::default(),
            batch: None,
            trace: None,
        }
    }

    /// Zero-latency context for tests that only assert counts/semantics.
    pub fn for_test() -> Self {
        OpCtx::new(std::sync::Arc::new(CostModel::zero()))
    }

    /// Total virtual time consumed by the operation so far.
    pub fn elapsed(&self) -> Duration {
        self.elapsed
    }

    /// Primitive counters.
    pub fn counts(&self) -> BackendCounts {
        self.counts
    }

    /// Record a primitive invocation of `kind` costing `d`.
    pub fn charge(&mut self, kind: PrimKind, d: Duration) {
        self.counts.bump(kind);
        self.charge_time(d);
    }

    /// Charge CPU/other time without bumping a primitive counter.
    pub fn charge_time(&mut self, d: Duration) {
        match &mut self.batch {
            Some(b) => b.current += d,
            None => self.elapsed += d,
        }
    }

    /// Run `k` homogeneous sub-operations that the client issues with
    /// bounded fan-out ([`CostModel::parallelism`] at a time). `f` is called
    /// `k` times to perform (and charge) each item; wall time is
    /// `ceil(k / parallelism) × max-item-per-wave`, approximated by packing
    /// the recorded item durations greedily into waves.
    pub fn parallel<F>(&mut self, k: usize, mut f: F) -> Result<()>
    where
        F: FnMut(&mut OpCtx, usize) -> Result<()>,
    {
        if k == 0 {
            return Ok(());
        }
        let base = self.vnow();
        let prev = self.batch.take();
        self.batch = Some(BatchState {
            items: Vec::with_capacity(k),
            current: Duration::ZERO,
            base,
        });
        let mut result = Ok(());
        for i in 0..k {
            if let Err(e) = f(self, i) {
                result = Err(e);
                break;
            }
            let b = self.batch.as_mut().expect("batch state present");
            let d = std::mem::take(&mut b.current);
            b.items.push(d);
        }
        let b = self.batch.take().expect("batch state present");
        self.batch = prev;
        // Even on error, time already spent is spent.
        let wall = Self::pack_waves(&b.items, self.model.parallelism) + b.current;
        self.charge_time(wall);
        result.map_err(|e: H2Error| e)
    }

    /// Wall time of executing `items` with `width` workers: greedy LPT-free
    /// packing in submission order (client streams requests into a bounded
    /// pool), i.e. each wave takes the max of its `width` members.
    fn pack_waves(items: &[Duration], width: usize) -> Duration {
        let width = width.max(1);
        items
            .chunks(width)
            .map(|wave| wave.iter().copied().max().unwrap_or(Duration::ZERO))
            .sum()
    }

    /// Fold another context's spend into this one (serially).
    pub fn absorb(&mut self, other: &OpCtx) {
        self.counts.add(&other.counts);
        self.charge_time(other.elapsed);
    }

    // ---- span tracing ----------------------------------------------------
    //
    // Spans observe virtual time; they never charge it, so a traced run
    // accumulates exactly the same `elapsed()` as an untraced one. Inside a
    // `parallel` section items are drawn serialized (each item's spans start
    // where the previous item's ended) — a readable approximation of the
    // fan-out; the section total still uses wave packing.

    /// Current virtual time, including any in-flight `parallel` section.
    pub fn vnow(&self) -> Duration {
        match &self.batch {
            None => self.elapsed,
            Some(b) => b.base + b.items.iter().sum::<Duration>() + b.current,
        }
    }

    /// Whether this op is currently being traced.
    pub fn trace_active(&self) -> bool {
        self.trace.is_some()
    }

    /// Start tracing this op with a root span (used by the sampling layer;
    /// no-op spans everywhere else stay free because `trace` is `None`).
    pub fn begin_trace(&mut self, stage: &'static str, name: &str) {
        let mut buf = crate::trace::TraceBuf::new();
        buf.open(stage, name, self.vnow());
        self.trace = Some(Box::new(buf));
    }

    /// Close the root span (and any leaked children) and hand back the
    /// recorded spans; `None` when the op was not traced.
    pub fn end_trace(&mut self, err: Option<String>) -> Option<Vec<crate::trace::Span>> {
        let buf = self.trace.take()?;
        let end = self.vnow();
        Some(buf.finish(end, err))
    }

    /// Run `f` inside a child span named `name` at stage `stage`. When the
    /// op is untraced this is a direct call with zero overhead beyond the
    /// null check; when traced, the span records virtual start/duration and
    /// the error rendering of a failed result.
    pub fn span<T, F>(&mut self, stage: &'static str, name: &str, f: F) -> Result<T>
    where
        F: FnOnce(&mut OpCtx) -> Result<T>,
    {
        if self.trace.is_none() {
            return f(self);
        }
        let start = self.vnow();
        if let Some(buf) = &mut self.trace {
            buf.open(stage, name, start);
        }
        let result = f(self);
        let end = self.vnow();
        if let Some(buf) = &mut self.trace {
            buf.close(end, result.as_ref().err().map(|e| e.to_string()));
        }
        result
    }

    /// Attach a note to the innermost open span. The value closure only runs
    /// when the op is traced, so formatting costs nothing on the fast path.
    pub fn span_note<F>(&mut self, key: &'static str, value: F)
    where
        F: FnOnce() -> String,
    {
        if let Some(buf) = &mut self.trace {
            buf.note(key, value());
        }
    }

    /// Record an instant (zero-duration) child span with notes; the notes
    /// closure only runs when the op is traced.
    pub fn span_instant<F>(&mut self, stage: &'static str, name: &str, notes: F)
    where
        F: FnOnce() -> Vec<(&'static str, String)>,
    {
        if let Some(buf) = &mut self.trace {
            let at = match &self.batch {
                None => self.elapsed,
                Some(b) => b.base + b.items.iter().sum::<Duration>() + b.current,
            };
            buf.event(stage, name, at, Duration::ZERO, notes());
        }
    }

    /// Charge `d` of virtual time (like [`OpCtx::charge_time`]) and record a
    /// child span covering exactly that interval — used for retry backoff
    /// waits, where the wait *is* the time charged.
    pub fn span_charge(&mut self, stage: &'static str, name: &str, d: Duration) {
        let start = self.vnow();
        self.charge_time(d);
        if let Some(buf) = &mut self.trace {
            buf.event(stage, name, start, d, Vec::new());
        }
    }
}

/// Client↔cloud round-trip-time model for the paper's α analysis.
///
/// The paper PINGed Dropbox from Santa Cruz: 24–83 ms, mean 58 ms. We use a
/// deterministic triangular-ish sampler over the same support with the same
/// mean (drawn from a seeded RNG supplied by the caller).
#[derive(Debug, Clone)]
pub struct RttModel {
    pub min_ms: f64,
    pub mode_ms: f64,
    pub max_ms: f64,
}

impl RttModel {
    /// The paper's measured Dropbox RTT distribution.
    pub fn paper_dropbox() -> Self {
        // Triangular(min, mode, max) has mean (min+mode+max)/3; choosing
        // mode = 67 ms gives mean (24+67+83)/3 = 58 ms as measured.
        RttModel {
            min_ms: 24.0,
            mode_ms: 67.0,
            max_ms: 83.0,
        }
    }

    pub fn mean_ms(&self) -> f64 {
        (self.min_ms + self.mode_ms + self.max_ms) / 3.0
    }

    /// Sample one RTT given a uniform draw `u ∈ [0, 1)`.
    pub fn sample_ms(&self, u: f64) -> f64 {
        let (a, c, b) = (self.min_ms, self.mode_ms, self.max_ms);
        let fc = (c - a) / (b - a);
        if u < fc {
            a + ((b - a) * (c - a) * u).sqrt()
        } else {
            b - ((b - a) * (b - c) * (1.0 - u)).sqrt()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn ctx() -> OpCtx {
        OpCtx::new(Arc::new(CostModel::rack_default()))
    }

    #[test]
    fn charge_accumulates_time_and_counts() {
        let mut c = ctx();
        let m = c.model.clone();
        c.charge(PrimKind::Get, m.get_cost(100));
        c.charge(PrimKind::Put, m.put_cost(100));
        assert_eq!(c.counts().gets, 1);
        assert_eq!(c.counts().puts, 1);
        assert_eq!(c.counts().total(), 2);
        assert!(c.elapsed() > Duration::ZERO);
    }

    #[test]
    fn swift_file_access_anchor_is_about_10ms() {
        // One small GET ≈ the paper's ~10 ms Swift file access.
        let m = CostModel::rack_default();
        let ms = m.get_cost(512).as_secs_f64() * 1e3;
        assert!((8.0..14.0).contains(&ms), "got {ms} ms");
    }

    #[test]
    fn parallel_batches_cap_wall_time() {
        let mut c = ctx();
        let m = c.model.clone();
        let per = m.get_cost(256);
        // 64 identical GETs with width 32 → 2 waves → 2 × per-item.
        c.parallel(64, |ctx, _| {
            let d = ctx.model.get_cost(256);
            ctx.charge(PrimKind::Get, d);
            Ok(())
        })
        .unwrap();
        let want = per * 2;
        assert_eq!(c.elapsed(), want);
        assert_eq!(c.counts().gets, 64);
    }

    #[test]
    fn nested_parallel_sections_compose() {
        let mut c = ctx();
        c.parallel(2, |ctx, _| {
            ctx.parallel(2, |ctx2, _| {
                ctx2.charge(PrimKind::Head, Duration::from_millis(1));
                Ok(())
            })
        })
        .unwrap();
        assert_eq!(c.counts().heads, 4);
        // 2 inner items fit in one wave → 1 ms per inner section; 2 outer
        // items fit in one wave → 1 ms total.
        assert_eq!(c.elapsed(), Duration::from_millis(1));
    }

    #[test]
    fn parallel_propagates_errors_but_keeps_spend() {
        let mut c = ctx();
        let r = c.parallel(10, |ctx, i| {
            ctx.charge(PrimKind::Get, Duration::from_millis(1));
            if i == 3 {
                Err(H2Error::NotFound("x".into()))
            } else {
                Ok(())
            }
        });
        assert!(r.is_err());
        assert_eq!(c.counts().gets, 4); // items 0..=3 ran
        assert!(c.elapsed() >= Duration::from_millis(1));
    }

    #[test]
    fn db_query_cost_grows_logarithmically() {
        let m = CostModel::rack_default();
        let c1k = m.db_query_cost(1_000);
        let c1m = m.db_query_cost(1_000_000);
        assert!(c1m > c1k);
        // log2(1e6)/log2(1e3) ≈ 2 → roughly 2× the variable part.
        let var1k = (c1k - m.db_base).as_nanos() as f64;
        let var1m = (c1m - m.db_base).as_nanos() as f64;
        assert!((var1m / var1k - 2.0).abs() < 0.1);
    }

    #[test]
    fn rtt_model_matches_paper_support_and_mean() {
        let m = RttModel::paper_dropbox();
        assert!((m.mean_ms() - 58.0).abs() < 0.5);
        for i in 0..1000 {
            let u = i as f64 / 1000.0;
            let s = m.sample_ms(u);
            assert!((m.min_ms..=m.max_ms).contains(&s), "sample {s}");
        }
        // Empirical mean of the inverse-CDF over a uniform grid ≈ mean.
        let mean: f64 = (0..10_000)
            .map(|i| m.sample_ms(i as f64 / 10_000.0))
            .sum::<f64>()
            / 10_000.0;
        assert!((mean - 58.0).abs() < 1.0, "empirical mean {mean}");
    }

    #[test]
    fn absorb_is_serial_composition() {
        let mut a = ctx();
        let mut b = ctx();
        a.charge(PrimKind::Get, Duration::from_millis(2));
        b.charge(PrimKind::Put, Duration::from_millis(3));
        a.absorb(&b);
        assert_eq!(a.elapsed(), Duration::from_millis(5));
        assert_eq!(a.counts().puts, 1);
    }

    #[test]
    fn spans_observe_but_never_charge_virtual_time() {
        let mut traced = ctx();
        let mut plain = ctx();
        let body = |c: &mut OpCtx| {
            c.charge(PrimKind::Get, Duration::from_millis(7));
            Ok::<(), H2Error>(())
        };
        traced.begin_trace("op", "READ");
        traced.span("mw", "fetch_ring", body).unwrap();
        traced.span_charge("backoff", "fetch_ring", Duration::from_millis(3));
        plain.span("mw", "fetch_ring", body).unwrap();
        plain.span_charge("backoff", "fetch_ring", Duration::from_millis(3));
        assert_eq!(traced.elapsed(), plain.elapsed());
        assert_eq!(traced.counts(), plain.counts());

        let spans = traced.end_trace(None).unwrap();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].name, "READ");
        assert_eq!(spans[0].dur, Duration::from_millis(10));
        assert_eq!(spans[1].dur, Duration::from_millis(7));
        assert_eq!(spans[2].stage, "backoff");
        assert_eq!(spans[2].start, Duration::from_millis(7));
        assert_eq!(spans[2].dur, Duration::from_millis(3));
        assert!(traced.end_trace(None).is_none());
        assert!(plain.end_trace(None).is_none());
    }

    #[test]
    fn vnow_is_monotone_inside_parallel_sections() {
        let mut c = ctx();
        c.charge_time(Duration::from_millis(10));
        c.begin_trace("op", "LIST");
        let mut seen = Vec::new();
        c.parallel(3, |ctx, i| {
            ctx.span("cloud", &format!("GET{i}"), |ctx| {
                ctx.charge(PrimKind::Get, Duration::from_millis(2));
                Ok(())
            })?;
            seen.push(ctx.vnow());
            Ok(())
        })
        .unwrap();
        // Items are drawn serialized: 12, 14, 16 ms from a 10 ms base.
        assert_eq!(
            seen,
            vec![
                Duration::from_millis(12),
                Duration::from_millis(14),
                Duration::from_millis(16)
            ]
        );
        let spans = c.end_trace(None).unwrap();
        assert_eq!(spans[1].start, Duration::from_millis(10));
        assert_eq!(spans[2].start, Duration::from_millis(12));
        assert_eq!(spans[3].start, Duration::from_millis(14));
        // Wave packing still applies to the charged total (3 fit one wave).
        assert_eq!(c.elapsed(), Duration::from_millis(12));
    }

    #[test]
    fn span_errors_propagate_and_are_recorded() {
        let mut c = OpCtx::for_test();
        c.begin_trace("op", "READ");
        let r: Result<()> = c.span("mw", "fetch_ring", |_| Err(H2Error::NotFound("f".into())));
        assert!(r.is_err());
        c.span_note("after", || "note lands on root".to_string());
        c.span_instant("replica", "read", || vec![("dev", "3".to_string())]);
        let spans = c.end_trace(r.err().map(|e| e.to_string())).unwrap();
        assert!(spans[1].err.as_deref().unwrap_or("").contains("f"));
        assert_eq!(spans[0].notes[0].0, "after");
        assert_eq!(spans[2].stage, "replica");
        assert!(spans[0].err.is_some());
    }

    #[test]
    fn untraced_span_helpers_are_inert() {
        let mut c = OpCtx::for_test();
        assert!(!c.trace_active());
        let mut ran = false;
        c.span_note("k", || {
            ran = true;
            String::new()
        });
        c.span_instant("replica", "x", || {
            ran = true;
            Vec::new()
        });
        assert!(!ran, "note/instant closures must not run untraced");
        c.span("mw", "fetch_ring", |c| {
            c.charge(PrimKind::Get, Duration::ZERO);
            Ok(())
        })
        .unwrap();
        assert_eq!(c.counts().gets, 1);
    }

    #[test]
    fn zero_model_charges_nothing() {
        let mut c = OpCtx::for_test();
        let m = c.model.clone();
        c.charge(PrimKind::Get, m.get_cost(1 << 20));
        assert_eq!(c.elapsed(), Duration::ZERO);
        assert_eq!(c.counts().gets, 1);
    }
}
