//! Content-defined chunking for the CAS content plane.
//!
//! Files entering the content-addressed store are split into leaf blocks
//! whose boundaries depend on the *content*, not on offsets, so an insert
//! or append only reshapes the chunks it touches (FastCDC; cubist uses the
//! same scheme with a `[N/2, N*4]` block range around a 1 MiB default).
//! Two cutters live here:
//!
//! * [`chunk_bytes`] — real bytes: a gear rolling hash with FastCDC-style
//!   normalized chunking (a harder mask before the target size, an easier
//!   one after, a hard ceiling at `max`).
//! * [`chunk_simulated`] — size-only stand-ins (`Payload::Simulated`
//!   content has no bytes to roll over): chunk lengths are a deterministic
//!   schedule seeded by the file's content digest. The schedule depends
//!   only on the digest — not on the file size — so it is an infinite
//!   sequence that any size merely truncates: growing a file re-chunks
//!   nothing but its tail, exactly the prefix-stability property the real
//!   cutter has.
//!
//! Leaf digests are 128-bit ([`hash128`]): real chunks hash their bytes;
//! simulated chunks hash a domain-tagged `(file digest, offset, len)`
//! string, which is collision-free across files with different content and
//! identical across files with the same content — the basis for dedup.
//!
//! `Payload::Simulated` is defined in `swiftsim`; this module only ever
//! sees digests and sizes, so it lives in `h2util` below every other crate.

use crate::hash::{hash128, hash64_seeded, Digest128};
use std::sync::OnceLock;

/// Chunk-size bounds. FastCDC's recommended shape around a target `N` is
/// `[N/4, N*4]`; the default target is 1 MiB (ROADMAP item 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkParams {
    /// No cut before this many bytes (also the floor of the simulated
    /// schedule).
    pub min: u64,
    /// The expected chunk size the masks are tuned for.
    pub target: u64,
    /// Hard ceiling: a cut is forced at this length.
    pub max: u64,
}

impl ChunkParams {
    /// Bounds derived from a target size: `[target/4, target*4]`.
    pub const fn with_target(target: u64) -> Self {
        ChunkParams {
            min: target / 4,
            target,
            max: target * 4,
        }
    }
}

impl Default for ChunkParams {
    fn default() -> Self {
        ChunkParams::with_target(1 << 20)
    }
}

/// One leaf block: its span in the file and its content address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    pub offset: u64,
    pub len: u64,
    pub digest: Digest128,
}

/// The 256-entry gear table, derived deterministically from XXH64 so the
/// cutter needs no embedded random constants.
fn gear() -> &'static [u64; 256] {
    static GEAR: OnceLock<[u64; 256]> = OnceLock::new();
    GEAR.get_or_init(|| {
        let mut t = [0u64; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            *slot = hash64_seeded(&[i as u8], 0x4745_4152); // "GEAR"
        }
        t
    })
}

/// A mask keeping the top `bits` bits: the gear fingerprint accumulates
/// history into its high bits, so testing them gives a per-byte cut
/// probability of `2^-bits` over a genuine content window.
fn top_mask(bits: u32) -> u64 {
    if bits == 0 {
        0
    } else {
        !0u64 << (64 - bits.min(63))
    }
}

/// Find the next cut point in `data` (length from the start), honouring
/// `params`. Returns `data.len()` when no boundary fires before the end.
fn next_cut(params: &ChunkParams, data: &[u8]) -> usize {
    let n = data.len();
    let min = params.min as usize;
    let max = params.max as usize;
    if n <= min {
        return n;
    }
    let bits = params.target.max(2).ilog2();
    // Normalized chunking: harder mask (more bits) before the target size
    // pushes cuts toward it; easier mask after pulls stragglers back.
    let mask_hard = top_mask(bits + 2);
    let mask_easy = top_mask(bits.saturating_sub(2).max(1));
    let normal = (params.target as usize).min(n);
    let g = gear();
    let mut fp: u64 = 0;
    // The window warms up over the skipped `min` prefix's tail so the
    // fingerprint at `min` already reflects real content.
    let warm = min.saturating_sub(64);
    for &b in &data[warm..min] {
        fp = (fp << 1).wrapping_add(g[b as usize]);
    }
    for (i, &b) in data.iter().enumerate().take(n.min(max)).skip(min) {
        fp = (fp << 1).wrapping_add(g[b as usize]);
        let mask = if i < normal { mask_hard } else { mask_easy };
        if fp & mask == 0 {
            return i + 1;
        }
    }
    n.min(max)
}

/// Split real bytes into content-defined chunks. Empty input yields no
/// chunks. Every chunk is at most `params.max` long; all but the last are
/// at least `params.min`.
pub fn chunk_bytes(params: &ChunkParams, data: &[u8]) -> Vec<Chunk> {
    let mut out = Vec::new();
    let mut off = 0usize;
    while off < data.len() {
        let cut = next_cut(params, &data[off..]);
        out.push(Chunk {
            offset: off as u64,
            len: cut as u64,
            digest: hash128(&data[off..off + cut]),
        });
        off += cut;
    }
    out
}

/// The content address of a simulated chunk: a domain-tagged digest of the
/// file digest and the chunk's span. Files with identical content digests
/// produce identical leaf addresses (dedup); any other file cannot collide.
pub fn simulated_leaf_digest(file: Digest128, offset: u64, len: u64) -> Digest128 {
    hash128(format!("cas:leaf:{}:{offset}:{len}", file.to_hex()).as_bytes())
}

/// The length of the `k`-th chunk in the infinite schedule for a file with
/// this content digest, in `[min, max]`.
fn schedule_len(params: &ChunkParams, file: Digest128, k: u64) -> u64 {
    let span = params.max.saturating_sub(params.min).saturating_add(1);
    let h = hash64_seeded(&k.to_le_bytes(), file.hi ^ file.lo.rotate_left(32));
    params.min.max(1) + h % span.max(1)
}

/// Chunk a simulated file of `size` bytes whose content is identified by
/// `file`. Boundaries come from the digest-seeded schedule truncated at
/// `size`, so a larger file with the same digest shares every complete
/// chunk — only the previously-truncated tail re-chunks.
pub fn chunk_simulated(params: &ChunkParams, file: Digest128, size: u64) -> Vec<Chunk> {
    let mut out = Vec::new();
    let mut off = 0u64;
    let mut k = 0u64;
    while off < size {
        let len = schedule_len(params, file, k).min(size - off);
        out.push(Chunk {
            offset: off,
            len,
            digest: simulated_leaf_digest(file, off, len),
        });
        off += len;
        k += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ChunkParams {
        ChunkParams::with_target(1 << 10) // 1 KiB target → [256, 4096]
    }

    fn pseudo_bytes(n: usize, seed: u64) -> Vec<u8> {
        (0..n)
            .map(|i| (hash64_seeded(&(i as u64).to_le_bytes(), seed) & 0xff) as u8)
            .collect()
    }

    #[test]
    fn empty_input_yields_no_chunks() {
        assert!(chunk_bytes(&small(), &[]).is_empty());
        let d = hash128(b"f");
        assert!(chunk_simulated(&small(), d, 0).is_empty());
    }

    #[test]
    fn chunks_partition_the_input_within_bounds() {
        let p = small();
        for size in [1usize, 255, 256, 1024, 4096, 4097, 50_000] {
            let data = pseudo_bytes(size, 7);
            let chunks = chunk_bytes(&p, &data);
            assert!(!chunks.is_empty());
            let mut off = 0u64;
            for (i, c) in chunks.iter().enumerate() {
                assert_eq!(c.offset, off, "size {size} chunk {i} not contiguous");
                assert!(c.len <= p.max, "size {size}: chunk over max");
                if i + 1 < chunks.len() {
                    assert!(c.len >= p.min, "size {size}: non-final chunk under min");
                }
                assert_eq!(
                    c.digest,
                    hash128(&data[off as usize..(off + c.len) as usize])
                );
                off += c.len;
            }
            assert_eq!(off, size as u64, "chunks must cover the input exactly");
        }
    }

    #[test]
    fn exact_min_target_max_sizes() {
        let p = small();
        // Exactly `min` bytes: below any cut point — one chunk.
        assert_eq!(chunk_bytes(&p, &pseudo_bytes(p.min as usize, 1)).len(), 1);
        // Exactly `max` bytes: one or two chunks, never more (a single
        // forced ceiling cut is the worst case).
        let at_max = chunk_bytes(&p, &pseudo_bytes(p.max as usize, 2));
        assert!((1..=2).contains(&at_max.len()), "{}", at_max.len());
        // The simulated schedule at exact sizes: `min` is always one chunk
        // (every schedule entry is ≥ min).
        let d = hash128(b"exact");
        assert_eq!(chunk_simulated(&p, d, p.min).len(), 1);
        let at_target = chunk_simulated(&p, d, p.target);
        assert!((1..=4).contains(&at_target.len()));
        let at_max = chunk_simulated(&p, d, p.max);
        assert!((1..=16).contains(&at_max.len()));
        for cs in [&at_target, &at_max] {
            let total: u64 = cs.iter().map(|c| c.len).sum();
            assert!(total == p.target || total == p.max);
        }
    }

    #[test]
    fn append_is_prefix_stable_for_bytes() {
        let p = small();
        let mut data = pseudo_bytes(20_000, 3);
        let before = chunk_bytes(&p, &data);
        data.extend_from_slice(&pseudo_bytes(5_000, 4));
        let after = chunk_bytes(&p, &data);
        // Every complete chunk before the old tail survives byte-identically.
        let shared = before.len() - 1;
        assert!(after.len() >= shared);
        assert_eq!(
            &after[..shared],
            &before[..shared],
            "append reshaped a settled chunk"
        );
    }

    #[test]
    fn append_is_prefix_stable_for_simulated() {
        let p = small();
        let d = hash128(b"/home/u/video.mp4");
        let before = chunk_simulated(&p, d, 20_000);
        let after = chunk_simulated(&p, d, 20_001);
        let shared = before.len() - 1;
        assert_eq!(&after[..shared], &before[..shared]);
        // Only the truncated tail differs — and only it.
        assert_ne!(before.last(), after.get(shared));
        // The schedule is deterministic: same digest + size → same chunks.
        assert_eq!(before, chunk_simulated(&p, d, 20_000));
    }

    #[test]
    fn identical_content_digests_share_leaf_addresses() {
        let p = small();
        let d = hash128(b"shared:42");
        let a = chunk_simulated(&p, d, 10_000);
        let b = chunk_simulated(&p, d, 10_000);
        assert_eq!(a, b);
        // A different file digest shares nothing.
        let c = chunk_simulated(&p, hash128(b"shared:43"), 10_000);
        assert!(a.iter().zip(&c).all(|(x, y)| x.digest != y.digest));
    }

    #[test]
    fn real_chunk_sizes_track_the_target() {
        let p = ChunkParams::with_target(1 << 12); // 4 KiB
        let data = pseudo_bytes(1 << 20, 9);
        let chunks = chunk_bytes(&p, &data);
        let avg = (data.len() / chunks.len()) as u64;
        assert!(
            avg >= p.target / 4 && avg <= p.max,
            "average chunk {avg} far from target {}",
            p.target
        );
    }
}
