//! Node ids and the namespace UUIDs of §3.1.
//!
//! The paper gives every directory a universally unique identifier built from
//! "the sequence number of the directory, the storage node that created it,
//! and the UNIX timestamp": `/home/` being the 6th directory created by node
//! 1 at 1469346604539 gets UUID `06.01.1469346604539` (displayed in figures
//! with a short alias like `N94`).

use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::hash::hash64;

/// Identifier of a node (storage node or H2Middleware) in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u16);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02}", self.0)
    }
}

/// The namespace UUID of a directory: `seq.node.millis`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NamespaceId {
    /// Per-node creation sequence number of this directory.
    pub seq: u64,
    /// Node that created the directory.
    pub node: NodeId,
    /// UNIX-style milliseconds at creation.
    pub millis: u64,
}

impl NamespaceId {
    /// The root directory of an account. The paper never spells out the root
    /// namespace; we reserve sequence 0 / node 0 / time 0 so it is constant
    /// across the system and can be located without any lookup.
    pub const ROOT: NamespaceId = NamespaceId {
        seq: 0,
        node: NodeId(0),
        millis: 0,
    };

    pub fn new(seq: u64, node: NodeId, millis: u64) -> Self {
        NamespaceId { seq, node, millis }
    }

    pub fn is_root(&self) -> bool {
        *self == Self::ROOT
    }

    /// Short human alias like the paper's `N94`: `N` + two hex digits of the
    /// UUID hash. Only for display — not unique.
    pub fn short(&self) -> String {
        let h = hash64(self.to_string().as_bytes());
        format!("N{:02x}", (h & 0xff) as u8)
    }
}

impl fmt::Display for NamespaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02}.{}.{}", self.seq, self.node, self.millis)
    }
}

impl FromStr for NamespaceId {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut it = s.split('.');
        let seq = it
            .next()
            .and_then(|p| p.parse().ok())
            .ok_or_else(|| format!("bad namespace seq in {s:?}"))?;
        let node = it
            .next()
            .and_then(|p| p.parse().ok())
            .map(NodeId)
            .ok_or_else(|| format!("bad namespace node in {s:?}"))?;
        let millis = it
            .next()
            .and_then(|p| p.parse().ok())
            .ok_or_else(|| format!("bad namespace millis in {s:?}"))?;
        if it.next().is_some() {
            return Err(format!("trailing garbage in namespace {s:?}"));
        }
        Ok(NamespaceId { seq, node, millis })
    }
}

/// Allocator handing out namespace UUIDs on one node.
#[derive(Debug)]
pub struct NamespaceAllocator {
    node: NodeId,
    next_seq: AtomicU64,
}

impl NamespaceAllocator {
    pub fn new(node: NodeId) -> Self {
        NamespaceAllocator {
            node,
            // seq 0 is reserved for ROOT
            next_seq: AtomicU64::new(1),
        }
    }

    /// Allocate the next namespace, stamped with the supplied milliseconds.
    pub fn allocate(&self, millis: u64) -> NamespaceId {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        NamespaceId::new(seq, self.node, millis)
    }

    /// Number of namespaces handed out so far.
    pub fn allocated(&self) -> u64 {
        self.next_seq.load(Ordering::Relaxed) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_renders_like_the_paper() {
        // "the 6th directory created by the 1st storage node at
        //  1469346604539 … will be given a UUID 06.01.1469346604539"
        let ns = NamespaceId::new(6, NodeId(1), 1_469_346_604_539);
        assert_eq!(ns.to_string(), "06.01.1469346604539");
    }

    #[test]
    fn display_parse_roundtrip() {
        let ns = NamespaceId::new(123, NodeId(7), 42);
        assert_eq!(ns.to_string().parse::<NamespaceId>().unwrap(), ns);
        assert!("x.y.z".parse::<NamespaceId>().is_err());
        assert!("1.2".parse::<NamespaceId>().is_err());
        assert!("1.2.3.4".parse::<NamespaceId>().is_err());
    }

    #[test]
    fn root_is_reserved_and_distinct() {
        assert!(NamespaceId::ROOT.is_root());
        let alloc = NamespaceAllocator::new(NodeId(0));
        for _ in 0..100 {
            assert!(!alloc.allocate(0).is_root());
        }
        assert_eq!(alloc.allocated(), 100);
    }

    #[test]
    fn allocations_are_unique_across_nodes() {
        use std::collections::HashSet;
        let a = NamespaceAllocator::new(NodeId(1));
        let b = NamespaceAllocator::new(NodeId(2));
        let mut seen = HashSet::new();
        for i in 0..50 {
            assert!(seen.insert(a.allocate(i)));
            assert!(seen.insert(b.allocate(i)));
        }
    }

    #[test]
    fn short_alias_shape() {
        let s = NamespaceId::new(6, NodeId(1), 1_469_346_604_539).short();
        assert!(s.starts_with('N') && s.len() == 3, "{s}");
    }
}
