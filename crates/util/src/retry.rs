//! Retry with capped exponential backoff — the availability mechanism
//! Dynamo-style stores (and Swift itself) lean on for transient faults.
//!
//! A [`RetryPolicy`] re-runs an operation while it fails with a
//! *retryable* error ([`H2Error::is_retryable`]: `Conflict` or
//! `Unavailable`); terminal errors propagate immediately. Backoff between
//! attempts grows exponentially from `base_backoff`, capped at
//! `max_backoff`, with deterministic jitter derived from `(seed, op,
//! attempt)` — no wall-clock or RNG state, so identical runs replay
//! identical schedules.
//!
//! Two execution modes match the workspace's two notions of time:
//!
//! * [`RetryPolicy::run_virtual`] charges the backoff to an [`OpCtx`] as
//!   virtual latency — for client-path cloud ops under the cost model.
//! * [`RetryPolicy::run_real`] sleeps through the clock facade
//!   ([`crate::clock::wall_sleep`]) — for real background threads such as
//!   the gossip worker.
//!
//! Both record `op_retries` / `op_gave_up` counters and the
//! `retry_backoff_ms` histogram when given a [`MetricsRegistry`].

use std::time::Duration;

use crate::cost::OpCtx;
use crate::error::{H2Error, Result};
use crate::hash::hash64_seeded;
use crate::metrics::MetricsRegistry;

/// Counter bumped once per re-attempt.
pub const OP_RETRIES: &str = "op_retries";
/// Counter bumped when a retryable error exhausts its attempts.
pub const OP_GAVE_UP: &str = "op_gave_up";
/// Histogram of individual backoff delays.
pub const RETRY_BACKOFF_MS: &str = "retry_backoff_ms";

/// Capped-exponential-backoff retry schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first re-attempt.
    pub base_backoff: Duration,
    /// Ceiling for the exponential growth.
    pub max_backoff: Duration,
    /// Jitter fraction in `[0, 1]`: each delay is scaled by a
    /// deterministic factor in `[1 - jitter, 1]`.
    pub jitter: f64,
    /// Seed for the jitter draws; derive per component so independent
    /// retry streams decorrelate.
    pub seed: u64,
}

impl RetryPolicy {
    /// The workspace default: 5 attempts, 10 ms → 160 ms backoff, 50%
    /// jitter. Survives four consecutive transient faults per op, which
    /// at ≤5% injected error rate makes giving up vanishingly rare.
    pub fn new(seed: u64) -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            jitter: 0.5,
            seed,
        }
    }

    /// A policy that never retries (attempt once, propagate everything).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            jitter: 0.0,
            seed: 0,
        }
    }

    /// The delay before re-attempt number `attempt` (1-based: the backoff
    /// taken after the `attempt`-th failure) of operation `op`.
    /// Deterministic in `(seed, op, attempt)`.
    pub fn backoff(&self, op: &str, attempt: u32) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(20))
            .min(self.max_backoff);
        if self.jitter <= 0.0 {
            return exp;
        }
        let bits = hash64_seeded(op.as_bytes(), self.seed ^ u64::from(attempt));
        let unit = (bits >> 11) as f64 / (1u64 << 53) as f64;
        exp.mul_f64(1.0 - self.jitter * unit)
    }

    /// Run `f` under this policy, charging backoff as *virtual* latency on
    /// `ctx` — the client-path flavour.
    pub fn run_virtual<T, F>(
        &self,
        ctx: &mut OpCtx,
        metrics: Option<&MetricsRegistry>,
        op: &str,
        mut f: F,
    ) -> Result<T>
    where
        F: FnMut(&mut OpCtx) -> Result<T>,
    {
        let mut attempt = 1u32;
        loop {
            match f(ctx) {
                Ok(v) => return Ok(v),
                Err(e) => {
                    if let Some(delay) = self.next_backoff(metrics, op, &e, attempt) {
                        ctx.span_note("retry", || {
                            format!("attempt {attempt} failed: {e}; backing off {delay:?}")
                        });
                        // Identical charge to the untraced path; the span
                        // merely records the interval.
                        ctx.span_charge(crate::trace::STAGE_BACKOFF, op, delay);
                        attempt += 1;
                    } else {
                        return Err(e);
                    }
                }
            }
        }
    }

    /// Run `f` under this policy, sleeping real time between attempts via
    /// the clock facade — the background-thread flavour.
    pub fn run_real<T, F>(&self, metrics: Option<&MetricsRegistry>, op: &str, mut f: F) -> Result<T>
    where
        F: FnMut() -> Result<T>,
    {
        let mut attempt = 1u32;
        loop {
            match f() {
                Ok(v) => return Ok(v),
                Err(e) => {
                    if let Some(delay) = self.next_backoff(metrics, op, &e, attempt) {
                        crate::clock::wall_sleep(delay);
                        attempt += 1;
                    } else {
                        return Err(e);
                    }
                }
            }
        }
    }

    /// Shared bookkeeping: `Some(delay)` if the error should be retried
    /// after that backoff, `None` if it must propagate (recording
    /// `op_gave_up` when propagation is due to exhausted attempts).
    fn next_backoff(
        &self,
        metrics: Option<&MetricsRegistry>,
        op: &str,
        e: &H2Error,
        attempt: u32,
    ) -> Option<Duration> {
        if !e.is_retryable() {
            return None;
        }
        if attempt >= self.max_attempts {
            if let Some(m) = metrics {
                m.counter(OP_GAVE_UP).incr();
            }
            return None;
        }
        let delay = self.backoff(op, attempt);
        if let Some(m) = metrics {
            m.counter(OP_RETRIES).incr();
            m.record(RETRY_BACKOFF_MS, delay);
        }
        Some(delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flaky(fail_times: u32) -> impl FnMut() -> Result<u32> {
        let mut left = fail_times;
        move || {
            if left > 0 {
                left -= 1;
                Err(H2Error::Unavailable("injected".into()))
            } else {
                Ok(7)
            }
        }
    }

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::new(0)
        };
        assert_eq!(p.backoff("op", 1), Duration::from_millis(10));
        assert_eq!(p.backoff("op", 2), Duration::from_millis(20));
        assert_eq!(p.backoff("op", 3), Duration::from_millis(40));
        assert_eq!(p.backoff("op", 10), Duration::from_millis(500));
        assert_eq!(p.backoff("op", 60), Duration::from_millis(500));
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = RetryPolicy::new(11);
        for attempt in 1..6 {
            let a = p.backoff("submit_patch", attempt);
            let b = p.backoff("submit_patch", attempt);
            assert_eq!(a, b);
            let exp = RetryPolicy { jitter: 0.0, ..p }.backoff("submit_patch", attempt);
            assert!(a <= exp && a >= exp.mul_f64(0.5 - 1e-9), "{a:?} vs {exp:?}");
        }
        // Different ops decorrelate.
        assert_ne!(p.backoff("submit_patch", 1), p.backoff("read_ring", 1));
    }

    #[test]
    fn virtual_retries_charge_ctx_and_count() {
        let m = MetricsRegistry::new();
        let mut ctx = OpCtx::for_test();
        let p = RetryPolicy::new(1);
        let mut f = flaky(3);
        let out = p
            .run_virtual(&mut ctx, Some(&m), "op", |_ctx| f())
            .expect("succeeds on 4th attempt");
        assert_eq!(out, 7);
        assert_eq!(m.counter_value(OP_RETRIES), 3);
        assert_eq!(m.counter_value(OP_GAVE_UP), 0);
        assert_eq!(m.histogram(RETRY_BACKOFF_MS).count(), 3);
        // The three backoffs were charged as virtual latency.
        let expected: Duration = (1..=3).map(|a| p.backoff("op", a)).sum();
        assert_eq!(ctx.elapsed(), expected);
    }

    #[test]
    fn gives_up_after_max_attempts() {
        let m = MetricsRegistry::new();
        let mut ctx = OpCtx::for_test();
        let p = RetryPolicy::new(2);
        let mut f = flaky(99);
        let err = p.run_virtual(&mut ctx, Some(&m), "op", |_ctx| f());
        assert!(matches!(err, Err(H2Error::Unavailable(_))));
        assert_eq!(m.counter_value(OP_RETRIES), u64::from(p.max_attempts) - 1);
        assert_eq!(m.counter_value(OP_GAVE_UP), 1);
    }

    #[test]
    fn terminal_errors_do_not_retry() {
        let m = MetricsRegistry::new();
        let mut ctx = OpCtx::for_test();
        let p = RetryPolicy::new(3);
        let mut calls = 0;
        let err: Result<()> = p.run_virtual(&mut ctx, Some(&m), "op", |_ctx| {
            calls += 1;
            Err(H2Error::NotFound("x".into()))
        });
        assert!(matches!(err, Err(H2Error::NotFound(_))));
        assert_eq!(calls, 1);
        assert_eq!(m.counter_value(OP_RETRIES), 0);
        // NotFound is terminal, not an exhausted retry: no gave-up.
        assert_eq!(m.counter_value(OP_GAVE_UP), 0);
        assert_eq!(ctx.elapsed(), Duration::ZERO);
    }

    #[test]
    fn run_real_retries_without_ctx() {
        let p = RetryPolicy {
            base_backoff: Duration::from_micros(10),
            max_backoff: Duration::from_micros(50),
            ..RetryPolicy::new(4)
        };
        let f = flaky(2);
        assert_eq!(p.run_real(None, "gossip", f).expect("converges"), 7);
    }

    #[test]
    fn none_policy_is_single_shot() {
        let p = RetryPolicy::none();
        let mut ctx = OpCtx::for_test();
        let mut f = flaky(1);
        let err = p.run_virtual(&mut ctx, None, "op", |_ctx| f());
        assert!(matches!(err, Err(H2Error::Unavailable(_))));
    }
}
