//! Deterministic span tracing with per-stage latency breakdown.
//!
//! Every sampled filesystem operation opens a **root span**; each layer the
//! op crosses records child spans — middleware cloud ops (ring / patch /
//! descriptor / content, with cache hit/miss and retry/backoff annotations),
//! the cluster front door (fault-plan decisions), per-replica node access
//! (device, quorum vote, handoff scan), and gossip/merge hops. Span timing is
//! **virtual time** taken from the owning [`crate::cost::OpCtx`] — never the
//! wall clock — so traces replay byte-identically for a fixed seed and the
//! h2lint `determinism` rule holds.
//!
//! Closed root traces land in a bounded per-middleware ring buffer
//! ([`TraceCollector`]) guarded by a sampling knob (`H2Config::trace_sample`,
//! default off). Two export formats:
//!
//! * [`trace_json`] — compact JSON for the API `op=trace` route;
//! * [`chrome_trace_json`] — chrome://tracing "trace event" JSON that opens
//!   directly in Perfetto (`ph: "X"` complete events, µs timestamps).
//!
//! Closing a sampled trace also feeds the per-stage histograms
//! (`stage_ring_ms`, `stage_content_ms`, `stage_quorum_ms`,
//! `stage_backoff_ms`) surfaced on the `op=metrics` route.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::Mutex;

use crate::metrics::MetricsRegistry;

/// Stage label for root spans opened by the filesystem layer.
pub const STAGE_OP: &str = "op";
/// Stage label for middleware cloud ops (ring/patch/descriptor/content).
pub const STAGE_MW: &str = "mw";
/// Stage label for middleware ring resolution (cache consult + overlay);
/// not mapped to a `stage_*` histogram — its cloud fetch child already is.
pub const STAGE_RESOLVE: &str = "resolve";
/// Stage label for retry backoff waits charged by `RetryPolicy`.
pub const STAGE_BACKOFF: &str = "backoff";
/// Stage label for cluster-level ObjectStore entry points.
pub const STAGE_CLOUD: &str = "cloud";
/// Stage label for replica-set reads/writes (quorum wait).
pub const STAGE_QUORUM: &str = "quorum";
/// Stage label for individual replica accesses within a quorum.
pub const STAGE_REPLICA: &str = "replica";
/// Stage label for namespace merge cycles.
pub const STAGE_MERGE: &str = "merge";
/// Stage label for gossip application hops.
pub const STAGE_GOSSIP: &str = "gossip";
/// Stage label for live-rebalance migration work (per-partition
/// copy-then-flip by the cluster's background migrator).
pub const STAGE_MIGRATE: &str = "migrate";

/// Counter: partitions the migrator has flipped to their new assignment.
pub const MIGRATION_PARTS_MOVED: &str = "migration_parts_moved";
/// Counter: object replicas the migrator copied onto newly assigned
/// devices.
pub const MIGRATION_KEYS_COPIED: &str = "migration_keys_copied";
/// Counter: reads during a rebalance that were rescued by consulting the
/// *old* ring's assignment as handoffs (data not yet flipped).
pub const MIGRATION_READ_RESCUES: &str = "migration_read_rescues";
/// Counter: writes dual-applied to the old assignment while their
/// partition was still pending migration.
pub const MIGRATION_DUAL_WRITES: &str = "migration_dual_writes";

/// Histogram fed from closed `mw` ring/patch/descriptor spans.
pub const STAGE_RING_MS: &str = "stage_ring_ms";
/// Histogram fed from closed `mw` content spans.
pub const STAGE_CONTENT_MS: &str = "stage_content_ms";
/// Histogram fed from closed `quorum` spans.
pub const STAGE_QUORUM_MS: &str = "stage_quorum_ms";
/// Histogram fed from closed `backoff` spans.
pub const STAGE_BACKOFF_MS: &str = "stage_backoff_ms";

/// Per-trace span cap: a pathological op (deep COPY fan-out under faults)
/// cannot balloon a single trace; further child spans are dropped while the
/// open/close stack stays balanced.
const MAX_SPANS_PER_TRACE: usize = 4096;

/// One recorded interval (or instant, when `dur` is zero) inside a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// 1-based id unique within the trace (0 is "no parent").
    pub id: u32,
    /// Id of the enclosing span; 0 for the root.
    pub parent: u32,
    /// Stage taxonomy label (one of the `STAGE_*` constants).
    pub stage: &'static str,
    /// Human-readable name (op name, cloud verb, …).
    pub name: String,
    /// Virtual-time offset of the span start from the op context's origin.
    pub start: Duration,
    /// Virtual duration (zero for instant annotations).
    pub dur: Duration,
    /// Error rendering when the spanned body failed.
    pub err: Option<String>,
    /// Key/value annotations (ring key, cache hit/miss, fault decision, …).
    pub notes: Vec<(&'static str, String)>,
}

/// Per-operation span buffer carried inside an `OpCtx` while a trace is live.
///
/// Open spans form a stack; `open`/`close` must pair up, which the
/// `OpCtx::span` closure API guarantees structurally.
#[derive(Debug, Clone, Default)]
pub struct TraceBuf {
    spans: Vec<Span>,
    /// Stack of indices into `spans` for currently-open spans.
    /// `usize::MAX` marks an open that was dropped by the per-trace cap.
    open: Vec<usize>,
}

impl TraceBuf {
    pub fn new() -> Self {
        TraceBuf::default()
    }

    /// Open a new span starting at virtual time `start`.
    pub fn open(&mut self, stage: &'static str, name: &str, start: Duration) {
        if self.spans.len() >= MAX_SPANS_PER_TRACE {
            self.open.push(usize::MAX);
            return;
        }
        let parent = self.innermost_open_id();
        let idx = self.spans.len();
        self.spans.push(Span {
            id: idx as u32 + 1,
            parent,
            stage,
            name: name.to_string(),
            start,
            dur: Duration::ZERO,
            err: None,
            notes: Vec::new(),
        });
        self.open.push(idx);
    }

    /// Close the innermost open span at virtual time `end`.
    pub fn close(&mut self, end: Duration, err: Option<String>) {
        if let Some(idx) = self.open.pop() {
            if let Some(span) = self.spans.get_mut(idx) {
                span.dur = end.saturating_sub(span.start);
                span.err = err;
            }
        }
    }

    /// Attach a note to the innermost open span (dropped when none is open).
    pub fn note(&mut self, key: &'static str, value: String) {
        if let Some(&idx) = self.open.last() {
            if let Some(span) = self.spans.get_mut(idx) {
                span.notes.push((key, value));
            }
        }
    }

    /// Record a closed child span in one shot (used for instants and for
    /// pre-measured intervals like backoff waits).
    pub fn event(
        &mut self,
        stage: &'static str,
        name: &str,
        start: Duration,
        dur: Duration,
        notes: Vec<(&'static str, String)>,
    ) {
        if self.spans.len() >= MAX_SPANS_PER_TRACE {
            return;
        }
        let parent = self.innermost_open_id();
        let idx = self.spans.len();
        self.spans.push(Span {
            id: idx as u32 + 1,
            parent,
            stage,
            name: name.to_string(),
            start,
            dur,
            err: None,
            notes,
        });
    }

    /// Close any spans still open (defensive) and return the recorded spans.
    pub fn finish(mut self, end: Duration, err: Option<String>) -> Vec<Span> {
        // The root carries the op outcome; inner leftovers close clean.
        while self.open.len() > 1 {
            self.close(end, None);
        }
        self.close(end, err);
        self.spans
    }

    fn innermost_open_id(&self) -> u32 {
        self.open
            .iter()
            .rev()
            .find(|&&i| i != usize::MAX)
            .and_then(|&i| self.spans.get(i))
            .map_or(0, |s| s.id)
    }
}

/// One sampled operation: its spans plus a per-collector sequence number.
#[derive(Debug, Clone)]
pub struct RootTrace {
    /// Monotone per-collector sequence (newer = larger).
    pub seq: u64,
    /// Middleware node that served the op.
    pub node: u16,
    /// Spans in open order; `spans[0]` is the root.
    pub spans: Vec<Span>,
}

/// Bounded per-middleware ring buffer of sampled traces.
///
/// Sampling is deterministic: the n-th candidate op is sampled iff
/// `floor((n+1)·rate) > floor(n·rate)`, so a given rate yields the same
/// evenly-spaced subset on every run — no RNG, no wall clock.
#[derive(Debug)]
pub struct TraceCollector {
    sample: f64,
    cap: usize,
    node: u16,
    seen: AtomicU64,
    sampled: AtomicU64,
    ring: Mutex<VecDeque<RootTrace>>,
}

/// Default ring-buffer capacity (root traces retained per middleware).
pub const DEFAULT_TRACE_CAP: usize = 256;

impl TraceCollector {
    pub fn new(sample: f64, cap: usize, node: u16) -> Self {
        TraceCollector {
            sample: sample.clamp(0.0, 1.0),
            cap,
            node,
            seen: AtomicU64::new(0),
            sampled: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// A collector that never samples (the `trace_sample = 0` fast path).
    pub fn disabled() -> Self {
        TraceCollector::new(0.0, 0, 0)
    }

    /// Whether this collector can ever sample.
    pub fn enabled(&self) -> bool {
        self.sample > 0.0 && self.cap > 0
    }

    /// Middleware node this collector belongs to.
    pub fn node(&self) -> u16 {
        self.node
    }

    /// Deterministically decide whether the next candidate op is sampled
    /// (and advance the candidate counter).
    pub fn sample_next(&self) -> bool {
        if !self.enabled() {
            return false;
        }
        let n = self.seen.fetch_add(1, Ordering::Relaxed);
        let s = self.sample;
        (((n + 1) as f64) * s).floor() > ((n as f64) * s).floor()
    }

    /// Store a finished trace, evicting the oldest beyond capacity, and fold
    /// its closed spans into the per-stage histograms.
    pub fn offer(&self, spans: Vec<Span>, metrics: &MetricsRegistry) {
        if spans.is_empty() || self.cap == 0 {
            return;
        }
        record_stage_histograms(&spans, metrics);
        let seq = self.sampled.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.ring.lock();
        ring.push_back(RootTrace {
            seq,
            node: self.node,
            spans,
        });
        while ring.len() > self.cap {
            ring.pop_front();
        }
    }

    /// Most recent `n` traces, newest first.
    pub fn recent(&self, n: usize) -> Vec<RootTrace> {
        let ring = self.ring.lock();
        ring.iter().rev().take(n).cloned().collect()
    }

    /// Number of traces currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Map a closed span onto the per-stage histogram it feeds, if any.
fn stage_metric(span: &Span) -> Option<&'static str> {
    match span.stage {
        STAGE_BACKOFF => Some(STAGE_BACKOFF_MS),
        STAGE_QUORUM => Some(STAGE_QUORUM_MS),
        STAGE_MW => {
            if span.name.ends_with("_content") {
                Some(STAGE_CONTENT_MS)
            } else {
                // fetch_ring / put_ring / submit_patch / fetch_patch /
                // delete_patch / put_descriptor / get_descriptor — all
                // metadata-plane traffic against the ring.
                Some(STAGE_RING_MS)
            }
        }
        _ => None,
    }
}

/// Fold the closed spans of one trace into the `stage_*` histograms.
pub fn record_stage_histograms(spans: &[Span], metrics: &MetricsRegistry) {
    for span in spans {
        if let Some(name) = stage_metric(span) {
            metrics.record(name, span.dur);
        }
    }
}

/// Escape a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn span_json(span: &Span) -> String {
    let mut s = format!(
        "{{\"id\": {}, \"parent\": {}, \"stage\": \"{}\", \"name\": \"{}\", \
         \"start_us\": {}, \"dur_us\": {}",
        span.id,
        span.parent,
        json_escape(span.stage),
        json_escape(&span.name),
        span.start.as_micros(),
        span.dur.as_micros(),
    );
    if let Some(err) = &span.err {
        s.push_str(&format!(", \"err\": \"{}\"", json_escape(err)));
    }
    if !span.notes.is_empty() {
        let notes: Vec<String> = span
            .notes
            .iter()
            .map(|(k, v)| format!("\"{}\": \"{}\"", json_escape(k), json_escape(v)))
            .collect();
        s.push_str(&format!(", \"notes\": {{{}}}", notes.join(", ")));
    }
    s.push('}');
    s
}

/// Render traces for the API `op=trace` route.
pub fn trace_json(traces: &[RootTrace]) -> String {
    let items: Vec<String> = traces
        .iter()
        .map(|t| {
            let spans: Vec<String> = t.spans.iter().map(span_json).collect();
            format!(
                "{{\"seq\": {}, \"node\": {}, \"op\": \"{}\", \"spans\": [{}]}}",
                t.seq,
                t.node,
                t.spans
                    .first()
                    .map_or(String::new(), |s| json_escape(&s.name)),
                spans.join(", ")
            )
        })
        .collect();
    format!("{{\"traces\": [{}]}}\n", items.join(", "))
}

/// Render traces as chrome://tracing "trace event" JSON (Perfetto-openable).
///
/// Each span becomes a complete (`ph: "X"`) event; `pid` is the middleware
/// node, `tid` the trace sequence number, timestamps are virtual-time µs from
/// the op start. Notes and outcome land in `args`.
pub fn chrome_trace_json(traces: &[RootTrace]) -> String {
    let mut events: Vec<String> = Vec::new();
    for t in traces {
        for span in &t.spans {
            let mut args: Vec<String> = span
                .notes
                .iter()
                .map(|(k, v)| format!("\"{}\": \"{}\"", json_escape(k), json_escape(v)))
                .collect();
            match &span.err {
                Some(err) => args.push(format!("\"outcome\": \"error: {}\"", json_escape(err))),
                None => args.push("\"outcome\": \"ok\"".to_string()),
            }
            events.push(format!(
                "{{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \"ts\": {}, \
                 \"dur\": {}, \"pid\": {}, \"tid\": {}, \"args\": {{{}}}}}",
                json_escape(&span.name),
                json_escape(span.stage),
                span.start.as_micros(),
                span.dur.as_micros(),
                t.node,
                t.seq,
                args.join(", ")
            ));
        }
    }
    format!(
        "{{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n{}\n]}}\n",
        events.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    fn sample_spans() -> Vec<Span> {
        let mut buf = TraceBuf::new();
        buf.open(STAGE_OP, "op_write", ms(0));
        buf.open(STAGE_MW, "fetch_ring", ms(0));
        buf.note("cache", "miss".to_string());
        buf.close(ms(10), None);
        buf.event(
            STAGE_BACKOFF,
            "put_content",
            ms(10),
            ms(5),
            vec![("attempt", "1".to_string())],
        );
        buf.open(STAGE_MW, "put_content", ms(15));
        buf.close(ms(40), None);
        buf.finish(ms(40), None)
    }

    #[test]
    fn spans_nest_and_time_from_virtual_clock() {
        let spans = sample_spans();
        assert_eq!(spans.len(), 4);
        let root = &spans[0];
        assert_eq!(root.parent, 0);
        assert_eq!(root.name, "op_write");
        assert_eq!(root.dur, ms(40));
        let ring = &spans[1];
        assert_eq!(ring.parent, root.id);
        assert_eq!(ring.dur, ms(10));
        assert_eq!(ring.notes, vec![("cache", "miss".to_string())]);
        let backoff = &spans[2];
        assert_eq!(backoff.parent, root.id);
        assert_eq!(backoff.stage, STAGE_BACKOFF);
        assert_eq!(backoff.dur, ms(5));
    }

    #[test]
    fn finish_closes_leaked_spans_and_tags_root_error() {
        let mut buf = TraceBuf::new();
        buf.open(STAGE_OP, "op_read", ms(0));
        buf.open(STAGE_MW, "fetch_ring", ms(1));
        // fetch_ring never closed — e.g. an error propagated past it.
        let spans = buf.finish(ms(7), Some("NotFound".to_string()));
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].err.as_deref(), Some("NotFound"));
        assert_eq!(spans[1].err, None);
        assert_eq!(spans[1].dur, ms(6));
    }

    #[test]
    fn span_cap_keeps_stack_balanced() {
        let mut buf = TraceBuf::new();
        buf.open(STAGE_OP, "flood", ms(0));
        for i in 0..(MAX_SPANS_PER_TRACE + 100) {
            buf.open(STAGE_MW, "child", ms(i as u64));
            buf.close(ms(i as u64 + 1), None);
        }
        let spans = buf.finish(ms(99_999), None);
        assert_eq!(spans.len(), MAX_SPANS_PER_TRACE);
        assert_eq!(spans[0].dur, ms(99_999)); // root closed by finish, not a leak
    }

    #[test]
    fn sampling_is_deterministic_and_evenly_spaced() {
        let c = TraceCollector::new(0.25, 16, 0);
        let picks: Vec<bool> = (0..16).map(|_| c.sample_next()).collect();
        assert_eq!(picks.iter().filter(|&&p| p).count(), 4);
        // Same rate on a fresh collector reproduces the same pattern.
        let c2 = TraceCollector::new(0.25, 16, 0);
        let picks2: Vec<bool> = (0..16).map(|_| c2.sample_next()).collect();
        assert_eq!(picks, picks2);

        let full = TraceCollector::new(1.0, 16, 0);
        assert!((0..50).all(|_| full.sample_next()));
        let off = TraceCollector::disabled();
        assert!((0..50).all(|_| !off.sample_next()));
    }

    #[test]
    fn ring_buffer_is_bounded_and_newest_first() {
        let c = TraceCollector::new(1.0, 3, 7);
        let m = MetricsRegistry::new();
        for i in 0..10u64 {
            let mut buf = TraceBuf::new();
            buf.open(STAGE_OP, &format!("op{i}"), ms(0));
            c.offer(buf.finish(ms(1), None), &m);
        }
        assert_eq!(c.len(), 3);
        let recent = c.recent(8);
        assert_eq!(recent.len(), 3);
        assert_eq!(recent[0].spans[0].name, "op9");
        assert_eq!(recent[2].spans[0].name, "op7");
        assert!(recent[0].seq > recent[2].seq);
        assert_eq!(recent[0].node, 7);
    }

    #[test]
    fn stage_histograms_map_span_taxonomy() {
        let m = MetricsRegistry::new();
        record_stage_histograms(&sample_spans(), &m);
        assert_eq!(m.histogram(STAGE_RING_MS).count(), 1); // fetch_ring
        assert_eq!(m.histogram(STAGE_CONTENT_MS).count(), 1); // put_content
        assert_eq!(m.histogram(STAGE_BACKOFF_MS).count(), 1);
        // Root op spans feed the per-op histograms elsewhere, not stage_*.
        assert!(m.render().contains("stage_ring_ms"));
    }

    #[test]
    fn json_escape_handles_quotes_and_control_chars() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn chrome_trace_json_is_well_formed() {
        let c = TraceCollector::new(1.0, 4, 2);
        let m = MetricsRegistry::new();
        c.offer(sample_spans(), &m);
        let json = chrome_trace_json(&c.recent(4));
        assert!(json.starts_with("{\"displayTimeUnit\": \"ms\", \"traceEvents\": ["));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"cat\": \"backoff\""));
        assert!(json.contains("\"pid\": 2"));
        assert!(json.contains("\"outcome\": \"ok\""));
        // Balanced braces/brackets outside string literals.
        let (mut depth, mut in_str, mut esc) = (0i64, false, false);
        for ch in json.chars() {
            if esc {
                esc = false;
                continue;
            }
            match ch {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }

    #[test]
    fn trace_json_reports_root_op_names() {
        let c = TraceCollector::new(1.0, 4, 0);
        let m = MetricsRegistry::new();
        c.offer(sample_spans(), &m);
        let json = trace_json(&c.recent(4));
        assert!(json.contains("\"op\": \"op_write\""));
        assert!(json.contains("\"stage\": \"mw\""));
        assert!(json.contains("\"notes\": {\"cache\": \"miss\"}"));
    }
}
