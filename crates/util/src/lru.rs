//! A small bounded LRU map, used by the middleware's NameRing cache.
//!
//! Implemented as a `HashMap` for lookup plus a `BTreeMap` recency index
//! (monotone tick → key). Both `get` and `insert` are O(log n); good
//! enough for caches of a few thousand parsed rings, and dependency-free.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

/// A least-recently-used cache with a fixed capacity.
///
/// A capacity of 0 disables the cache entirely: `insert` is a no-op and
/// `get` always misses, so callers can keep one code path for the
/// enabled/disabled cases.
#[derive(Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    tick: u64,
    map: HashMap<K, (u64, V)>,
    recency: BTreeMap<u64, K>,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            tick: 0,
            map: HashMap::new(),
            recency: BTreeMap::new(),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Look up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let tick = self.next_tick();
        match self.map.get_mut(key) {
            Some((t, _)) => {
                self.recency.remove(t);
                *t = tick;
                self.recency.insert(tick, key.clone());
                self.map.get(key).map(|(_, v)| v)
            }
            None => None,
        }
    }

    /// Look up `key` without touching recency.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|(_, v)| v)
    }

    /// Insert or replace `key`, evicting the least recently used entry if
    /// the cache is full. No-op when capacity is 0.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        let tick = self.next_tick();
        if let Some((old_tick, _)) = self.map.insert(key.clone(), (tick, value)) {
            self.recency.remove(&old_tick);
        }
        self.recency.insert(tick, key);
        while self.map.len() > self.capacity {
            // The smallest tick is the coldest entry.
            let (&coldest, _) = self.recency.iter().next().expect("map and index in sync");
            let victim = self.recency.remove(&coldest).expect("key present");
            self.map.remove(&victim);
        }
    }

    /// Drop `key` if present; returns true when an entry was removed.
    pub fn remove(&mut self, key: &K) -> bool {
        match self.map.remove(key) {
            Some((tick, _)) => {
                self.recency.remove(&tick);
                true
            }
            None => false,
        }
    }

    pub fn clear(&mut self) {
        self.map.clear();
        self.recency.clear();
    }

    /// Iterate over the cached keys (arbitrary order, recency untouched).
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.map.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut c = LruCache::new(4);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"b"), Some(&2));
        assert_eq!(c.get(&"missing"), None);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        // Touch "a" so "b" is the cold one.
        assert!(c.get(&"a").is_some());
        c.insert("c", 3);
        assert_eq!(c.len(), 2);
        assert_eq!(c.peek(&"b"), None, "cold entry should be evicted");
        assert!(c.peek(&"a").is_some());
        assert!(c.peek(&"c").is_some());
    }

    #[test]
    fn replace_updates_value_without_growing() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("a", 10);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&"a"), Some(&10));
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = LruCache::new(0);
        c.insert("a", 1);
        assert!(c.is_empty());
        assert_eq!(c.get(&"a"), None);
    }

    #[test]
    fn remove_and_clear() {
        let mut c = LruCache::new(4);
        c.insert("a", 1);
        c.insert("b", 2);
        assert!(c.remove(&"a"));
        assert!(!c.remove(&"a"));
        assert_eq!(c.len(), 1);
        c.clear();
        assert!(c.is_empty());
        // Still usable after clear.
        c.insert("c", 3);
        assert_eq!(c.get(&"c"), Some(&3));
    }

    #[test]
    fn peek_does_not_promote() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        // Peeking "a" must not save it from eviction.
        assert!(c.peek(&"a").is_some());
        c.insert("c", 3);
        assert_eq!(c.peek(&"a"), None);
    }
}
