//! Hybrid logical clocks and the timestamps carried in NameRing tuples.
//!
//! The paper stamps every NameRing tuple with "a UNIX timestamp representing
//! a creation or deletion time" and resolves merge conflicts by
//! larger-timestamp-wins (§3.3.2). Raw millisecond clocks collide under
//! concurrent updates, so — as real deployments would — we use a *hybrid*
//! timestamp: Unix-style milliseconds, a logical sequence number, and the id
//! of the issuing node as total-order tie-breakers. Two updates issued
//! anywhere in the cluster therefore never compare equal unless they are the
//! same update.

use parking_lot::Mutex;
use std::fmt;
use std::str::FromStr;

use crate::id::NodeId;

// ---------------------------------------------------------------------------
// Wall-clock facade
// ---------------------------------------------------------------------------
//
// This file is the single sanctioned gateway to real time. Everything else
// in the workspace is virtual-time (`CostModel`/`OpCtx`) and must stay
// deterministic; `h2lint`'s determinism rule flags `Instant::now`,
// `SystemTime::now` and `thread::sleep` in any other file. Code that has a
// legitimate real-time need — pacing sleeps in the load generator, the
// threaded-gossip idle backoff, convergence deadlines in threaded tests —
// calls through here, which keeps every wall-clock touchpoint greppable
// and auditable in one place.

/// Read the real monotonic clock. The only sanctioned `Instant::now`.
pub fn wall_now() -> std::time::Instant {
    std::time::Instant::now()
}

/// Sleep for real. The only sanctioned `thread::sleep`.
pub fn wall_sleep(d: std::time::Duration) {
    std::thread::sleep(d);
}

/// Real Unix time in milliseconds. The only sanctioned `SystemTime::now`.
pub fn wall_unix_millis() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis().min(u128::from(u64::MAX)) as u64)
        .unwrap_or(0)
}

/// A hybrid timestamp: `(millis, seq, node)` compared lexicographically.
///
/// Serialized (by the Formatter) as `millis.seq.node`, e.g.
/// `1469346604539.0007.01`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Timestamp {
    /// Unix-style milliseconds (simulated in tests/benches).
    pub millis: u64,
    /// Logical counter distinguishing same-millisecond events on one node.
    pub seq: u32,
    /// Issuing node, the final tie-breaker.
    pub node: NodeId,
}

impl Timestamp {
    pub const ZERO: Timestamp = Timestamp {
        millis: 0,
        seq: 0,
        node: NodeId(0),
    };

    pub fn new(millis: u64, seq: u32, node: NodeId) -> Self {
        Timestamp { millis, seq, node }
    }

    /// Pack into a sortable u128 (used as a compact map key).
    pub fn as_u128(self) -> u128 {
        ((self.millis as u128) << 48) | ((self.seq as u128) << 16) | self.node.0 as u128
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{:04}.{:02}", self.millis, self.seq, self.node.0)
    }
}

impl FromStr for Timestamp {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut it = s.split('.');
        let millis = it
            .next()
            .and_then(|p| p.parse().ok())
            .ok_or_else(|| format!("bad timestamp millis in {s:?}"))?;
        let seq = it
            .next()
            .and_then(|p| p.parse().ok())
            .ok_or_else(|| format!("bad timestamp seq in {s:?}"))?;
        let node = it
            .next()
            .and_then(|p| p.parse().ok())
            .map(NodeId)
            .ok_or_else(|| format!("bad timestamp node in {s:?}"))?;
        if it.next().is_some() {
            return Err(format!("trailing garbage in timestamp {s:?}"));
        }
        Ok(Timestamp { millis, seq, node })
    }
}

/// Monotonic hybrid clock, one per node (storage node or H2Middleware).
///
/// `tick()` never returns the same timestamp twice and never goes backwards,
/// even if the underlying millisecond source stalls (the logical `seq`
/// advances) — the standard HLC construction.
#[derive(Debug)]
pub struct HybridClock {
    node: NodeId,
    state: Mutex<(u64, u32)>, // (last millis, last seq)
    /// Milliseconds advanced per tick when no external time source drives the
    /// clock. The simulator leaves this at 0 and calls [`advance_to`].
    auto_step: u64,
}

impl HybridClock {
    /// A clock starting at `base_millis` for the given node.
    pub fn new(node: NodeId, base_millis: u64) -> Self {
        HybridClock {
            node,
            state: Mutex::new((base_millis, 0)),
            auto_step: 0,
        }
    }

    /// A clock that advances 1 ms per tick — convenient in unit tests that
    /// want visibly distinct millis without an external driver.
    pub fn stepping(node: NodeId, base_millis: u64) -> Self {
        HybridClock {
            node,
            state: Mutex::new((base_millis, 0)),
            auto_step: 1,
        }
    }

    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Observe an external millisecond reading (e.g. the simulation clock);
    /// the next tick will be at least this.
    pub fn advance_to(&self, millis: u64) {
        let mut st = self.state.lock();
        if millis > st.0 {
            *st = (millis, 0);
        }
    }

    /// Merge a remote timestamp (HLC receive rule): local time never runs
    /// behind anything it has seen.
    pub fn observe(&self, remote: Timestamp) {
        let mut st = self.state.lock();
        if remote.millis > st.0 {
            *st = (remote.millis, remote.seq);
        } else if remote.millis == st.0 && remote.seq > st.1 {
            st.1 = remote.seq;
        }
    }

    /// Produce the next strictly increasing timestamp.
    pub fn tick(&self) -> Timestamp {
        let mut st = self.state.lock();
        if self.auto_step > 0 {
            st.0 += self.auto_step;
            st.1 = 0;
        } else {
            st.1 = st.1.checked_add(1).expect("HLC seq overflow");
        }
        Timestamp {
            millis: st.0,
            seq: st.1,
            node: self.node,
        }
    }

    /// Current reading without advancing.
    pub fn peek(&self) -> Timestamp {
        let st = self.state.lock();
        Timestamp {
            millis: st.0,
            seq: st.1,
            node: self.node,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamps_order_lexicographically() {
        let a = Timestamp::new(10, 0, NodeId(1));
        let b = Timestamp::new(10, 1, NodeId(0));
        let c = Timestamp::new(11, 0, NodeId(0));
        assert!(a < b && b < c);
        assert!(a.as_u128() < b.as_u128() && b.as_u128() < c.as_u128());
    }

    #[test]
    fn node_breaks_exact_ties() {
        let a = Timestamp::new(10, 3, NodeId(1));
        let b = Timestamp::new(10, 3, NodeId(2));
        assert!(a < b);
        assert_ne!(a, b);
    }

    #[test]
    fn display_parse_roundtrip() {
        let t = Timestamp::new(1_469_346_604_539, 7, NodeId(1));
        assert_eq!(t.to_string(), "1469346604539.0007.01");
        assert_eq!(t.to_string().parse::<Timestamp>().unwrap(), t);
        assert!("nope".parse::<Timestamp>().is_err());
        assert!("1.2".parse::<Timestamp>().is_err());
        assert!("1.2.3.4".parse::<Timestamp>().is_err());
    }

    #[test]
    fn clock_is_strictly_monotonic() {
        let c = HybridClock::new(NodeId(1), 1000);
        let mut last = Timestamp::ZERO;
        for _ in 0..1000 {
            let t = c.tick();
            assert!(t > last);
            last = t;
        }
        assert_eq!(last.millis, 1000); // no external driver → millis frozen
    }

    #[test]
    fn advance_to_resets_seq() {
        let c = HybridClock::new(NodeId(1), 1000);
        c.tick();
        c.tick();
        c.advance_to(2000);
        let t = c.tick();
        assert_eq!((t.millis, t.seq), (2000, 1));
        // Going backwards is ignored.
        c.advance_to(500);
        assert!(c.tick() > t);
    }

    #[test]
    fn observe_applies_receive_rule() {
        let c = HybridClock::new(NodeId(1), 1000);
        c.observe(Timestamp::new(5000, 9, NodeId(2)));
        let t = c.tick();
        assert!(t > Timestamp::new(5000, 9, NodeId(2)));
        assert_eq!(t.millis, 5000);
    }

    #[test]
    fn stepping_clock_advances_millis() {
        let c = HybridClock::stepping(NodeId(3), 0);
        assert_eq!(c.tick().millis, 1);
        assert_eq!(c.tick().millis, 2);
    }
}
