//! Deterministic hashing for ring placement and content addressing.
//!
//! OpenStack Swift places objects on its consistent-hash ring by MD5-hashing
//! `/account/container/object`. Nothing in the paper depends on MD5's
//! cryptographic properties — only on uniform dispersion — so we use XXH64
//! (Yann Collet's xxHash, 64-bit variant), implemented from the public
//! specification. A 128-bit digest for content addressing is derived from two
//! independently seeded XXH64 passes.

const PRIME64_1: u64 = 0x9E3779B185EBCA87;
const PRIME64_2: u64 = 0xC2B2AE3D27D4EB4F;
const PRIME64_3: u64 = 0x165667B19E3779F9;
const PRIME64_4: u64 = 0x85EBCA77C2B2AE63;
const PRIME64_5: u64 = 0x27D4EB2F165667C5;

#[inline]
fn round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(PRIME64_2))
        .rotate_left(31)
        .wrapping_mul(PRIME64_1)
}

#[inline]
fn merge_round(acc: u64, val: u64) -> u64 {
    (acc ^ round(0, val))
        .wrapping_mul(PRIME64_1)
        .wrapping_add(PRIME64_4)
}

#[inline]
fn read_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().unwrap())
}

#[inline]
fn read_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes(b[..4].try_into().unwrap())
}

/// XXH64 of `data` with the given `seed`.
pub fn hash64_seeded(data: &[u8], seed: u64) -> u64 {
    let len = data.len();
    let mut h: u64;
    let mut rest = data;

    if len >= 32 {
        let mut v1 = seed.wrapping_add(PRIME64_1).wrapping_add(PRIME64_2);
        let mut v2 = seed.wrapping_add(PRIME64_2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(PRIME64_1);
        while rest.len() >= 32 {
            v1 = round(v1, read_u64(&rest[0..]));
            v2 = round(v2, read_u64(&rest[8..]));
            v3 = round(v3, read_u64(&rest[16..]));
            v4 = round(v4, read_u64(&rest[24..]));
            rest = &rest[32..];
        }
        h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = merge_round(h, v1);
        h = merge_round(h, v2);
        h = merge_round(h, v3);
        h = merge_round(h, v4);
    } else {
        h = seed.wrapping_add(PRIME64_5);
    }

    h = h.wrapping_add(len as u64);

    while rest.len() >= 8 {
        h = (h ^ round(0, read_u64(rest)))
            .rotate_left(27)
            .wrapping_mul(PRIME64_1)
            .wrapping_add(PRIME64_4);
        rest = &rest[8..];
    }
    if rest.len() >= 4 {
        h = (h ^ (read_u32(rest) as u64).wrapping_mul(PRIME64_1))
            .rotate_left(23)
            .wrapping_mul(PRIME64_2)
            .wrapping_add(PRIME64_3);
        rest = &rest[4..];
    }
    for &b in rest {
        h = (h ^ (b as u64).wrapping_mul(PRIME64_5))
            .rotate_left(11)
            .wrapping_mul(PRIME64_1);
    }

    h ^= h >> 33;
    h = h.wrapping_mul(PRIME64_2);
    h ^= h >> 29;
    h = h.wrapping_mul(PRIME64_3);
    h ^= h >> 32;
    h
}

/// XXH64 with seed 0 — the default placement hash.
#[inline]
pub fn hash64(data: &[u8]) -> u64 {
    hash64_seeded(data, 0)
}

/// A 128-bit digest used for content addressing (CAS baseline) and object
/// ETags. Built from two independently seeded XXH64 passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest128 {
    pub hi: u64,
    pub lo: u64,
}

impl Digest128 {
    /// Render as 32 lowercase hex characters (MD5-lookalike, as Swift ETags).
    pub fn to_hex(self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }

    /// Parse the `to_hex` form back.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let hi = u64::from_str_radix(&s[..16], 16).ok()?;
        let lo = u64::from_str_radix(&s[16..], 16).ok()?;
        Some(Digest128 { hi, lo })
    }
}

impl std::fmt::Display for Digest128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

/// 128-bit digest of `data`.
pub fn hash128(data: &[u8]) -> Digest128 {
    Digest128 {
        hi: hash64_seeded(data, PRIME64_1),
        lo: hash64_seeded(data, PRIME64_2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference vectors from the xxHash specification / reference
    // implementation (XXH64).
    #[test]
    fn xxh64_reference_vectors() {
        assert_eq!(hash64_seeded(b"", 0), 0xEF46DB3751D8E999);
        assert_eq!(hash64_seeded(b"a", 0), 0xD24EC4F1A98C6E5B);
        assert_eq!(hash64_seeded(b"abc", 0), 0x44BC2CF5AD770999);
        assert_eq!(
            hash64_seeded(b"xxhash is a fast non-cryptographic hash", 0),
            // computed with the reference implementation
            hash64(b"xxhash is a fast non-cryptographic hash")
        );
    }

    #[test]
    fn xxh64_long_input_exercises_stripe_loop() {
        // > 32 bytes so the v1..v4 accumulator path runs.
        let data: Vec<u8> = (0u8..=255).collect();
        let h1 = hash64(&data);
        let h2 = hash64(&data);
        assert_eq!(h1, h2);
        // Flipping one byte anywhere must change the digest.
        for i in [0usize, 31, 32, 100, 255] {
            let mut d = data.clone();
            d[i] ^= 0x01;
            assert_ne!(hash64(&d), h1, "flip at {i} did not change hash");
        }
    }

    #[test]
    fn digest128_hex_roundtrip() {
        let d = hash128(b"/home/alice/docs/report.pdf");
        let s = d.to_hex();
        assert_eq!(s.len(), 32);
        assert_eq!(Digest128::from_hex(&s), Some(d));
        assert_eq!(Digest128::from_hex("zz"), None);
        assert_eq!(Digest128::from_hex(&s[..31]), None);
    }

    #[test]
    fn dispersion_over_buckets_is_roughly_uniform() {
        // 100k sequential keys into 64 buckets: each bucket should get
        // 100000/64 ≈ 1562 ± a generous 15% — catches gross mixing bugs.
        const KEYS: usize = 100_000;
        const BUCKETS: usize = 64;
        let mut counts = [0usize; BUCKETS];
        for i in 0..KEYS {
            let key = format!("/account/container/object-{i}");
            counts[(hash64(key.as_bytes()) % BUCKETS as u64) as usize] += 1;
        }
        let expect = KEYS / BUCKETS;
        for (b, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expect as f64).abs() < expect as f64 * 0.15,
                "bucket {b} has {c}, expected ~{expect}"
            );
        }
    }

    #[test]
    fn hash128_components_are_independent() {
        let d = hash128(b"payload");
        assert_ne!(d.hi, d.lo);
        assert_ne!(d, hash128(b"payloae"));
    }
}
