//! Runtime lock-order validation: rank-carrying lock newtypes.
//!
//! The object store's three-tier lock hierarchy (op-stripe → node-stripe →
//! map-shard, see DESIGN.md "Concurrency model") is deadlock-free only as
//! long as every code path acquires locks in strictly increasing rank
//! order and never holds two locks of the same rank. `h2lint`'s static
//! pass checks the acquisition *sites*; the [`OrderedMutex`] /
//! [`OrderedRwLock`] newtypes here check every acquisition *dynamically*:
//! under `debug_assertions` (or the `lock-order-validation` feature) each
//! thread keeps a stack of currently held ranks, and acquiring a lock
//! whose rank is not strictly greater than every held rank panics with
//! both acquisition sites. Because the entire test suite runs in debug
//! mode, every existing concurrency test doubles as a lock-order
//! regression harness.
//!
//! In release builds without the feature the wrappers compile down to the
//! bare `std::sync` primitives plus one predictable branch.
//!
//! All acquisitions recover from poisoning instead of unwrapping (one
//! panicked client thread must never wedge a storage node); recoveries
//! are counted in the global `lock_poison_recovered` counter, readable
//! via [`lock_poison_recovered`].

use std::cell::RefCell;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::panic::Location;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Is dynamic lock-order validation compiled in and active?
pub const fn validation_enabled() -> bool {
    cfg!(any(debug_assertions, feature = "lock-order-validation"))
}

/// Global count of poisoned-lock recoveries (metrics counter
/// `lock_poison_recovered`): each time a lock whose previous holder
/// panicked is re-acquired, the poison is cleared and this increments.
static POISON_RECOVERED: AtomicU64 = AtomicU64::new(0);

/// Current value of the `lock_poison_recovered` counter.
pub fn lock_poison_recovered() -> u64 {
    POISON_RECOVERED.load(Ordering::Relaxed)
}

/// Acquire a `std::sync::Mutex`, transparently recovering from poisoning
/// (and bumping the `lock_poison_recovered` counter). A poisoned lock
/// means some holder panicked; the protected data is a plain map/queue
/// whose invariants are re-established per operation, so recovery is
/// always safe here and one crashed client thread cannot wedge the node.
pub fn lock_or_recover<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| {
        POISON_RECOVERED.fetch_add(1, Ordering::Relaxed);
        e.into_inner()
    })
}

/// [`lock_or_recover`] for `RwLock` read guards.
pub fn read_or_recover<T: ?Sized>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|e| {
        POISON_RECOVERED.fetch_add(1, Ordering::Relaxed);
        e.into_inner()
    })
}

/// [`lock_or_recover`] for `RwLock` write guards.
pub fn write_or_recover<T: ?Sized>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(|e| {
        POISON_RECOVERED.fetch_add(1, Ordering::Relaxed);
        e.into_inner()
    })
}

struct Held {
    id: u64,
    rank: u16,
    label: &'static str,
    site: &'static Location<'static>,
}

thread_local! {
    /// Ranks currently held by this thread, in acquisition order.
    static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
}

static NEXT_TOKEN: AtomicU64 = AtomicU64::new(1);

/// Validate + record an acquisition. Returns a release token, or `None`
/// when validation is compiled out. Panics on a hierarchy violation
/// *before* blocking on the lock, so an inversion is reported as a panic
/// with both sites rather than manifesting as a deadlock.
fn acquire(rank: u16, label: &'static str, site: &'static Location<'static>) -> Option<u64> {
    if !validation_enabled() {
        return None;
    }
    HELD.with(|h| {
        let mut held = h.borrow_mut();
        if let Some(worst) = held
            .iter()
            .filter(|e| e.rank >= rank)
            .max_by_key(|e| e.rank)
        {
            panic!(
                "lock-order violation: acquiring `{label}` (rank {rank}) at {site} \
                 while holding `{}` (rank {}) acquired at {} — ranked locks must be \
                 taken in strictly increasing rank order (op-stripe → node-stripe → \
                 map-shard) and never two of the same rank",
                worst.label, worst.rank, worst.site
            );
        }
        let id = NEXT_TOKEN.fetch_add(1, Ordering::Relaxed);
        held.push(Held {
            id,
            rank,
            label,
            site,
        });
        Some(id)
    })
}

/// Forget a recorded acquisition. Guards may be dropped in any order, so
/// the entry is removed by token, not popped. `try_with` keeps guard
/// drops panic-free during thread teardown.
fn release(token: Option<u64>) {
    let Some(token) = token else { return };
    let _ = HELD.try_with(|h| {
        let mut held = h.borrow_mut();
        if let Some(pos) = held.iter().position(|e| e.id == token) {
            held.remove(pos);
        }
    });
}

/// A mutex carrying a static rank in the workspace lock hierarchy.
///
/// Ranks are strictly ordered: while a thread holds a rank-`r` ordered
/// lock it may only acquire ordered locks of rank `> r`. Violations panic
/// (under validation) with the acquisition sites of both locks.
pub struct OrderedMutex<T: ?Sized> {
    rank: u16,
    label: &'static str,
    inner: Mutex<T>,
}

impl<T> OrderedMutex<T> {
    pub const fn new(rank: u16, label: &'static str, value: T) -> Self {
        OrderedMutex {
            rank,
            label,
            inner: Mutex::new(value),
        }
    }
}

impl<T: ?Sized> OrderedMutex<T> {
    pub fn rank(&self) -> u16 {
        self.rank
    }

    pub fn label(&self) -> &'static str {
        self.label
    }

    /// Acquire, validating the hierarchy and recovering from poisoning.
    #[track_caller]
    pub fn lock(&self) -> OrderedMutexGuard<'_, T> {
        let token = acquire(self.rank, self.label, Location::caller());
        OrderedMutexGuard {
            inner: lock_or_recover(&self.inner),
            token,
        }
    }
}

impl<T: ?Sized> fmt::Debug for OrderedMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrderedMutex")
            .field("rank", &self.rank)
            .field("label", &self.label)
            .finish_non_exhaustive()
    }
}

pub struct OrderedMutexGuard<'a, T: ?Sized> {
    inner: MutexGuard<'a, T>,
    token: Option<u64>,
}

impl<T: ?Sized> Deref for OrderedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for OrderedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for OrderedMutexGuard<'_, T> {
    fn drop(&mut self) {
        release(self.token);
    }
}

/// A reader-writer lock carrying a static rank; see [`OrderedMutex`].
/// Read and write acquisitions participate in the hierarchy identically
/// (a read guard held at rank `r` still forbids acquiring rank `<= r`).
pub struct OrderedRwLock<T: ?Sized> {
    rank: u16,
    label: &'static str,
    inner: RwLock<T>,
}

impl<T> OrderedRwLock<T> {
    pub const fn new(rank: u16, label: &'static str, value: T) -> Self {
        OrderedRwLock {
            rank,
            label,
            inner: RwLock::new(value),
        }
    }
}

impl<T: ?Sized> OrderedRwLock<T> {
    pub fn rank(&self) -> u16 {
        self.rank
    }

    pub fn label(&self) -> &'static str {
        self.label
    }

    #[track_caller]
    pub fn read(&self) -> OrderedRwLockReadGuard<'_, T> {
        let token = acquire(self.rank, self.label, Location::caller());
        OrderedRwLockReadGuard {
            inner: read_or_recover(&self.inner),
            token,
        }
    }

    #[track_caller]
    pub fn write(&self) -> OrderedRwLockWriteGuard<'_, T> {
        let token = acquire(self.rank, self.label, Location::caller());
        OrderedRwLockWriteGuard {
            inner: write_or_recover(&self.inner),
            token,
        }
    }
}

impl<T: ?Sized> fmt::Debug for OrderedRwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrderedRwLock")
            .field("rank", &self.rank)
            .field("label", &self.label)
            .finish_non_exhaustive()
    }
}

pub struct OrderedRwLockReadGuard<'a, T: ?Sized> {
    inner: RwLockReadGuard<'a, T>,
    token: Option<u64>,
}

impl<T: ?Sized> Deref for OrderedRwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Drop for OrderedRwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        release(self.token);
    }
}

pub struct OrderedRwLockWriteGuard<'a, T: ?Sized> {
    inner: RwLockWriteGuard<'a, T>,
    token: Option<u64>,
}

impl<T: ?Sized> Deref for OrderedRwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for OrderedRwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for OrderedRwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        release(self.token);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    // Validation is active in every test build.
    #[test]
    fn validation_is_enabled_under_debug_assertions() {
        assert!(validation_enabled());
    }

    #[test]
    fn in_order_acquisition_is_fine() {
        let outer = OrderedMutex::new(1, "test.outer", ());
        let mid = OrderedRwLock::new(2, "test.mid", 0u32);
        let inner = OrderedRwLock::new(3, "test.inner", 0u32);
        let _a = outer.lock();
        let _b = mid.write();
        let _c = inner.read();
    }

    #[test]
    fn reacquire_after_release_is_fine() {
        let outer = OrderedMutex::new(1, "test.outer", ());
        let inner = OrderedRwLock::new(2, "test.inner", 0u32);
        {
            let _b = inner.write();
        }
        let _a = outer.lock(); // rank 1 after rank 2 *released*: legal
        drop(_a);
        let _b = inner.read();
    }

    #[test]
    fn guards_may_drop_out_of_order() {
        let a = OrderedMutex::new(1, "test.a", ());
        let b = OrderedRwLock::new(2, "test.b", ());
        let ga = a.lock();
        let gb = b.write();
        drop(ga); // release the *outer* lock first
        drop(gb);
        let _ga = a.lock(); // stack must be clean again
    }

    fn panics<F: FnOnce() + Send + 'static>(f: F) -> bool {
        std::thread::spawn(f).join().is_err()
    }

    #[test]
    fn deliberate_inversion_panics_under_the_validator() {
        // node-stripe (rank 2) held, then op-stripe (rank 1): the exact
        // inversion the object store's hierarchy forbids.
        assert!(panics(|| {
            let op = Arc::new(OrderedMutex::new(1, "test.op_stripe", ()));
            let stripe = Arc::new(OrderedRwLock::new(2, "test.node_stripe", 0u32));
            let _s = stripe.write();
            let _g = op.lock(); // must panic, not deadlock
        }));
    }

    #[test]
    fn double_same_rank_acquisition_panics() {
        assert!(panics(|| {
            let a = OrderedMutex::new(1, "test.op_a", ());
            let b = OrderedMutex::new(1, "test.op_b", ());
            let _ga = a.lock();
            let _gb = b.lock(); // two op-stripes at once: forbidden
        }));
    }

    #[test]
    fn read_guard_participates_in_the_hierarchy() {
        assert!(panics(|| {
            let shard = OrderedRwLock::new(3, "test.shard", 0u32);
            let op = OrderedMutex::new(1, "test.op", ());
            let _r = shard.read();
            let _g = op.lock();
        }));
    }

    #[test]
    fn poisoned_lock_recovers_and_counts() {
        let m = Arc::new(OrderedMutex::new(7, "test.poison", 5u32));
        let before = lock_poison_recovered();
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the inner std mutex");
        })
        .join();
        // Re-acquisition recovers instead of propagating the poison…
        assert_eq!(*m.lock(), 5);
        // …and the recovery was counted.
        assert!(lock_poison_recovered() > before);
    }

    #[test]
    fn plain_recover_helpers_work() {
        let m = Mutex::new(1);
        *lock_or_recover(&m) += 1;
        assert_eq!(*lock_or_recover(&m), 2);
        let l = RwLock::new(vec![1]);
        write_or_recover(&l).push(2);
        assert_eq!(read_or_recover(&l).len(), 2);
    }
}
