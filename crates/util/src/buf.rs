//! Cheaply-cloneable shared byte buffers for the content path.
//!
//! File payloads used to travel middleware → cluster → replicas as owned
//! `Vec<u8>`s, deep-copied at every hand-off. [`SharedBuf`] wraps a
//! reference-counted slice (`bytes::Bytes`) so a clone is a pointer bump
//! and every layer hands the *same* storage along.
//!
//! Two process-wide counters keep the copy discipline honest: every
//! `Clone` bumps the shallow count, and every materialisation into owned
//! bytes (`to_vec`, `from_slice`) bumps the deep count. [`stats`] exposes
//! both so benches and tests can assert that hot paths stay shallow.

use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;

static SHALLOW_CLONES: AtomicU64 = AtomicU64::new(0);
static DEEP_COPIES: AtomicU64 = AtomicU64::new(0);

/// Process-wide copy accounting: `(shallow_clones, deep_copies)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BufStats {
    /// Reference-count bumps — O(1), no bytes moved.
    pub shallow_clones: u64,
    /// Byte-for-byte materialisations into fresh storage.
    pub deep_copies: u64,
}

/// Snapshot the process-wide buffer copy counters.
pub fn stats() -> BufStats {
    BufStats {
        shallow_clones: SHALLOW_CLONES.load(Ordering::Relaxed),
        deep_copies: DEEP_COPIES.load(Ordering::Relaxed),
    }
}

/// An immutable, reference-counted byte buffer. Cloning shares storage.
#[derive(Debug, Default, PartialEq, Eq, Hash)]
pub struct SharedBuf(Bytes);

impl SharedBuf {
    pub fn new() -> Self {
        SharedBuf(Bytes::new())
    }

    /// Convert an owned vector into shared storage. One conversion at
    /// construction; all subsequent hand-offs are refcount bumps.
    pub fn from_vec(v: Vec<u8>) -> Self {
        SharedBuf(Bytes::from(v))
    }

    /// Copy `s` into fresh shared storage (counted as a deep copy).
    pub fn from_slice(s: &[u8]) -> Self {
        DEEP_COPIES.fetch_add(1, Ordering::Relaxed);
        SharedBuf(Bytes::copy_from_slice(s))
    }

    /// Wrap an already-shared `Bytes` — no copy.
    pub fn from_bytes(b: Bytes) -> Self {
        SharedBuf(b)
    }

    /// Unwrap into the underlying `Bytes`, still sharing storage.
    pub fn into_bytes(self) -> Bytes {
        self.0
    }

    /// Materialise an owned copy (counted as a deep copy).
    pub fn to_vec(&self) -> Vec<u8> {
        DEEP_COPIES.fetch_add(1, Ordering::Relaxed);
        self.0.to_vec()
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Clone for SharedBuf {
    fn clone(&self) -> Self {
        SHALLOW_CLONES.fetch_add(1, Ordering::Relaxed);
        SharedBuf(self.0.clone())
    }
}

impl std::ops::Deref for SharedBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for SharedBuf {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for SharedBuf {
    fn from(v: Vec<u8>) -> Self {
        SharedBuf::from_vec(v)
    }
}

impl From<String> for SharedBuf {
    fn from(s: String) -> Self {
        SharedBuf::from_vec(s.into_bytes())
    }
}

impl From<&str> for SharedBuf {
    fn from(s: &str) -> Self {
        SharedBuf::from_slice(s.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_storage_and_count_as_shallow() {
        let before = stats();
        let a = SharedBuf::from_vec(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(&*a, &*b);
        assert_eq!(a.as_ref().as_ptr(), b.as_ref().as_ptr(), "storage shared");
        let after = stats();
        // Other tests bump the process-wide counters concurrently, so only
        // monotone progress can be asserted.
        assert!(after.shallow_clones > before.shallow_clones);
    }

    #[test]
    fn materialisation_counts_as_deep() {
        let before = stats();
        let a = SharedBuf::from_slice(b"abc");
        let v = a.to_vec();
        assert_eq!(v, b"abc");
        let after = stats();
        assert!(after.deep_copies >= before.deep_copies + 2);
    }

    #[test]
    fn from_vec_then_clones_share_one_allocation() {
        let b = SharedBuf::from_vec(vec![9u8; 64]);
        let c = b.clone();
        assert_eq!(b.as_ref().as_ptr(), c.as_ref().as_ptr(), "storage shared");
        assert_eq!(b.len(), 64);
        assert!(!b.is_empty());
    }

    #[test]
    fn roundtrips_through_bytes() {
        let a = SharedBuf::from_vec(b"payload".to_vec());
        let raw = a.clone().into_bytes();
        let b = SharedBuf::from_bytes(raw);
        assert_eq!(a, b);
    }
}
