//! The common error type shared by the object store, H2Cloud and baselines.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, H2Error>;

/// Errors surfaced by filesystem and object-store operations.
///
/// The variants mirror what the paper's web APIs would report over HTTP:
/// `NotFound` ↔ 404, `AlreadyExists`/`Conflict` ↔ 409, `InvalidPath` ↔ 400,
/// `Unavailable` ↔ 503.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum H2Error {
    /// The referenced object, file or directory does not exist.
    NotFound(String),
    /// Creation target already exists.
    AlreadyExists(String),
    /// A path component that must be a directory is a regular file.
    NotADirectory(String),
    /// The operation requires a regular file but found a directory.
    IsADirectory(String),
    /// The supplied path is syntactically invalid (empty component, bad
    /// namespace decoration, embedded separator in a name, …).
    InvalidPath(String),
    /// A concurrent update conflicts with this operation (e.g. optimistic
    /// patch submission raced and must be retried).
    Conflict(String),
    /// Not enough replicas/nodes reachable to satisfy the quorum.
    Unavailable(String),
    /// Stored bytes failed to parse back into the expected structure.
    Corrupt(String),
    /// Account (user) is unknown.
    NoSuchAccount(String),
    /// Operation not supported by this backend (used by restricted
    /// baselines such as the Cumulus snapshot store).
    Unsupported(&'static str),
}

impl H2Error {
    /// Short machine-readable code, handy for logs and assertions.
    pub fn code(&self) -> &'static str {
        match self {
            H2Error::NotFound(_) => "not-found",
            H2Error::AlreadyExists(_) => "already-exists",
            H2Error::NotADirectory(_) => "not-a-directory",
            H2Error::IsADirectory(_) => "is-a-directory",
            H2Error::InvalidPath(_) => "invalid-path",
            H2Error::Conflict(_) => "conflict",
            H2Error::Unavailable(_) => "unavailable",
            H2Error::Corrupt(_) => "corrupt",
            H2Error::NoSuchAccount(_) => "no-such-account",
            H2Error::Unsupported(_) => "unsupported",
        }
    }

    /// True for errors that a client may retry verbatim (transient states).
    pub fn is_retryable(&self) -> bool {
        matches!(self, H2Error::Conflict(_) | H2Error::Unavailable(_))
    }

    /// Coarse error class for cross-backend comparisons. `NotFound` and
    /// `NotADirectory` collapse into one *path-resolution* class: for a
    /// path that traverses *through* a regular file (`/a/b` where `/a` is a
    /// file), hierarchical designs report ENOTDIR while flat designs
    /// (full-path hashing) can only see "no such key" — both simply mean
    /// the path does not resolve.
    pub fn class(&self) -> &'static str {
        match self {
            H2Error::NotFound(_) | H2Error::NotADirectory(_) => "path-resolution",
            other => other.code(),
        }
    }
}

impl fmt::Display for H2Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            H2Error::NotFound(s) => write!(f, "not found: {s}"),
            H2Error::AlreadyExists(s) => write!(f, "already exists: {s}"),
            H2Error::NotADirectory(s) => write!(f, "not a directory: {s}"),
            H2Error::IsADirectory(s) => write!(f, "is a directory: {s}"),
            H2Error::InvalidPath(s) => write!(f, "invalid path: {s}"),
            H2Error::Conflict(s) => write!(f, "conflict: {s}"),
            H2Error::Unavailable(s) => write!(f, "unavailable: {s}"),
            H2Error::Corrupt(s) => write!(f, "corrupt object: {s}"),
            H2Error::NoSuchAccount(s) => write!(f, "no such account: {s}"),
            H2Error::Unsupported(s) => write!(f, "unsupported operation: {s}"),
        }
    }
}

impl std::error::Error for H2Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_code_are_consistent() {
        let e = H2Error::NotFound("/home/alice".into());
        assert_eq!(e.code(), "not-found");
        assert!(e.to_string().contains("/home/alice"));
    }

    #[test]
    fn retryable_classification() {
        assert!(H2Error::Conflict("x".into()).is_retryable());
        assert!(H2Error::Unavailable("x".into()).is_retryable());
        assert!(!H2Error::NotFound("x".into()).is_retryable());
        assert!(!H2Error::Corrupt("x".into()).is_retryable());
    }

    #[test]
    fn errors_are_clonable_and_comparable() {
        let e = H2Error::InvalidPath("a//b".into());
        assert_eq!(e.clone(), e);
    }
}
