//! Lightweight metrics: lock-free counters and log-bucketed latency
//! histograms — the "system monitoring" the paper lists among the
//! H2Middleware's modules (§4.2).
//!
//! Histograms bucket durations into log2(microsecond) octaves, each
//! subdivided 8 ways: exact below 8 µs, then ≤12.5% relative error up to
//! ~4 hours in 256 buckets. An earlier pure-log2 layout quantised the
//! whole sub-millisecond range into three representable values (0.51 /
//! 1.02 / 2.05 ms) — useless once cached resolves pushed hot-path
//! latencies under a millisecond, and p99s could legally wobble by a
//! whole bucket (2×) between identical runs.
//! All updates are relaxed atomics: safe to hammer from every thread.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// log2 of the sub-buckets per octave.
const SUB_BITS: u32 = 3;
/// Sub-buckets per octave: each octave `[2^o, 2^(o+1))` splits into 8
/// equal-width buckets, bounding relative error at 1/8.
const SUBDIV: u64 = 1 << SUB_BITS;
const BUCKETS: usize = 256;

/// A latency histogram with subdivided-log2(µs) buckets.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram::default()
    }

    fn bucket_of(d: Duration) -> usize {
        let us = d.as_micros().min(u128::from(u64::MAX)) as u64;
        if us < SUBDIV {
            // One bucket per microsecond below the first subdivided octave.
            return us as usize;
        }
        let o = 63 - u64::from(us.leading_zeros()); // octave; o >= SUB_BITS
        let sub = (us - (1 << o)) >> (o - u64::from(SUB_BITS));
        (((o - u64::from(SUB_BITS)) * SUBDIV + SUBDIV + sub) as usize).min(BUCKETS - 1)
    }

    /// Lower bound of a bucket, in microseconds.
    fn bucket_floor_us(i: usize) -> u64 {
        let i = i as u64;
        if i < SUBDIV {
            return i;
        }
        let o = u64::from(SUB_BITS) + (i - SUBDIV) / SUBDIV;
        let sub = (i - SUBDIV) % SUBDIV;
        (1 << o) + (sub << (o - u64::from(SUB_BITS)))
    }

    pub fn record(&self, d: Duration) {
        self.buckets[Self::bucket_of(d)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(
            d.as_micros().min(u128::from(u64::MAX)) as u64,
            Ordering::Relaxed,
        );
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn mean(&self) -> Duration {
        let n = self.count();
        if n == 0 {
            return Duration::ZERO;
        }
        Duration::from_micros(self.sum_us.load(Ordering::Relaxed) / n)
    }

    /// Approximate percentile (bucket lower bound): p in [0, 1].
    pub fn percentile(&self, p: f64) -> Duration {
        let n = self.count();
        if n == 0 {
            return Duration::ZERO;
        }
        let target = ((n as f64) * p.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return Duration::from_micros(Self::bucket_floor_us(i));
            }
        }
        Duration::from_micros(Self::bucket_floor_us(BUCKETS - 1))
    }

    /// Consistent point-in-time view of the distribution.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count(),
            mean: self.mean(),
            p50: self.percentile(0.50),
            p95: self.percentile(0.95),
            p99: self.percentile(0.99),
        }
    }

    /// `count / mean / p50 / p95 / p99` on one line.
    pub fn render(&self) -> String {
        let s = self.summary();
        format!(
            "n={} mean={} p50={} p95={} p99={}",
            s.count,
            crate::fmt::millis(s.mean),
            crate::fmt::millis(s.p50),
            crate::fmt::millis(s.p95),
            crate::fmt::millis(s.p99),
        )
    }
}

/// One histogram's headline numbers, as sampled by [`Histogram::summary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Summary {
    pub count: u64,
    pub mean: Duration,
    pub p50: Duration,
    pub p95: Duration,
    pub p99: Duration,
}

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Self {
        Counter::default()
    }

    pub fn incr(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A named family of histograms (one per operation kind) plus plain event
/// counters (cache hits, requests saved, …).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    entries: parking_lot::RwLock<std::collections::BTreeMap<String, std::sync::Arc<Histogram>>>,
    counters: parking_lot::RwLock<std::collections::BTreeMap<String, std::sync::Arc<Counter>>>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Get (or create) the histogram for `name`.
    pub fn histogram(&self, name: &str) -> std::sync::Arc<Histogram> {
        if let Some(h) = self.entries.read().get(name) {
            return h.clone();
        }
        self.entries
            .write()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Record one observation.
    pub fn record(&self, name: &str, d: Duration) {
        self.histogram(name).record(d);
    }

    /// Get (or create) the counter for `name`.
    pub fn counter(&self, name: &str) -> std::sync::Arc<Counter> {
        if let Some(c) = self.counters.read().get(name) {
            return c.clone();
        }
        self.counters
            .write()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Current value of a counter (0 if it was never created).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.read().get(name).map_or(0, |c| c.get())
    }

    /// Snapshot of all (name, value) counter pairs, name-sorted.
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        self.counters
            .read()
            .iter()
            .map(|(n, c)| (n.clone(), c.get()))
            .collect()
    }

    /// All entries rendered one per line in a single name-sorted stream
    /// (histograms and counters interleaved), so responses diff stably
    /// across runs and in CI logs.
    pub fn render(&self) -> String {
        let mut lines: Vec<(String, String)> = Vec::new();
        for (name, h) in self.entries.read().iter() {
            lines.push((name.clone(), format!("{name:<16} {}\n", h.render())));
        }
        for (name, c) in self.counters.read().iter() {
            lines.push((name.clone(), format!("{name:<16} {}\n", c.get())));
        }
        lines.sort_by(|a, b| a.0.cmp(&b.0));
        lines.into_iter().map(|(_, l)| l).collect()
    }

    /// Snapshot of (name, count) pairs.
    pub fn counts(&self) -> Vec<(String, u64)> {
        self.entries
            .read()
            .iter()
            .map(|(n, h)| (n.clone(), h.count()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_is_monotone_subdivided_log2() {
        // Exact below 8 µs: one bucket per microsecond.
        for us in 0..8u64 {
            assert_eq!(Histogram::bucket_of(Duration::from_micros(us)), us as usize);
        }
        // Octave starts land on exact floors.
        assert_eq!(Histogram::bucket_of(Duration::from_micros(8)), 8);
        assert_eq!(Histogram::bucket_of(Duration::from_micros(16)), 16);
        assert_eq!(Histogram::bucket_of(Duration::from_micros(1024)), 64);
        // Sub-buckets split each octave 8 ways: 1.5 ms sits 4/8 into the
        // [1024, 2048) µs octave.
        assert_eq!(Histogram::bucket_of(Duration::from_micros(1500)), 67);
        // Very large values clamp into the last bucket.
        assert_eq!(
            Histogram::bucket_of(Duration::from_secs(1 << 40)),
            BUCKETS - 1
        );
        // Monotone, and every floor maps back to its own bucket with
        // bounded (≤ 1/8) relative error.
        for i in 0..BUCKETS {
            let floor = Histogram::bucket_floor_us(i);
            assert_eq!(Histogram::bucket_of(Duration::from_micros(floor)), i);
            if i + 1 < BUCKETS {
                let next = Histogram::bucket_floor_us(i + 1);
                assert!(next > floor, "floors not increasing at {i}");
                assert!(
                    floor < SUBDIV || (next - floor) * SUBDIV <= floor,
                    "bucket {i} wider than 12.5%: [{floor}, {next})"
                );
            }
        }
    }

    #[test]
    fn count_mean_percentiles() {
        let h = Histogram::new();
        for ms in [10u64, 10, 10, 10, 10, 10, 10, 10, 10, 1000] {
            h.record(Duration::from_millis(ms));
        }
        assert_eq!(h.count(), 10);
        // Mean = (9×10 + 1000)/10 = 109 ms.
        assert_eq!(h.mean(), Duration::from_millis(109));
        // p50 sits in the 10 ms bucket (floor 8.192 ms).
        let p50 = h.percentile(0.50);
        assert!(
            p50 >= Duration::from_millis(8) && p50 < Duration::from_millis(17),
            "{p50:?}"
        );
        // p99+ lands in the 1 s bucket.
        assert!(h.percentile(0.995) >= Duration::from_millis(500));
        assert_eq!(h.percentile(0.0), h.percentile(0.0001));
    }

    #[test]
    fn empty_histogram_is_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.percentile(0.99), Duration::ZERO);
        assert!(h.render().starts_with("n=0"));
    }

    #[test]
    fn summary_matches_point_queries_and_renders_p95() {
        let h = Histogram::new();
        for ms in 1..=100u64 {
            h.record(Duration::from_millis(ms));
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.mean, h.mean());
        assert_eq!(s.p50, h.percentile(0.50));
        assert_eq!(s.p95, h.percentile(0.95));
        assert_eq!(s.p99, h.percentile(0.99));
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99, "{s:?}");
        // p95 over 1..100 ms lands in the 64 ms bucket, well above p50.
        assert!(s.p95 >= Duration::from_millis(64), "{:?}", s.p95);
        assert!(h.render().contains("p95="), "{}", h.render());
    }

    #[test]
    fn registry_aggregates_and_renders() {
        let m = MetricsRegistry::new();
        m.record("MKDIR", Duration::from_millis(130));
        m.record("MKDIR", Duration::from_millis(140));
        m.record("READ", Duration::from_millis(10));
        let counts = m.counts();
        assert_eq!(counts.len(), 2);
        assert!(counts.contains(&("MKDIR".to_string(), 2)));
        let out = m.render();
        assert!(out.contains("MKDIR"));
        assert!(out.contains("READ"));
        assert!(out.lines().count() == 2);
    }

    #[test]
    fn counters_accumulate_and_render() {
        let m = MetricsRegistry::new();
        m.counter("cache_hits").add(3);
        m.counter("cache_hits").incr();
        m.counter("cache_misses").incr();
        assert_eq!(m.counter_value("cache_hits"), 4);
        assert_eq!(m.counter_value("cache_misses"), 1);
        assert_eq!(m.counter_value("never_touched"), 0);
        assert_eq!(
            m.counter_values(),
            vec![
                ("cache_hits".to_string(), 4),
                ("cache_misses".to_string(), 1)
            ]
        );
        let out = m.render();
        assert!(out.contains("cache_hits"), "{out}");
        assert!(out.contains("4"), "{out}");
    }

    #[test]
    fn render_is_one_name_sorted_stream() {
        let m = MetricsRegistry::new();
        // Deliberately chosen so a histogram name sorts between two counter
        // names: a blocked (histograms-then-counters) render would not be
        // globally sorted.
        m.record("m_hist", Duration::from_millis(5));
        m.counter("a_counter").incr();
        m.counter("z_counter").incr();
        let out = m.render();
        let names: Vec<&str> = out
            .lines()
            .filter_map(|l| l.split_whitespace().next())
            .collect();
        assert_eq!(names, vec!["a_counter", "m_hist", "z_counter"]);
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        // Two renders diff identically.
        assert_eq!(out, m.render());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let m = std::sync::Arc::new(MetricsRegistry::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for i in 0..1000 {
                        m.record("op", Duration::from_micros(i));
                    }
                });
            }
        });
        assert_eq!(m.histogram("op").count(), 4000);
    }
}
