//! Deterministic request-level fault injection.
//!
//! The paper's protocol is built for an unreliable substrate — gossip is
//! at-least-once and unordered, NameRing merges are a CRDT join (§3.3.2) —
//! but binary node-down faults never exercise the *transient* failure
//! paths: sporadic request errors, slow replicas, and torn quorum writes.
//! A [`FaultPlan`] describes those hazards per operation class; a
//! [`FaultInjector`] turns the plan into per-request decisions.
//!
//! Determinism: every decision is a pure function of `(seed, sequence
//! number, op-class label)` via [`crate::hash::hash64_seeded`], so a run
//! that issues the same requests in the same order replays the exact same
//! faults. The injector draws nothing when the plan is inactive, and the
//! store must not consult it from paths with nondeterministic iteration
//! order (e.g. repair sweeps) — see `swiftsim` for the wiring contract.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::hash::hash64_seeded;
use crate::metrics::Counter;

/// Object-store request classes, mirroring the `ObjectStore` trait surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    Put,
    Get,
    Head,
    Delete,
    Copy,
    List,
}

impl OpClass {
    pub const ALL: [OpClass; 6] = [
        OpClass::Put,
        OpClass::Get,
        OpClass::Head,
        OpClass::Delete,
        OpClass::Copy,
        OpClass::List,
    ];

    /// Stable label; part of the deterministic draw, never change it
    /// without accepting that seeds replay differently.
    pub fn label(self) -> &'static str {
        match self {
            OpClass::Put => "put",
            OpClass::Get => "get",
            OpClass::Head => "head",
            OpClass::Delete => "delete",
            OpClass::Copy => "copy",
            OpClass::List => "list",
        }
    }

    fn index(self) -> usize {
        match self {
            OpClass::Put => 0,
            OpClass::Get => 1,
            OpClass::Head => 2,
            OpClass::Delete => 3,
            OpClass::Copy => 4,
            OpClass::List => 5,
        }
    }

    /// Classes that mutate replicas and can therefore tear.
    pub fn is_write(self) -> bool {
        matches!(self, OpClass::Put | OpClass::Delete | OpClass::Copy)
    }
}

/// Fault probabilities for one op class. All rates are in `[0, 1]` and
/// mutually exclusive per request (a single uniform draw is partitioned
/// `torn | error | slow | clean`, in that priority order).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultSpec {
    /// Probability the request fails up front with `Unavailable` — no
    /// state is touched.
    pub error_rate: f64,
    /// Probability the request succeeds but is charged `slow_by` extra
    /// virtual latency (a slow replica / retransmit).
    pub slow_rate: f64,
    /// Latency inflation applied when the slow draw hits.
    pub slow_by: Duration,
    /// Write classes only: probability the request applies to a strict
    /// subset of replicas and then reports `Unavailable` — the classic
    /// fail-after-write torn quorum. Ignored for read classes.
    pub torn_rate: f64,
}

impl FaultSpec {
    /// A spec that only injects up-front errors.
    pub fn errors(rate: f64) -> Self {
        FaultSpec {
            error_rate: rate,
            ..FaultSpec::default()
        }
    }

    pub fn with_slow(mut self, rate: f64, by: Duration) -> Self {
        self.slow_rate = rate;
        self.slow_by = by;
        self
    }

    pub fn with_torn(mut self, rate: f64) -> Self {
        self.torn_rate = rate;
        self
    }

    fn is_active(&self) -> bool {
        self.error_rate > 0.0 || self.slow_rate > 0.0 || self.torn_rate > 0.0
    }
}

/// A complete fault schedule: one [`FaultSpec`] per request class at the
/// cluster front door, one per-replica spec applied inside `StorageNode`
/// request handling, and the seed that makes it all replayable.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    pub seed: u64,
    specs: [FaultSpec; 6],
    /// Per-replica error rate consulted by storage nodes on put/get/delete:
    /// the replica behaves as unreachable for that one request, engaging
    /// handoff and quorum machinery without marking the node down.
    pub replica_error_rate: f64,
}

impl FaultPlan {
    /// An inert plan (no faults) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            specs: [FaultSpec::default(); 6],
            replica_error_rate: 0.0,
        }
    }

    /// The same spec for every request class.
    pub fn uniform(seed: u64, spec: FaultSpec) -> Self {
        FaultPlan {
            seed,
            specs: [spec; 6],
            replica_error_rate: 0.0,
        }
    }

    /// Replace the spec for one class (builder style).
    pub fn set(mut self, class: OpClass, spec: FaultSpec) -> Self {
        self.specs[class.index()] = spec;
        self
    }

    /// Set the per-replica error rate (builder style).
    pub fn with_replica_errors(mut self, rate: f64) -> Self {
        self.replica_error_rate = rate;
        self
    }

    pub fn spec(&self, class: OpClass) -> &FaultSpec {
        &self.specs[class.index()]
    }

    /// Whether any rate is non-zero.
    pub fn is_active(&self) -> bool {
        self.replica_error_rate > 0.0 || self.specs.iter().any(|s| s.is_active())
    }
}

/// What the injector decided for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// Proceed normally.
    Clean,
    /// Proceed, but charge this much extra latency.
    Slow(Duration),
    /// Fail with `Unavailable` before touching any state.
    Error,
    /// Write classes: apply the write to [`torn_survivors`] replicas, then
    /// fail with `Unavailable` (state partially applied — the hazard the
    /// repair/gossip machinery must absorb). `raw` feeds the survivor draw.
    Torn { raw: u64 },
}

/// Map a torn draw onto a survivor count: how many replicas the torn write
/// actually reached before "crashing". Always a strict subset
/// (`0..replicas`); with a single replica a torn write degenerates to an
/// up-front error.
pub fn torn_survivors(raw: u64, replicas: usize) -> usize {
    if replicas <= 1 {
        0
    } else {
        (raw % replicas as u64) as usize
    }
}

/// Snapshot of everything an injector did — comparable across runs to
/// assert byte-identical replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    pub draws: u64,
    pub errors: u64,
    pub slowdowns: u64,
    pub torn: u64,
    pub replica_errors: u64,
}

/// Turns a [`FaultPlan`] into per-request [`FaultDecision`]s.
///
/// Thread-safe; the sequence counter is atomic. Replay is exact whenever
/// the *order* of decisions is deterministic, which the chaos suite
/// guarantees by driving the cluster single-threaded.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    seq: AtomicU64,
    draws: Counter,
    errors: Counter,
    slowdowns: Counter,
    torn: Counter,
    replica_errors: Counter,
}

impl FaultInjector {
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            seq: AtomicU64::new(0),
            draws: Counter::new(),
            errors: Counter::new(),
            slowdowns: Counter::new(),
            torn: Counter::new(),
            replica_errors: Counter::new(),
        }
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// One deterministic 64-bit draw for the next request of `label`.
    fn draw_bits(&self, label: &str) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.draws.incr();
        hash64_seeded(
            label.as_bytes(),
            self.plan.seed ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        )
    }

    /// Uniform in `[0, 1)` from the top 53 bits of a draw.
    fn unit(bits: u64) -> f64 {
        (bits >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Decide the fate of one cluster-level request.
    pub fn decide(&self, class: OpClass) -> FaultDecision {
        let spec = self.plan.spec(class);
        if !spec.is_active() {
            return FaultDecision::Clean;
        }
        let bits = self.draw_bits(class.label());
        let u = Self::unit(bits);
        let torn_rate = if class.is_write() {
            spec.torn_rate
        } else {
            0.0
        };
        if u < torn_rate {
            self.torn.incr();
            return FaultDecision::Torn {
                raw: hash64_seeded(b"torn", bits),
            };
        }
        if u < torn_rate + spec.error_rate {
            self.errors.incr();
            return FaultDecision::Error;
        }
        if u < torn_rate + spec.error_rate + spec.slow_rate {
            self.slowdowns.incr();
            return FaultDecision::Slow(spec.slow_by);
        }
        FaultDecision::Clean
    }

    /// Decide whether one replica-level request on a storage node fails
    /// (the node behaves as unreachable for this request only).
    pub fn replica_fails(&self, class: OpClass) -> bool {
        if self.plan.replica_error_rate <= 0.0 {
            return false;
        }
        let bits = self.draw_bits("replica");
        let _ = class; // one shared stream; the class is implied by call order
        let hit = Self::unit(bits) < self.plan.replica_error_rate;
        if hit {
            self.replica_errors.incr();
        }
        hit
    }

    pub fn stats(&self) -> FaultStats {
        FaultStats {
            draws: self.draws.get(),
            errors: self.errors.get(),
            slowdowns: self.slowdowns.get(),
            torn: self.torn.get(),
            replica_errors: self.replica_errors.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_plan_never_draws() {
        let inj = FaultInjector::new(FaultPlan::new(42));
        for class in OpClass::ALL {
            assert_eq!(inj.decide(class), FaultDecision::Clean);
        }
        assert!(!inj.replica_fails(OpClass::Get));
        assert_eq!(inj.stats(), FaultStats::default());
    }

    #[test]
    fn same_seed_same_decisions() {
        let plan = FaultPlan::uniform(
            7,
            FaultSpec::errors(0.2)
                .with_slow(0.2, Duration::from_millis(40))
                .with_torn(0.1),
        );
        let a = FaultInjector::new(plan.clone());
        let b = FaultInjector::new(plan);
        let classes = [OpClass::Put, OpClass::Get, OpClass::Delete, OpClass::List];
        for i in 0..2000 {
            let class = classes[i % classes.len()];
            assert_eq!(a.decide(class), b.decide(class), "draw {i}");
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn different_seeds_diverge() {
        let spec = FaultSpec::errors(0.5);
        let a = FaultInjector::new(FaultPlan::uniform(1, spec));
        let b = FaultInjector::new(FaultPlan::uniform(2, spec));
        let mut same = 0;
        for _ in 0..500 {
            if a.decide(OpClass::Put) == b.decide(OpClass::Put) {
                same += 1;
            }
        }
        assert!(same < 500, "independent seeds produced identical streams");
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let plan = FaultPlan::uniform(
            99,
            FaultSpec::errors(0.10)
                .with_slow(0.10, Duration::from_millis(5))
                .with_torn(0.05),
        );
        let inj = FaultInjector::new(plan);
        for _ in 0..20_000 {
            inj.decide(OpClass::Put);
        }
        let s = inj.stats();
        let frac = |n: u64| n as f64 / 20_000.0;
        assert!((frac(s.errors) - 0.10).abs() < 0.02, "{s:?}");
        assert!((frac(s.slowdowns) - 0.10).abs() < 0.02, "{s:?}");
        assert!((frac(s.torn) - 0.05).abs() < 0.02, "{s:?}");
    }

    #[test]
    fn reads_never_tear() {
        let plan = FaultPlan::uniform(3, FaultSpec::default().with_torn(1.0));
        let inj = FaultInjector::new(plan);
        for _ in 0..100 {
            assert_eq!(inj.decide(OpClass::Get), FaultDecision::Clean);
            assert!(matches!(
                inj.decide(OpClass::Put),
                FaultDecision::Torn { .. }
            ));
        }
    }

    #[test]
    fn torn_survivors_is_a_strict_subset() {
        for raw in 0..100u64 {
            assert_eq!(torn_survivors(raw, 1), 0);
            assert!(torn_survivors(raw, 3) < 3);
        }
        // All survivor counts are reachable for 3 replicas.
        let seen: std::collections::BTreeSet<usize> =
            (0..100u64).map(|raw| torn_survivors(raw, 3)).collect();
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn replica_rate_draws_independently() {
        let plan = FaultPlan::new(5).with_replica_errors(0.5);
        assert!(plan.is_active());
        let inj = FaultInjector::new(plan);
        // Cluster-level classes stay clean; only replica draws fire.
        assert_eq!(inj.decide(OpClass::Put), FaultDecision::Clean);
        let mut hits = 0;
        for _ in 0..10_000 {
            if inj.replica_fails(OpClass::Get) {
                hits += 1;
            }
        }
        assert!((hits as f64 / 10_000.0 - 0.5).abs() < 0.05, "{hits}");
        assert_eq!(inj.stats().replica_errors, hits);
    }
}
