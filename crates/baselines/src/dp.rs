//! Dynamic Partition — the two-cloud architecture the paper infers Dropbox
//! uses (§2, §5.3, Figure 1c).
//!
//! Directory metadata lives in a set of index servers; the directory tree is
//! partitioned across them by subtree, and a load balancer re-partitions
//! when a server grows too hot. Leaf entries point at content objects in
//! the object cloud. Directory operations are index pointer updates — O(1)
//! — which is exactly why Dropbox's MOVE/RMDIR stay flat in Figures 7–8.
//!
//! Cost model: every client operation pays a fixed *service overhead*
//! (Dropbox's metadata service commit/processing path; calibrated so MKDIR
//! lands in the paper's 150–200 ms band and file access near the ~110 ms
//! the α ≈ 0.5 RTT analysis implies), plus one index RPC per partition
//! crossed, plus per-entry CPU for listings, plus object-cloud costs for
//! content.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use h2fsapi::{CloudFs, DirEntry, EntryKind, FileContent, FsPath, StoreStats};
use h2util::{H2Error, OpCtx, PrimKind, Result};
use swiftsim::{Cluster, ClusterConfig, Meta, ObjectKey, ObjectStore, Payload};

use crate::tree::{InodeId, Node, TreeIndex};

/// Container holding file content blobs.
const CONTENT_CONTAINER: &str = "content";

/// Fixed service-path latency of every metadata operation.
const SERVICE_OVERHEAD: Duration = Duration::from_millis(105);
/// Extra commit latency of metadata *mutations* (journal + replication in
/// the index cloud).
const COMMIT_OVERHEAD: Duration = Duration::from_millis(55);
/// Per-listing-entry processing in the index server.
const PER_ENTRY: Duration = Duration::from_micros(260);

/// Per-account metadata state: the tree plus its partition map.
struct AccountMeta {
    tree: TreeIndex,
    /// Which index server owns each directory inode.
    placement: HashMap<InodeId, usize>,
}

impl AccountMeta {
    fn new() -> Self {
        let tree = TreeIndex::new();
        let mut placement = HashMap::new();
        placement.insert(tree.root(), 0);
        AccountMeta { tree, placement }
    }

    fn server_of(&self, dir: InodeId) -> usize {
        *self.placement.get(&dir).unwrap_or(&0)
    }
}

/// The Dynamic Partition filesystem.
pub struct DpFs {
    cluster: Arc<Cluster>,
    accounts: Mutex<HashMap<String, AccountMeta>>,
    /// Number of index servers.
    servers: usize,
    /// Directories per server above which a repartition is triggered.
    split_threshold: usize,
    next_object: AtomicU64,
    ms: AtomicU64,
}

impl DpFs {
    pub fn new(cluster: Arc<Cluster>, servers: usize) -> Self {
        assert!(servers >= 1);
        DpFs {
            cluster,
            accounts: Mutex::new(HashMap::new()),
            servers,
            split_threshold: 512,
            next_object: AtomicU64::new(1),
            ms: AtomicU64::new(1_600_000_000_000),
        }
    }

    /// Rack-shaped stand-alone instance with 4 index servers.
    pub fn rack() -> Self {
        DpFs::new(Cluster::new(ClusterConfig::default()), 4)
    }

    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    pub fn cost_model(&self) -> Arc<h2util::CostModel> {
        self.cluster.cost_model()
    }

    fn next_ms(&self) -> u64 {
        self.ms.fetch_add(1, Ordering::Relaxed)
    }

    fn new_object_name(&self) -> String {
        format!(
            "blob-{:016x}",
            self.next_object.fetch_add(1, Ordering::Relaxed)
        )
    }

    fn key(&self, account: &str, object: &str) -> ObjectKey {
        ObjectKey::new(account, CONTENT_CONTAINER, object)
    }

    fn charge_service(&self, ctx: &mut OpCtx, mutation: bool) {
        ctx.charge_time(SERVICE_OVERHEAD);
        if mutation {
            ctx.charge_time(COMMIT_OVERHEAD);
        }
        let cost = ctx.model.index_rpc_cost();
        ctx.charge(PrimKind::IndexRpc, cost);
    }

    /// Charge the index RPCs a path walk incurs: one per partition crossed
    /// beyond the first. When the whole walk stays in one index server the
    /// access is effectively O(1) — the behaviour the paper observes for
    /// Dropbox's file access (Figure 13).
    fn charge_walk(&self, ctx: &mut OpCtx, meta: &AccountMeta, path: &FsPath) -> Result<()> {
        let mut crossings = 0usize;
        let mut cur = meta.tree.root();
        let mut server = meta.server_of(cur);
        for comp in path.components() {
            let children = match meta.tree.dir_children(cur) {
                Ok(c) => c,
                Err(_) => break, // final component is a file
            };
            let Some(&next) = children.get(comp) else {
                break;
            };
            if meta
                .tree
                .get(next)
                .map(|inode| inode.is_dir())
                .unwrap_or(false)
            {
                let next_server = meta.server_of(next);
                if next_server != server {
                    crossings += 1;
                    server = next_server;
                }
            }
            cur = next;
        }
        let cost = ctx.model.index_rpc_cost();
        for _ in 0..crossings {
            ctx.charge(PrimKind::IndexRpc, cost);
        }
        Ok(())
    }

    /// Re-partition when a server holds too many directories: move the
    /// largest subtree rooted directly under a directory it owns to the
    /// least-loaded server. (A deliberately simple version of the
    /// sophisticated balancers in Ceph/GIGA+ — enough to exercise the
    /// architecture.)
    fn maybe_repartition(&self, meta: &mut AccountMeta) {
        if self.servers < 2 {
            return;
        }
        let mut load = vec![0usize; self.servers];
        for &s in meta.placement.values() {
            load[s] += 1;
        }
        let (hot, &hot_load) = load
            .iter()
            .enumerate()
            .max_by_key(|(_, l)| **l)
            .expect("at least one server");
        if hot_load <= self.split_threshold {
            return;
        }
        let (cold, _) = load
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| **l)
            .expect("at least one server");
        // Find the largest directory subtree currently on the hot server
        // whose parent is also on the hot server, and move it wholesale.
        let candidates: Vec<InodeId> = meta
            .placement
            .iter()
            .filter(|(_, &s)| s == hot)
            .map(|(&id, _)| id)
            .collect();
        let Some(&victim) = candidates
            .iter()
            .filter(|&&id| id != meta.tree.root())
            .max_by_key(|&&id| meta.tree.subtree_size(id))
        else {
            return;
        };
        // Move victim and every directory below it.
        let mut stack = vec![victim];
        while let Some(cur) = stack.pop() {
            meta.placement.insert(cur, cold);
            if let Ok(children) = meta.tree.dir_children(cur) {
                for &c in children.values() {
                    if meta.tree.get(c).map(|i| i.is_dir()).unwrap_or(false) {
                        stack.push(c);
                    }
                }
            }
        }
    }

    /// Current directory count per index server (for the balance tests).
    pub fn server_loads(&self, account: &str) -> Vec<usize> {
        let accounts = self.accounts.lock();
        let mut load = vec![0usize; self.servers];
        if let Some(meta) = accounts.get(account) {
            for &s in meta.placement.values() {
                load[s] += 1;
            }
        }
        load
    }

    fn with_meta<T>(
        &self,
        account: &str,
        f: impl FnOnce(&mut AccountMeta) -> Result<T>,
    ) -> Result<T> {
        let mut accounts = self.accounts.lock();
        let meta = accounts
            .get_mut(account)
            .ok_or_else(|| H2Error::NoSuchAccount(account.to_string()))?;
        f(meta)
    }
}

impl CloudFs for DpFs {
    fn name(&self) -> &'static str {
        "Dropbox (DP)"
    }

    fn uses_separate_index(&self) -> bool {
        true
    }

    fn create_account(&self, ctx: &mut OpCtx, account: &str) -> Result<()> {
        // Registering the account is one metadata-service mutation on top
        // of the cloud-side account and container rows.
        self.charge_service(ctx, true);
        self.cluster.create_account_ctx(ctx, account)?;
        let model = ctx.model.clone();
        ctx.charge(PrimKind::DbUpdate, model.db_update_cost());
        self.cluster
            .create_container(account, CONTENT_CONTAINER, false)?;
        self.accounts
            .lock()
            .insert(account.to_string(), AccountMeta::new());
        Ok(())
    }

    fn delete_account(&self, ctx: &mut OpCtx, account: &str) -> Result<()> {
        self.charge_service(ctx, true);
        self.accounts.lock().remove(account);
        self.cluster.delete_account_ctx(ctx, account)
    }

    fn mkdir(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<()> {
        self.charge_service(ctx, true);
        let ms = self.next_ms();
        self.with_meta(account, |meta| {
            self.charge_walk(ctx, meta, path)?;
            let (parent, name, _) = meta.tree.resolve_parent(path).map_err(|e| match e {
                H2Error::InvalidPath(_) => H2Error::AlreadyExists("/".into()),
                other => other,
            })?;
            let id = meta.tree.mkdir(parent, name, ms).map_err(|e| match e {
                H2Error::AlreadyExists(_) => H2Error::AlreadyExists(path.to_string()),
                other => other,
            })?;
            // New directory starts on its parent's server.
            let server = meta.server_of(parent);
            meta.placement.insert(id, server);
            self.maybe_repartition(meta);
            Ok(())
        })
    }

    fn rmdir(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<()> {
        self.charge_service(ctx, true);
        if path.is_root() {
            return Err(H2Error::InvalidPath("cannot remove /".into()));
        }
        // O(1) at operation time: detach the subtree pointer. Content
        // objects are reclaimed asynchronously (charged to background, not
        // to this op) — like Dropbox's deferred deletion.
        let orphaned = self.with_meta(account, |meta| {
            self.charge_walk(ctx, meta, path)?;
            let r = meta.tree.resolve(path)?;
            if !meta.tree.get(r.id).expect("resolved inode").is_dir() {
                return Err(H2Error::NotADirectory(path.to_string()));
            }
            let (parent, name, _) = meta.tree.resolve_parent(path)?;
            meta.tree.detach(parent, name)?;
            let objs = meta.tree.remove_subtree(r.id);
            meta.placement.retain(|id, _| meta.tree.get(*id).is_some());
            Ok(objs)
        })?;
        let mut bg = OpCtx::new(ctx.model.clone());
        for obj in orphaned {
            let _ = self.cluster.delete(&mut bg, &self.key(account, &obj));
        }
        Ok(())
    }

    fn mv(&self, ctx: &mut OpCtx, account: &str, from: &FsPath, to: &FsPath) -> Result<()> {
        self.charge_service(ctx, true);
        if from.is_root() || to.is_root() {
            return Err(H2Error::InvalidPath("cannot move to or from /".into()));
        }
        if from == to {
            return Ok(());
        }
        if from.is_ancestor_of(to) {
            return Err(H2Error::InvalidPath(format!(
                "cannot move {from} inside itself"
            )));
        }
        let ms = self.next_ms();
        self.with_meta(account, |meta| {
            self.charge_walk(ctx, meta, from)?;
            self.charge_walk(ctx, meta, to)?;
            let (src_parent, src_name, _) = meta.tree.resolve_parent(from)?;
            let (dst_parent, dst_name, _) = meta.tree.resolve_parent(to)?;
            if meta.tree.dir_children(dst_parent)?.contains_key(dst_name) {
                return Err(H2Error::AlreadyExists(to.to_string()));
            }
            if !meta.tree.dir_children(src_parent)?.contains_key(src_name) {
                return Err(H2Error::NotFound(from.to_string()));
            }
            // O(1): pointer detach + attach, whatever the subtree holds.
            let id = meta.tree.detach(src_parent, src_name)?;
            meta.tree.attach(dst_parent, dst_name, id, ms)?;
            Ok(())
        })
    }

    fn copy(&self, ctx: &mut OpCtx, account: &str, from: &FsPath, to: &FsPath) -> Result<()> {
        self.charge_service(ctx, true);
        if from.is_root() || to.is_root() {
            return Err(H2Error::InvalidPath("cannot copy to or from /".into()));
        }
        if from == to || from.is_ancestor_of(to) {
            return Err(H2Error::InvalidPath(format!(
                "cannot copy {from} onto/inside itself"
            )));
        }
        let ms = self.next_ms();
        // Phase 1 (index): snapshot the source subtree.
        let (files, dirs, src_is_dir, src_size, src_obj) = self.with_meta(account, |meta| {
            self.charge_walk(ctx, meta, from)?;
            self.charge_walk(ctx, meta, to)?;
            let r = meta.tree.resolve(from)?;
            let inode = meta.tree.get(r.id).expect("resolved");
            let (dst_parent, dst_name, _) = meta.tree.resolve_parent(to)?;
            if meta.tree.dir_children(dst_parent)?.contains_key(dst_name) {
                return Err(H2Error::AlreadyExists(to.to_string()));
            }
            match &inode.node {
                Node::File { size, object } => {
                    Ok((Vec::new(), Vec::new(), false, *size, object.clone()))
                }
                Node::Dir { .. } => Ok((
                    meta.tree.subtree_files(r.id),
                    meta.tree.subtree_dirs(r.id),
                    true,
                    0,
                    String::new(),
                )),
            }
        })?;
        // Phase 2 (object cloud): copy content — O(n) object copies.
        let mut copied: Vec<(Vec<String>, u64, String)> = Vec::with_capacity(files.len());
        if src_is_dir {
            for (rel, size, object) in files {
                let new_obj = self.new_object_name();
                self.cluster.copy(
                    ctx,
                    &self.key(account, &object),
                    &self.key(account, &new_obj),
                )?;
                copied.push((rel, size, new_obj));
            }
        } else {
            let new_obj = self.new_object_name();
            self.cluster.copy(
                ctx,
                &self.key(account, &src_obj),
                &self.key(account, &new_obj),
            )?;
            copied.push((Vec::new(), src_size, new_obj));
        }
        // Phase 3 (index): build the destination subtree.
        self.with_meta(account, |meta| {
            let (dst_parent, dst_name, _) = meta.tree.resolve_parent(to)?;
            if src_is_dir {
                let root_id = meta.tree.mkdir(dst_parent, dst_name, ms)?;
                let server = meta.server_of(dst_parent);
                meta.placement.insert(root_id, server);
                for rel in &dirs {
                    let mut cur = root_id;
                    for comp in rel {
                        cur = match meta.tree.dir_children(cur)?.get(comp) {
                            Some(&id) => id,
                            None => {
                                let id = meta.tree.mkdir(cur, comp, ms)?;
                                meta.placement.insert(id, server);
                                id
                            }
                        };
                    }
                }
                for (rel, size, object) in copied {
                    let mut cur = root_id;
                    for comp in &rel[..rel.len() - 1] {
                        cur = *meta.tree.dir_children(cur)?.get(comp).expect("dir created");
                    }
                    meta.tree
                        .put_file(cur, rel.last().expect("file name"), size, object, ms)?;
                }
            } else {
                let (_, size, object) = copied.into_iter().next().expect("one file");
                meta.tree.put_file(dst_parent, dst_name, size, object, ms)?;
            }
            self.maybe_repartition(meta);
            Ok(())
        })
    }

    fn list(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<Vec<String>> {
        Ok(self
            .list_detailed(ctx, account, path)?
            .into_iter()
            .map(|e| e.name)
            .collect())
    }

    fn list_detailed(
        &self,
        ctx: &mut OpCtx,
        account: &str,
        path: &FsPath,
    ) -> Result<Vec<DirEntry>> {
        self.charge_service(ctx, false);
        self.with_meta(account, |meta| {
            self.charge_walk(ctx, meta, path)?;
            let r = meta.tree.resolve(path)?;
            let rows = meta.tree.list(r.id)?;
            ctx.charge_time(PER_ENTRY * rows.len() as u32);
            Ok(rows)
        })
    }

    fn write(
        &self,
        ctx: &mut OpCtx,
        account: &str,
        path: &FsPath,
        content: FileContent,
    ) -> Result<()> {
        self.charge_service(ctx, true);
        let ms = self.next_ms();
        let object = self.new_object_name();
        // Validate placement first (cheap index check), then stream content,
        // then commit the index entry.
        self.with_meta(account, |meta| {
            self.charge_walk(ctx, meta, path)?;
            let (parent, name, _) = meta.tree.resolve_parent(path).map_err(|e| match e {
                H2Error::InvalidPath(_) => H2Error::IsADirectory("/".into()),
                other => other,
            })?;
            if let Some(&id) = meta.tree.dir_children(parent)?.get(name) {
                if meta.tree.get(id).expect("child").is_dir() {
                    return Err(H2Error::IsADirectory(path.to_string()));
                }
            }
            Ok(())
        })?;
        let payload = match content {
            FileContent::Inline(v) => Payload::Inline(v.into_bytes()),
            FileContent::Simulated(n) => Payload::simulated(n, &path.to_string()),
            FileContent::SimulatedShared { size, seed } => {
                Payload::simulated(size, &format!("shared:{seed}"))
            }
        };
        let size = payload.len();
        self.cluster
            .put(ctx, &self.key(account, &object), payload, Meta::new())?;
        let old = self.with_meta(account, |meta| {
            let (parent, name, _) = meta.tree.resolve_parent(path)?;
            meta.tree.put_file(parent, name, size, object, ms)
        })?;
        if let Some(old_obj) = old {
            let mut bg = OpCtx::new(ctx.model.clone());
            let _ = self.cluster.delete(&mut bg, &self.key(account, &old_obj));
        }
        Ok(())
    }

    fn read(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<FileContent> {
        self.charge_service(ctx, false);
        let object = self.with_meta(account, |meta| {
            self.charge_walk(ctx, meta, path)?;
            let r = meta.tree.resolve(path)?;
            match &meta.tree.get(r.id).expect("resolved").node {
                Node::File { object, .. } => Ok(object.clone()),
                Node::Dir { .. } => Err(H2Error::IsADirectory(path.to_string())),
            }
        })?;
        let obj = self.cluster.get(ctx, &self.key(account, &object))?;
        Ok(match obj.payload {
            Payload::Inline(b) => FileContent::Inline(h2util::SharedBuf::from_bytes(b)),
            Payload::Simulated { size, .. } => FileContent::Simulated(size),
        })
    }

    fn delete_file(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<()> {
        self.charge_service(ctx, true);
        let object = self.with_meta(account, |meta| {
            self.charge_walk(ctx, meta, path)?;
            let (parent, name, _) = meta.tree.resolve_parent(path).map_err(|e| match e {
                H2Error::InvalidPath(_) => H2Error::IsADirectory("/".into()),
                other => other,
            })?;
            let &id = meta
                .tree
                .dir_children(parent)?
                .get(name)
                .ok_or_else(|| H2Error::NotFound(path.to_string()))?;
            if meta.tree.get(id).expect("child").is_dir() {
                return Err(H2Error::IsADirectory(path.to_string()));
            }
            meta.tree.detach(parent, name)?;
            let objs = meta.tree.remove_subtree(id);
            Ok(objs.into_iter().next().expect("file has an object"))
        })?;
        self.cluster.delete(ctx, &self.key(account, &object))
    }

    fn stat(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<DirEntry> {
        self.charge_service(ctx, false);
        self.with_meta(account, |meta| {
            self.charge_walk(ctx, meta, path)?;
            let r = meta.tree.resolve(path)?;
            let inode = meta.tree.get(r.id).expect("resolved");
            Ok(match &inode.node {
                Node::Dir { .. } => DirEntry {
                    name: path.name().unwrap_or("/").to_string(),
                    kind: EntryKind::Directory,
                    size: 0,
                    modified_ms: inode.modified_ms,
                },
                Node::File { size, .. } => DirEntry {
                    name: path.name().unwrap_or("/").to_string(),
                    kind: EntryKind::File,
                    size: *size,
                    modified_ms: inode.modified_ms,
                },
            })
        })
    }

    fn quiesce(&self) {}

    fn storage_stats(&self) -> StoreStats {
        let accounts = self.accounts.lock();
        let (records, bytes) = accounts
            .values()
            .map(|m| (m.tree.record_count(), m.tree.record_bytes()))
            .fold((0, 0), |(r, b), (r2, b2)| (r + r2, b + b2));
        StoreStats {
            objects: self.cluster.object_count(),
            bytes: self.cluster.byte_count(),
            index_records: records,
            index_bytes: bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> FsPath {
        FsPath::parse(s).unwrap()
    }

    fn setup() -> (DpFs, OpCtx) {
        let fs = DpFs::new(Cluster::new(ClusterConfig::tiny()), 3);
        let mut ctx = OpCtx::for_test();
        fs.create_account(&mut ctx, "alice").unwrap();
        (fs, ctx)
    }

    #[test]
    fn basic_roundtrip() {
        let (fs, mut ctx) = setup();
        fs.mkdir(&mut ctx, "alice", &p("/docs")).unwrap();
        fs.write(
            &mut ctx,
            "alice",
            &p("/docs/f"),
            FileContent::from_str("hello"),
        )
        .unwrap();
        assert_eq!(
            fs.read(&mut ctx, "alice", &p("/docs/f")).unwrap(),
            FileContent::from_str("hello")
        );
        assert_eq!(fs.list(&mut ctx, "alice", &p("/docs")).unwrap(), ["f"]);
        assert!(fs.uses_separate_index());
        assert!(fs.storage_stats().index_records >= 2);
    }

    #[test]
    fn move_is_constant_backend_ops() {
        let (fs, mut ctx) = setup();
        for &n in &[5usize, 50] {
            let d = format!("/d{n}");
            fs.mkdir(&mut ctx, "alice", &p(&d)).unwrap();
            for i in 0..n {
                fs.write(
                    &mut ctx,
                    "alice",
                    &p(&format!("{d}/f{i}")),
                    FileContent::from_str("x"),
                )
                .unwrap();
            }
        }
        let mut small = OpCtx::for_test();
        fs.mv(&mut small, "alice", &p("/d5"), &p("/m5")).unwrap();
        let mut large = OpCtx::for_test();
        fs.mv(&mut large, "alice", &p("/d50"), &p("/m50")).unwrap();
        assert_eq!(small.counts().total(), large.counts().total());
        // Content still reachable after the move.
        assert!(fs.read(&mut ctx, "alice", &p("/m50/f49")).is_ok());
    }

    #[test]
    fn rmdir_reclaims_content_objects() {
        let (fs, mut ctx) = setup();
        fs.mkdir(&mut ctx, "alice", &p("/d")).unwrap();
        for i in 0..10 {
            fs.write(
                &mut ctx,
                "alice",
                &p(&format!("/d/f{i}")),
                FileContent::from_str("x"),
            )
            .unwrap();
        }
        assert_eq!(fs.storage_stats().objects, 10);
        fs.rmdir(&mut ctx, "alice", &p("/d")).unwrap();
        assert_eq!(fs.storage_stats().objects, 0);
        assert!(fs.stat(&mut ctx, "alice", &p("/d")).is_err());
    }

    #[test]
    fn copy_directory_deep() {
        let (fs, mut ctx) = setup();
        fs.mkdir(&mut ctx, "alice", &p("/a")).unwrap();
        fs.mkdir(&mut ctx, "alice", &p("/a/sub")).unwrap();
        fs.write(
            &mut ctx,
            "alice",
            &p("/a/sub/f"),
            FileContent::from_str("v"),
        )
        .unwrap();
        fs.copy(&mut ctx, "alice", &p("/a"), &p("/b")).unwrap();
        assert_eq!(
            fs.read(&mut ctx, "alice", &p("/b/sub/f")).unwrap(),
            FileContent::from_str("v")
        );
        fs.delete_file(&mut ctx, "alice", &p("/b/sub/f")).unwrap();
        assert!(fs.read(&mut ctx, "alice", &p("/a/sub/f")).is_ok());
    }

    #[test]
    fn service_overhead_dominates_small_ops() {
        let fs = DpFs::new(
            Cluster::new(ClusterConfig {
                cost: Arc::new(h2util::CostModel::rack_default()),
                ..ClusterConfig::default()
            }),
            3,
        );
        let mut ctx = OpCtx::new(fs.cost_model());
        fs.create_account(&mut ctx, "a").unwrap();
        let mut mk = OpCtx::new(fs.cost_model());
        fs.mkdir(&mut mk, "a", &p("/d")).unwrap();
        let ms = mk.elapsed().as_secs_f64() * 1e3;
        assert!(
            (120.0..260.0).contains(&ms),
            "DP MKDIR should land in the paper's 150-200ms band, got {ms}"
        );
    }

    #[test]
    fn repartition_spreads_directories() {
        let mut fs = DpFs::new(Cluster::new(ClusterConfig::tiny()), 3);
        fs.split_threshold = 32;
        let mut ctx = OpCtx::for_test();
        fs.create_account(&mut ctx, "a").unwrap();
        fs.mkdir(&mut ctx, "a", &p("/big")).unwrap();
        for i in 0..100 {
            fs.mkdir(&mut ctx, "a", &p(&format!("/big/d{i}"))).unwrap();
        }
        let loads = fs.server_loads("a");
        let used = loads.iter().filter(|&&l| l > 0).count();
        assert!(used >= 2, "repartition never moved anything: {loads:?}");
        // Tree still fully functional after repartitions.
        assert_eq!(fs.list(&mut ctx, "a", &p("/big")).unwrap().len(), 100);
    }

    #[test]
    fn kind_errors() {
        let (fs, mut ctx) = setup();
        fs.write(&mut ctx, "alice", &p("/f"), FileContent::from_str("x"))
            .unwrap();
        assert_eq!(
            fs.rmdir(&mut ctx, "alice", &p("/f")).unwrap_err().code(),
            "not-a-directory"
        );
        fs.mkdir(&mut ctx, "alice", &p("/d")).unwrap();
        assert_eq!(
            fs.read(&mut ctx, "alice", &p("/d")).unwrap_err().code(),
            "is-a-directory"
        );
        assert_eq!(
            fs.mv(&mut ctx, "alice", &p("/d"), &p("/d/x"))
                .unwrap_err()
                .code(),
            "invalid-path"
        );
    }

    #[test]
    fn overwrite_reclaims_old_blob() {
        let (fs, mut ctx) = setup();
        fs.write(&mut ctx, "alice", &p("/f"), FileContent::from_str("old"))
            .unwrap();
        fs.write(&mut ctx, "alice", &p("/f"), FileContent::from_str("newer"))
            .unwrap();
        assert_eq!(fs.storage_stats().objects, 1);
        assert_eq!(
            fs.read(&mut ctx, "alice", &p("/f")).unwrap(),
            FileContent::from_str("newer")
        );
    }
}
