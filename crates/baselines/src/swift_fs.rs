//! The OpenStack Swift pseudo-filesystem: Consistent Hash over full file
//! paths, optionally accelerated by the per-container file-path DB (§2,
//! Figures 1b and 3).
//!
//! * Files are objects named by their full path (`home/alice/a.txt`);
//!   directories are zero-byte marker objects with a trailing slash
//!   (`home/alice/`). File access hashes the full path — O(1).
//! * Any operation that traverses or changes directory structure must touch
//!   every object under the prefix: RMDIR and MOVE re-key `n` objects,
//!   which is exactly the O(n) the paper measures in Figures 7 and 8.
//! * With the file-path DB (`with_db = true`, the "OpenStack Swift" row),
//!   directory enumeration binary-searches the sorted DB: LIST costs
//!   O(m·log N), COPY O(n + log N).
//! * Without it (`with_db = false`, the plain "Consistent Hash" row),
//!   enumeration pages through the entire flat listing: O(N).

use std::sync::Arc;

use h2fsapi::{CloudFs, DirEntry, EntryKind, FileContent, FsPath, StoreStats};
use h2util::{H2Error, OpCtx, PrimKind, Result};
use swiftsim::{
    Cluster, ClusterConfig, ListEntry, ListOptions, Meta, ObjectKey, ObjectStore, Payload,
};

/// Container holding each account's pseudo-filesystem.
const FS_CONTAINER: &str = "fs";
/// Page size of plain-CH full listings.
const SCAN_PAGE: u64 = 1000;

/// The Swift pseudo-filesystem baseline.
pub struct SwiftFs {
    cluster: Arc<Cluster>,
    with_db: bool,
}

impl SwiftFs {
    /// Wrap an existing cluster. `with_db` selects the CH+file-path-DB row
    /// (true, i.e. OpenStack Swift) or the plain CH row (false).
    pub fn new(cluster: Arc<Cluster>, with_db: bool) -> Self {
        SwiftFs { cluster, with_db }
    }

    /// Stand-alone rack-shaped instance.
    pub fn rack(with_db: bool) -> Self {
        SwiftFs::new(Cluster::new(ClusterConfig::default()), with_db)
    }

    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    pub fn cost_model(&self) -> Arc<h2util::CostModel> {
        self.cluster.cost_model()
    }

    fn obj_name(path: &FsPath) -> String {
        path.components().join("/")
    }

    fn marker_name(path: &FsPath) -> String {
        let mut s = Self::obj_name(path);
        s.push('/');
        s
    }

    fn key(&self, account: &str, name: &str) -> ObjectKey {
        ObjectKey::new(account, FS_CONTAINER, name)
    }

    fn check_account(&self, account: &str) -> Result<()> {
        if self.cluster.account_exists(account) {
            Ok(())
        } else {
            Err(H2Error::NoSuchAccount(account.to_string()))
        }
    }

    /// Does a directory exist (root always does)?
    fn dir_exists(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<bool> {
        if path.is_root() {
            return Ok(true);
        }
        self.cluster
            .exists(ctx, &self.key(account, &Self::marker_name(path)))
    }

    /// Extra charges that model the enumeration strategy of each variant.
    /// `matched` rows were returned; the DB (or flat listing) holds
    /// `total` rows. One base `DbQuery` was already charged by the cluster.
    fn charge_enumeration(&self, ctx: &mut OpCtx, total: u64, matched: usize) {
        let model = ctx.model.clone();
        if self.with_db {
            // O(m·log N): one binary search per returned row (the paper's
            // stated complexity for Swift's DB-assisted LIST).
            for _ in 1..matched.max(1) {
                ctx.charge(PrimKind::DbQuery, model.db_query_cost(total));
            }
        } else {
            // Plain CH: page through the entire flat namespace.
            let pages = total.div_ceil(SCAN_PAGE).max(1);
            for _ in 0..pages {
                ctx.charge(PrimKind::Get, model.get_cost((SCAN_PAGE as usize) * 64));
            }
            ctx.charge_time(model.per_entry_cpu * total as u32);
        }
    }

    /// Enumerate all index rows under `prefix` (no delimiter).
    fn enumerate(
        &self,
        ctx: &mut OpCtx,
        account: &str,
        prefix: &str,
    ) -> Result<Vec<(String, u64, u64, String)>> {
        let total = self.cluster.index_rows(account, FS_CONTAINER);
        let rows = self.cluster.list(
            ctx,
            account,
            FS_CONTAINER,
            &ListOptions::with_prefix(prefix),
        )?;
        self.charge_enumeration(ctx, total, rows.len());
        Ok(rows
            .into_iter()
            .filter_map(|e| match e {
                ListEntry::Object {
                    name,
                    size,
                    modified_ms,
                    content_type,
                } => Some((name, size, modified_ms, content_type)),
                ListEntry::Subdir { .. } => None,
            })
            .collect())
    }

    fn put_marker(&self, ctx: &mut OpCtx, account: &str, name: &str) -> Result<()> {
        let mut meta = Meta::new();
        meta.insert("content-type".into(), "application/directory".into());
        self.cluster.put(
            ctx,
            &self.key(account, name),
            Payload::Inline(bytes::Bytes::new()),
            meta,
        )
    }
}

impl CloudFs for SwiftFs {
    fn name(&self) -> &'static str {
        if self.with_db {
            "Swift (CH+DB)"
        } else {
            "Plain CH"
        }
    }

    fn uses_separate_index(&self) -> bool {
        false // single cloud; the DB lives on the storage nodes
    }

    fn create_account(&self, ctx: &mut OpCtx, account: &str) -> Result<()> {
        self.cluster.create_account_ctx(ctx, account)?;
        // The container row is one more account-DB update.
        let model = ctx.model.clone();
        ctx.charge(PrimKind::DbUpdate, model.db_update_cost());
        self.cluster.create_container(account, FS_CONTAINER, true)
    }

    fn delete_account(&self, ctx: &mut OpCtx, account: &str) -> Result<()> {
        self.cluster.delete_account_ctx(ctx, account)
    }

    fn mkdir(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<()> {
        self.check_account(account)?;
        if path.is_root() {
            return Err(H2Error::AlreadyExists("/".into()));
        }
        let parent = path.parent().expect("non-root");
        if !self.dir_exists(ctx, account, &parent)? {
            return Err(H2Error::NotFound(parent.to_string()));
        }
        if self.dir_exists(ctx, account, path)?
            || self
                .cluster
                .exists(ctx, &self.key(account, &Self::obj_name(path)))?
        {
            return Err(H2Error::AlreadyExists(path.to_string()));
        }
        self.put_marker(ctx, account, &Self::marker_name(path))
    }

    fn rmdir(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<()> {
        self.check_account(account)?;
        if path.is_root() {
            return Err(H2Error::InvalidPath("cannot remove /".into()));
        }
        if !self.dir_exists(ctx, account, path)? {
            // Maybe it is a file.
            if self
                .cluster
                .exists(ctx, &self.key(account, &Self::obj_name(path)))?
            {
                return Err(H2Error::NotADirectory(path.to_string()));
            }
            return Err(H2Error::NotFound(path.to_string()));
        }
        // O(n): every object under the prefix must be deleted individually.
        let prefix = Self::marker_name(path);
        let rows = self.enumerate(ctx, account, &prefix)?;
        for (name, _, _, _) in rows {
            // The listing includes the directory's own marker; it is
            // deleted in this same sweep.
            self.cluster.delete(ctx, &self.key(account, &name))?;
        }
        Ok(())
    }

    fn mv(&self, ctx: &mut OpCtx, account: &str, from: &FsPath, to: &FsPath) -> Result<()> {
        self.check_account(account)?;
        if from.is_root() || to.is_root() {
            return Err(H2Error::InvalidPath("cannot move to or from /".into()));
        }
        if from == to {
            // A self-move is a no-op, but not a free one: the client still
            // paid the source lookup (one HEAD) before concluding so.
            let model = ctx.model.clone();
            ctx.charge(PrimKind::Head, model.head_cost());
            return Ok(());
        }
        if from.is_ancestor_of(to) {
            return Err(H2Error::InvalidPath(format!(
                "cannot move {from} inside itself"
            )));
        }
        // Canonical order: source first, then destination parent, then
        // destination conflict.
        let from_file = Self::obj_name(from);
        let src_is_file = self.cluster.exists(ctx, &self.key(account, &from_file))?;
        if !src_is_file && !self.dir_exists(ctx, account, from)? {
            return Err(H2Error::NotFound(from.to_string()));
        }
        let to_parent = to.parent().expect("non-root");
        if !self.dir_exists(ctx, account, &to_parent)? {
            return Err(H2Error::NotFound(to_parent.to_string()));
        }
        if self.dir_exists(ctx, account, to)?
            || self
                .cluster
                .exists(ctx, &self.key(account, &Self::obj_name(to)))?
        {
            return Err(H2Error::AlreadyExists(to.to_string()));
        }
        if src_is_file {
            // Single file: copy + delete (full path changes → re-keyed).
            self.cluster.copy(
                ctx,
                &self.key(account, &from_file),
                &self.key(account, &Self::obj_name(to)),
            )?;
            return self.cluster.delete(ctx, &self.key(account, &from_file));
        }
        // Directory: every object under the prefix is re-keyed — O(n).
        let src_prefix = Self::marker_name(from);
        let dst_prefix = Self::marker_name(to);
        let rows = self.enumerate(ctx, account, &src_prefix)?;
        for (name, _, _, _) in rows {
            // Rows include the source marker itself, which re-keys to the
            // destination marker.
            let new_name = format!("{dst_prefix}{}", &name[src_prefix.len()..]);
            self.cluster.copy(
                ctx,
                &self.key(account, &name),
                &self.key(account, &new_name),
            )?;
            self.cluster.delete(ctx, &self.key(account, &name))?;
        }
        Ok(())
    }

    fn copy(&self, ctx: &mut OpCtx, account: &str, from: &FsPath, to: &FsPath) -> Result<()> {
        self.check_account(account)?;
        if from.is_root() || to.is_root() {
            return Err(H2Error::InvalidPath("cannot copy to or from /".into()));
        }
        if from == to || from.is_ancestor_of(to) {
            return Err(H2Error::InvalidPath(format!(
                "cannot copy {from} onto/inside itself"
            )));
        }
        // Canonical order: source, destination parent, destination.
        let from_file = Self::obj_name(from);
        let src_is_file = self.cluster.exists(ctx, &self.key(account, &from_file))?;
        if !src_is_file && !self.dir_exists(ctx, account, from)? {
            return Err(H2Error::NotFound(from.to_string()));
        }
        let to_parent = to.parent().expect("non-root");
        if !self.dir_exists(ctx, account, &to_parent)? {
            return Err(H2Error::NotFound(to_parent.to_string()));
        }
        if self.dir_exists(ctx, account, to)?
            || self
                .cluster
                .exists(ctx, &self.key(account, &Self::obj_name(to)))?
        {
            return Err(H2Error::AlreadyExists(to.to_string()));
        }
        if src_is_file {
            return self.cluster.copy(
                ctx,
                &self.key(account, &from_file),
                &self.key(account, &Self::obj_name(to)),
            );
        }
        let src_prefix = Self::marker_name(from);
        let dst_prefix = Self::marker_name(to);
        let rows = self.enumerate(ctx, account, &src_prefix)?;
        for (name, _, _, _) in rows {
            let new_name = format!("{dst_prefix}{}", &name[src_prefix.len()..]);
            self.cluster.copy(
                ctx,
                &self.key(account, &name),
                &self.key(account, &new_name),
            )?;
        }
        self.put_marker(ctx, account, &dst_prefix)
    }

    fn list(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<Vec<String>> {
        Ok(self
            .list_detailed(ctx, account, path)?
            .into_iter()
            .map(|e| e.name)
            .collect())
    }

    fn list_detailed(
        &self,
        ctx: &mut OpCtx,
        account: &str,
        path: &FsPath,
    ) -> Result<Vec<DirEntry>> {
        self.check_account(account)?;
        if !self.dir_exists(ctx, account, path)? {
            if self
                .cluster
                .exists(ctx, &self.key(account, &Self::obj_name(path)))?
            {
                return Err(H2Error::NotADirectory(path.to_string()));
            }
            return Err(H2Error::NotFound(path.to_string()));
        }
        let prefix = if path.is_root() {
            String::new()
        } else {
            Self::marker_name(path)
        };
        let total = self.cluster.index_rows(account, FS_CONTAINER);
        let rows = self.cluster.list(
            ctx,
            account,
            FS_CONTAINER,
            &ListOptions::dir_level(&prefix, '/'),
        )?;
        self.charge_enumeration(ctx, total, rows.len());
        Ok(rows
            .into_iter()
            .filter_map(|e| match e {
                ListEntry::Object {
                    name,
                    size,
                    modified_ms,
                    content_type,
                } => {
                    if content_type == "application/directory" {
                        // A marker directly at this level would be the
                        // directory's own marker; skip.
                        None
                    } else {
                        Some(DirEntry {
                            name: name[prefix.len()..].to_string(),
                            kind: EntryKind::File,
                            size,
                            modified_ms,
                        })
                    }
                }
                ListEntry::Subdir { prefix: sub } => Some(DirEntry {
                    name: sub[prefix.len()..sub.len() - 1].to_string(),
                    kind: EntryKind::Directory,
                    size: 0,
                    modified_ms: 0,
                }),
            })
            .collect())
    }

    fn write(
        &self,
        ctx: &mut OpCtx,
        account: &str,
        path: &FsPath,
        content: FileContent,
    ) -> Result<()> {
        self.check_account(account)?;
        let Some(_) = path.name() else {
            return Err(H2Error::IsADirectory("/".into()));
        };
        let parent = path.parent().expect("non-root");
        if !self.dir_exists(ctx, account, &parent)? {
            return Err(H2Error::NotFound(parent.to_string()));
        }
        if self.dir_exists(ctx, account, path)? {
            return Err(H2Error::IsADirectory(path.to_string()));
        }
        let payload = match content {
            FileContent::Inline(v) => Payload::Inline(v.into_bytes()),
            FileContent::Simulated(n) => Payload::simulated(n, &path.to_string()),
            FileContent::SimulatedShared { size, seed } => {
                Payload::simulated(size, &format!("shared:{seed}"))
            }
        };
        let mut meta = Meta::new();
        meta.insert("content-type".into(), "application/octet-stream".into());
        self.cluster.put(
            ctx,
            &self.key(account, &Self::obj_name(path)),
            payload,
            meta,
        )
    }

    fn read(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<FileContent> {
        self.check_account(account)?;
        if path.is_root() {
            return Err(H2Error::IsADirectory("/".into()));
        }
        // O(1): one hash of the full path, one GET.
        match self
            .cluster
            .get(ctx, &self.key(account, &Self::obj_name(path)))
        {
            Ok(obj) => Ok(match obj.payload {
                Payload::Inline(b) => FileContent::Inline(h2util::SharedBuf::from_bytes(b)),
                Payload::Simulated { size, .. } => FileContent::Simulated(size),
            }),
            Err(H2Error::NotFound(_)) if self.dir_exists(ctx, account, path)? => {
                Err(H2Error::IsADirectory(path.to_string()))
            }
            Err(e) => Err(e),
        }
    }

    fn delete_file(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<()> {
        self.check_account(account)?;
        if path.is_root() {
            return Err(H2Error::IsADirectory("/".into()));
        }
        match self
            .cluster
            .delete(ctx, &self.key(account, &Self::obj_name(path)))
        {
            Err(H2Error::NotFound(_)) if self.dir_exists(ctx, account, path)? => {
                Err(H2Error::IsADirectory(path.to_string()))
            }
            other => other,
        }
    }

    fn stat(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<DirEntry> {
        self.check_account(account)?;
        if path.is_root() {
            // Root is synthesized, but the client still paid the account
            // HEAD that proves it exists.
            let model = ctx.model.clone();
            ctx.charge(PrimKind::Head, model.head_cost());
            return Ok(DirEntry {
                name: "/".into(),
                kind: EntryKind::Directory,
                size: 0,
                modified_ms: 0,
            });
        }
        match self
            .cluster
            .head(ctx, &self.key(account, &Self::obj_name(path)))
        {
            Ok(info) => Ok(DirEntry {
                name: path.name().unwrap().to_string(),
                kind: EntryKind::File,
                size: info.size,
                modified_ms: info.modified_ms,
            }),
            Err(H2Error::NotFound(_)) => {
                let info = self
                    .cluster
                    .head(ctx, &self.key(account, &Self::marker_name(path)))
                    .map_err(|_| H2Error::NotFound(path.to_string()))?;
                Ok(DirEntry {
                    name: path.name().unwrap().to_string(),
                    kind: EntryKind::Directory,
                    size: 0,
                    modified_ms: info.modified_ms,
                })
            }
            Err(e) => Err(e),
        }
    }

    fn quiesce(&self) {
        // When the cluster runs with asynchronous container updates, this
        // is the container-updater daemon catching up.
        self.cluster.flush_index_updates();
    }

    fn storage_stats(&self) -> StoreStats {
        StoreStats {
            objects: self.cluster.object_count(),
            bytes: self.cluster.byte_count(),
            index_records: if self.with_db {
                self.cluster.total_index_rows()
            } else {
                0
            },
            index_bytes: if self.with_db {
                self.cluster.total_index_bytes()
            } else {
                0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> FsPath {
        FsPath::parse(s).unwrap()
    }

    fn setup() -> (SwiftFs, OpCtx) {
        let cluster = Cluster::new(ClusterConfig::tiny());
        let fs = SwiftFs::new(cluster, true);
        let mut ctx = OpCtx::for_test();
        fs.create_account(&mut ctx, "alice").unwrap();
        (fs, ctx)
    }

    #[test]
    fn mkdir_write_list_roundtrip() {
        let (fs, mut ctx) = setup();
        fs.mkdir(&mut ctx, "alice", &p("/home")).unwrap();
        fs.write(
            &mut ctx,
            "alice",
            &p("/home/a.txt"),
            FileContent::from_str("hi"),
        )
        .unwrap();
        fs.mkdir(&mut ctx, "alice", &p("/home/sub")).unwrap();
        let rows = fs.list_detailed(&mut ctx, "alice", &p("/home")).unwrap();
        let names: Vec<_> = rows.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["a.txt", "sub"]);
        assert_eq!(rows[0].kind, EntryKind::File);
        assert_eq!(rows[1].kind, EntryKind::Directory);
        assert_eq!(
            fs.read(&mut ctx, "alice", &p("/home/a.txt")).unwrap(),
            FileContent::from_str("hi")
        );
    }

    #[test]
    fn parent_must_exist() {
        let (fs, mut ctx) = setup();
        assert_eq!(
            fs.mkdir(&mut ctx, "alice", &p("/a/b")).unwrap_err().code(),
            "not-found"
        );
        assert_eq!(
            fs.write(&mut ctx, "alice", &p("/a/f"), FileContent::from_str("x"))
                .unwrap_err()
                .code(),
            "not-found"
        );
    }

    #[test]
    fn move_directory_rekeys_every_object() {
        let (fs, mut ctx) = setup();
        fs.mkdir(&mut ctx, "alice", &p("/src")).unwrap();
        for i in 0..5 {
            fs.write(
                &mut ctx,
                "alice",
                &p(&format!("/src/f{i}")),
                FileContent::from_str("x"),
            )
            .unwrap();
        }
        let mut mv_ctx = OpCtx::for_test();
        fs.mv(&mut mv_ctx, "alice", &p("/src"), &p("/dst")).unwrap();
        // O(n): 5 copies + 5 deletes at least.
        assert!(mv_ctx.counts().copies >= 5);
        assert!(mv_ctx.counts().deletes >= 5);
        assert_eq!(
            fs.read(&mut ctx, "alice", &p("/dst/f3")).unwrap(),
            FileContent::from_str("x")
        );
        assert!(fs.stat(&mut ctx, "alice", &p("/src")).is_err());
    }

    #[test]
    fn rmdir_deletes_subtree() {
        let (fs, mut ctx) = setup();
        fs.mkdir(&mut ctx, "alice", &p("/d")).unwrap();
        fs.mkdir(&mut ctx, "alice", &p("/d/nested")).unwrap();
        fs.write(
            &mut ctx,
            "alice",
            &p("/d/nested/f"),
            FileContent::from_str("x"),
        )
        .unwrap();
        fs.rmdir(&mut ctx, "alice", &p("/d")).unwrap();
        assert!(fs.stat(&mut ctx, "alice", &p("/d")).is_err());
        assert!(fs.read(&mut ctx, "alice", &p("/d/nested/f")).is_err());
        assert!(fs.list(&mut ctx, "alice", &p("/")).unwrap().is_empty());
    }

    #[test]
    fn copy_directory_preserves_source() {
        let (fs, mut ctx) = setup();
        fs.mkdir(&mut ctx, "alice", &p("/a")).unwrap();
        fs.write(&mut ctx, "alice", &p("/a/f"), FileContent::from_str("x"))
            .unwrap();
        fs.copy(&mut ctx, "alice", &p("/a"), &p("/b")).unwrap();
        assert!(fs.read(&mut ctx, "alice", &p("/a/f")).is_ok());
        assert!(fs.read(&mut ctx, "alice", &p("/b/f")).is_ok());
    }

    #[test]
    fn file_access_is_a_single_get() {
        let (fs, mut ctx) = setup();
        fs.mkdir(&mut ctx, "alice", &p("/very")).unwrap();
        fs.mkdir(&mut ctx, "alice", &p("/very/deep")).unwrap();
        fs.write(
            &mut ctx,
            "alice",
            &p("/very/deep/f"),
            FileContent::from_str("x"),
        )
        .unwrap();
        let mut read_ctx = OpCtx::for_test();
        fs.read(&mut read_ctx, "alice", &p("/very/deep/f")).unwrap();
        assert_eq!(read_ctx.counts().gets, 1);
        assert_eq!(read_ctx.counts().total(), 1);
    }

    #[test]
    fn move_cycle_and_conflict_rejected() {
        let (fs, mut ctx) = setup();
        fs.mkdir(&mut ctx, "alice", &p("/a")).unwrap();
        fs.mkdir(&mut ctx, "alice", &p("/b")).unwrap();
        assert_eq!(
            fs.mv(&mut ctx, "alice", &p("/a"), &p("/a/inner"))
                .unwrap_err()
                .code(),
            "invalid-path"
        );
        assert_eq!(
            fs.mv(&mut ctx, "alice", &p("/a"), &p("/b"))
                .unwrap_err()
                .code(),
            "already-exists"
        );
    }

    #[test]
    fn dir_file_kind_confusion_is_caught() {
        let (fs, mut ctx) = setup();
        fs.write(&mut ctx, "alice", &p("/f"), FileContent::from_str("x"))
            .unwrap();
        assert_eq!(
            fs.rmdir(&mut ctx, "alice", &p("/f")).unwrap_err().code(),
            "not-a-directory"
        );
        fs.mkdir(&mut ctx, "alice", &p("/d")).unwrap();
        assert_eq!(
            fs.read(&mut ctx, "alice", &p("/d")).unwrap_err().code(),
            "is-a-directory"
        );
        assert_eq!(
            fs.delete_file(&mut ctx, "alice", &p("/d"))
                .unwrap_err()
                .code(),
            "is-a-directory"
        );
        assert_eq!(
            fs.mkdir(&mut ctx, "alice", &p("/f")).unwrap_err().code(),
            "already-exists"
        );
    }

    #[test]
    fn stats_report_db_rows_only_with_db() {
        let (fs, mut ctx) = setup();
        fs.write(&mut ctx, "alice", &p("/f"), FileContent::from_str("x"))
            .unwrap();
        assert!(fs.storage_stats().index_records > 0);
        let plain = SwiftFs::new(Cluster::new(ClusterConfig::tiny()), false);
        plain.create_account(&mut ctx, "bob").unwrap();
        plain
            .write(&mut ctx, "bob", &p("/f"), FileContent::from_str("x"))
            .unwrap();
        assert_eq!(plain.storage_stats().index_records, 0);
        assert_eq!(plain.name(), "Plain CH");
    }
}
