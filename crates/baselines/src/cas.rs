//! Content Addressable Storage with a multi-layer (pointer-block) index —
//! the Foundation/Venti/Camlistore architecture (§2).
//!
//! Every block — file content or directory *pointer block* — is stored at
//! the address derived from its own content hash. Hierarchy is expressed by
//! pointer blocks listing `(name, child-hash)` pairs, up to a per-account
//! root hash. Consequences, exactly as Table 1 states:
//!
//! * file access **by hash** is O(1) — one GET at the content address
//!   ([`CasFs::read_by_hash`]);
//! * any structural change invalidates hashes up the tree, and the paper's
//!   model has the system "reconstruct the whole hierarchical index" —
//!   O(N) pointer-block rewrites for MKDIR, RMDIR, MOVE and COPY;
//! * identical content is stored once (deduplication for free);
//! * old blocks become garbage (immutable store).

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

use h2fsapi::{CloudFs, DirEntry, EntryKind, FileContent, FsPath, StoreStats};
use h2util::hash::Digest128;
use h2util::{H2Error, OpCtx, PrimKind, Result};
use swiftsim::{Cluster, ClusterConfig, Meta, ObjectKey, ObjectStore, Payload};

use crate::tree::{Node, TreeIndex};

const CONTAINER: &str = "blocks";

/// Per-account state: the shadow tree used to rebuild the index, plus the
/// current root pointer-block hash.
struct AccountState {
    tree: TreeIndex,
    root_hash: Digest128,
    ms: u64,
}

/// The content-addressable filesystem.
pub struct CasFs {
    cluster: Arc<Cluster>,
    accounts: Mutex<HashMap<String, AccountState>>,
}

impl CasFs {
    pub fn new(cluster: Arc<Cluster>) -> Self {
        CasFs {
            cluster,
            accounts: Mutex::new(HashMap::new()),
        }
    }

    pub fn rack() -> Self {
        Self::new(Cluster::new(ClusterConfig::default()))
    }

    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    pub fn cost_model(&self) -> Arc<h2util::CostModel> {
        self.cluster.cost_model()
    }

    fn key(&self, account: &str, hash: Digest128) -> ObjectKey {
        ObjectKey::new(account, CONTAINER, &format!("blk-{hash}"))
    }

    fn with_state<T>(
        &self,
        account: &str,
        f: impl FnOnce(&mut AccountState) -> Result<T>,
    ) -> Result<T> {
        let mut accounts = self.accounts.lock();
        let st = accounts
            .get_mut(account)
            .ok_or_else(|| H2Error::NoSuchAccount(account.to_string()))?;
        f(st)
    }

    /// Store a block if not already present (dedup: identical content has
    /// an identical address).
    fn put_block(&self, ctx: &mut OpCtx, account: &str, payload: Payload) -> Result<Digest128> {
        let hash = payload.digest();
        let key = self.key(account, hash);
        if !self.cluster.exists(ctx, &key)? {
            self.cluster.put(ctx, &key, payload, Meta::new())?;
        }
        Ok(hash)
    }

    /// Rebuild every pointer block bottom-up from the shadow tree and
    /// return the new root hash. This is the O(N) "reconstruct the whole
    /// hierarchical index" that every structural operation pays.
    fn rebuild_index(&self, ctx: &mut OpCtx, account: &str, st: &mut AccountState) -> Result<()> {
        fn build(
            fs: &CasFs,
            ctx: &mut OpCtx,
            account: &str,
            tree: &TreeIndex,
            id: u64,
            file_hashes: &HashMap<u64, Digest128>,
        ) -> Result<Digest128> {
            let children = tree.dir_children(id)?;
            let mut body = String::from("CAS-DIR\n");
            for (name, &cid) in children {
                let inode = tree.get(cid).expect("child inode");
                match &inode.node {
                    Node::Dir { .. } => {
                        let h = build(fs, ctx, account, tree, cid, file_hashes)?;
                        body.push_str(&format!("{name}\tD\t{h}\t0\t{}\n", inode.modified_ms));
                    }
                    Node::File { size, .. } => {
                        let h = file_hashes[&cid];
                        body.push_str(&format!("{name}\tF\t{h}\t{size}\t{}\n", inode.modified_ms));
                    }
                }
            }
            fs.put_block(ctx, account, Payload::from_string(body))
        }

        // Collect file content hashes recorded in the shadow tree (stored
        // in the `object` field as the hex digest).
        let mut file_hashes = HashMap::new();
        let mut stack = vec![st.tree.root()];
        while let Some(id) = stack.pop() {
            match &st.tree.get(id).expect("inode").node {
                Node::Dir { children } => stack.extend(children.values().copied()),
                Node::File { object, .. } => {
                    let h = Digest128::from_hex(object)
                        .ok_or_else(|| H2Error::Corrupt(format!("bad stored hash {object}")))?;
                    file_hashes.insert(id, h);
                }
            }
        }
        st.root_hash = build(self, ctx, account, &st.tree, st.tree.root(), &file_hashes)?;
        Ok(())
    }

    /// O(1) file access by content hash — the CAS fast path of Table 1.
    pub fn read_by_hash(
        &self,
        ctx: &mut OpCtx,
        account: &str,
        hash: Digest128,
    ) -> Result<FileContent> {
        let obj = self.cluster.get(ctx, &self.key(account, hash))?;
        Ok(match obj.payload {
            Payload::Inline(b) => FileContent::Inline(h2util::SharedBuf::from_bytes(b)),
            Payload::Simulated { size, .. } => FileContent::Simulated(size),
        })
    }

    /// Content hash of the file at `path` (what a CAS client would keep).
    pub fn hash_of(&self, account: &str, path: &FsPath) -> Result<Digest128> {
        self.with_state(account, |st| {
            let r = st.tree.resolve(path)?;
            match &st.tree.get(r.id).expect("resolved").node {
                Node::File { object, .. } => Digest128::from_hex(object)
                    .ok_or_else(|| H2Error::Corrupt(format!("bad stored hash {object}"))),
                Node::Dir { .. } => Err(H2Error::IsADirectory(path.to_string())),
            }
        })
    }

    /// Current root pointer-block hash.
    pub fn root_hash(&self, account: &str) -> Result<Digest128> {
        self.with_state(account, |st| Ok(st.root_hash))
    }

    /// Garbage-sweep the immutable block store: every structural change
    /// leaves old pointer blocks (and possibly unreferenced content
    /// blocks) behind; this pass walks the current root, marks reachable
    /// blocks, and deletes the rest. Returns the number reclaimed.
    pub fn sweep_garbage(&self, ctx: &mut OpCtx, account: &str) -> Result<usize> {
        // Mark: every block reachable from the current root.
        let root = self.with_state(account, |st| Ok(st.root_hash))?;
        let mut live: std::collections::HashSet<String> = std::collections::HashSet::new();
        let mut stack = vec![root];
        while let Some(h) = stack.pop() {
            if !live.insert(format!("blk-{h}")) {
                continue;
            }
            let obj = self.cluster.get(ctx, &self.key(account, h))?;
            let Some(body) = obj.payload.as_str() else {
                continue;
            };
            if !body.starts_with("CAS-DIR") {
                continue; // content block: no children
            }
            for line in body.lines().skip(1) {
                let mut f = line.split('\t');
                if let (Some(_), Some(_), Some(hash)) = (f.next(), f.next(), f.next()) {
                    if let Some(d) = Digest128::from_hex(hash) {
                        stack.push(d);
                    }
                }
            }
        }
        // Sweep: enumerate the arena and delete unreachable blocks.
        let rows = self.cluster.list(
            ctx,
            account,
            CONTAINER,
            &swiftsim::ListOptions::with_prefix("blk-"),
        )?;
        let mut reclaimed = 0usize;
        for row in rows {
            let name = row.name().to_string();
            if !live.contains(&name) {
                self.cluster
                    .delete(ctx, &swiftsim::ObjectKey::new(account, CONTAINER, &name))?;
                reclaimed += 1;
            }
        }
        Ok(reclaimed)
    }

    /// Walk pointer blocks from the root — the path-based lookup that costs
    /// one GET per level.
    fn walk_blocks(
        &self,
        ctx: &mut OpCtx,
        account: &str,
        root: Digest128,
        path: &FsPath,
    ) -> Result<(char, Digest128, u64, u64)> {
        // Returns (kind, hash, size, ms) of the final component.
        let mut cur = root;
        let comps = path.components();
        if comps.is_empty() {
            return Ok(('D', cur, 0, 0));
        }
        for (i, comp) in comps.iter().enumerate() {
            let obj = self.cluster.get(ctx, &self.key(account, cur))?;
            let body = obj
                .payload
                .as_str()
                .ok_or_else(|| H2Error::Corrupt("pointer block not a string".into()))?;
            let mut found = None;
            for line in body.lines().skip(1) {
                let mut f = line.split('\t');
                match (f.next(), f.next(), f.next(), f.next(), f.next()) {
                    (Some(name), Some(kind), Some(hash), Some(size), Some(ms)) if name == comp => {
                        let kind = kind.chars().next().unwrap_or('?');
                        let hash = Digest128::from_hex(hash)
                            .ok_or_else(|| H2Error::Corrupt("bad hash in block".into()))?;
                        let size: u64 = size.parse().unwrap_or(0);
                        let ms: u64 = ms.parse().unwrap_or(0);
                        found = Some((kind, hash, size, ms));
                        break;
                    }
                    _ => {}
                }
            }
            let (kind, hash, size, ms) =
                found.ok_or_else(|| H2Error::NotFound(path.to_string()))?;
            if i + 1 == comps.len() {
                return Ok((kind, hash, size, ms));
            }
            if kind != 'D' {
                return Err(H2Error::NotADirectory(path.to_string()));
            }
            cur = hash;
        }
        unreachable!()
    }

    fn next_ms(st: &mut AccountState) -> u64 {
        st.ms += 1;
        st.ms
    }
}

impl CloudFs for CasFs {
    fn name(&self) -> &'static str {
        "CAS (Multi-Layer)"
    }

    fn uses_separate_index(&self) -> bool {
        false // the index is itself made of blocks in the cloud
    }

    fn create_account(&self, ctx: &mut OpCtx, account: &str) -> Result<()> {
        self.cluster.create_account(account)?;
        // Indexed: a CAS arena keeps a block index (Venti's index) — here
        // it also lets the garbage sweep enumerate blocks.
        self.cluster.create_container(account, CONTAINER, true)?;
        let empty_root = self.put_block(ctx, account, Payload::from_string("CAS-DIR\n".into()))?;
        self.accounts.lock().insert(
            account.to_string(),
            AccountState {
                tree: TreeIndex::new(),
                root_hash: empty_root,
                ms: 1_600_000_000_000,
            },
        );
        Ok(())
    }

    fn delete_account(&self, ctx: &mut OpCtx, account: &str) -> Result<()> {
        self.accounts.lock().remove(account);
        self.cluster.delete_account_ctx(ctx, account)
    }

    fn mkdir(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<()> {
        self.with_state(account, |st| {
            let ms = Self::next_ms(st);
            let (parent, name, _) = st.tree.resolve_parent(path).map_err(|e| match e {
                H2Error::InvalidPath(_) => H2Error::AlreadyExists("/".into()),
                other => other,
            })?;
            st.tree.mkdir(parent, name, ms).map_err(|e| match e {
                H2Error::AlreadyExists(_) => H2Error::AlreadyExists(path.to_string()),
                other => other,
            })?;
            self.rebuild_index(ctx, account, st)
        })
    }

    fn rmdir(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<()> {
        if path.is_root() {
            return Err(H2Error::InvalidPath("cannot remove /".into()));
        }
        self.with_state(account, |st| {
            let r = st.tree.resolve(path)?;
            if !st.tree.get(r.id).expect("resolved").is_dir() {
                return Err(H2Error::NotADirectory(path.to_string()));
            }
            let (parent, name, _) = st.tree.resolve_parent(path)?;
            st.tree.detach(parent, name)?;
            st.tree.remove_subtree(r.id);
            // Old blocks stay as garbage (immutable store); the index is
            // reconstructed without them.
            self.rebuild_index(ctx, account, st)
        })
    }

    fn mv(&self, ctx: &mut OpCtx, account: &str, from: &FsPath, to: &FsPath) -> Result<()> {
        if from.is_root() || to.is_root() {
            return Err(H2Error::InvalidPath("cannot move to or from /".into()));
        }
        if from == to {
            // A self-move is a no-op, but not a free one: the client still
            // paid the source lookup (one HEAD) before concluding so.
            let model = ctx.model.clone();
            ctx.charge(PrimKind::Head, model.head_cost());
            return Ok(());
        }
        if from.is_ancestor_of(to) {
            return Err(H2Error::InvalidPath(format!(
                "cannot move {from} inside itself"
            )));
        }
        self.with_state(account, |st| {
            let ms = Self::next_ms(st);
            let (src_parent, src_name, _) = st.tree.resolve_parent(from)?;
            let (dst_parent, dst_name, _) = st.tree.resolve_parent(to)?;
            if st.tree.dir_children(dst_parent)?.contains_key(dst_name) {
                return Err(H2Error::AlreadyExists(to.to_string()));
            }
            if !st.tree.dir_children(src_parent)?.contains_key(src_name) {
                return Err(H2Error::NotFound(from.to_string()));
            }
            let id = st.tree.detach(src_parent, src_name)?;
            st.tree.attach(dst_parent, dst_name, id, ms)?;
            self.rebuild_index(ctx, account, st)
        })
    }

    fn copy(&self, ctx: &mut OpCtx, account: &str, from: &FsPath, to: &FsPath) -> Result<()> {
        if from.is_root() || to.is_root() {
            return Err(H2Error::InvalidPath("cannot copy to or from /".into()));
        }
        if from == to || from.is_ancestor_of(to) {
            return Err(H2Error::InvalidPath(format!(
                "cannot copy {from} onto/inside itself"
            )));
        }
        self.with_state(account, |st| {
            let ms = Self::next_ms(st);
            let r = st.tree.resolve(from)?;
            let (dst_parent, dst_name, _) = st.tree.resolve_parent(to)?;
            if st.tree.dir_children(dst_parent)?.contains_key(dst_name) {
                return Err(H2Error::AlreadyExists(to.to_string()));
            }
            // Content blocks are shared (same hash!); only the tree and the
            // pointer blocks change.
            match &st.tree.get(r.id).expect("resolved").node.clone() {
                Node::File { size, object } => {
                    st.tree
                        .put_file(dst_parent, dst_name, *size, object.clone(), ms)?;
                }
                Node::Dir { .. } => {
                    let files = st.tree.subtree_files(r.id);
                    let dirs = st.tree.subtree_dirs(r.id);
                    let root_id = st.tree.mkdir(dst_parent, dst_name, ms)?;
                    for rel in &dirs {
                        let mut cur = root_id;
                        for comp in rel {
                            cur = match st.tree.dir_children(cur)?.get(comp) {
                                Some(&id) => id,
                                None => st.tree.mkdir(cur, comp, ms)?,
                            };
                        }
                    }
                    for (rel, size, object) in files {
                        let mut cur = root_id;
                        for comp in &rel[..rel.len() - 1] {
                            cur = *st.tree.dir_children(cur)?.get(comp).expect("dir created");
                        }
                        st.tree
                            .put_file(cur, rel.last().expect("name"), size, object, ms)?;
                    }
                }
            }
            self.rebuild_index(ctx, account, st)
        })
    }

    fn list(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<Vec<String>> {
        Ok(self
            .list_detailed(ctx, account, path)?
            .into_iter()
            .map(|e| e.name)
            .collect())
    }

    fn list_detailed(
        &self,
        ctx: &mut OpCtx,
        account: &str,
        path: &FsPath,
    ) -> Result<Vec<DirEntry>> {
        let root = self.with_state(account, |st| Ok(st.root_hash))?;
        let (kind, hash, _, _) = self.walk_blocks(ctx, account, root, path)?;
        if kind != 'D' {
            return Err(H2Error::NotADirectory(path.to_string()));
        }
        let obj = self.cluster.get(ctx, &self.key(account, hash))?;
        let body = obj
            .payload
            .as_str()
            .ok_or_else(|| H2Error::Corrupt("pointer block not a string".into()))?;
        let mut out = Vec::new();
        for line in body.lines().skip(1) {
            let mut f = line.split('\t');
            if let (Some(name), Some(kind), Some(_h), Some(size), Some(ms)) =
                (f.next(), f.next(), f.next(), f.next(), f.next())
            {
                out.push(DirEntry {
                    name: name.to_string(),
                    kind: if kind == "D" {
                        EntryKind::Directory
                    } else {
                        EntryKind::File
                    },
                    size: size.parse().unwrap_or(0),
                    modified_ms: ms.parse().unwrap_or(0),
                });
            }
        }
        ctx.charge_time(ctx.model.per_entry_cpu * out.len() as u32);
        Ok(out)
    }

    fn write(
        &self,
        ctx: &mut OpCtx,
        account: &str,
        path: &FsPath,
        content: FileContent,
    ) -> Result<()> {
        let payload = match content {
            FileContent::Inline(v) => Payload::Inline(v.into_bytes()),
            FileContent::Simulated(n) => Payload::simulated(n, &path.to_string()),
            FileContent::SimulatedShared { size, seed } => {
                Payload::simulated(size, &format!("shared:{seed}"))
            }
        };
        let size = payload.len();
        let hash = self.put_block(ctx, account, payload)?;
        self.with_state(account, |st| {
            let ms = Self::next_ms(st);
            let (parent, name, _) = st.tree.resolve_parent(path).map_err(|e| match e {
                H2Error::InvalidPath(_) => H2Error::IsADirectory("/".into()),
                other => other,
            })?;
            if let Some(&id) = st.tree.dir_children(parent)?.get(name) {
                if st.tree.get(id).expect("child").is_dir() {
                    return Err(H2Error::IsADirectory(path.to_string()));
                }
            }
            st.tree.put_file(parent, name, size, hash.to_hex(), ms)?;
            self.rebuild_index(ctx, account, st)
        })
    }

    fn read(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<FileContent> {
        let root = self.with_state(account, |st| Ok(st.root_hash))?;
        let (kind, hash, _, _) = self.walk_blocks(ctx, account, root, path)?;
        if kind == 'D' {
            return Err(H2Error::IsADirectory(path.to_string()));
        }
        self.read_by_hash(ctx, account, hash)
    }

    fn delete_file(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<()> {
        self.with_state(account, |st| {
            let (parent, name, _) = st.tree.resolve_parent(path).map_err(|e| match e {
                H2Error::InvalidPath(_) => H2Error::IsADirectory("/".into()),
                other => other,
            })?;
            let &id = st
                .tree
                .dir_children(parent)?
                .get(name)
                .ok_or_else(|| H2Error::NotFound(path.to_string()))?;
            if st.tree.get(id).expect("child").is_dir() {
                return Err(H2Error::IsADirectory(path.to_string()));
            }
            st.tree.detach(parent, name)?;
            st.tree.remove_subtree(id);
            self.rebuild_index(ctx, account, st)
        })
    }

    fn stat(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<DirEntry> {
        if path.is_root() {
            // Even the synthetic root entry costs the client a HEAD on the
            // root block before it can be reported as a directory.
            let model = ctx.model.clone();
            ctx.charge(PrimKind::Head, model.head_cost());
            return Ok(DirEntry {
                name: "/".into(),
                kind: EntryKind::Directory,
                size: 0,
                modified_ms: 0,
            });
        }
        let root = self.with_state(account, |st| Ok(st.root_hash))?;
        let (kind, _, size, ms) = self.walk_blocks(ctx, account, root, path)?;
        Ok(DirEntry {
            name: path.name().unwrap().to_string(),
            kind: if kind == 'D' {
                EntryKind::Directory
            } else {
                EntryKind::File
            },
            size,
            modified_ms: ms,
        })
    }

    fn quiesce(&self) {}

    /// Mass import: write all content blocks, then rebuild the pointer
    /// index once — instead of one full O(N) rebuild per entry.
    fn bulk_import(
        &self,
        ctx: &mut OpCtx,
        account: &str,
        dirs: &[FsPath],
        files: &[(FsPath, u64)],
    ) -> Result<()> {
        // Store content blocks first (outside the account lock).
        let mut hashes = Vec::with_capacity(files.len());
        for (f, size) in files {
            let payload = Payload::simulated(*size, &f.to_string());
            hashes.push(self.put_block(ctx, account, payload)?);
        }
        self.with_state(account, |st| {
            for d in dirs {
                let ms = Self::next_ms(st);
                let (parent, name, _) = st.tree.resolve_parent(d).map_err(|e| match e {
                    H2Error::InvalidPath(_) => H2Error::AlreadyExists("/".into()),
                    other => other,
                })?;
                st.tree.mkdir(parent, name, ms)?;
            }
            for ((f, size), hash) in files.iter().zip(hashes) {
                let ms = Self::next_ms(st);
                let (parent, name, _) = st.tree.resolve_parent(f)?;
                st.tree.put_file(parent, name, *size, hash.to_hex(), ms)?;
            }
            self.rebuild_index(ctx, account, st)
        })
    }

    fn storage_stats(&self) -> StoreStats {
        StoreStats {
            objects: self.cluster.object_count(),
            bytes: self.cluster.byte_count(),
            index_records: 0,
            index_bytes: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> FsPath {
        FsPath::parse(s).unwrap()
    }

    fn setup() -> (CasFs, OpCtx) {
        let fs = CasFs::new(Cluster::new(ClusterConfig::tiny()));
        let mut ctx = OpCtx::for_test();
        fs.create_account(&mut ctx, "alice").unwrap();
        (fs, ctx)
    }

    #[test]
    fn write_read_through_pointer_blocks() {
        let (fs, mut ctx) = setup();
        fs.mkdir(&mut ctx, "alice", &p("/d")).unwrap();
        fs.write(&mut ctx, "alice", &p("/d/f"), FileContent::from_str("cas!"))
            .unwrap();
        assert_eq!(
            fs.read(&mut ctx, "alice", &p("/d/f")).unwrap(),
            FileContent::from_str("cas!")
        );
        let rows = fs.list_detailed(&mut ctx, "alice", &p("/d")).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].size, 4);
    }

    #[test]
    fn access_by_hash_is_one_get() {
        let (fs, mut ctx) = setup();
        fs.write(
            &mut ctx,
            "alice",
            &p("/f"),
            FileContent::from_str("addressable"),
        )
        .unwrap();
        let h = fs.hash_of("alice", &p("/f")).unwrap();
        let mut quick = OpCtx::for_test();
        assert_eq!(
            fs.read_by_hash(&mut quick, "alice", h).unwrap(),
            FileContent::from_str("addressable")
        );
        assert_eq!(quick.counts().gets, 1);
        assert_eq!(quick.counts().total(), 1);
    }

    #[test]
    fn identical_content_is_deduplicated() {
        let (fs, mut ctx) = setup();
        fs.write(
            &mut ctx,
            "alice",
            &p("/a"),
            FileContent::from_str("same-bytes"),
        )
        .unwrap();
        let objects = fs.storage_stats().objects;
        fs.write(
            &mut ctx,
            "alice",
            &p("/b"),
            FileContent::from_str("same-bytes"),
        )
        .unwrap();
        // Content block shared; only pointer blocks changed (pointer-block
        // garbage may add objects, but no second content block).
        let h_a = fs.hash_of("alice", &p("/a")).unwrap();
        let h_b = fs.hash_of("alice", &p("/b")).unwrap();
        assert_eq!(h_a, h_b);
        assert!(fs.storage_stats().objects >= objects);
    }

    #[test]
    fn structural_changes_rewrite_pointer_blocks() {
        let (fs, mut ctx) = setup();
        for i in 0..6 {
            fs.mkdir(&mut ctx, "alice", &p(&format!("/d{i}"))).unwrap();
        }
        // MKDIR in a tree with more directories rewrites more blocks.
        let mut big = OpCtx::for_test();
        fs.mkdir(&mut big, "alice", &p("/final")).unwrap();
        assert!(
            big.counts().puts >= 1,
            "index rebuild must write pointer blocks"
        );
        // Root hash changes on every structural op.
        let r1 = fs.root_hash("alice").unwrap();
        fs.mkdir(&mut ctx, "alice", &p("/one-more")).unwrap();
        assert_ne!(fs.root_hash("alice").unwrap(), r1);
    }

    #[test]
    fn move_and_rmdir_work_via_rebuild() {
        let (fs, mut ctx) = setup();
        fs.mkdir(&mut ctx, "alice", &p("/a")).unwrap();
        fs.write(&mut ctx, "alice", &p("/a/f"), FileContent::from_str("v"))
            .unwrap();
        fs.mv(&mut ctx, "alice", &p("/a"), &p("/b")).unwrap();
        assert!(fs.read(&mut ctx, "alice", &p("/a/f")).is_err());
        assert_eq!(
            fs.read(&mut ctx, "alice", &p("/b/f")).unwrap(),
            FileContent::from_str("v")
        );
        fs.rmdir(&mut ctx, "alice", &p("/b")).unwrap();
        assert!(fs.stat(&mut ctx, "alice", &p("/b")).is_err());
        assert!(fs.list(&mut ctx, "alice", &p("/")).unwrap().is_empty());
    }

    #[test]
    fn garbage_sweep_reclaims_dead_blocks_only() {
        let (fs, mut ctx) = setup();
        fs.mkdir(&mut ctx, "alice", &p("/d")).unwrap();
        fs.write(
            &mut ctx,
            "alice",
            &p("/d/keep"),
            FileContent::from_str("keep me"),
        )
        .unwrap();
        // Churn: overwrites and structural changes strand old blocks.
        for i in 0..5 {
            fs.write(
                &mut ctx,
                "alice",
                &p("/d/churn"),
                FileContent::from_str(&format!("version {i}")),
            )
            .unwrap();
        }
        fs.mkdir(&mut ctx, "alice", &p("/tmp")).unwrap();
        fs.rmdir(&mut ctx, "alice", &p("/tmp")).unwrap();
        let before = fs.storage_stats().objects;
        let reclaimed = fs.sweep_garbage(&mut ctx, "alice").unwrap();
        assert!(reclaimed > 0, "churn must leave garbage blocks");
        assert_eq!(fs.storage_stats().objects, before - reclaimed as u64);
        // Live data untouched.
        assert_eq!(
            fs.read(&mut ctx, "alice", &p("/d/keep")).unwrap(),
            FileContent::from_str("keep me")
        );
        assert_eq!(
            fs.read(&mut ctx, "alice", &p("/d/churn")).unwrap(),
            FileContent::from_str("version 4")
        );
        // A second sweep finds nothing.
        assert_eq!(fs.sweep_garbage(&mut ctx, "alice").unwrap(), 0);
    }

    #[test]
    fn copy_shares_content_blocks() {
        let (fs, mut ctx) = setup();
        fs.mkdir(&mut ctx, "alice", &p("/src")).unwrap();
        fs.write(
            &mut ctx,
            "alice",
            &p("/src/f"),
            FileContent::from_str("shared"),
        )
        .unwrap();
        let mut cp = OpCtx::for_test();
        fs.copy(&mut cp, "alice", &p("/src"), &p("/dst")).unwrap();
        // No server-side content copies: hashes are reused.
        assert_eq!(cp.counts().copies, 0);
        assert_eq!(
            fs.read(&mut ctx, "alice", &p("/dst/f")).unwrap(),
            FileContent::from_str("shared")
        );
        assert_eq!(
            fs.hash_of("alice", &p("/src/f")).unwrap(),
            fs.hash_of("alice", &p("/dst/f")).unwrap()
        );
    }
}
