//! Shared in-memory directory tree — the metadata index used by the
//! index-server baselines (Dynamic Partition, Single Index Server, Static
//! Partition).
//!
//! The tree stores directories as inodes with sorted child maps and files as
//! leaf inodes carrying the object-cloud key of their content. It is pure
//! data structure: the baselines wrap it with their own cost charging and
//! partitioning policies.

use std::collections::{BTreeMap, HashMap};

use h2fsapi::{DirEntry, EntryKind, FsPath};
use h2util::{H2Error, Result};

/// Inode identifier within one tree.
pub type InodeId = u64;

/// Inode payload.
#[derive(Debug, Clone)]
pub enum Node {
    Dir { children: BTreeMap<String, InodeId> },
    File { size: u64, object: String },
}

/// One inode.
#[derive(Debug, Clone)]
pub struct Inode {
    pub id: InodeId,
    pub node: Node,
    pub modified_ms: u64,
}

impl Inode {
    pub fn is_dir(&self) -> bool {
        matches!(self.node, Node::Dir { .. })
    }
}

/// Result of resolving a path: the inode plus how many parent-to-child hops
/// the walk took (the paper's `d`).
#[derive(Debug, Clone, Copy)]
pub struct ResolvedInode {
    pub id: InodeId,
    pub hops: usize,
}

/// An in-memory filesystem tree for one account.
#[derive(Debug)]
pub struct TreeIndex {
    nodes: HashMap<InodeId, Inode>,
    root: InodeId,
    next: InodeId,
}

impl Default for TreeIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl TreeIndex {
    pub fn new() -> Self {
        let mut nodes = HashMap::new();
        nodes.insert(
            0,
            Inode {
                id: 0,
                node: Node::Dir {
                    children: BTreeMap::new(),
                },
                modified_ms: 0,
            },
        );
        TreeIndex {
            nodes,
            root: 0,
            next: 1,
        }
    }

    pub fn root(&self) -> InodeId {
        self.root
    }

    pub fn get(&self, id: InodeId) -> Option<&Inode> {
        self.nodes.get(&id)
    }

    /// Total inodes (directories + files) excluding the root — the index
    /// records a separate metadata service would hold.
    pub fn record_count(&self) -> u64 {
        (self.nodes.len() - 1) as u64
    }

    /// Rough byte footprint of the index (name bytes + fixed per inode).
    pub fn record_bytes(&self) -> u64 {
        self.nodes
            .values()
            .map(|i| match &i.node {
                Node::Dir { children } => {
                    48 + children.keys().map(|k| k.len() as u64 + 16).sum::<u64>()
                }
                Node::File { object, .. } => 48 + object.len() as u64,
            })
            .sum()
    }

    /// Walk `path` from the root. Each component costs one hop.
    pub fn resolve(&self, path: &FsPath) -> Result<ResolvedInode> {
        let mut id = self.root;
        let mut hops = 0usize;
        for comp in path.components() {
            let inode = &self.nodes[&id];
            match &inode.node {
                Node::Dir { children } => {
                    id = *children
                        .get(comp)
                        .ok_or_else(|| H2Error::NotFound(path.to_string()))?;
                    hops += 1;
                }
                Node::File { .. } => return Err(H2Error::NotADirectory(path.to_string())),
            }
        }
        Ok(ResolvedInode { id, hops })
    }

    /// Resolve the parent directory of `path` and return `(parent_id,
    /// leaf_name, hops)`.
    pub fn resolve_parent<'p>(&self, path: &'p FsPath) -> Result<(InodeId, &'p str, usize)> {
        let name = path
            .name()
            .ok_or_else(|| H2Error::InvalidPath("/ has no parent".into()))?;
        let parent = path.parent().expect("non-root path");
        let r = self.resolve(&parent)?;
        if !self.nodes[&r.id].is_dir() {
            return Err(H2Error::NotADirectory(parent.to_string()));
        }
        Ok((r.id, name, r.hops))
    }

    fn alloc(&mut self, node: Node, ms: u64) -> InodeId {
        let id = self.next;
        self.next += 1;
        self.nodes.insert(
            id,
            Inode {
                id,
                node,
                modified_ms: ms,
            },
        );
        id
    }

    fn dir_children_mut(&mut self, id: InodeId) -> &mut BTreeMap<String, InodeId> {
        match &mut self.nodes.get_mut(&id).expect("inode exists").node {
            Node::Dir { children } => children,
            Node::File { .. } => panic!("inode {id} is not a directory"),
        }
    }

    pub fn dir_children(&self, id: InodeId) -> Result<&BTreeMap<String, InodeId>> {
        match &self
            .nodes
            .get(&id)
            .ok_or_else(|| H2Error::NotFound(format!("inode {id}")))?
            .node
        {
            Node::Dir { children } => Ok(children),
            Node::File { .. } => Err(H2Error::NotADirectory(format!("inode {id}"))),
        }
    }

    /// Create a directory under `parent`.
    pub fn mkdir(&mut self, parent: InodeId, name: &str, ms: u64) -> Result<InodeId> {
        if self.dir_children(parent)?.contains_key(name) {
            return Err(H2Error::AlreadyExists(name.to_string()));
        }
        let id = self.alloc(
            Node::Dir {
                children: BTreeMap::new(),
            },
            ms,
        );
        self.dir_children_mut(parent).insert(name.to_string(), id);
        Ok(id)
    }

    /// Create or overwrite a file entry under `parent`. Returns the
    /// previous content-object key when overwriting.
    pub fn put_file(
        &mut self,
        parent: InodeId,
        name: &str,
        size: u64,
        object: String,
        ms: u64,
    ) -> Result<Option<String>> {
        let existing = self.dir_children(parent)?.get(name).copied();
        match existing {
            Some(id) => {
                let inode = self.nodes.get_mut(&id).expect("child inode");
                match &mut inode.node {
                    Node::File { size: s, object: o } => {
                        let old = std::mem::replace(o, object);
                        *s = size;
                        inode.modified_ms = ms;
                        Ok(Some(old))
                    }
                    Node::Dir { .. } => Err(H2Error::IsADirectory(name.to_string())),
                }
            }
            None => {
                let id = self.alloc(Node::File { size, object }, ms);
                self.dir_children_mut(parent).insert(name.to_string(), id);
                Ok(None)
            }
        }
    }

    /// Detach `name` from `parent` and return the subtree root inode id.
    pub fn detach(&mut self, parent: InodeId, name: &str) -> Result<InodeId> {
        let id = self
            .dir_children_mut(parent)
            .remove(name)
            .ok_or_else(|| H2Error::NotFound(name.to_string()))?;
        Ok(id)
    }

    /// Attach an existing inode under a (new) parent — the O(1) pointer
    /// move that makes index-server MOVE constant-time.
    pub fn attach(&mut self, parent: InodeId, name: &str, id: InodeId, ms: u64) -> Result<()> {
        if self.dir_children(parent)?.contains_key(name) {
            return Err(H2Error::AlreadyExists(name.to_string()));
        }
        self.dir_children_mut(parent).insert(name.to_string(), id);
        if let Some(n) = self.nodes.get_mut(&id) {
            n.modified_ms = ms;
        }
        Ok(())
    }

    /// Delete the subtree rooted at `id`, returning the content-object keys
    /// of every file removed (so the caller can reclaim cloud objects).
    pub fn remove_subtree(&mut self, id: InodeId) -> Vec<String> {
        let mut objects = Vec::new();
        let mut stack = vec![id];
        while let Some(cur) = stack.pop() {
            if let Some(inode) = self.nodes.remove(&cur) {
                match inode.node {
                    Node::Dir { children } => stack.extend(children.into_values()),
                    Node::File { object, .. } => objects.push(object),
                }
            }
        }
        objects
    }

    /// List one directory as [`DirEntry`] rows.
    pub fn list(&self, id: InodeId) -> Result<Vec<DirEntry>> {
        let children = self.dir_children(id)?;
        Ok(children
            .iter()
            .map(|(name, cid)| {
                let inode = &self.nodes[cid];
                match &inode.node {
                    Node::Dir { .. } => DirEntry {
                        name: name.clone(),
                        kind: EntryKind::Directory,
                        size: 0,
                        modified_ms: inode.modified_ms,
                    },
                    Node::File { size, .. } => DirEntry {
                        name: name.clone(),
                        kind: EntryKind::File,
                        size: *size,
                        modified_ms: inode.modified_ms,
                    },
                }
            })
            .collect())
    }

    /// All `(relative components, size, object)` files in the subtree at
    /// `id`, in deterministic order — what COPY iterates.
    pub fn subtree_files(&self, id: InodeId) -> Vec<(Vec<String>, u64, String)> {
        let mut out = Vec::new();
        let mut stack: Vec<(InodeId, Vec<String>)> = vec![(id, Vec::new())];
        while let Some((cur, prefix)) = stack.pop() {
            match &self.nodes[&cur].node {
                Node::Dir { children } => {
                    for (name, cid) in children.iter().rev() {
                        let mut p = prefix.clone();
                        p.push(name.clone());
                        stack.push((*cid, p));
                    }
                }
                Node::File { size, object } => out.push((prefix, *size, object.clone())),
            }
        }
        out
    }

    /// All directories (relative component paths) in the subtree at `id`,
    /// parents before children.
    pub fn subtree_dirs(&self, id: InodeId) -> Vec<Vec<String>> {
        let mut out = Vec::new();
        let mut stack: Vec<(InodeId, Vec<String>)> = vec![(id, Vec::new())];
        while let Some((cur, prefix)) = stack.pop() {
            if let Node::Dir { children } = &self.nodes[&cur].node {
                if !prefix.is_empty() {
                    out.push(prefix.clone());
                }
                for (name, cid) in children.iter().rev() {
                    let mut p = prefix.clone();
                    p.push(name.clone());
                    stack.push((*cid, p));
                }
            }
        }
        out.sort();
        out
    }

    /// Count live inodes in the subtree at `id` (dirs + files).
    pub fn subtree_size(&self, id: InodeId) -> usize {
        let mut n = 0usize;
        let mut stack = vec![id];
        while let Some(cur) = stack.pop() {
            n += 1;
            if let Node::Dir { children } = &self.nodes[&cur].node {
                stack.extend(children.values().copied());
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> FsPath {
        FsPath::parse(s).unwrap()
    }

    fn sample() -> TreeIndex {
        let mut t = TreeIndex::new();
        let home = t.mkdir(t.root(), "home", 1).unwrap();
        let alice = t.mkdir(home, "alice", 2).unwrap();
        t.put_file(alice, "a.txt", 10, "obj-a".into(), 3).unwrap();
        t.put_file(alice, "b.txt", 20, "obj-b".into(), 4).unwrap();
        t.mkdir(alice, "docs", 5).unwrap();
        t
    }

    #[test]
    fn resolve_counts_hops() {
        let t = sample();
        assert_eq!(t.resolve(&p("/")).unwrap().hops, 0);
        assert_eq!(t.resolve(&p("/home/alice/a.txt")).unwrap().hops, 3);
        assert_eq!(t.resolve(&p("/missing")).unwrap_err().code(), "not-found");
        assert_eq!(
            t.resolve(&p("/home/alice/a.txt/x")).unwrap_err().code(),
            "not-a-directory"
        );
    }

    #[test]
    fn mkdir_and_duplicates() {
        let mut t = sample();
        let alice = t.resolve(&p("/home/alice")).unwrap().id;
        assert_eq!(
            t.mkdir(alice, "docs", 9).unwrap_err().code(),
            "already-exists"
        );
        t.mkdir(alice, "new", 9).unwrap();
        assert!(t.resolve(&p("/home/alice/new")).is_ok());
    }

    #[test]
    fn put_file_overwrites_and_returns_old_object() {
        let mut t = sample();
        let alice = t.resolve(&p("/home/alice")).unwrap().id;
        let old = t.put_file(alice, "a.txt", 99, "obj-a2".into(), 9).unwrap();
        assert_eq!(old.as_deref(), Some("obj-a"));
        let id = t.resolve(&p("/home/alice/a.txt")).unwrap().id;
        match &t.get(id).unwrap().node {
            Node::File { size, object } => {
                assert_eq!(*size, 99);
                assert_eq!(object, "obj-a2");
            }
            _ => panic!(),
        }
        // Overwriting a dir with a file is rejected.
        assert_eq!(
            t.put_file(alice, "docs", 1, "x".into(), 9)
                .unwrap_err()
                .code(),
            "is-a-directory"
        );
    }

    #[test]
    fn detach_attach_is_constant_pointer_move() {
        let mut t = sample();
        let root = t.root();
        let home = t.resolve(&p("/home")).unwrap().id;
        let alice_id = t.detach(home, "alice").unwrap();
        t.attach(root, "alice-moved", alice_id, 99).unwrap();
        assert!(t.resolve(&p("/home/alice")).is_err());
        assert_eq!(t.resolve(&p("/alice-moved/a.txt")).unwrap().hops, 2);
    }

    #[test]
    fn remove_subtree_returns_all_objects() {
        let mut t = sample();
        let home = t.resolve(&p("/home")).unwrap().id;
        let alice = t.detach(home, "alice").unwrap();
        let mut objs = t.remove_subtree(alice);
        objs.sort();
        assert_eq!(objs, ["obj-a", "obj-b"]);
        assert_eq!(t.record_count(), 1); // only /home remains
    }

    #[test]
    fn list_is_sorted_with_kinds() {
        let t = sample();
        let alice = t.resolve(&p("/home/alice")).unwrap().id;
        let rows = t.list(alice).unwrap();
        let names: Vec<_> = rows.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["a.txt", "b.txt", "docs"]);
        assert_eq!(rows[2].kind, EntryKind::Directory);
        assert_eq!(rows[0].size, 10);
    }

    #[test]
    fn subtree_files_and_dirs() {
        let t = sample();
        let home = t.resolve(&p("/home")).unwrap().id;
        let files = t.subtree_files(home);
        assert_eq!(files.len(), 2);
        assert_eq!(files[0].0, ["alice", "a.txt"]);
        let dirs = t.subtree_dirs(home);
        assert_eq!(
            dirs,
            [
                vec!["alice".to_string()],
                vec!["alice".into(), "docs".into()]
            ]
        );
        assert_eq!(t.subtree_size(home), 5);
    }

    #[test]
    fn record_accounting() {
        let t = sample();
        assert_eq!(t.record_count(), 5);
        assert!(t.record_bytes() > 0);
    }
}
