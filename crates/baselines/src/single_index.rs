//! Single Index Server — the GFS/HDFS namenode architecture (§2).
//!
//! One metadata server holds the entire directory tree for every account;
//! file content lives in the object cloud. Directory operations are O(1)
//! pointer updates and file access is an O(d) in-memory walk plus one RPC,
//! so per-operation latency is excellent — the paper's objection is the
//! *centralised* architecture's scalability, not its speed.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use h2fsapi::{CloudFs, DirEntry, EntryKind, FileContent, FsPath, StoreStats};
use h2util::{H2Error, OpCtx, PrimKind, Result};
use swiftsim::{Cluster, ClusterConfig, Meta, ObjectKey, ObjectStore, Payload};

use crate::tree::{Node, TreeIndex};

const CONTENT_CONTAINER: &str = "content";

/// The namenode filesystem.
pub struct SingleIndexFs {
    cluster: Arc<Cluster>,
    trees: Mutex<HashMap<String, TreeIndex>>,
    next_object: AtomicU64,
    ms: AtomicU64,
    name: &'static str,
    separate_index: bool,
}

impl SingleIndexFs {
    pub fn new(cluster: Arc<Cluster>) -> Self {
        Self::with_flavor(cluster, "Single Index", true)
    }

    /// Shared constructor: the Static Partition baseline reuses the exact
    /// same mechanics (per-account tree + object cloud) under a different
    /// architectural label — see [`crate::static_partition`].
    pub(crate) fn with_flavor(
        cluster: Arc<Cluster>,
        name: &'static str,
        separate_index: bool,
    ) -> Self {
        SingleIndexFs {
            cluster,
            trees: Mutex::new(HashMap::new()),
            next_object: AtomicU64::new(1),
            ms: AtomicU64::new(1_600_000_000_000),
            name,
            separate_index,
        }
    }

    pub fn rack() -> Self {
        Self::new(Cluster::new(ClusterConfig::default()))
    }

    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    pub fn cost_model(&self) -> Arc<h2util::CostModel> {
        self.cluster.cost_model()
    }

    fn next_ms(&self) -> u64 {
        self.ms.fetch_add(1, Ordering::Relaxed)
    }

    fn new_object_name(&self) -> String {
        format!(
            "blob-{:016x}",
            self.next_object.fetch_add(1, Ordering::Relaxed)
        )
    }

    fn key(&self, account: &str, object: &str) -> ObjectKey {
        ObjectKey::new(account, CONTENT_CONTAINER, object)
    }

    fn rpc(&self, ctx: &mut OpCtx) {
        let cost = ctx.model.index_rpc_cost();
        ctx.charge(PrimKind::IndexRpc, cost);
    }

    fn with_tree<T>(
        &self,
        account: &str,
        f: impl FnOnce(&mut TreeIndex) -> Result<T>,
    ) -> Result<T> {
        let mut trees = self.trees.lock();
        let tree = trees
            .get_mut(account)
            .ok_or_else(|| H2Error::NoSuchAccount(account.to_string()))?;
        f(tree)
    }
}

impl CloudFs for SingleIndexFs {
    fn name(&self) -> &'static str {
        self.name
    }

    fn uses_separate_index(&self) -> bool {
        self.separate_index
    }

    fn create_account(&self, ctx: &mut OpCtx, account: &str) -> Result<()> {
        // Seeding the per-account index tree is one round trip to the
        // index server on top of the account and container rows.
        self.rpc(ctx);
        self.cluster.create_account_ctx(ctx, account)?;
        let model = ctx.model.clone();
        ctx.charge(PrimKind::DbUpdate, model.db_update_cost());
        self.cluster
            .create_container(account, CONTENT_CONTAINER, false)?;
        self.trees
            .lock()
            .insert(account.to_string(), TreeIndex::new());
        Ok(())
    }

    fn delete_account(&self, ctx: &mut OpCtx, account: &str) -> Result<()> {
        self.rpc(ctx);
        self.trees.lock().remove(account);
        self.cluster.delete_account_ctx(ctx, account)
    }

    fn mkdir(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<()> {
        self.rpc(ctx);
        let ms = self.next_ms();
        self.with_tree(account, |tree| {
            let (parent, name, _) = tree.resolve_parent(path).map_err(|e| match e {
                H2Error::InvalidPath(_) => H2Error::AlreadyExists("/".into()),
                other => other,
            })?;
            tree.mkdir(parent, name, ms)
                .map(|_| ())
                .map_err(|e| match e {
                    H2Error::AlreadyExists(_) => H2Error::AlreadyExists(path.to_string()),
                    other => other,
                })
        })
    }

    fn rmdir(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<()> {
        self.rpc(ctx);
        if path.is_root() {
            return Err(H2Error::InvalidPath("cannot remove /".into()));
        }
        let orphaned = self.with_tree(account, |tree| {
            let r = tree.resolve(path)?;
            if !tree.get(r.id).expect("resolved").is_dir() {
                return Err(H2Error::NotADirectory(path.to_string()));
            }
            let (parent, name, _) = tree.resolve_parent(path)?;
            tree.detach(parent, name)?;
            Ok(tree.remove_subtree(r.id))
        })?;
        // Content reclamation happens asynchronously in the object cloud.
        let mut bg = OpCtx::new(ctx.model.clone());
        for obj in orphaned {
            let _ = self.cluster.delete(&mut bg, &self.key(account, &obj));
        }
        Ok(())
    }

    fn mv(&self, ctx: &mut OpCtx, account: &str, from: &FsPath, to: &FsPath) -> Result<()> {
        self.rpc(ctx);
        if from.is_root() || to.is_root() {
            return Err(H2Error::InvalidPath("cannot move to or from /".into()));
        }
        if from == to {
            return Ok(());
        }
        if from.is_ancestor_of(to) {
            return Err(H2Error::InvalidPath(format!(
                "cannot move {from} inside itself"
            )));
        }
        let ms = self.next_ms();
        self.with_tree(account, |tree| {
            let (src_parent, src_name, _) = tree.resolve_parent(from)?;
            let (dst_parent, dst_name, _) = tree.resolve_parent(to)?;
            if tree.dir_children(dst_parent)?.contains_key(dst_name) {
                return Err(H2Error::AlreadyExists(to.to_string()));
            }
            if !tree.dir_children(src_parent)?.contains_key(src_name) {
                return Err(H2Error::NotFound(from.to_string()));
            }
            let id = tree.detach(src_parent, src_name)?;
            tree.attach(dst_parent, dst_name, id, ms)
        })
    }

    fn copy(&self, ctx: &mut OpCtx, account: &str, from: &FsPath, to: &FsPath) -> Result<()> {
        self.rpc(ctx);
        if from.is_root() || to.is_root() {
            return Err(H2Error::InvalidPath("cannot copy to or from /".into()));
        }
        if from == to || from.is_ancestor_of(to) {
            return Err(H2Error::InvalidPath(format!(
                "cannot copy {from} onto/inside itself"
            )));
        }
        let ms = self.next_ms();
        let (files, dirs, src_is_dir, src_size, src_obj) = self.with_tree(account, |tree| {
            let r = tree.resolve(from)?;
            let (dst_parent, dst_name, _) = tree.resolve_parent(to)?;
            if tree.dir_children(dst_parent)?.contains_key(dst_name) {
                return Err(H2Error::AlreadyExists(to.to_string()));
            }
            match &tree.get(r.id).expect("resolved").node {
                Node::File { size, object } => {
                    Ok((Vec::new(), Vec::new(), false, *size, object.clone()))
                }
                Node::Dir { .. } => Ok((
                    tree.subtree_files(r.id),
                    tree.subtree_dirs(r.id),
                    true,
                    0,
                    String::new(),
                )),
            }
        })?;
        let mut copied = Vec::with_capacity(files.len().max(1));
        if src_is_dir {
            for (rel, size, object) in files {
                let new_obj = self.new_object_name();
                self.cluster.copy(
                    ctx,
                    &self.key(account, &object),
                    &self.key(account, &new_obj),
                )?;
                copied.push((rel, size, new_obj));
            }
        } else {
            let new_obj = self.new_object_name();
            self.cluster.copy(
                ctx,
                &self.key(account, &src_obj),
                &self.key(account, &new_obj),
            )?;
            copied.push((Vec::new(), src_size, new_obj));
        }
        self.with_tree(account, |tree| {
            let (dst_parent, dst_name, _) = tree.resolve_parent(to)?;
            if src_is_dir {
                let root_id = tree.mkdir(dst_parent, dst_name, ms)?;
                for rel in &dirs {
                    let mut cur = root_id;
                    for comp in rel {
                        cur = match tree.dir_children(cur)?.get(comp) {
                            Some(&id) => id,
                            None => tree.mkdir(cur, comp, ms)?,
                        };
                    }
                }
                for (rel, size, object) in copied {
                    let mut cur = root_id;
                    for comp in &rel[..rel.len() - 1] {
                        cur = *tree.dir_children(cur)?.get(comp).expect("dir created");
                    }
                    tree.put_file(cur, rel.last().expect("file name"), size, object, ms)?;
                }
            } else {
                let (_, size, object) = copied.into_iter().next().expect("one file");
                tree.put_file(dst_parent, dst_name, size, object, ms)?;
            }
            Ok(())
        })
    }

    fn list(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<Vec<String>> {
        Ok(self
            .list_detailed(ctx, account, path)?
            .into_iter()
            .map(|e| e.name)
            .collect())
    }

    fn list_detailed(
        &self,
        ctx: &mut OpCtx,
        account: &str,
        path: &FsPath,
    ) -> Result<Vec<DirEntry>> {
        self.rpc(ctx);
        self.with_tree(account, |tree| {
            let r = tree.resolve(path)?;
            let rows = tree.list(r.id)?;
            ctx.charge_time(ctx.model.per_entry_cpu * rows.len() as u32);
            Ok(rows)
        })
    }

    fn write(
        &self,
        ctx: &mut OpCtx,
        account: &str,
        path: &FsPath,
        content: FileContent,
    ) -> Result<()> {
        self.rpc(ctx);
        let ms = self.next_ms();
        let object = self.new_object_name();
        self.with_tree(account, |tree| {
            let (parent, name, _) = tree.resolve_parent(path).map_err(|e| match e {
                H2Error::InvalidPath(_) => H2Error::IsADirectory("/".into()),
                other => other,
            })?;
            if let Some(&id) = tree.dir_children(parent)?.get(name) {
                if tree.get(id).expect("child").is_dir() {
                    return Err(H2Error::IsADirectory(path.to_string()));
                }
            }
            Ok(())
        })?;
        let payload = match content {
            FileContent::Inline(v) => Payload::Inline(v.into_bytes()),
            FileContent::Simulated(n) => Payload::simulated(n, &path.to_string()),
            FileContent::SimulatedShared { size, seed } => {
                Payload::simulated(size, &format!("shared:{seed}"))
            }
        };
        let size = payload.len();
        self.cluster
            .put(ctx, &self.key(account, &object), payload, Meta::new())?;
        let old = self.with_tree(account, |tree| {
            let (parent, name, _) = tree.resolve_parent(path)?;
            tree.put_file(parent, name, size, object, ms)
        })?;
        if let Some(old_obj) = old {
            let mut bg = OpCtx::new(ctx.model.clone());
            let _ = self.cluster.delete(&mut bg, &self.key(account, &old_obj));
        }
        Ok(())
    }

    fn read(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<FileContent> {
        self.rpc(ctx);
        let object = self.with_tree(account, |tree| {
            let r = tree.resolve(path)?;
            match &tree.get(r.id).expect("resolved").node {
                Node::File { object, .. } => Ok(object.clone()),
                Node::Dir { .. } => Err(H2Error::IsADirectory(path.to_string())),
            }
        })?;
        let obj = self.cluster.get(ctx, &self.key(account, &object))?;
        Ok(match obj.payload {
            Payload::Inline(b) => FileContent::Inline(h2util::SharedBuf::from_bytes(b)),
            Payload::Simulated { size, .. } => FileContent::Simulated(size),
        })
    }

    fn delete_file(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<()> {
        self.rpc(ctx);
        let object = self.with_tree(account, |tree| {
            let (parent, name, _) = tree.resolve_parent(path).map_err(|e| match e {
                H2Error::InvalidPath(_) => H2Error::IsADirectory("/".into()),
                other => other,
            })?;
            let &id = tree
                .dir_children(parent)?
                .get(name)
                .ok_or_else(|| H2Error::NotFound(path.to_string()))?;
            if tree.get(id).expect("child").is_dir() {
                return Err(H2Error::IsADirectory(path.to_string()));
            }
            tree.detach(parent, name)?;
            Ok(tree.remove_subtree(id).into_iter().next().expect("object"))
        })?;
        self.cluster.delete(ctx, &self.key(account, &object))
    }

    fn stat(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<DirEntry> {
        self.rpc(ctx);
        self.with_tree(account, |tree| {
            let r = tree.resolve(path)?;
            let inode = tree.get(r.id).expect("resolved");
            Ok(match &inode.node {
                Node::Dir { .. } => DirEntry {
                    name: path.name().unwrap_or("/").to_string(),
                    kind: EntryKind::Directory,
                    size: 0,
                    modified_ms: inode.modified_ms,
                },
                Node::File { size, .. } => DirEntry {
                    name: path.name().unwrap_or("/").to_string(),
                    kind: EntryKind::File,
                    size: *size,
                    modified_ms: inode.modified_ms,
                },
            })
        })
    }

    fn quiesce(&self) {}

    fn storage_stats(&self) -> StoreStats {
        let trees = self.trees.lock();
        let (records, bytes) = trees
            .values()
            .map(|t| (t.record_count(), t.record_bytes()))
            .fold((0, 0), |(r, b), (r2, b2)| (r + r2, b + b2));
        StoreStats {
            objects: self.cluster.object_count(),
            bytes: self.cluster.byte_count(),
            index_records: records,
            index_bytes: bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> FsPath {
        FsPath::parse(s).unwrap()
    }

    fn setup() -> (SingleIndexFs, OpCtx) {
        let fs = SingleIndexFs::new(Cluster::new(ClusterConfig::tiny()));
        let mut ctx = OpCtx::for_test();
        fs.create_account(&mut ctx, "alice").unwrap();
        (fs, ctx)
    }

    #[test]
    fn roundtrip_and_constant_dir_ops() {
        let (fs, mut ctx) = setup();
        fs.mkdir(&mut ctx, "alice", &p("/d")).unwrap();
        for i in 0..20 {
            fs.write(
                &mut ctx,
                "alice",
                &p(&format!("/d/f{i}")),
                FileContent::from_str("x"),
            )
            .unwrap();
        }
        let mut mv = OpCtx::for_test();
        fs.mv(&mut mv, "alice", &p("/d"), &p("/e")).unwrap();
        // O(1): just the namenode RPC.
        assert_eq!(mv.counts().index_rpcs, 1);
        assert_eq!(mv.counts().total(), 1);
        assert!(fs.read(&mut ctx, "alice", &p("/e/f7")).is_ok());
        let mut rm = OpCtx::for_test();
        fs.rmdir(&mut rm, "alice", &p("/e")).unwrap();
        assert_eq!(rm.counts().total(), 1);
        assert_eq!(fs.storage_stats().objects, 0);
    }

    #[test]
    fn copy_is_linear_in_files() {
        let (fs, mut ctx) = setup();
        fs.mkdir(&mut ctx, "alice", &p("/d")).unwrap();
        for i in 0..8 {
            fs.write(
                &mut ctx,
                "alice",
                &p(&format!("/d/f{i}")),
                FileContent::from_str("x"),
            )
            .unwrap();
        }
        let mut cp = OpCtx::for_test();
        fs.copy(&mut cp, "alice", &p("/d"), &p("/d2")).unwrap();
        assert_eq!(cp.counts().copies, 8);
        assert_eq!(fs.list(&mut ctx, "alice", &p("/d2")).unwrap().len(), 8);
    }

    #[test]
    fn list_detailed_matches_tree() {
        let (fs, mut ctx) = setup();
        fs.mkdir(&mut ctx, "alice", &p("/d")).unwrap();
        fs.write(&mut ctx, "alice", &p("/f"), FileContent::Simulated(123))
            .unwrap();
        let rows = fs.list_detailed(&mut ctx, "alice", &p("/")).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows.iter().find(|e| e.name == "f").unwrap().size, 123);
    }

    #[test]
    fn index_is_separate_state() {
        let (fs, mut ctx) = setup();
        fs.mkdir(&mut ctx, "alice", &p("/d")).unwrap();
        assert!(fs.uses_separate_index());
        let s = fs.storage_stats();
        assert_eq!(s.objects, 0); // no content yet
        assert_eq!(s.index_records, 1); // but index state exists
    }
}
