//! Static Partition — the AFS architecture (§2).
//!
//! Users are statically assigned to object storage servers ("volumes"),
//! each of which serves its users' directory trees locally: CMU's 2 GB per
//! enrolled student. Per-operation mechanics and complexities match the
//! index-server design (file access O(d), directory ops O(1), LIST O(m),
//! COPY O(n)); the architectural difference the paper criticises is that
//! the assignment is static — a volume cannot grow past its server, and
//! cross-partition operations are not supported at all.
//!
//! We model a set of volumes; each account hashes to one at creation and
//! stays there forever. Volume capacity is enforced: once a volume's byte
//! quota is exhausted, writes fail with `Unavailable` even if other volumes
//! have room — the "scalability: No" entry of Table 1 made observable.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

use h2fsapi::{CloudFs, DirEntry, FileContent, FsPath, StoreStats};
use h2util::{hash64, H2Error, OpCtx, Result};
use swiftsim::{Cluster, ClusterConfig};

use crate::single_index::SingleIndexFs;

/// The static-partition filesystem: fixed volumes over one object cloud.
pub struct StaticPartitionFs {
    inner: SingleIndexFs,
    volumes: usize,
    /// Bytes written per volume (quota accounting).
    usage: Mutex<Vec<u64>>,
    /// Account → volume, fixed at account creation.
    assignment: Mutex<HashMap<String, usize>>,
    /// Per-volume byte quota (u64::MAX = unbounded).
    quota: u64,
}

impl StaticPartitionFs {
    pub fn new(cluster: Arc<Cluster>, volumes: usize, quota: u64) -> Self {
        assert!(volumes >= 1);
        StaticPartitionFs {
            inner: SingleIndexFs::with_flavor(cluster, "Static Partition", false),
            volumes,
            usage: Mutex::new(vec![0; volumes]),
            assignment: Mutex::new(HashMap::new()),
            quota,
        }
    }

    pub fn rack() -> Self {
        Self::new(Cluster::new(ClusterConfig::default()), 8, u64::MAX)
    }

    pub fn cost_model(&self) -> Arc<h2util::CostModel> {
        self.inner.cost_model()
    }

    /// Which volume serves this account.
    pub fn volume_of(&self, account: &str) -> Option<usize> {
        self.assignment.lock().get(account).copied()
    }

    /// Bytes used per volume.
    pub fn volume_usage(&self) -> Vec<u64> {
        self.usage.lock().clone()
    }

    fn check_quota(&self, account: &str, additional: u64) -> Result<usize> {
        let vol = self
            .volume_of(account)
            .ok_or_else(|| H2Error::NoSuchAccount(account.to_string()))?;
        let usage = self.usage.lock();
        if usage[vol].saturating_add(additional) > self.quota {
            return Err(H2Error::Unavailable(format!(
                "volume {vol} quota exhausted ({} + {additional} > {})",
                usage[vol], self.quota
            )));
        }
        Ok(vol)
    }
}

impl CloudFs for StaticPartitionFs {
    fn name(&self) -> &'static str {
        "Static Partition"
    }

    fn uses_separate_index(&self) -> bool {
        false // the index lives with each partition's storage server
    }

    fn create_account(&self, ctx: &mut OpCtx, account: &str) -> Result<()> {
        self.inner.create_account(ctx, account)?;
        let vol = (hash64(account.as_bytes()) % self.volumes as u64) as usize;
        self.assignment.lock().insert(account.to_string(), vol);
        Ok(())
    }

    fn delete_account(&self, ctx: &mut OpCtx, account: &str) -> Result<()> {
        self.assignment.lock().remove(account);
        self.inner.delete_account(ctx, account)
    }

    fn mkdir(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<()> {
        self.check_quota(account, 0)?;
        self.inner.mkdir(ctx, account, path)
    }

    fn rmdir(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<()> {
        let before = self.inner.cluster().byte_count();
        self.inner.rmdir(ctx, account, path)?;
        let freed = before.saturating_sub(self.inner.cluster().byte_count());
        if let Some(vol) = self.volume_of(account) {
            let mut usage = self.usage.lock();
            usage[vol] = usage[vol].saturating_sub(freed);
        }
        Ok(())
    }

    fn mv(&self, ctx: &mut OpCtx, account: &str, from: &FsPath, to: &FsPath) -> Result<()> {
        self.inner.mv(ctx, account, from, to)
    }

    fn copy(&self, ctx: &mut OpCtx, account: &str, from: &FsPath, to: &FsPath) -> Result<()> {
        let before = self.inner.cluster().byte_count();
        self.inner.copy(ctx, account, from, to)?;
        let added = self.inner.cluster().byte_count().saturating_sub(before);
        let vol = self.check_quota(account, 0)?;
        self.usage.lock()[vol] += added;
        Ok(())
    }

    fn list(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<Vec<String>> {
        self.inner.list(ctx, account, path)
    }

    fn list_detailed(
        &self,
        ctx: &mut OpCtx,
        account: &str,
        path: &FsPath,
    ) -> Result<Vec<DirEntry>> {
        self.inner.list_detailed(ctx, account, path)
    }

    fn write(
        &self,
        ctx: &mut OpCtx,
        account: &str,
        path: &FsPath,
        content: FileContent,
    ) -> Result<()> {
        let vol = self.check_quota(account, content.len())?;
        let size = content.len();
        self.inner.write(ctx, account, path, content)?;
        self.usage.lock()[vol] += size;
        Ok(())
    }

    fn read(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<FileContent> {
        self.inner.read(ctx, account, path)
    }

    fn delete_file(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<()> {
        let size = self
            .inner
            .stat(ctx, account, path)
            .map(|e| e.size)
            .unwrap_or(0);
        self.inner.delete_file(ctx, account, path)?;
        if let Some(vol) = self.volume_of(account) {
            let mut usage = self.usage.lock();
            usage[vol] = usage[vol].saturating_sub(size);
        }
        Ok(())
    }

    fn stat(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<DirEntry> {
        self.inner.stat(ctx, account, path)
    }

    fn quiesce(&self) {
        self.inner.quiesce()
    }

    fn storage_stats(&self) -> StoreStats {
        // The per-partition indexes are not a *separate* cloud, but we
        // still report their size for the overhead comparison.
        self.inner.storage_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> FsPath {
        FsPath::parse(s).unwrap()
    }

    #[test]
    fn accounts_stick_to_volumes() {
        let fs = StaticPartitionFs::new(Cluster::new(ClusterConfig::tiny()), 4, u64::MAX);
        let mut ctx = OpCtx::for_test();
        fs.create_account(&mut ctx, "alice").unwrap();
        fs.create_account(&mut ctx, "bob").unwrap();
        let a = fs.volume_of("alice").unwrap();
        for _ in 0..5 {
            assert_eq!(fs.volume_of("alice").unwrap(), a);
        }
        assert!(fs.volume_of("carol").is_none());
    }

    #[test]
    fn quota_blocks_writes_even_with_free_volumes() {
        let fs = StaticPartitionFs::new(Cluster::new(ClusterConfig::tiny()), 4, 100);
        let mut ctx = OpCtx::for_test();
        fs.create_account(&mut ctx, "alice").unwrap();
        fs.write(&mut ctx, "alice", &p("/a"), FileContent::Simulated(80))
            .unwrap();
        // 80 + 30 > 100 → static partitioning cannot spill elsewhere.
        assert_eq!(
            fs.write(&mut ctx, "alice", &p("/b"), FileContent::Simulated(30))
                .unwrap_err()
                .code(),
            "unavailable"
        );
        // Deleting frees quota.
        fs.delete_file(&mut ctx, "alice", &p("/a")).unwrap();
        fs.write(&mut ctx, "alice", &p("/b"), FileContent::Simulated(30))
            .unwrap();
    }

    #[test]
    fn behaves_like_a_filesystem_within_the_partition() {
        let fs = StaticPartitionFs::new(Cluster::new(ClusterConfig::tiny()), 2, u64::MAX);
        let mut ctx = OpCtx::for_test();
        fs.create_account(&mut ctx, "alice").unwrap();
        fs.mkdir(&mut ctx, "alice", &p("/d")).unwrap();
        fs.write(&mut ctx, "alice", &p("/d/f"), FileContent::from_str("v"))
            .unwrap();
        fs.mv(&mut ctx, "alice", &p("/d"), &p("/e")).unwrap();
        assert_eq!(
            fs.read(&mut ctx, "alice", &p("/e/f")).unwrap(),
            FileContent::from_str("v")
        );
        fs.rmdir(&mut ctx, "alice", &p("/e")).unwrap();
        assert!(fs.list(&mut ctx, "alice", &p("/")).unwrap().is_empty());
        assert_eq!(fs.volume_usage().iter().sum::<u64>(), 0);
    }
}
