//! Baseline cloud filesystems — every data structure the paper's Table 1
//! analyses, implemented against the same [`swiftsim`] object cloud and the
//! same [`h2fsapi::CloudFs`] interface as H2Cloud, so one harness measures
//! them all:
//!
//! | module               | Table 1 row                                   |
//! |----------------------|-----------------------------------------------|
//! | [`swift_fs`]         | Consistent Hash, and CH + file-path DB (OpenStack Swift) |
//! | [`dp`]               | Dynamic Partition (the paper's stand-in for Dropbox) |
//! | [`single_index`]     | Single Index Server (GFS/HDFS namenode)       |
//! | [`static_partition`] | Static Partition (AFS)                        |
//! | [`cumulus`]          | Compressed Snapshot (Cumulus)                 |
//! | [`cas`]              | Content Addressable Storage (multi-layer index) |
//!
//! The two-cloud designs (`dp`, `single_index`, `static_partition`) keep
//! their metadata in a separate in-memory index ([`tree::TreeIndex`]) and
//! report it via `StoreStats::index_records` — exactly the state H2Cloud
//! exists to eliminate.

pub mod cas;
pub mod cumulus;
pub mod dp;
pub mod single_index;
pub mod static_partition;
pub mod swift_fs;
pub mod tree;

pub use cas::CasFs;
pub use cumulus::CumulusFs;
pub use dp::DpFs;
pub use single_index::SingleIndexFs;
pub use static_partition::StaticPartitionFs;
pub use swift_fs::SwiftFs;
