//! Compressed Snapshot — Cumulus (§2, Figure 1a).
//!
//! Cumulus backs a filesystem up into an object cloud as *segments* (packed
//! file content) plus a flat *metadata log* listing every path. Appending
//! (new file, new directory) is cheap — write into the current segment and
//! append a log record. Everything else pays for the flatness:
//!
//! * file access scans the metadata log — O(N);
//! * RMDIR/MOVE rewrite the whole log — O(N);
//! * LIST scans the log — O(N);
//! * COPY rewrites the log *and* duplicates content — O(N).
//!
//! Exactly the Table 1 row: "able to backup a filesystem but not competent
//! to maintain a 'real' filesystem that frequently changes."
//!
//! The metadata log is stored in the cloud as chunked `metalog-*` objects
//! and file content as `segment-*` pack objects (inline bytes hex-encoded so
//! every stored object stays an ASCII string, like Cumulus's TAR-of-text
//! segments). An in-memory mirror keeps semantics simple; all costs are
//! charged as if every scan and rewrite went to the cloud — which the PUT
//! and GET calls actually do.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

use h2fsapi::{CloudFs, DirEntry, EntryKind, FileContent, FsPath, StoreStats};
use h2util::{H2Error, OpCtx, Result};
use swiftsim::{Cluster, ClusterConfig, Meta, ObjectKey, ObjectStore, Payload};

const CONTAINER: &str = "backup";
/// Files per segment object.
const SEG_CAP: usize = 64;
/// Log records per metalog chunk object.
const LOG_CHUNK: usize = 1024;

/// One metadata-log record.
#[derive(Debug, Clone, PartialEq, Eq)]
struct LogRecord {
    /// Absolute path string.
    path: String,
    kind: EntryKind,
    size: u64,
    /// Segment holding the content (files only).
    segment: u32,
    /// Index within the segment (files only).
    item: u32,
    /// Tombstone: the path was deleted after this record.
    dead: bool,
    modified_ms: u64,
}

struct AccountState {
    log: Vec<LogRecord>,
    /// Next content slot: (segment, item). Writes stream into the current
    /// segment; restores use ranged GETs addressed by (segment, item) —
    /// stored here as one object per item, `segment-<seg>-<item>`.
    cur_segment: u32,
    cur_item: u32,
    ms: u64,
}

impl AccountState {
    fn new() -> Self {
        AccountState {
            log: Vec::new(),
            cur_segment: 0,
            cur_item: 0,
            ms: 1_600_000_000_000,
        }
    }

    fn next_slot(&mut self) -> (u32, u32) {
        let slot = (self.cur_segment, self.cur_item);
        self.cur_item += 1;
        if self.cur_item as usize >= SEG_CAP {
            self.cur_segment += 1;
            self.cur_item = 0;
        }
        slot
    }

    fn next_ms(&mut self) -> u64 {
        self.ms += 1;
        self.ms
    }

    /// Latest live record for `path` (linear scan, newest wins).
    fn find(&self, path: &str) -> Option<&LogRecord> {
        self.log
            .iter()
            .rev()
            .find(|r| r.path == path)
            .filter(|r| !r.dead)
    }

    fn dir_exists(&self, path: &FsPath) -> bool {
        if path.is_root() {
            return true;
        }
        matches!(
            self.find(&path.to_string()),
            Some(LogRecord {
                kind: EntryKind::Directory,
                ..
            })
        )
    }

    /// Drop shadowed and dead records (runs during full rewrites).
    fn compact(&mut self) {
        let mut latest: HashMap<String, usize> = HashMap::new();
        for (i, r) in self.log.iter().enumerate() {
            latest.insert(r.path.clone(), i);
        }
        let mut keep: Vec<LogRecord> = Vec::with_capacity(latest.len());
        for (i, r) in self.log.iter().enumerate() {
            if latest[&r.path] == i && !r.dead {
                keep.push(r.clone());
            }
        }
        keep.sort_by(|a, b| a.path.cmp(&b.path));
        self.log = keep;
    }
}

/// The Cumulus-style snapshot filesystem.
pub struct CumulusFs {
    cluster: Arc<Cluster>,
    accounts: Mutex<HashMap<String, AccountState>>,
}

impl CumulusFs {
    pub fn new(cluster: Arc<Cluster>) -> Self {
        CumulusFs {
            cluster,
            accounts: Mutex::new(HashMap::new()),
        }
    }

    pub fn rack() -> Self {
        Self::new(Cluster::new(ClusterConfig::default()))
    }

    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    pub fn cost_model(&self) -> Arc<h2util::CostModel> {
        self.cluster.cost_model()
    }

    fn key(&self, account: &str, name: &str) -> ObjectKey {
        ObjectKey::new(account, CONTAINER, name)
    }

    fn with_state<T>(
        &self,
        account: &str,
        f: impl FnOnce(&mut AccountState) -> Result<T>,
    ) -> Result<T> {
        let mut accounts = self.accounts.lock();
        let st = accounts
            .get_mut(account)
            .ok_or_else(|| H2Error::NoSuchAccount(account.to_string()))?;
        f(st)
    }

    /// Charge a full metadata-log scan: GET every metalog chunk + per-entry
    /// CPU. This is the O(N) that dominates every Cumulus operation.
    fn charge_scan(&self, ctx: &mut OpCtx, n: usize) {
        let model = ctx.model.clone();
        let chunks = n.div_ceil(LOG_CHUNK).max(1);
        for _ in 0..chunks {
            ctx.charge(
                h2util::PrimKind::Get,
                model.get_cost(LOG_CHUNK.min(n.max(1)) * 80),
            );
        }
        ctx.charge_time(model.per_entry_cpu * n as u32);
    }

    /// Persist the (compacted) metadata log back to the cloud — the O(N)
    /// rewrite structural changes pay.
    fn rewrite_log(&self, ctx: &mut OpCtx, account: &str, st: &AccountState) -> Result<()> {
        let chunks: Vec<&[LogRecord]> = st.log.chunks(LOG_CHUNK).collect();
        if chunks.is_empty() {
            return self.cluster.put(
                ctx,
                &self.key(account, "metalog-0"),
                Payload::from_string("CUMULUS-LOG 0\n".to_string()),
                Meta::new(),
            );
        }
        for (i, chunk) in chunks.iter().enumerate() {
            let mut body = format!("CUMULUS-LOG {}\n", chunk.len());
            for r in *chunk {
                body.push_str(&format!(
                    "{}\t{}\t{}\t{}\t{}\t{}\n",
                    r.path,
                    match r.kind {
                        EntryKind::File => "F",
                        EntryKind::Directory => "D",
                    },
                    r.size,
                    r.segment,
                    r.item,
                    r.modified_ms,
                ));
            }
            self.cluster.put(
                ctx,
                &self.key(account, &format!("metalog-{i}")),
                Payload::from_string(body),
                Meta::new(),
            )?;
        }
        Ok(())
    }

    /// The object holding one segment item (Cumulus restores address into
    /// segments with ranged GETs; one object per item models that without
    /// re-uploading the whole segment on every append).
    fn seg_key(&self, account: &str, seg: u32, item: u32) -> ObjectKey {
        self.key(account, &format!("segment-{seg:04}-{item:03}"))
    }

    fn append_record(
        &self,
        ctx: &mut OpCtx,
        account: &str,
        st: &mut AccountState,
        rec: LogRecord,
    ) -> Result<()> {
        st.log.push(rec);
        // O(1) amortised: only the tail chunk is rewritten.
        let tail_start = (st.log.len() - 1) / LOG_CHUNK * LOG_CHUNK;
        let tail_len = st.log.len() - tail_start;
        self.cluster.put(
            ctx,
            &self.key(account, &format!("metalog-{}", tail_start / LOG_CHUNK)),
            Payload::from_string(format!("CUMULUS-LOG {tail_len}\n…")),
            Meta::new(),
        )?;
        let _ = account;
        Ok(())
    }

    /// Direct live children of `path`: full scan.
    fn scan_children(&self, st: &AccountState, path: &FsPath) -> Vec<DirEntry> {
        let prefix = if path.is_root() {
            "/".to_string()
        } else {
            format!("{path}/")
        };
        let mut latest: HashMap<&str, &LogRecord> = HashMap::new();
        for r in &st.log {
            if let Some(rest) = r.path.strip_prefix(&prefix) {
                if !rest.is_empty() && !rest.contains('/') {
                    latest.insert(rest, r);
                }
            }
        }
        let mut out: Vec<DirEntry> = latest
            .into_iter()
            .filter(|(_, r)| !r.dead)
            .map(|(name, r)| DirEntry {
                name: name.to_string(),
                kind: r.kind,
                size: r.size,
                modified_ms: r.modified_ms,
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }
}

impl CloudFs for CumulusFs {
    fn name(&self) -> &'static str {
        "Cumulus (Snapshot)"
    }

    fn uses_separate_index(&self) -> bool {
        false
    }

    fn create_account(&self, ctx: &mut OpCtx, account: &str) -> Result<()> {
        self.cluster.create_account_ctx(ctx, account)?;
        let model = ctx.model.clone();
        ctx.charge(h2util::PrimKind::DbUpdate, model.db_update_cost());
        self.cluster.create_container(account, CONTAINER, false)?;
        self.accounts
            .lock()
            .insert(account.to_string(), AccountState::new());
        Ok(())
    }

    fn delete_account(&self, ctx: &mut OpCtx, account: &str) -> Result<()> {
        self.accounts.lock().remove(account);
        self.cluster.delete_account_ctx(ctx, account)
    }

    fn mkdir(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<()> {
        self.with_state(account, |st| {
            if path.is_root() {
                return Err(H2Error::AlreadyExists("/".into()));
            }
            let parent = path.parent().expect("non-root");
            if !st.dir_exists(&parent) {
                return Err(H2Error::NotFound(parent.to_string()));
            }
            if st.find(&path.to_string()).is_some() {
                return Err(H2Error::AlreadyExists(path.to_string()));
            }
            let ms = st.next_ms();
            // O(1): append one record.
            self.append_record(
                ctx,
                account,
                st,
                LogRecord {
                    path: path.to_string(),
                    kind: EntryKind::Directory,
                    size: 0,
                    segment: 0,
                    item: 0,
                    dead: false,
                    modified_ms: ms,
                },
            )
        })
    }

    fn rmdir(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<()> {
        self.with_state(account, |st| {
            if path.is_root() {
                return Err(H2Error::InvalidPath("cannot remove /".into()));
            }
            match st.find(&path.to_string()) {
                Some(r) if r.kind == EntryKind::Directory => {}
                Some(_) => return Err(H2Error::NotADirectory(path.to_string())),
                None => return Err(H2Error::NotFound(path.to_string())),
            }
            // O(N): scan + full rewrite without the subtree.
            self.charge_scan(ctx, st.log.len());
            let prefix = format!("{path}/");
            let target = path.to_string();
            st.log
                .retain(|r| r.path != target && !r.path.starts_with(&prefix));
            st.compact();
            self.rewrite_log(ctx, account, st)
        })
    }

    fn mv(&self, ctx: &mut OpCtx, account: &str, from: &FsPath, to: &FsPath) -> Result<()> {
        self.with_state(account, |st| {
            if from.is_root() || to.is_root() {
                return Err(H2Error::InvalidPath("cannot move to or from /".into()));
            }
            if from == to {
                // A self-move is a no-op, but the client still scanned the
                // metadata log to locate the source before concluding so.
                self.charge_scan(ctx, st.log.len());
                return Ok(());
            }
            if from.is_ancestor_of(to) {
                return Err(H2Error::InvalidPath(format!(
                    "cannot move {from} inside itself"
                )));
            }
            if st.find(&from.to_string()).is_none() {
                return Err(H2Error::NotFound(from.to_string()));
            }
            if st.find(&to.to_string()).is_some() {
                return Err(H2Error::AlreadyExists(to.to_string()));
            }
            let to_parent = to.parent().expect("non-root");
            if !st.dir_exists(&to_parent) {
                return Err(H2Error::NotFound(to_parent.to_string()));
            }
            // O(N): every record under the prefix is rewritten.
            self.charge_scan(ctx, st.log.len());
            let from_s = from.to_string();
            let from_prefix = format!("{from}/");
            let to_s = to.to_string();
            st.compact();
            for r in &mut st.log {
                if r.path == from_s {
                    r.path = to_s.clone();
                } else if let Some(rest) = r.path.strip_prefix(&from_prefix) {
                    r.path = format!("{to_s}/{rest}");
                }
            }
            st.log.sort_by(|a, b| a.path.cmp(&b.path));
            self.rewrite_log(ctx, account, st)
        })
    }

    fn copy(&self, ctx: &mut OpCtx, account: &str, from: &FsPath, to: &FsPath) -> Result<()> {
        self.with_state(account, |st| {
            if from.is_root() || to.is_root() {
                return Err(H2Error::InvalidPath("cannot copy to or from /".into()));
            }
            if from == to || from.is_ancestor_of(to) {
                return Err(H2Error::InvalidPath(format!(
                    "cannot copy {from} onto/inside itself"
                )));
            }
            if st.find(&from.to_string()).is_none() {
                return Err(H2Error::NotFound(from.to_string()));
            }
            let to_parent = to.parent().expect("non-root");
            if !st.dir_exists(&to_parent) {
                return Err(H2Error::NotFound(to_parent.to_string()));
            }
            if st.find(&to.to_string()).is_some() {
                return Err(H2Error::AlreadyExists(to.to_string()));
            }
            self.charge_scan(ctx, st.log.len());
            st.compact();
            let from_s = from.to_string();
            let from_prefix = format!("{from}/");
            let to_s = to.to_string();
            let mut additions = Vec::new();
            for r in &st.log {
                let new_path = if r.path == from_s {
                    Some(to_s.clone())
                } else {
                    r.path
                        .strip_prefix(&from_prefix)
                        .map(|rest| format!("{to_s}/{rest}"))
                };
                if let Some(path) = new_path {
                    // Content is shared segment-side (snapshots are
                    // content-addressed-ish); only metadata duplicates.
                    additions.push(LogRecord { path, ..r.clone() });
                }
            }
            st.log.extend(additions);
            st.log.sort_by(|a, b| a.path.cmp(&b.path));
            self.rewrite_log(ctx, account, st)
        })
    }

    fn list(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<Vec<String>> {
        Ok(self
            .list_detailed(ctx, account, path)?
            .into_iter()
            .map(|e| e.name)
            .collect())
    }

    fn list_detailed(
        &self,
        ctx: &mut OpCtx,
        account: &str,
        path: &FsPath,
    ) -> Result<Vec<DirEntry>> {
        self.with_state(account, |st| {
            // O(N): the whole log must be scanned — even to discover the
            // listing target is missing or a plain file.
            self.charge_scan(ctx, st.log.len());
            if !st.dir_exists(path) {
                return match st.find(&path.to_string()) {
                    Some(_) => Err(H2Error::NotADirectory(path.to_string())),
                    None => Err(H2Error::NotFound(path.to_string())),
                };
            }
            Ok(self.scan_children(st, path))
        })
    }

    fn write(
        &self,
        ctx: &mut OpCtx,
        account: &str,
        path: &FsPath,
        content: FileContent,
    ) -> Result<()> {
        self.with_state(account, |st| {
            let Some(_) = path.name() else {
                return Err(H2Error::IsADirectory("/".into()));
            };
            let parent = path.parent().expect("non-root");
            if !st.dir_exists(&parent) {
                return Err(H2Error::NotFound(parent.to_string()));
            }
            if let Some(r) = st.find(&path.to_string()) {
                if r.kind == EntryKind::Directory {
                    return Err(H2Error::IsADirectory(path.to_string()));
                }
            }
            let size = content.len();
            let (seg, item) = st.next_slot();
            // Stream the content into the current segment: one PUT of the
            // item's own bytes (appends never re-upload the segment).
            let payload = match content {
                FileContent::Inline(v) => Payload::Inline(v.into_bytes()),
                FileContent::Simulated(n) => Payload::simulated(n, &path.to_string()),
                FileContent::SimulatedShared { size, seed } => {
                    Payload::simulated(size, &format!("shared:{seed}"))
                }
            };
            self.cluster
                .put(ctx, &self.seg_key(account, seg, item), payload, Meta::new())?;
            let ms = st.next_ms();
            self.append_record(
                ctx,
                account,
                st,
                LogRecord {
                    path: path.to_string(),
                    kind: EntryKind::File,
                    size,
                    segment: seg,
                    item,
                    dead: false,
                    modified_ms: ms,
                },
            )
        })
    }

    fn read(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<FileContent> {
        self.with_state(account, |st| {
            // O(N): scan the metadata log to locate the file.
            self.charge_scan(ctx, st.log.len());
            let rec = st
                .find(&path.to_string())
                .ok_or_else(|| H2Error::NotFound(path.to_string()))?;
            if rec.kind == EntryKind::Directory {
                return Err(H2Error::IsADirectory(path.to_string()));
            }
            // Then a ranged GET into the segment holding it.
            let obj = self
                .cluster
                .get(ctx, &self.seg_key(account, rec.segment, rec.item))?;
            Ok(match obj.payload {
                Payload::Inline(b) => FileContent::Inline(h2util::SharedBuf::from_bytes(b)),
                Payload::Simulated { size, .. } => FileContent::Simulated(size),
            })
        })
    }

    fn delete_file(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<()> {
        self.with_state(account, |st| {
            match st.find(&path.to_string()) {
                Some(r) if r.kind == EntryKind::File => {}
                Some(_) => return Err(H2Error::IsADirectory(path.to_string())),
                None => return Err(H2Error::NotFound(path.to_string())),
            }
            let ms = st.next_ms();
            self.append_record(
                ctx,
                account,
                st,
                LogRecord {
                    path: path.to_string(),
                    kind: EntryKind::File,
                    size: 0,
                    segment: 0,
                    item: 0,
                    dead: true,
                    modified_ms: ms,
                },
            )
        })
    }

    fn stat(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<DirEntry> {
        self.with_state(account, |st| {
            if path.is_root() {
                // The root always exists, but answering still costs the
                // client the first metalog chunk fetch.
                self.charge_scan(ctx, 0);
                return Ok(DirEntry {
                    name: "/".into(),
                    kind: EntryKind::Directory,
                    size: 0,
                    modified_ms: 0,
                });
            }
            self.charge_scan(ctx, st.log.len());
            let rec = st
                .find(&path.to_string())
                .ok_or_else(|| H2Error::NotFound(path.to_string()))?;
            Ok(DirEntry {
                name: path.name().unwrap().to_string(),
                kind: rec.kind,
                size: rec.size,
                modified_ms: rec.modified_ms,
            })
        })
    }

    fn quiesce(&self) {}

    fn storage_stats(&self) -> StoreStats {
        StoreStats {
            objects: self.cluster.object_count(),
            bytes: self.cluster.byte_count(),
            index_records: 0,
            index_bytes: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> FsPath {
        FsPath::parse(s).unwrap()
    }

    fn setup() -> (CumulusFs, OpCtx) {
        let fs = CumulusFs::new(Cluster::new(ClusterConfig::tiny()));
        let mut ctx = OpCtx::for_test();
        fs.create_account(&mut ctx, "alice").unwrap();
        (fs, ctx)
    }

    #[test]
    fn backup_and_restore_files() {
        let (fs, mut ctx) = setup();
        fs.mkdir(&mut ctx, "alice", &p("/home")).unwrap();
        fs.write(
            &mut ctx,
            "alice",
            &p("/home/a"),
            FileContent::from_str("alpha"),
        )
        .unwrap();
        fs.write(
            &mut ctx,
            "alice",
            &p("/home/b"),
            FileContent::Simulated(1 << 20),
        )
        .unwrap();
        assert_eq!(
            fs.read(&mut ctx, "alice", &p("/home/a")).unwrap(),
            FileContent::from_str("alpha")
        );
        assert_eq!(
            fs.read(&mut ctx, "alice", &p("/home/b")).unwrap(),
            FileContent::Simulated(1 << 20)
        );
        let names = fs.list(&mut ctx, "alice", &p("/home")).unwrap();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn file_access_scans_whole_log() {
        let (fs, mut ctx) = setup();
        for i in 0..30 {
            fs.write(
                &mut ctx,
                "alice",
                &p(&format!("/f{i}")),
                FileContent::from_str("x"),
            )
            .unwrap();
        }
        let mut read_ctx = OpCtx::new(Arc::new(h2util::CostModel::rack_default()));
        fs.read(&mut read_ctx, "alice", &p("/f29")).unwrap();
        let mut small_ctx = OpCtx::new(Arc::new(h2util::CostModel::rack_default()));
        // A fresh account with 1 record scans less.
        fs.create_account(&mut small_ctx, "bob").unwrap();
        fs.write(
            &mut small_ctx,
            "bob",
            &p("/only"),
            FileContent::from_str("x"),
        )
        .unwrap();
        let mut bob_read = OpCtx::new(Arc::new(h2util::CostModel::rack_default()));
        fs.read(&mut bob_read, "bob", &p("/only")).unwrap();
        assert!(read_ctx.elapsed() > bob_read.elapsed());
    }

    #[test]
    fn move_rewrites_log_but_works() {
        let (fs, mut ctx) = setup();
        fs.mkdir(&mut ctx, "alice", &p("/a")).unwrap();
        fs.write(&mut ctx, "alice", &p("/a/f"), FileContent::from_str("v"))
            .unwrap();
        fs.mv(&mut ctx, "alice", &p("/a"), &p("/b")).unwrap();
        assert!(fs.read(&mut ctx, "alice", &p("/a/f")).is_err());
        assert_eq!(
            fs.read(&mut ctx, "alice", &p("/b/f")).unwrap(),
            FileContent::from_str("v")
        );
    }

    #[test]
    fn rmdir_removes_subtree_records() {
        let (fs, mut ctx) = setup();
        fs.mkdir(&mut ctx, "alice", &p("/d")).unwrap();
        fs.mkdir(&mut ctx, "alice", &p("/d/sub")).unwrap();
        fs.write(
            &mut ctx,
            "alice",
            &p("/d/sub/f"),
            FileContent::from_str("x"),
        )
        .unwrap();
        fs.rmdir(&mut ctx, "alice", &p("/d")).unwrap();
        assert!(fs.stat(&mut ctx, "alice", &p("/d")).is_err());
        assert!(fs.read(&mut ctx, "alice", &p("/d/sub/f")).is_err());
        assert!(fs.list(&mut ctx, "alice", &p("/")).unwrap().is_empty());
    }

    #[test]
    fn copy_shares_segments() {
        let (fs, mut ctx) = setup();
        fs.mkdir(&mut ctx, "alice", &p("/a")).unwrap();
        fs.write(
            &mut ctx,
            "alice",
            &p("/a/f"),
            FileContent::from_str("shared"),
        )
        .unwrap();
        let objects_before = fs.storage_stats().objects;
        fs.copy(&mut ctx, "alice", &p("/a"), &p("/b")).unwrap();
        assert_eq!(
            fs.read(&mut ctx, "alice", &p("/b/f")).unwrap(),
            FileContent::from_str("shared")
        );
        // Metadata grew, but no new segment objects were created.
        assert!(fs.storage_stats().objects <= objects_before + 1);
    }

    #[test]
    fn delete_and_overwrite_take_latest_record() {
        let (fs, mut ctx) = setup();
        fs.write(&mut ctx, "alice", &p("/f"), FileContent::from_str("v1"))
            .unwrap();
        fs.write(&mut ctx, "alice", &p("/f"), FileContent::from_str("v2"))
            .unwrap();
        assert_eq!(
            fs.read(&mut ctx, "alice", &p("/f")).unwrap(),
            FileContent::from_str("v2")
        );
        fs.delete_file(&mut ctx, "alice", &p("/f")).unwrap();
        assert!(fs.read(&mut ctx, "alice", &p("/f")).is_err());
        assert!(fs.list(&mut ctx, "alice", &p("/")).unwrap().is_empty());
    }
}
