//! Property-based tests for the consistent-hash ring.

use h2ring::{DeviceId, RingBuilder};
use proptest::prelude::*;

fn arb_devices() -> impl Strategy<Value = Vec<(u16, u8, f64)>> {
    // 3..12 devices, zones 0..4, weights 0.5..4.0
    prop::collection::vec((0u16..64, 0u8..4, 0.5f64..4.0), 3..12).prop_map(|mut v| {
        v.sort_by_key(|d| d.0);
        v.dedup_by_key(|d| d.0);
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn replica_sets_are_distinct_devices(devs in arb_devices()) {
        prop_assume!(devs.len() >= 3);
        let mut b = RingBuilder::new(8, 3);
        for (id, zone, w) in &devs {
            b.add_device(DeviceId(*id), *zone, *w);
        }
        let ring = b.build();
        for part in 0..ring.partitions() as u64 {
            let set: std::collections::HashSet<_> =
                ring.devices_for_part(part).iter().collect();
            prop_assert_eq!(set.len(), 3);
        }
    }

    #[test]
    fn lookup_agrees_with_partition_table(devs in arb_devices(), key in ".{1,64}") {
        prop_assume!(devs.len() >= 2);
        let mut b = RingBuilder::new(8, 2);
        for (id, zone, w) in &devs {
            b.add_device(DeviceId(*id), *zone, *w);
        }
        let ring = b.build();
        let part = ring.partition_of(key.as_bytes());
        prop_assert_eq!(ring.lookup(key.as_bytes()), ring.devices_for_part(part));
    }

    #[test]
    fn adding_device_never_reshuffles_everything(devs in arb_devices()) {
        prop_assume!(devs.len() >= 4);
        // Single zone: the pure weighted-rendezvous property. Zone-aware
        // placement legitimately moves more than the weight share when the
        // zone structure changes (a new zone — or a newcomer in a
        // minority zone — attracts a replica of ~every partition); those
        // dynamics are covered by the unit tests and the abl-ring ablation.
        let mut b = RingBuilder::new(9, 2);
        for (id, _, w) in &devs {
            b.add_device(DeviceId(*id), 0, *w);
        }
        let old = b.build();
        b.add_device(DeviceId(999), 0, 1.0);
        let new = b.build();
        let moved = old.moved_partitions(&new) as f64 / old.partitions() as f64;
        let total_w: f64 = devs.iter().map(|d| d.2).sum::<f64>() + 1.0;
        let share = 1.0 / total_w;
        prop_assert!(moved <= (4.0 * share + 0.1).min(0.9), "moved {} share {}", moved, share);
    }

    #[test]
    fn handoffs_partition_device_space(devs in arb_devices()) {
        prop_assume!(devs.len() >= 3);
        let mut b = RingBuilder::new(6, 3);
        for (id, zone, w) in &devs {
            b.add_device(DeviceId(*id), *zone, *w);
        }
        let ring = b.build();
        for part in [0u64, 1, 17 % ring.partitions() as u64] {
            let assigned = ring.devices_for_part(part);
            let hand = ring.handoffs(part);
            prop_assert_eq!(assigned.len() + hand.len(), devs.len());
            for h in &hand {
                prop_assert!(!assigned.contains(h));
            }
        }
    }
}
