//! Consistent-hashing ring, Swift style.
//!
//! OpenStack Swift maps an object name to one of `2^part_power` partitions by
//! hashing, and maps each partition to `replicas` storage devices via a
//! precomputed table (the "ring"). This crate reproduces that model:
//!
//! * [`RingBuilder`] collects weighted devices grouped into zones and builds
//!   an immutable [`Ring`].
//! * Placement uses *weighted rendezvous hashing* per partition, which gives
//!   the three properties the paper relies on (§2, §3.1): load proportional
//!   to device weight, replicas on distinct devices (and distinct zones when
//!   possible), and minimal data movement when devices join or leave — only
//!   the partitions whose best device changed move.
//! * [`Ring::lookup`] returns primary + replica devices for a key in O(1)
//!   (table lookup); [`Ring::handoffs`] yields fallback devices for failure
//!   handling, in deterministic preference order.
//!
//! Both H2Cloud and every single-cloud baseline place *all* their objects —
//! file content, directory descriptors, NameRings, patches — through this
//! one ring, exactly as Figure 4(c) of the paper shows.
//!
//! ```
//! use h2ring::{DeviceId, RingBuilder};
//!
//! let mut builder = RingBuilder::new(10, 3); // 2^10 partitions, 3 replicas
//! for i in 0..8 {
//!     builder.add_device(DeviceId(i), i as u8, 1.0); // one zone per server
//! }
//! let ring = builder.build();
//! let replicas = ring.lookup(b"/alice/fs/home/notes.txt");
//! assert_eq!(replicas.len(), 3);
//! // Deterministic: the same key always lands on the same devices.
//! assert_eq!(replicas, ring.lookup(b"/alice/fs/home/notes.txt"));
//! ```

use h2util::hash::hash64_seeded;

/// Identifier of a storage device (disk on a storage node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeviceId(pub u16);

impl std::fmt::Display for DeviceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dev{}", self.0)
    }
}

/// A weighted device in a failure zone.
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    pub id: DeviceId,
    /// Failure-isolation zone (Swift zone / paper's "storage server").
    pub zone: u8,
    /// Relative capacity; partitions are assigned proportionally.
    pub weight: f64,
}

/// Builder for a [`Ring`].
#[derive(Debug, Clone)]
pub struct RingBuilder {
    part_power: u8,
    replicas: usize,
    devices: Vec<Device>,
}

impl RingBuilder {
    /// `part_power` bits of partition space (Swift default 18 in prod; tests
    /// use 8–12), `replicas` copies of each object.
    pub fn new(part_power: u8, replicas: usize) -> Self {
        assert!(
            part_power > 0 && part_power <= 24,
            "part_power out of range"
        );
        assert!(replicas >= 1, "need at least one replica");
        RingBuilder {
            part_power,
            replicas,
            devices: Vec::new(),
        }
    }

    pub fn add_device(&mut self, id: DeviceId, zone: u8, weight: f64) -> &mut Self {
        assert!(weight > 0.0, "device weight must be positive");
        assert!(
            self.devices.iter().all(|d| d.id != id),
            "duplicate device {id}"
        );
        self.devices.push(Device { id, zone, weight });
        self
    }

    pub fn remove_device(&mut self, id: DeviceId) -> bool {
        let before = self.devices.len();
        self.devices.retain(|d| d.id != id);
        self.devices.len() != before
    }

    pub fn set_weight(&mut self, id: DeviceId, weight: f64) -> bool {
        assert!(weight > 0.0);
        for d in &mut self.devices {
            if d.id == id {
                d.weight = weight;
                return true;
            }
        }
        false
    }

    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Builder seeded from an existing ring's topology, for incremental
    /// rebuilds: same partition space and replica count, same devices.
    /// Mutate (add/remove/re-weight devices) and [`RingBuilder::build`] to
    /// get the successor ring; [`Ring::changed_parts`] then tells exactly
    /// which partitions must migrate.
    pub fn from_ring(ring: &Ring) -> Self {
        RingBuilder {
            part_power: ring.part_power,
            replicas: ring.replicas,
            devices: ring.devices.clone(),
        }
    }

    /// Materialise the placement table.
    pub fn build(&self) -> Ring {
        assert!(
            self.devices.len() >= self.replicas,
            "need at least as many devices ({}) as replicas ({})",
            self.devices.len(),
            self.replicas
        );
        let parts = 1usize << self.part_power;
        let mut table = Vec::with_capacity(parts * self.replicas);
        for part in 0..parts as u64 {
            let ranked = rank_devices(&self.devices, part);
            let chosen = choose_replicas(&ranked, &self.devices, self.replicas);
            table.extend(chosen);
        }
        Ring {
            part_power: self.part_power,
            replicas: self.replicas,
            devices: self.devices.clone(),
            table,
        }
    }
}

/// Rank all devices for a partition by weighted-rendezvous score, best first.
/// Returns indices into `devices`.
fn rank_devices(devices: &[Device], part: u64) -> Vec<usize> {
    let mut scored: Vec<(f64, usize)> = devices
        .iter()
        .enumerate()
        .map(|(i, d)| (rendezvous_score(d, part), i))
        .collect();
    // Descending score; ties broken by device id for determinism.
    scored.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .unwrap()
            .then_with(|| devices[a.1].id.cmp(&devices[b.1].id))
    });
    scored.into_iter().map(|(_, i)| i).collect()
}

/// Weighted rendezvous: score = -weight / ln(u), u = uniform(0,1) from
/// hashing (device, partition). The device with max score "owns" the
/// partition; weights bias ownership proportionally, and a device's score
/// for a partition never depends on other devices — hence minimal movement.
fn rendezvous_score(dev: &Device, part: u64) -> f64 {
    let h = hash64_seeded(&part.to_le_bytes(), 0xD1CE ^ dev.id.0 as u64);
    let u = (h >> 11) as f64 / ((1u64 << 53) as f64);
    let u = u.max(f64::MIN_POSITIVE);
    -dev.weight / u.ln()
}

/// Pick `replicas` devices from the ranked list, preferring distinct zones.
/// Falls back to distinct devices once zones are exhausted.
fn choose_replicas(ranked: &[usize], devices: &[Device], replicas: usize) -> Vec<DeviceId> {
    let mut chosen: Vec<usize> = Vec::with_capacity(replicas);
    let mut used_zones: Vec<u8> = Vec::with_capacity(replicas);
    // Pass 1: distinct zones.
    for &i in ranked {
        if chosen.len() == replicas {
            break;
        }
        if !used_zones.contains(&devices[i].zone) {
            chosen.push(i);
            used_zones.push(devices[i].zone);
        }
    }
    // Pass 2: fill remaining with distinct devices regardless of zone.
    for &i in ranked {
        if chosen.len() == replicas {
            break;
        }
        if !chosen.contains(&i) {
            chosen.push(i);
        }
    }
    chosen.into_iter().map(|i| devices[i].id).collect()
}

/// Immutable partition→devices table plus key hashing.
#[derive(Debug, Clone)]
pub struct Ring {
    part_power: u8,
    replicas: usize,
    devices: Vec<Device>,
    /// Row-major `[part][replica]` flattened.
    table: Vec<DeviceId>,
}

impl Ring {
    pub fn part_power(&self) -> u8 {
        self.part_power
    }

    pub fn partitions(&self) -> usize {
        1 << self.part_power
    }

    pub fn replicas(&self) -> usize {
        self.replicas
    }

    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Partition of a key (top `part_power` bits of the key hash, like
    /// Swift).
    pub fn partition_of(&self, key: &[u8]) -> u64 {
        hash64_seeded(key, 0) >> (64 - self.part_power)
    }

    /// Primary + replica devices for a partition.
    pub fn devices_for_part(&self, part: u64) -> &[DeviceId] {
        let p = part as usize;
        &self.table[p * self.replicas..(p + 1) * self.replicas]
    }

    /// Primary + replica devices for a key.
    pub fn lookup(&self, key: &[u8]) -> &[DeviceId] {
        self.devices_for_part(self.partition_of(key))
    }

    /// Fallback devices for a partition when assigned devices fail:
    /// the remaining devices in rendezvous preference order.
    pub fn handoffs(&self, part: u64) -> Vec<DeviceId> {
        let assigned = self.devices_for_part(part);
        rank_devices(&self.devices, part)
            .into_iter()
            .map(|i| self.devices[i].id)
            .filter(|id| !assigned.contains(id))
            .collect()
    }

    /// Weighted rebuild: clone this ring's topology, apply the operator's
    /// mutation (add/remove/re-weight devices) and materialise the
    /// successor ring. Rendezvous scores of untouched devices never change,
    /// so only partitions whose winner set involves a touched device move —
    /// the bounded-movement property the live migrator relies on.
    pub fn rebuild(&self, mutate: impl FnOnce(&mut RingBuilder)) -> Ring {
        let mut b = RingBuilder::from_ring(self);
        mutate(&mut b);
        b.build()
    }

    /// Partitions whose replica set (first `min(replicas)` rows) differs
    /// between two rings, ascending — exactly the partitions a rebalance
    /// must migrate.
    pub fn changed_parts(&self, other: &Ring) -> Vec<u64> {
        assert_eq!(self.part_power, other.part_power);
        let r = self.replicas.min(other.replicas);
        (0..self.partitions() as u64)
            .filter(|&p| {
                let a = self.devices_for_part(p);
                let b = other.devices_for_part(p);
                a[..r] != b[..r]
            })
            .collect()
    }

    /// Number of partitions whose replica set (first `min` rows) differs
    /// between two rings — used to verify the minimal-movement property.
    pub fn moved_partitions(&self, other: &Ring) -> usize {
        self.changed_parts(other).len()
    }

    /// Partition count per device (primaries only, or across all replica
    /// rows).
    pub fn load(&self, primaries_only: bool) -> std::collections::HashMap<DeviceId, usize> {
        let mut m = std::collections::HashMap::new();
        for d in &self.devices {
            m.insert(d.id, 0usize);
        }
        for part in 0..self.partitions() {
            let devs = &self.table[part * self.replicas..(part + 1) * self.replicas];
            let take = if primaries_only { 1 } else { self.replicas };
            for id in &devs[..take] {
                *m.get_mut(id).expect("assigned device exists") += 1;
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn builder(n_dev: u16, zones: u8, part_power: u8, replicas: usize) -> RingBuilder {
        let mut b = RingBuilder::new(part_power, replicas);
        for i in 0..n_dev {
            b.add_device(DeviceId(i), (i % zones as u16) as u8, 1.0);
        }
        b
    }

    #[test]
    fn lookup_is_deterministic_and_complete() {
        let ring = builder(8, 4, 10, 3).build();
        let a = ring.lookup(b"/alice/docs/report.pdf").to_vec();
        let b = ring.lookup(b"/alice/docs/report.pdf").to_vec();
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn replicas_land_on_distinct_devices_and_zones() {
        let ring = builder(8, 4, 8, 3).build();
        for part in 0..ring.partitions() as u64 {
            let devs = ring.devices_for_part(part);
            let ids: std::collections::HashSet<_> = devs.iter().collect();
            assert_eq!(ids.len(), 3, "duplicate device in part {part}");
            let zones: std::collections::HashSet<u8> = devs
                .iter()
                .map(|id| ring.devices().iter().find(|d| d.id == *id).unwrap().zone)
                .collect();
            assert_eq!(zones.len(), 3, "zone collision in part {part}");
        }
    }

    #[test]
    fn fewer_zones_than_replicas_still_gives_distinct_devices() {
        let ring = builder(6, 2, 8, 3).build();
        for part in 0..ring.partitions() as u64 {
            let devs = ring.devices_for_part(part);
            let uniq: std::collections::HashSet<_> = devs.iter().collect();
            assert_eq!(uniq.len(), 3);
        }
    }

    #[test]
    fn load_is_proportional_to_weight() {
        let mut b = RingBuilder::new(12, 1);
        b.add_device(DeviceId(0), 0, 1.0);
        b.add_device(DeviceId(1), 1, 2.0);
        b.add_device(DeviceId(2), 2, 1.0);
        let ring = b.build();
        let load = ring.load(true);
        let total = ring.partitions() as f64;
        let f0 = load[&DeviceId(0)] as f64 / total;
        let f1 = load[&DeviceId(1)] as f64 / total;
        assert!((f0 - 0.25).abs() < 0.03, "dev0 fraction {f0}");
        assert!((f1 - 0.50).abs() < 0.03, "dev1 fraction {f1}");
    }

    #[test]
    fn equal_weights_balance_evenly() {
        let ring = builder(8, 8, 12, 3).build();
        let load = ring.load(false);
        let expect = ring.partitions() * 3 / 8;
        for (id, &n) in &load {
            assert!(
                (n as f64 - expect as f64).abs() < expect as f64 * 0.12,
                "{id} has {n}, expected ~{expect}"
            );
        }
    }

    #[test]
    fn adding_a_device_moves_roughly_its_share() {
        let old = builder(8, 8, 12, 3).build();
        let mut b = builder(8, 8, 12, 3);
        b.add_device(DeviceId(100), 7, 1.0);
        let new = b.build();
        let moved = old.moved_partitions(&new) as f64 / old.partitions() as f64;
        // New device owns 1/9 of primaries; replica-set changes touch up to
        // ~3× that share. Anything near a full reshuffle (→1.0) is a bug.
        assert!(moved < 0.40, "moved fraction {moved}");
        assert!(moved > 0.02, "suspiciously little movement {moved}");
    }

    #[test]
    fn removing_a_device_only_moves_its_partitions() {
        let old = builder(9, 9, 12, 1).build();
        let mut b = builder(9, 9, 12, 1);
        b.remove_device(DeviceId(4));
        let new = b.build();
        // With replicas=1 exactly the partitions owned by dev4 must move.
        let owned = old.load(true)[&DeviceId(4)];
        assert_eq!(old.moved_partitions(&new), owned);
    }

    #[test]
    fn handoffs_exclude_assigned_and_cover_rest() {
        let ring = builder(8, 4, 8, 3).build();
        let part = 5;
        let assigned = ring.devices_for_part(part).to_vec();
        let hand = ring.handoffs(part);
        assert_eq!(hand.len(), 5);
        for h in &hand {
            assert!(!assigned.contains(h));
        }
    }

    #[test]
    fn partition_of_spreads_keys() {
        let ring = builder(4, 4, 8, 2).build();
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000 {
            seen.insert(ring.partition_of(format!("key-{i}").as_bytes()));
        }
        // 1000 keys into 256 partitions: expect most partitions hit.
        assert!(seen.len() > 200, "only {} partitions hit", seen.len());
    }

    #[test]
    #[should_panic(expected = "duplicate device")]
    fn duplicate_device_rejected() {
        let mut b = RingBuilder::new(8, 1);
        b.add_device(DeviceId(0), 0, 1.0);
        b.add_device(DeviceId(0), 1, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least as many devices")]
    fn too_few_devices_rejected() {
        let mut b = RingBuilder::new(8, 3);
        b.add_device(DeviceId(0), 0, 1.0);
        b.build();
    }

    /// Core bounded-movement property: across add / remove / re-weight
    /// rebuilds, every changed partition involves the touched device in its
    /// old or new replica set — no collateral movement — and the moved
    /// fraction is bounded by the touched device's share of total weight
    /// (times the replica count, with slack for zone-preference shifts).
    #[test]
    fn rebuild_moves_only_changed_winner_partitions() {
        let check = |old: &Ring, new: &Ring, touched: DeviceId, share: f64| {
            let changed = old.changed_parts(new);
            for &p in &changed {
                let in_old = old.devices_for_part(p).contains(&touched);
                let in_new = new.devices().iter().any(|d| d.id == touched)
                    && new.devices_for_part(p).contains(&touched);
                assert!(
                    in_old || in_new,
                    "partition {p} moved without involving {touched}"
                );
            }
            let moved = changed.len() as f64 / old.partitions() as f64;
            let bound = (old.replicas() as f64 * share * 3.0).min(1.0);
            assert!(
                moved <= bound,
                "moved {moved:.3} of partitions, bound {bound:.3} for share {share:.3}"
            );
        };
        for (n_dev, zones, replicas) in [(8u16, 8u8, 3usize), (6, 3, 3), (9, 9, 1), (5, 5, 2)] {
            let old = builder(n_dev, zones, 12, replicas).build();
            let total: f64 = old.devices().iter().map(|d| d.weight).sum();

            // Add a device (fresh zone and shared zone).
            for zone in [zones, 0] {
                let new = old.rebuild(|b| {
                    b.add_device(DeviceId(100), zone, 1.0);
                });
                check(&old, &new, DeviceId(100), 1.0 / (total + 1.0));
            }

            // Remove one device (only if enough remain for the replicas).
            if n_dev as usize > replicas {
                let new = old.rebuild(|b| {
                    assert!(b.remove_device(DeviceId(2)));
                });
                // A removed device's partitions must all move; its share of
                // *rows* is what bounds the movement.
                check(&old, &new, DeviceId(2), 1.0 / total);
            }

            // Re-weight up and down.
            for w in [2.5, 0.4] {
                let new = old.rebuild(|b| {
                    assert!(b.set_weight(DeviceId(1), w));
                });
                let delta = (w - 1.0).abs() / (total - 1.0 + w);
                // Weight-change movement tracks the share delta; keep a
                // floor on the bound so tiny deltas tolerate hash noise.
                check(&old, &new, DeviceId(1), delta.max(0.08));
            }
        }
    }

    #[test]
    fn rebuild_is_identity_when_nothing_changes() {
        let old = builder(8, 8, 10, 3).build();
        let new = old.rebuild(|_| {});
        assert_eq!(old.moved_partitions(&new), 0);
        assert!(old.changed_parts(&new).is_empty());
        assert_eq!(new.part_power(), old.part_power());
        assert_eq!(new.replicas(), old.replicas());
    }

    #[test]
    fn changed_parts_matches_moved_partitions_and_is_sorted() {
        let old = builder(8, 8, 10, 3).build();
        let new = old.rebuild(|b| {
            b.add_device(DeviceId(42), 3, 2.0);
        });
        let changed = old.changed_parts(&new);
        assert_eq!(changed.len(), old.moved_partitions(&new));
        assert!(changed.windows(2).all(|w| w[0] < w[1]), "not ascending");
        // Every listed partition genuinely differs; every unlisted one is
        // identical.
        for p in 0..old.partitions() as u64 {
            let differs = old.devices_for_part(p) != new.devices_for_part(p);
            assert_eq!(differs, changed.binary_search(&p).is_ok(), "part {p}");
        }
    }

    #[test]
    fn set_weight_shifts_load() {
        let mut b = builder(4, 4, 12, 1);
        let even = b.build();
        assert!(b.set_weight(DeviceId(0), 3.0));
        let skewed = b.build();
        assert!(
            skewed.load(true)[&DeviceId(0)] > even.load(true)[&DeviceId(0)] * 3 / 2,
            "weight increase did not attract partitions"
        );
        assert!(!b.set_weight(DeviceId(99), 1.0));
    }
}
