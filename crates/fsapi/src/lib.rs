//! The common cloud-filesystem interface.
//!
//! The paper compares several designs (H2, Swift's CH + file-path DB,
//! Dynamic Partition, …) on the *same* POSIX-like operation set: READ,
//! WRITE, MKDIR, RMDIR, MOVE/RENAME, LIST and COPY. This crate defines that
//! operation set once — the [`CloudFs`] trait — together with the path and
//! entry types, so the identical workload generator, test suite and figure
//! harness can drive every implementation.

pub mod path;

use std::time::Duration;

use h2util::{BackendCounts, OpCtx, Result};

pub use path::FsPath;

/// What kind of node a directory entry is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EntryKind {
    File,
    Directory,
}

/// A directory entry with the detail a `LIST -l` would return.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    pub name: String,
    pub kind: EntryKind,
    /// Logical size in bytes (0 for directories).
    pub size: u64,
    /// Millisecond timestamp of the last structural update.
    pub modified_ms: u64,
}

/// File payload. Large simulated files carry only a size so benchmarks can
/// host "multi-GB videos" without allocating gigabytes; small files carry
/// real bytes that round-trip through the store. Inline bytes live in a
/// [`h2util::SharedBuf`], so cloning a `FileContent` (and handing it middleware →
/// cluster → replicas) shares storage instead of deep-copying.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileContent {
    /// Real bytes, stored and returned verbatim.
    Inline(h2util::SharedBuf),
    /// Size-only stand-in for large content; the store tracks the size and
    /// charges transfer costs for it.
    Simulated(u64),
    /// Size-only stand-in whose identity is the `seed`, not the file path:
    /// two writes with the same seed and size represent *the same bytes*,
    /// so content-addressed stores (the `cas` plane) deduplicate them
    /// across files, users and accounts. Stores without content addressing
    /// treat it exactly like [`FileContent::Simulated`].
    SimulatedShared { size: u64, seed: u64 },
}

impl FileContent {
    pub fn len(&self) -> u64 {
        match self {
            FileContent::Inline(b) => b.len() as u64,
            FileContent::Simulated(n) => *n,
            FileContent::SimulatedShared { size, .. } => *size,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inline content from a text literal. (Deliberately *not*
    /// `std::str::FromStr` — construction is infallible.)
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Self {
        FileContent::Inline(h2util::SharedBuf::from_slice(s.as_bytes()))
    }
}

/// Aggregate storage-side statistics, the basis of the paper's Figures 14
/// (number of objects) and 15 (size of objects).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Total objects held in the object cloud (files + any index objects the
    /// design stores there).
    pub objects: u64,
    /// Total logical bytes of those objects.
    pub bytes: u64,
    /// Records held in *separate* (non-object-cloud) indexes: file-path DB
    /// rows, DP/namenode index entries. Zero for pure single-cloud designs —
    /// this is exactly the state the paper wants to eliminate.
    pub index_records: u64,
    /// Logical bytes of that separate index state.
    pub index_bytes: u64,
}

/// Result of one filesystem operation: virtual service time plus the
/// backend-primitive counts that produced it.
#[derive(Debug, Clone, Copy, Default)]
pub struct OpReport {
    pub time: Duration,
    pub backend: BackendCounts,
}

impl OpReport {
    pub fn from_ctx(ctx: &OpCtx) -> Self {
        OpReport {
            time: ctx.elapsed(),
            backend: ctx.counts(),
        }
    }
}

/// The POSIX-like cloud filesystem interface every design implements.
///
/// All methods take an explicit [`OpCtx`] that accumulates the operation's
/// virtual time and backend-op counts; `ctx.elapsed()` after the call is the
/// paper's "operation time" for that request.
///
/// Semantics shared by all implementations (matching §5's workload):
///
/// * Paths are absolute, `/`-separated, account-rooted ([`FsPath`]).
/// * `mkdir` creates one directory; the parent must exist.
/// * `rmdir` removes a directory *and its contents* (the paper's RMDIR is
///   O(n)-vs-O(1) on exactly this: how much work removing a populated
///   directory takes).
/// * `mv` moves/renames a file or directory (RENAME is `mv` within the same
///   parent, as the paper notes).
/// * `copy` deep-copies a file or directory tree.
/// * `list` returns names of direct children only (the paper's O(1) LIST on
///   H2); `list_detailed` returns full [`DirEntry`] info (the O(m) variant
///   measured in Figures 9 and 10).
/// * `read` performs the *lookup* and returns the content handle; the
///   figures measure lookup time only, exactly as §5.2 does.
pub trait CloudFs {
    /// Short system name used in figure rows, e.g. `"H2Cloud"`.
    fn name(&self) -> &'static str;

    /// Whether the design needs a separate (non-object-cloud) index — the
    /// two-cloud architectures of Table 1.
    fn uses_separate_index(&self) -> bool;

    fn create_account(&self, ctx: &mut OpCtx, account: &str) -> Result<()>;
    fn delete_account(&self, ctx: &mut OpCtx, account: &str) -> Result<()>;

    fn mkdir(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<()>;
    fn rmdir(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<()>;
    fn mv(&self, ctx: &mut OpCtx, account: &str, from: &FsPath, to: &FsPath) -> Result<()>;
    fn copy(&self, ctx: &mut OpCtx, account: &str, from: &FsPath, to: &FsPath) -> Result<()>;

    /// Names of direct children.
    fn list(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<Vec<String>>;
    /// Direct children with full metadata.
    fn list_detailed(&self, ctx: &mut OpCtx, account: &str, path: &FsPath)
        -> Result<Vec<DirEntry>>;

    fn write(
        &self,
        ctx: &mut OpCtx,
        account: &str,
        path: &FsPath,
        content: FileContent,
    ) -> Result<()>;
    fn read(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<FileContent>;
    fn delete_file(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<()>;

    /// Metadata for one path.
    fn stat(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<DirEntry>;

    /// Bulk-load a tree (`dirs` parents-first, then `files`) — the mass
    /// import path a migration tool would use. The default issues ordinary
    /// per-entry operations; designs with per-directory index objects
    /// (H2's NameRings, CAS's pointer blocks) override it to build each
    /// index object once instead of rewriting it per entry.
    fn bulk_import(
        &self,
        ctx: &mut OpCtx,
        account: &str,
        dirs: &[FsPath],
        files: &[(FsPath, u64)],
    ) -> Result<()> {
        for d in dirs {
            self.mkdir(ctx, account, d)?;
        }
        for (f, size) in files {
            self.write(ctx, account, f, FileContent::Simulated(*size))?;
        }
        Ok(())
    }

    /// Drive any asynchronous maintenance (patch merging, gossip,
    /// replication) to quiescence. No-op for synchronous designs.
    fn quiesce(&self);

    /// Storage-side totals for the overhead figures.
    fn storage_stats(&self) -> StoreStats;
}

/// References forward to the underlying implementation, so generic drivers
/// (the multi-client load generator in particular) can treat an owned view
/// and a shared `&SwiftFs` uniformly as `V: CloudFs`.
impl<T: CloudFs + ?Sized> CloudFs for &T {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn uses_separate_index(&self) -> bool {
        (**self).uses_separate_index()
    }

    fn create_account(&self, ctx: &mut OpCtx, account: &str) -> Result<()> {
        (**self).create_account(ctx, account)
    }

    fn delete_account(&self, ctx: &mut OpCtx, account: &str) -> Result<()> {
        (**self).delete_account(ctx, account)
    }

    fn mkdir(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<()> {
        (**self).mkdir(ctx, account, path)
    }

    fn rmdir(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<()> {
        (**self).rmdir(ctx, account, path)
    }

    fn mv(&self, ctx: &mut OpCtx, account: &str, from: &FsPath, to: &FsPath) -> Result<()> {
        (**self).mv(ctx, account, from, to)
    }

    fn copy(&self, ctx: &mut OpCtx, account: &str, from: &FsPath, to: &FsPath) -> Result<()> {
        (**self).copy(ctx, account, from, to)
    }

    fn list(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<Vec<String>> {
        (**self).list(ctx, account, path)
    }

    fn list_detailed(
        &self,
        ctx: &mut OpCtx,
        account: &str,
        path: &FsPath,
    ) -> Result<Vec<DirEntry>> {
        (**self).list_detailed(ctx, account, path)
    }

    fn write(
        &self,
        ctx: &mut OpCtx,
        account: &str,
        path: &FsPath,
        content: FileContent,
    ) -> Result<()> {
        (**self).write(ctx, account, path, content)
    }

    fn read(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<FileContent> {
        (**self).read(ctx, account, path)
    }

    fn delete_file(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<()> {
        (**self).delete_file(ctx, account, path)
    }

    fn stat(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<DirEntry> {
        (**self).stat(ctx, account, path)
    }

    fn bulk_import(
        &self,
        ctx: &mut OpCtx,
        account: &str,
        dirs: &[FsPath],
        files: &[(FsPath, u64)],
    ) -> Result<()> {
        (**self).bulk_import(ctx, account, dirs, files)
    }

    fn quiesce(&self) {
        (**self).quiesce()
    }

    fn storage_stats(&self) -> StoreStats {
        (**self).storage_stats()
    }
}

/// Convenience: run `op` in a fresh context derived from `model` and return
/// its report together with the result.
pub fn measured<T>(
    model: std::sync::Arc<h2util::CostModel>,
    op: impl FnOnce(&mut OpCtx) -> Result<T>,
) -> (Result<T>, OpReport) {
    let mut ctx = OpCtx::new(model);
    let r = op(&mut ctx);
    let report = OpReport::from_ctx(&ctx);
    (r, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_content_length() {
        assert_eq!(FileContent::from_str("hello").len(), 5);
        assert_eq!(FileContent::Simulated(1 << 30).len(), 1 << 30);
        assert!(FileContent::Inline(h2util::SharedBuf::new()).is_empty());
        assert!(!FileContent::Simulated(1).is_empty());
    }

    #[test]
    fn measured_reports_context_spend() {
        use h2util::{CostModel, PrimKind};
        use std::sync::Arc;
        let (r, rep) = measured(Arc::new(CostModel::rack_default()), |ctx| {
            let c = ctx.model.get_cost(100);
            ctx.charge(PrimKind::Get, c);
            Ok(42)
        });
        assert_eq!(r.unwrap(), 42);
        assert_eq!(rep.backend.gets, 1);
        assert!(rep.time > Duration::ZERO);
    }
}
