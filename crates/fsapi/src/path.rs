//! Absolute filesystem paths.
//!
//! Paths in the paper are ordinary absolute POSIX paths
//! (`/home/ubuntu/file1`); H2 decomposes them into per-level components
//! (§3.2's regular O(d) lookup). [`FsPath`] is a validated, normalised
//! component list: no empty components, no `.`/`..`, no embedded separators
//! or control characters in names. The root path has zero components.

use h2util::{H2Error, Result};
use std::fmt;

/// A validated absolute path. `depth()` is the paper's `d` (root = 0,
/// `/home/ubuntu/file1` = 3).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FsPath {
    components: Vec<String>,
}

impl FsPath {
    /// The root directory `/`.
    pub fn root() -> Self {
        FsPath { components: vec![] }
    }

    /// Parse and validate an absolute path string.
    pub fn parse(s: &str) -> Result<Self> {
        if !s.starts_with('/') {
            return Err(H2Error::InvalidPath(format!("not absolute: {s:?}")));
        }
        let mut components = Vec::new();
        for part in s.split('/') {
            if part.is_empty() {
                continue; // leading slash and "//" collapse
            }
            Self::validate_name(part)?;
            components.push(part.to_string());
        }
        Ok(FsPath { components })
    }

    /// Validate a single child name.
    pub fn validate_name(name: &str) -> Result<()> {
        if name.is_empty() {
            return Err(H2Error::InvalidPath("empty name".into()));
        }
        if name == "." || name == ".." {
            return Err(H2Error::InvalidPath(format!("relative component {name:?}")));
        }
        if name.contains('/') {
            return Err(H2Error::InvalidPath(format!("separator in name {name:?}")));
        }
        // The Formatter's record separators must never appear in names.
        if name.bytes().any(|b| b < 0x20 || b == 0x7f) {
            return Err(H2Error::InvalidPath(format!(
                "control character in name {name:?}"
            )));
        }
        if name.len() > 255 {
            return Err(H2Error::InvalidPath(format!(
                "name longer than 255 bytes: {}…",
                &name[..32]
            )));
        }
        Ok(())
    }

    /// Build from components (each validated).
    pub fn from_components<I, S>(parts: I) -> Result<Self>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut components = Vec::new();
        for p in parts {
            Self::validate_name(p.as_ref())?;
            components.push(p.as_ref().to_string());
        }
        Ok(FsPath { components })
    }

    pub fn is_root(&self) -> bool {
        self.components.is_empty()
    }

    /// Directory depth `d` as the paper uses it.
    pub fn depth(&self) -> usize {
        self.components.len()
    }

    pub fn components(&self) -> &[String] {
        &self.components
    }

    /// Final component (`None` for root).
    pub fn name(&self) -> Option<&str> {
        self.components.last().map(|s| s.as_str())
    }

    /// Parent path (`None` for root).
    pub fn parent(&self) -> Option<FsPath> {
        if self.components.is_empty() {
            None
        } else {
            Some(FsPath {
                components: self.components[..self.components.len() - 1].to_vec(),
            })
        }
    }

    /// `self` extended with one validated child name.
    pub fn child(&self, name: &str) -> Result<FsPath> {
        Self::validate_name(name)?;
        let mut components = Vec::with_capacity(self.components.len() + 1);
        components.extend_from_slice(&self.components);
        components.push(name.to_string());
        Ok(FsPath { components })
    }

    /// Is `self` a strict ancestor of `other`?
    pub fn is_ancestor_of(&self, other: &FsPath) -> bool {
        self.components.len() < other.components.len()
            && other.components[..self.components.len()] == self.components[..]
    }

    /// The path with `prefix` replaced by `new_prefix` (used by MOVE on
    /// path-keyed designs). Returns `None` if `prefix` is not a prefix.
    pub fn rebase(&self, prefix: &FsPath, new_prefix: &FsPath) -> Option<FsPath> {
        if prefix == self {
            return Some(new_prefix.clone());
        }
        if !prefix.is_ancestor_of(self) {
            return None;
        }
        let mut components = new_prefix.components.clone();
        components.extend_from_slice(&self.components[prefix.components.len()..]);
        Some(FsPath { components })
    }
}

impl fmt::Display for FsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.components.is_empty() {
            return write!(f, "/");
        }
        for c in &self.components {
            write!(f, "/{c}")?;
        }
        Ok(())
    }
}

impl std::str::FromStr for FsPath {
    type Err = H2Error;

    fn from_str(s: &str) -> Result<Self> {
        FsPath::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        let p = FsPath::parse("/home/ubuntu/file1").unwrap();
        assert_eq!(p.depth(), 3);
        assert_eq!(p.to_string(), "/home/ubuntu/file1");
        assert_eq!(FsPath::root().to_string(), "/");
        assert_eq!(FsPath::parse("/").unwrap(), FsPath::root());
    }

    #[test]
    fn double_slashes_collapse() {
        assert_eq!(
            FsPath::parse("//home//ubuntu/").unwrap(),
            FsPath::parse("/home/ubuntu").unwrap()
        );
    }

    #[test]
    fn invalid_paths_rejected() {
        assert!(FsPath::parse("relative/path").is_err());
        assert!(FsPath::parse("/a/./b").is_err());
        assert!(FsPath::parse("/a/../b").is_err());
        assert!(FsPath::parse("/a/\u{1}b").is_err());
        let long = format!("/{}", "x".repeat(256));
        assert!(FsPath::parse(&long).is_err());
    }

    #[test]
    fn parent_name_child() {
        let p = FsPath::parse("/home/ubuntu/file1").unwrap();
        assert_eq!(p.name(), Some("file1"));
        let parent = p.parent().unwrap();
        assert_eq!(parent.to_string(), "/home/ubuntu");
        assert_eq!(parent.child("file1").unwrap(), p);
        assert_eq!(FsPath::root().parent(), None);
        assert_eq!(FsPath::root().name(), None);
        assert!(parent.child("a/b").is_err());
    }

    #[test]
    fn ancestry() {
        let a = FsPath::parse("/home").unwrap();
        let b = FsPath::parse("/home/ubuntu").unwrap();
        let c = FsPath::parse("/homely").unwrap();
        assert!(a.is_ancestor_of(&b));
        assert!(!b.is_ancestor_of(&a));
        assert!(!a.is_ancestor_of(&a));
        assert!(!a.is_ancestor_of(&c));
        assert!(FsPath::root().is_ancestor_of(&a));
    }

    #[test]
    fn rebase_moves_subtrees() {
        let file = FsPath::parse("/home/u/docs/a.txt").unwrap();
        let from = FsPath::parse("/home/u").unwrap();
        let to = FsPath::parse("/backup/u2").unwrap();
        assert_eq!(
            file.rebase(&from, &to).unwrap().to_string(),
            "/backup/u2/docs/a.txt"
        );
        assert_eq!(from.rebase(&from, &to).unwrap(), to);
        let other = FsPath::parse("/etc/passwd").unwrap();
        assert_eq!(other.rebase(&from, &to), None);
    }

    #[test]
    fn from_components_validates() {
        assert!(FsPath::from_components(["a", "b"]).is_ok());
        assert!(FsPath::from_components(["a", ""]).is_err());
        assert!(FsPath::from_components(["a", ".."]).is_err());
    }

    #[test]
    fn ordering_is_lexicographic_by_components() {
        let a = FsPath::parse("/a").unwrap();
        let ab = FsPath::parse("/a/b").unwrap();
        let b = FsPath::parse("/b").unwrap();
        assert!(a < ab && ab < b);
    }
}
