//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel` with clonable senders *and receivers* (the
//! property std's mpsc lacks) by serialising receivers behind a mutex. The
//! gossip fabric only needs unbounded channels with `send`/`try_recv`/
//! `recv_timeout`, all of which behave identically to the real crate for
//! this workload.

pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvTimeoutError, SendError, TryRecvError};

    /// Clonable sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// Clonable receiving half: crossbeam receivers are MPMC, so the std
    /// receiver is shared behind a mutex (receives are already serialised
    /// by the inbox pattern the layer uses).
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(self.0.clone())
        }
    }

    impl<T> Receiver<T> {
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.lock().unwrap_or_else(|e| e.into_inner()).try_recv()
        }

        pub fn recv(&self) -> Result<T, mpsc::RecvError> {
            self.0.lock().unwrap_or_else(|e| e.into_inner()).recv()
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .recv_timeout(timeout)
        }
    }

    /// An unbounded channel whose both halves are clonable.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;

    #[test]
    fn send_and_try_recv() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        assert_eq!(rx.try_recv(), Ok(7));
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn clones_feed_the_same_queue() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        let rx2 = rx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx2.try_recv(), Ok(2));
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        h.join().unwrap();
        let mut got = Vec::new();
        while let Ok(v) = rx.try_recv() {
            got.push(v);
        }
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
