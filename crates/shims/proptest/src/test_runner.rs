//! Deterministic RNG for property-test case generation.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// The RNG handed to strategies. Seeded from `(test name, case index)` via
/// FNV-1a so every case is reproducible without storing per-run seeds.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: SmallRng,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

impl TestRng {
    /// RNG for case number `case` of test `name`. Same inputs, same stream.
    pub fn deterministic(name: &str, case: u32) -> Self {
        let seed = fnv1a(name.as_bytes()) ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        TestRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
