//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this crate reimplements
//! the subset of proptest the workspace's property tests use:
//!
//! * the [`Strategy`] trait with `prop_map`, ranges, tuples, `Just`,
//!   `any::<T>()`, `collection::vec`, `sample::select`, a small
//!   character-class regex subset for string strategies, and the
//!   [`prop_oneof!`] union;
//! * the [`proptest!`] test-harness macro with `#![proptest_config(..)]`,
//!   [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//!   [`prop_assume!`];
//! * a deterministic per-test, per-case RNG, so failures are reproducible
//!   by rerunning the same test binary.
//!
//! **Deliberately missing:** shrinking. A failing case panics with the
//! case number and message instead of a minimised input. That trades
//! debugging convenience for zero dependencies; the determinism means the
//! failing input can always be regenerated.

use std::marker::PhantomData;
use std::ops::Range;

pub mod test_runner;

pub use test_runner::TestRng;

/// How a property-test case ends early.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the input: skip the case.
    Reject(String),
    /// An assertion failed: the property does not hold.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Harness configuration (`cases` is the only knob this shim honours).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values. Object-safe: `prop_map` is `Self: Sized`,
/// so `Box<dyn Strategy<Value = V>>` works (what [`prop_oneof!`] builds).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Type-erase a strategy (used by [`prop_oneof!`] so branches of different
/// concrete types unify).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// `.prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between type-erased branches — what [`prop_oneof!`]
/// expands to.
pub struct Union<V> {
    branches: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    pub fn new(branches: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(
            !branches.is_empty(),
            "prop_oneof! needs at least one branch"
        );
        Union { branches }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.branches.len() as u64) as usize;
        self.branches[i].generate(rng)
    }
}

// ----- primitive strategies -------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*
    };
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Types with a natural "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        })*
    };
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Strategy for any value of `T` (see [`Arbitrary`]).
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ----- string strategies from a regex subset --------------------------------

enum CharClass {
    /// `.` — printable ASCII.
    Dot,
    /// `[...]` — explicit ranges/literals.
    Set(Vec<(char, char)>),
}

/// A string literal used as a strategy is parsed as `ATOM{m,n}` where ATOM
/// is `.` or a `[...]` class without escapes — the subset the workspace's
/// tests use. Anything else panics loudly rather than silently generating
/// the wrong language.
struct StringPattern {
    class: CharClass,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> StringPattern {
    let unsupported = || -> ! {
        panic!(
            "proptest shim: unsupported regex {pattern:?} (supported: `.` or \
             `[chars]` followed by an optional {{m,n}} repetition)"
        )
    };
    let (class, rest) = if let Some(rest) = pattern.strip_prefix('[') {
        let close = rest.find(']').unwrap_or_else(|| unsupported());
        let (body, rest) = rest.split_at(close);
        let chars: Vec<char> = body.chars().collect();
        let mut ranges = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            if i + 2 < chars.len() && chars[i + 1] == '-' {
                assert!(chars[i] <= chars[i + 2], "bad class range in {pattern:?}");
                ranges.push((chars[i], chars[i + 2]));
                i += 3;
            } else {
                ranges.push((chars[i], chars[i]));
                i += 1;
            }
        }
        if ranges.is_empty() {
            unsupported();
        }
        (CharClass::Set(ranges), &rest[1..])
    } else if let Some(rest) = pattern.strip_prefix('.') {
        (CharClass::Dot, rest)
    } else {
        unsupported()
    };
    let (min, max) = if rest.is_empty() {
        (1, 1)
    } else {
        let body = rest
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .unwrap_or_else(|| unsupported());
        match body.split_once(',') {
            Some((lo, hi)) => (
                lo.trim().parse().unwrap_or_else(|_| unsupported()),
                hi.trim().parse().unwrap_or_else(|_| unsupported()),
            ),
            None => {
                let n = body.trim().parse().unwrap_or_else(|_| unsupported());
                (n, n)
            }
        }
    };
    assert!(min <= max, "empty repetition in {pattern:?}");
    StringPattern { class, min, max }
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let pat = parse_pattern(self);
        let len = pat.min + rng.below((pat.max - pat.min + 1) as u64) as usize;
        let mut out = String::with_capacity(len);
        for _ in 0..len {
            let c = match &pat.class {
                CharClass::Dot => char::from(0x20 + rng.below(0x5F) as u8),
                CharClass::Set(ranges) => {
                    let total: u64 = ranges
                        .iter()
                        .map(|(lo, hi)| *hi as u64 - *lo as u64 + 1)
                        .sum();
                    let mut pick = rng.below(total);
                    let mut chosen = ranges[0].0;
                    for (lo, hi) in ranges {
                        let span = *hi as u64 - *lo as u64 + 1;
                        if pick < span {
                            chosen = char::from_u32(*lo as u32 + pick as u32)
                                .expect("class range stays in char space");
                            break;
                        }
                        pick -= span;
                    }
                    chosen
                }
            };
            out.push(c);
        }
        out
    }
}

// ----- tuple strategies -----------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// ----- collections & sampling ----------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vector of `element` values with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use super::{Strategy, TestRng};

    pub struct Select<T: Clone>(Vec<T>);

    /// Uniform choice from a fixed set of values.
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select from empty set");
        Select(values)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

// ----- macros ---------------------------------------------------------------

/// Uniform union of strategies producing the same `Value` type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($strat)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), left, right,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), left, right,
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left,
            )));
        }
    }};
}

/// Skip the current case when its generated input is unsuitable.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// The property-test harness: each `#[test] fn name(arg in strategy, ...)`
/// becomes a plain `#[test]` running `cases` deterministic iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( #[test] fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut __proptest_rng = $crate::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __proptest_rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => panic!(
                            "property `{}` failed at case #{case} (no shrinking in offline shim):\n{msg}",
                            stringify!($name),
                        ),
                    }
                }
            }
        )*
    };
}

/// Everything the workspace's tests import.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_pattern_subset() {
        let mut rng = crate::TestRng::deterministic("pattern", 0);
        for _ in 0..200 {
            let s = "[a-zA-Z0-9._ -]{1,24}".generate(&mut rng);
            assert!((1..=24).contains(&s.len()));
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || ".-_ ".contains(c)));
            let t = ".{1,64}".generate(&mut rng);
            assert!(t.is_ascii() && (1..=64).contains(&t.len()));
        }
    }

    #[test]
    fn ranges_tuples_vec_select_oneof() {
        let mut rng = crate::TestRng::deterministic("combined", 1);
        let strat = prop::collection::vec(
            prop_oneof![
                (0u8..12, any::<u16>()).prop_map(|(k, v)| (k as u64, v as u64)),
                Just((99u64, 0u64)),
            ],
            1..20,
        );
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((1..20).contains(&v.len()));
            for (k, _) in v {
                assert!(k < 12 || k == 99);
            }
        }
        let pick = prop::sample::select(vec!["a", "b"]).generate(&mut rng);
        assert!(pick == "a" || pick == "b");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn harness_runs_and_binds(x in 0u64..50, ys in prop::collection::vec(0i32..5, 0..4)) {
            prop_assume!(x != 13);
            prop_assert!(x < 50);
            prop_assert_eq!(ys.len() < 4, true, "len {} out of bounds", ys.len());
            prop_assert_ne!(x, 13);
        }
    }

    #[test]
    fn determinism_per_case() {
        let a = {
            let mut rng = crate::TestRng::deterministic("det", 7);
            (0u64..1000).generate(&mut rng)
        };
        let b = {
            let mut rng = crate::TestRng::deterministic("det", 7);
            (0u64..1000).generate(&mut rng)
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "unsupported regex")]
    fn unsupported_regex_panics() {
        let mut rng = crate::TestRng::deterministic("bad", 0);
        let _ = "a+b*".generate(&mut rng);
    }
}
