//! Offline stand-in for the `rand` crate.
//!
//! Implements the API subset this workspace uses — `Rng::{gen, gen_range,
//! gen_bool}`, `SeedableRng::seed_from_u64` and `rngs::SmallRng` — over a
//! xoshiro256++ generator (the same algorithm real `rand` uses for
//! `SmallRng` on 64-bit targets) seeded through SplitMix64. Everything is
//! deterministic given the seed, which is all the workload generators and
//! benches rely on.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling interface, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Sample a value of a [`Standard`]-distributed type: full-range
    /// integers, `f64` in `[0, 1)`, fair `bool`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a half-open or inclusive range.
    ///
    /// Panics on empty ranges, like the real crate.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types sampleable from their "standard" distribution.
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {
        $(impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        })*
    };
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    type Output;
    fn sample<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

/// Multiply-shift bounded sampling (Lemire); bias is < 2⁻⁶⁴ per draw,
/// irrelevant at simulation scale.
fn bounded(rng: &mut impl RngCore, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {
        $(
            impl SampleRange for Range<$t> {
                type Output = $t;
                fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range on empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + bounded(rng, span) as i128) as $t
                }
            }
            impl SampleRange for RangeInclusive<$t> {
                type Output = $t;
                fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range on empty range");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + bounded(rng, span + 1) as i128) as $t
                }
            }
        )*
    };
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, the algorithm real `rand` backs `SmallRng` with on
    /// 64-bit platforms.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            SmallRng {
                s: [
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// `StdRng` aliases `SmallRng`: both are deterministic simulation-grade
    /// generators here, no cryptographic claims.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.gen_range(3..10);
            assert!((3..10).contains(&v));
            seen[v as usize] = true;
        }
        assert!(seen[3..10].iter().all(|&s| s), "all values reachable");
        for _ in 0..1000 {
            let v = r.gen_range(0.5f64..4.0);
            assert!((0.5..4.0).contains(&v));
        }
        assert_eq!(r.gen_range(5..6), 5);
        assert_eq!(r.gen_range(5..=5), 5);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.7)).count();
        assert!((6_500..7_500).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.1)));
    }

    #[test]
    fn works_through_mut_references() {
        fn takes_rng<R: Rng>(rng: &mut R) -> u64 {
            rng.gen_range(0u64..100)
        }
        let mut r = SmallRng::seed_from_u64(3);
        let v = takes_rng(&mut r);
        assert!(v < 100);
    }
}
