//! Offline stand-in for the `bytes` crate.
//!
//! Provides the [`Bytes`] type with the subset of the real API this
//! workspace uses: an immutable, cheaply clonable (`Arc`-backed) byte
//! buffer that derefs to `[u8]` and supports zero-copy [`Bytes::slice`]
//! views. `from_static` copies instead of borrowing — the zero-copy
//! optimisation is irrelevant to the simulator's payloads.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply clonable immutable byte buffer.
///
/// Internally an `Arc<[u8]>` plus an `(offset, len)` window, so
/// [`Bytes::slice`] shares storage with its parent instead of copying.
/// Equality, ordering, and hashing are over the *logical* window, not the
/// backing allocation.
#[derive(Clone)]
pub struct Bytes {
    buf: Arc<[u8]>,
    off: usize,
    len: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::from_arc(Arc::from(&[][..]))
    }

    fn from_arc(buf: Arc<[u8]>) -> Self {
        let len = buf.len();
        Bytes { buf, off: 0, len }
    }

    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::from_arc(Arc::from(bytes))
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self::from_arc(Arc::from(data))
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }

    /// A zero-copy sub-view of this buffer. The returned `Bytes` shares
    /// the same backing allocation; no bytes are copied.
    ///
    /// # Panics
    /// Panics if the range is out of bounds, mirroring the real crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "range {start}..{end} out of bounds for Bytes of length {}",
            self.len
        );
        Bytes {
            buf: Arc::clone(&self.buf),
            off: self.off + start,
            len: end - start,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf[self.off..self.off + self.len]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self::from_arc(Arc::from(v))
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Self::from_arc(Arc::from(s.into_bytes()))
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Self::from_arc(Arc::from(s.as_bytes()))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(b: &'static [u8]) -> Self {
        Self::from_arc(Arc::from(b))
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_deref() {
        assert!(Bytes::new().is_empty());
        let b = Bytes::from("hello".to_string());
        assert_eq!(b.len(), 5);
        assert_eq!(&b[..], b"hello");
        assert_eq!(b.to_vec(), b"hello".to_vec());
        assert_eq!(Bytes::from_static(b"hi"), Bytes::from(vec![b'h', b'i']));
    }

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![1u8; 1024]);
        let b = a.clone();
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.as_ref().as_ptr(), b.as_ref().as_ptr()));
    }

    #[test]
    fn slice_is_zero_copy() {
        let a = Bytes::from(b"hello world".to_vec());
        let w = a.slice(6..);
        assert_eq!(&w[..], b"world");
        // Shares the parent's allocation: the view's first byte lives
        // inside the parent's buffer.
        assert!(std::ptr::eq(w.as_ref().as_ptr(), a.as_ref()[6..].as_ptr()));
        // Slicing a slice composes offsets.
        let o = w.slice(1..3);
        assert_eq!(&o[..], b"or");
        assert_eq!(a.slice(..5), Bytes::from(b"hello".to_vec()));
        assert_eq!(a.slice(..).len(), a.len());
        assert!(a.slice(3..3).is_empty());
    }

    #[test]
    fn logical_equality_ignores_backing() {
        let a = Bytes::from(b"xxabyy".to_vec()).slice(2..4);
        let b = Bytes::from(b"ab".to_vec());
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
        assert!(a < Bytes::from(b"ac".to_vec()));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        let a = Bytes::from(b"abc".to_vec());
        let _ = a.slice(1..5);
    }

    #[test]
    fn debug_escapes() {
        let b = Bytes::from(vec![b'a', 0]);
        assert_eq!(format!("{b:?}"), "b\"a\\x00\"");
    }
}
