//! Offline stand-in for the `bytes` crate.
//!
//! Provides the [`Bytes`] type with the subset of the real API this
//! workspace uses: an immutable, cheaply clonable (`Arc`-backed) byte
//! buffer that derefs to `[u8]`. `from_static` copies instead of borrowing
//! — the zero-copy optimisation is irrelevant to the simulator's payloads.

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable immutable byte buffer.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes(Arc::from(bytes))
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v))
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes(Arc::from(s.into_bytes()))
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes(Arc::from(s.as_bytes()))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(b: &'static [u8]) -> Self {
        Bytes(Arc::from(b))
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_deref() {
        assert!(Bytes::new().is_empty());
        let b = Bytes::from("hello".to_string());
        assert_eq!(b.len(), 5);
        assert_eq!(&b[..], b"hello");
        assert_eq!(b.to_vec(), b"hello".to_vec());
        assert_eq!(Bytes::from_static(b"hi"), Bytes::from(vec![b'h', b'i']));
    }

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![1u8; 1024]);
        let b = a.clone();
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.as_ref().as_ptr(), b.as_ref().as_ptr()));
    }

    #[test]
    fn debug_escapes() {
        let b = Bytes::from(vec![b'a', 0]);
        assert_eq!(format!("{b:?}"), "b\"a\\x00\"");
    }
}
