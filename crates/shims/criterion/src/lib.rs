//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so this crate provides a
//! minimal wall-clock harness with the API subset the workspace's benches
//! use: `Criterion::benchmark_group`, `sample_size`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Bencher::{iter, iter_batched}`,
//! `BatchSize`, and the simple forms of `criterion_group!` /
//! `criterion_main!`.
//!
//! **Deliberately missing:** statistical analysis, outlier detection,
//! HTML reports, and baseline comparison. Each benchmark runs its sample
//! count of timed iterations after a short warm-up and prints
//! median/mean per-iteration times — enough to compare configurations in
//! one run, which is all the figures pipeline needs.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost. This harness times each routine
/// call individually, so the variants only tune how many inputs are built
/// per measurement batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifier for a parameterised benchmark: `function_name/parameter`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.full)
    }
}

/// Passed to each benchmark closure; records one timing sample per call of
/// the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    fn new(target_samples: usize) -> Self {
        Bencher {
            samples: Vec::with_capacity(target_samples),
            target_samples,
        }
    }

    /// Time `routine` directly, once per sample (plus a small warm-up).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.warmup_rounds() {
            black_box(routine());
        }
        for _ in 0..self.target_samples {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Build a fresh input with `setup` (untimed), then time `routine` on it.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.warmup_rounds() {
            black_box(routine(setup()));
        }
        for _ in 0..self.target_samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn warmup_rounds(&self) -> usize {
        (self.target_samples / 10).max(1)
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("bench {name:<50} (no samples — routine never called)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let total: Duration = sorted.iter().sum();
        let mean = total / sorted.len() as u32;
        println!(
            "bench {name:<50} median {:>12?}  mean {:>12?}  ({} samples)",
            median,
            mean,
            sorted.len()
        );
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations per benchmark (criterion's minimum is 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(&full);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        bencher.report(&full);
        self
    }

    pub fn finish(&mut self) {
        let _ = &self.criterion;
    }
}

/// The harness entry point. `Default` gives 100 samples per benchmark,
/// like the real crate.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 100,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            sample_size: self.default_sample_size,
            criterion: self,
            name,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.default_sample_size);
        f(&mut bencher);
        bencher.report(&id.to_string());
        self
    }
}

/// Simple form only: `criterion_group!(name, target1, target2, ...)`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_benches_run_and_count_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(10);
        let mut calls = 0u32;
        g.bench_function("iter".to_string(), |b| {
            b.iter(|| calls += 1);
        });
        // 10 samples + 1 warm-up round.
        assert_eq!(calls, 11);
        let mut batched_calls = 0u32;
        g.bench_with_input(BenchmarkId::new("batched", 4usize), &4usize, |b, &n| {
            b.iter_batched(|| n, |v| batched_calls += v as u32, BatchSize::SmallInput);
        });
        assert_eq!(batched_calls, 4 * 11);
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("depth", 8).to_string(), "depth/8");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    criterion_group!(shim_group, noop_bench);

    fn noop_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("noop");
        g.sample_size(1);
        g.bench_function("nothing".to_string(), |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }

    #[test]
    fn macros_compile_and_run() {
        shim_group();
    }
}
