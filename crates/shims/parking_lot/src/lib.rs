//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *API subset it actually uses* over `std::sync` primitives.
//! Semantics match parking_lot where it matters to callers:
//!
//! * `lock()` / `read()` / `write()` return guards directly (no poisoning —
//!   a poisoned std lock is transparently recovered, which is exactly the
//!   parking_lot behaviour of ignoring panics in other holders);
//! * guards deref to the protected value and release on drop.
//!
//! Fairness and micro-contention behaviour of the real crate are not
//! reproduced; nothing in this workspace depends on them.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion primitive mirroring `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poisoning (parking_lot never
    /// poisons).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock mirroring `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Condition variable mirroring `parking_lot::Condvar`.
///
/// One API deviation from the real crate, forced by the shim's guards being
/// `std::sync::MutexGuard` rather than parking_lot's own type: `wait`
/// *consumes* the guard and returns it re-acquired, instead of taking
/// `&mut MutexGuard`. Callers loop `guard = cv.wait(guard)` — the std idiom.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Block until notified, releasing the mutex while parked. Spurious
    /// wake-ups are possible; callers must re-check their predicate.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.0.wait(guard).unwrap_or_else(|e| e.into_inner())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers_one_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a, *b);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_hands_off_between_threads() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let waiter = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock();
            while !*ready {
                ready = cv.wait(ready);
            }
            *ready
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn lock_recovers_from_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        // parking_lot semantics: still lockable afterwards.
        assert_eq!(*m.lock(), 0);
    }
}
