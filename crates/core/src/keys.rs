//! Namespace-decorated relative paths and the object-key scheme (§3.1).
//!
//! Every directory owns a namespace UUID; every object H2 stores is named by
//! a *namespace-decorated relative path*:
//!
//! * child objects (file content or a sub-directory's descriptor) live at
//!   `<parent-ns>::<name>` — the paper's `N02::file1`;
//! * a directory's NameRing lives at `<ns>::/NameRing/`;
//! * patch objects live at `<ns>::/NameRing/.Node<NN>.Patch<K>` —
//!   the paper's `N97::/NameRing/.Node01.Patch03`.
//!
//! `/` cannot appear in child names ([`h2fsapi::FsPath`] forbids it), so the
//! `/NameRing/` suffix can never collide with a real child.

use h2util::{NamespaceId, NodeId, Timestamp};
use swiftsim::ObjectKey;

/// Descriptor object for one directory: the "directory … converted to an
/// ASCII string corresponding to its namespace" of §4.4.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirDescriptor {
    /// The directory's namespace UUID.
    pub ns: NamespaceId,
    /// Its name under the parent (purely informational; the key carries the
    /// authoritative name).
    pub name: String,
    /// Creation time.
    pub created: Timestamp,
}

/// Key factory binding an account to H2Cloud's (unindexed) container.
#[derive(Debug, Clone)]
pub struct H2Keys {
    account: String,
}

/// The container every H2 object lives in. Unindexed: H2 needs no
/// file-path DB — that is the point of the design.
pub const H2_CONTAINER: &str = "h2";

impl H2Keys {
    pub fn new(account: &str) -> Self {
        H2Keys {
            account: account.to_string(),
        }
    }

    pub fn account(&self) -> &str {
        &self.account
    }

    /// Namespace-decorated relative path of a direct child.
    pub fn child_rel(ns: NamespaceId, name: &str) -> String {
        format!("{ns}::{name}")
    }

    /// Object key of a direct child (file content or dir descriptor).
    pub fn child(&self, ns: NamespaceId, name: &str) -> ObjectKey {
        ObjectKey::new(&self.account, H2_CONTAINER, &Self::child_rel(ns, name))
    }

    /// Object key of a namespace's NameRing.
    pub fn namering(&self, ns: NamespaceId) -> ObjectKey {
        ObjectKey::new(&self.account, H2_CONTAINER, &format!("{ns}::/NameRing/"))
    }

    /// Object key of one patch in a node's chain for a NameRing.
    pub fn patch(&self, ns: NamespaceId, node: NodeId, patch_no: u32) -> ObjectKey {
        ObjectKey::new(
            &self.account,
            H2_CONTAINER,
            &format!("{ns}::/NameRing/.Node{node}.Patch{patch_no:04}"),
        )
    }

    /// Object key of part `i` of a multipart file's content. `stamp` is the
    /// upload's version stamp, so an overwrite lands on fresh keys and the
    /// old generation can be deleted after the new manifest is in place.
    /// `/Part/` sits in the reserved `::/` namespace — `/` cannot appear in
    /// child names, so parts can never collide with a real child.
    pub fn part(&self, ns: NamespaceId, name: &str, stamp: u64, i: u32) -> ObjectKey {
        ObjectKey::new(
            &self.account,
            H2_CONTAINER,
            &format!("{ns}::/Part/{stamp:016x}/{name}.{i:05}"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns() -> NamespaceId {
        NamespaceId::new(6, NodeId(1), 1_469_346_604_539)
    }

    #[test]
    fn child_keys_are_namespace_decorated() {
        let k = H2Keys::new("alice");
        let key = k.child(ns(), "ubuntu");
        assert_eq!(key.ring_key(), "/alice/h2/06.01.1469346604539::ubuntu");
        assert_eq!(
            H2Keys::child_rel(ns(), "file1"),
            "06.01.1469346604539::file1"
        );
    }

    #[test]
    fn namering_key_shape() {
        let k = H2Keys::new("alice");
        assert_eq!(
            k.namering(ns()).ring_key(),
            "/alice/h2/06.01.1469346604539::/NameRing/"
        );
    }

    #[test]
    fn patch_key_matches_paper_scheme() {
        let k = H2Keys::new("alice");
        let key = k.patch(ns(), NodeId(1), 3);
        assert_eq!(
            key.ring_key(),
            "/alice/h2/06.01.1469346604539::/NameRing/.Node01.Patch0003"
        );
    }

    #[test]
    fn namering_key_cannot_collide_with_children() {
        // A child would need the name "/NameRing/" which FsPath forbids
        // (contains '/').
        assert!(h2fsapi::FsPath::validate_name("/NameRing/").is_err());
    }

    #[test]
    fn part_key_shape_and_isolation() {
        let k = H2Keys::new("alice");
        let key = k.part(ns(), "big.iso", 0x2a, 3);
        assert_eq!(
            key.ring_key(),
            "/alice/h2/06.01.1469346604539::/Part/000000000000002a/big.iso.00003"
        );
        // Distinct stamps (upload generations) never collide.
        assert_ne!(k.part(ns(), "f", 1, 0), k.part(ns(), "f", 2, 0));
        // The `/Part/` prefix lives in the reserved `::/` namespace.
        assert!(h2fsapi::FsPath::validate_name("/Part/x").is_err());
    }

    #[test]
    fn distinct_namespaces_distinct_keys() {
        let k = H2Keys::new("a");
        let other = NamespaceId::new(7, NodeId(1), 1);
        assert_ne!(k.child(ns(), "x"), k.child(other, "x"));
        assert_ne!(k.namering(ns()), k.namering(other));
    }
}
