//! The Inbound API (§4.3): the HTTP-shaped web interface H2Cloud serves.
//!
//! The paper's users "access H2Cloud via a web browser or a native client,
//! by sending HTTP messages to … the H2Layer", through three API families:
//! **Account APIs** (create/delete an account), **Directory APIs**
//! (traverse/modify directory structure) and **File Content APIs**
//! (READ/WRITE). This module models that surface as typed request/response
//! values — the routing, status-code mapping and parameter handling of the
//! real HTTP server without the socket.
//!
//! Routes:
//!
//! | method & path                              | operation |
//! |--------------------------------------------|-----------|
//! | `PUT    /v1/<account>`                     | create account |
//! | `DELETE /v1/<account>`                     | delete account |
//! | `PUT    /v1/<a>/fs/<path>?type=dir`        | MKDIR |
//! | `PUT    /v1/<a>/fs/<path>` (body)          | WRITE |
//! | `GET    /v1/<a>/fs/<path>`                 | READ |
//! | `GET    /v1/<a>/fs/<path>?op=list`         | LIST (names) |
//! | `GET    /v1/<a>/fs/<path>?op=list&detail=1`| LIST (detailed) |
//! | `GET    /v1/<a>/fs/<path>?op=stat`         | STAT |
//! | `DELETE /v1/<a>/fs/<path>?type=dir`        | RMDIR |
//! | `DELETE /v1/<a>/fs/<path>`                 | delete file |
//! | `POST   /v1/<a>/fs/<path>?op=move&dest=…`  | MOVE/RENAME |
//! | `POST   /v1/<a>/fs/<path>?op=copy&dest=…`  | COPY |

use std::time::Duration;

use h2fsapi::{CloudFs, DirEntry, FileContent, FsPath};
use h2util::{H2Error, OpCtx};

use crate::fs::H2Cloud;

/// HTTP-ish method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    Get,
    Put,
    Post,
    Delete,
}

/// A parsed inbound request.
#[derive(Debug, Clone)]
pub struct WebRequest {
    pub method: Method,
    /// Request path, e.g. `/v1/alice/fs/home/notes.txt`.
    pub path: String,
    /// Query parameters.
    pub query: Vec<(String, String)>,
    /// Body for file WRITEs.
    pub body: Option<FileContent>,
}

impl WebRequest {
    pub fn new(method: Method, path: &str) -> Self {
        WebRequest {
            method,
            path: path.to_string(),
            query: Vec::new(),
            body: None,
        }
    }

    pub fn with_query(mut self, key: &str, value: &str) -> Self {
        self.query.push((key.to_string(), value.to_string()));
        self
    }

    pub fn with_body(mut self, body: FileContent) -> Self {
        self.body = Some(body);
        self
    }

    fn q(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Response payload.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseBody {
    Empty,
    /// Error or informational message.
    Message(String),
    /// Names-only listing.
    Names(Vec<String>),
    /// Detailed listing or a single stat entry.
    Entries(Vec<DirEntry>),
    /// File content.
    Content(FileContent),
}

/// An outbound response: status code, body, and the operation's virtual
/// service time (what the paper measures, RTT excluded).
#[derive(Debug, Clone)]
pub struct WebResponse {
    pub status: u16,
    pub body: ResponseBody,
    pub op_time: Duration,
}

impl WebResponse {
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

fn status_of(e: &H2Error) -> u16 {
    match e {
        H2Error::NotFound(_) | H2Error::NoSuchAccount(_) => 404,
        H2Error::AlreadyExists(_) | H2Error::Conflict(_) => 409,
        H2Error::NotADirectory(_) | H2Error::IsADirectory(_) => 409,
        H2Error::InvalidPath(_) => 400,
        H2Error::Unavailable(_) => 503,
        H2Error::Unsupported(_) => 405,
        H2Error::Corrupt(_) => 500,
    }
}

/// The API front end over an [`H2Cloud`].
pub struct H2Api<'a> {
    fs: &'a H2Cloud,
}

impl<'a> H2Api<'a> {
    pub fn new(fs: &'a H2Cloud) -> Self {
        H2Api { fs }
    }

    /// Handle one request end to end.
    pub fn handle(&self, req: &WebRequest) -> WebResponse {
        let mut ctx = OpCtx::new(self.fs.cost_model());
        let result = self.dispatch(req, &mut ctx);
        let op_time = ctx.elapsed();
        match result {
            Ok((status, body)) => WebResponse {
                status,
                body,
                op_time,
            },
            Err(e) => WebResponse {
                status: status_of(&e),
                body: ResponseBody::Message(e.to_string()),
                op_time,
            },
        }
    }

    fn dispatch(&self, req: &WebRequest, ctx: &mut OpCtx) -> Result<(u16, ResponseBody), H2Error> {
        // Route: /v1/<account>[/fs/<path...>]
        let rest = req
            .path
            .strip_prefix("/v1/")
            .ok_or_else(|| H2Error::InvalidPath(format!("unknown route {}", req.path)))?;
        let (account, fs_path) = match rest.split_once('/') {
            None => (rest, None),
            Some((acct, tail)) => {
                let path = tail
                    .strip_prefix("fs")
                    .ok_or_else(|| H2Error::InvalidPath(format!("unknown route {}", req.path)))?;
                let path = if path.is_empty() { "/" } else { path };
                (acct, Some(FsPath::parse(path)?))
            }
        };
        if account.is_empty() {
            return Err(H2Error::InvalidPath("missing account".into()));
        }

        match (req.method, fs_path) {
            // ----- Account APIs -----
            (Method::Put, None) => {
                self.fs.create_account(ctx, account)?;
                Ok((201, ResponseBody::Empty))
            }
            (Method::Delete, None) => {
                self.fs.delete_account(ctx, account)?;
                Ok((204, ResponseBody::Empty))
            }
            (Method::Get, None) if req.q("op") == Some("metrics") => {
                // System monitoring (§4.2): per-operation latency summary,
                // with the cluster's read-path counters folded in.
                self.fs.sync_cluster_counters();
                Ok((200, ResponseBody::Message(self.fs.metrics().render())))
            }
            (Method::Get, None) if req.q("op") == Some("trace") => {
                // Most recent sampled operation traces as JSON (`n` caps the
                // count, default 32). Empty unless `trace_sample` > 0.
                let n = req
                    .q("n")
                    .and_then(|s| s.parse::<usize>().ok())
                    .unwrap_or(32);
                let traces = self.fs.recent_traces(n);
                Ok((
                    200,
                    ResponseBody::Message(h2util::trace::trace_json(&traces)),
                ))
            }
            (_, None) => Err(H2Error::Unsupported("method on account route")),

            // ----- Directory & File Content APIs -----
            (Method::Get, Some(path)) => match req.q("op") {
                Some("list") => {
                    if req.q("detail").is_some() {
                        let entries = self.fs.list_detailed(ctx, account, &path)?;
                        Ok((200, ResponseBody::Entries(entries)))
                    } else {
                        let names = self.fs.list(ctx, account, &path)?;
                        Ok((200, ResponseBody::Names(names)))
                    }
                }
                Some("stat") => {
                    let entry = self.fs.stat(ctx, account, &path)?;
                    Ok((200, ResponseBody::Entries(vec![entry])))
                }
                Some(other) => Err(H2Error::InvalidPath(format!("unknown op {other:?}"))),
                None => {
                    let content = self.fs.read(ctx, account, &path)?;
                    Ok((200, ResponseBody::Content(content)))
                }
            },
            (Method::Put, Some(path)) => {
                if req.q("type") == Some("dir") {
                    self.fs.mkdir(ctx, account, &path)?;
                    Ok((201, ResponseBody::Empty))
                } else {
                    let body = req
                        .body
                        .clone()
                        .ok_or_else(|| H2Error::InvalidPath("file PUT requires a body".into()))?;
                    self.fs.write(ctx, account, &path, body)?;
                    Ok((201, ResponseBody::Empty))
                }
            }
            (Method::Delete, Some(path)) => {
                if req.q("type") == Some("dir") {
                    self.fs.rmdir(ctx, account, &path)?;
                } else {
                    self.fs.delete_file(ctx, account, &path)?;
                }
                Ok((204, ResponseBody::Empty))
            }
            (Method::Post, Some(path)) => {
                let dest = req
                    .q("dest")
                    .ok_or_else(|| H2Error::InvalidPath("POST requires dest".into()))?;
                let dest = FsPath::parse(dest)?;
                match req.q("op") {
                    Some("move") => {
                        self.fs.mv(ctx, account, &path, &dest)?;
                        Ok((200, ResponseBody::Empty))
                    }
                    Some("copy") => {
                        self.fs.copy(ctx, account, &path, &dest)?;
                        Ok((200, ResponseBody::Empty))
                    }
                    other => Err(H2Error::InvalidPath(format!("unknown op {other:?}"))),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::H2Config;
    use h2fsapi::EntryKind;

    fn api_fs() -> H2Cloud {
        H2Cloud::new(H2Config::for_test())
    }

    fn ok(resp: WebResponse) -> WebResponse {
        assert!(
            resp.is_success(),
            "expected success, got {} ({:?})",
            resp.status,
            resp.body
        );
        resp
    }

    #[test]
    fn account_lifecycle_over_http() {
        let fs = api_fs();
        let api = H2Api::new(&fs);
        let r = ok(api.handle(&WebRequest::new(Method::Put, "/v1/alice")));
        assert_eq!(r.status, 201);
        // Duplicate account → 409.
        assert_eq!(
            api.handle(&WebRequest::new(Method::Put, "/v1/alice"))
                .status,
            409
        );
        assert_eq!(
            api.handle(&WebRequest::new(Method::Delete, "/v1/alice"))
                .status,
            204
        );
        assert_eq!(
            api.handle(&WebRequest::new(Method::Delete, "/v1/alice"))
                .status,
            404
        );
    }

    #[test]
    fn file_write_read_roundtrip_over_http() {
        let fs = api_fs();
        let api = H2Api::new(&fs);
        ok(api.handle(&WebRequest::new(Method::Put, "/v1/alice")));
        ok(api
            .handle(&WebRequest::new(Method::Put, "/v1/alice/fs/docs").with_query("type", "dir")));
        ok(api.handle(
            &WebRequest::new(Method::Put, "/v1/alice/fs/docs/a.txt")
                .with_body(FileContent::from_str("via http")),
        ));
        let r = ok(api.handle(&WebRequest::new(Method::Get, "/v1/alice/fs/docs/a.txt")));
        assert_eq!(
            r.body,
            ResponseBody::Content(FileContent::from_str("via http"))
        );
        assert!(r.op_time >= Duration::ZERO);
    }

    #[test]
    fn listing_and_stat_routes() {
        let fs = api_fs();
        let api = H2Api::new(&fs);
        ok(api.handle(&WebRequest::new(Method::Put, "/v1/alice")));
        ok(api.handle(&WebRequest::new(Method::Put, "/v1/alice/fs/d").with_query("type", "dir")));
        ok(api.handle(
            &WebRequest::new(Method::Put, "/v1/alice/fs/d/f").with_body(FileContent::Simulated(42)),
        ));
        let names =
            ok(api
                .handle(&WebRequest::new(Method::Get, "/v1/alice/fs/d").with_query("op", "list")));
        assert_eq!(names.body, ResponseBody::Names(vec!["f".into()]));
        let detailed = ok(api.handle(
            &WebRequest::new(Method::Get, "/v1/alice/fs/d")
                .with_query("op", "list")
                .with_query("detail", "1"),
        ));
        match detailed.body {
            ResponseBody::Entries(e) => {
                assert_eq!(e.len(), 1);
                assert_eq!(e[0].size, 42);
            }
            other => panic!("expected entries, got {other:?}"),
        }
        let stat =
            ok(api
                .handle(&WebRequest::new(Method::Get, "/v1/alice/fs/d").with_query("op", "stat")));
        match stat.body {
            ResponseBody::Entries(e) => assert_eq!(e[0].kind, EntryKind::Directory),
            other => panic!("expected entries, got {other:?}"),
        }
    }

    #[test]
    fn move_copy_delete_routes() {
        let fs = api_fs();
        let api = H2Api::new(&fs);
        ok(api.handle(&WebRequest::new(Method::Put, "/v1/alice")));
        ok(api.handle(&WebRequest::new(Method::Put, "/v1/alice/fs/a").with_query("type", "dir")));
        ok(api.handle(
            &WebRequest::new(Method::Put, "/v1/alice/fs/a/f").with_body(FileContent::from_str("x")),
        ));
        ok(api.handle(
            &WebRequest::new(Method::Post, "/v1/alice/fs/a")
                .with_query("op", "copy")
                .with_query("dest", "/b"),
        ));
        ok(api.handle(
            &WebRequest::new(Method::Post, "/v1/alice/fs/a")
                .with_query("op", "move")
                .with_query("dest", "/c"),
        ));
        assert_eq!(
            api.handle(&WebRequest::new(Method::Get, "/v1/alice/fs/a/f"))
                .status,
            404
        );
        ok(api.handle(&WebRequest::new(Method::Get, "/v1/alice/fs/b/f")));
        ok(api.handle(&WebRequest::new(Method::Get, "/v1/alice/fs/c/f")));
        assert_eq!(
            api.handle(&WebRequest::new(Method::Delete, "/v1/alice/fs/c/f"))
                .status,
            204
        );
        assert_eq!(
            api.handle(
                &WebRequest::new(Method::Delete, "/v1/alice/fs/b").with_query("type", "dir")
            )
            .status,
            204
        );
    }

    #[test]
    fn error_mapping_matches_http_semantics() {
        let fs = api_fs();
        let api = H2Api::new(&fs);
        ok(api.handle(&WebRequest::new(Method::Put, "/v1/alice")));
        // 404 unknown file.
        assert_eq!(
            api.handle(&WebRequest::new(Method::Get, "/v1/alice/fs/ghost"))
                .status,
            404
        );
        // 400 bad route and bad path.
        assert_eq!(
            api.handle(&WebRequest::new(Method::Get, "/wrong/route"))
                .status,
            400
        );
        assert_eq!(
            api.handle(&WebRequest::new(Method::Get, "/v1/alice/fs/a/../b"))
                .status,
            400
        );
        // 400 write without body.
        assert_eq!(
            api.handle(&WebRequest::new(Method::Put, "/v1/alice/fs/nobody"))
                .status,
            400
        );
        // 409 writing over a directory.
        ok(api.handle(&WebRequest::new(Method::Put, "/v1/alice/fs/d").with_query("type", "dir")));
        assert_eq!(
            api.handle(
                &WebRequest::new(Method::Put, "/v1/alice/fs/d")
                    .with_body(FileContent::from_str("x"))
            )
            .status,
            409
        );
        // 400 POST without dest; unknown op.
        assert_eq!(
            api.handle(&WebRequest::new(Method::Post, "/v1/alice/fs/d").with_query("op", "move"))
                .status,
            400
        );
        assert_eq!(
            api.handle(
                &WebRequest::new(Method::Post, "/v1/alice/fs/d")
                    .with_query("op", "frobnicate")
                    .with_query("dest", "/e")
            )
            .status,
            400
        );
        // 405 method on account route.
        assert_eq!(
            api.handle(&WebRequest::new(Method::Get, "/v1/alice"))
                .status,
            405
        );
    }

    #[test]
    fn metrics_route_reports_operation_histograms() {
        let fs = api_fs();
        let api = H2Api::new(&fs);
        ok(api.handle(&WebRequest::new(Method::Put, "/v1/alice")));
        ok(api.handle(&WebRequest::new(Method::Put, "/v1/alice/fs/d").with_query("type", "dir")));
        ok(api.handle(
            &WebRequest::new(Method::Put, "/v1/alice/fs/d/f").with_body(FileContent::from_str("x")),
        ));
        ok(api.handle(&WebRequest::new(Method::Get, "/v1/alice/fs/d/f")));
        let r =
            ok(api.handle(&WebRequest::new(Method::Get, "/v1/alice").with_query("op", "metrics")));
        match r.body {
            ResponseBody::Message(text) => {
                assert!(text.contains("MKDIR"), "{text}");
                assert!(text.contains("WRITE"), "{text}");
                assert!(text.contains("READ"), "{text}");
                assert!(text.contains("n=1"), "{text}");
                // Latency percentiles are part of the monitoring surface.
                assert!(text.contains("p50="), "{text}");
                assert!(text.contains("p95="), "{text}");
                assert!(text.contains("p99="), "{text}");
            }
            other => panic!("expected message, got {other:?}"),
        }
    }

    #[test]
    fn metrics_route_reports_ring_cache_counters() {
        // `for_test()` enables the NameRing cache, so the counters are
        // registered and must show up in the monitoring output; deep reads
        // after a warm-up produce actual hits.
        let fs = api_fs();
        let api = H2Api::new(&fs);
        ok(api.handle(&WebRequest::new(Method::Put, "/v1/alice")));
        ok(api.handle(&WebRequest::new(Method::Put, "/v1/alice/fs/d").with_query("type", "dir")));
        ok(api.handle(
            &WebRequest::new(Method::Put, "/v1/alice/fs/d/f").with_body(FileContent::from_str("x")),
        ));
        for _ in 0..3 {
            ok(api.handle(&WebRequest::new(Method::Get, "/v1/alice/fs/d/f")));
        }
        let r =
            ok(api.handle(&WebRequest::new(Method::Get, "/v1/alice").with_query("op", "metrics")));
        match r.body {
            ResponseBody::Message(text) => {
                assert!(text.contains("ring_cache_hits"), "{text}");
                assert!(text.contains("ring_cache_misses"), "{text}");
                assert!(text.contains("gets_saved"), "{text}");
                let hits: u64 = fs.metrics().counter_value("ring_cache_hits");
                assert!(hits > 0, "warm resolves produced no cache hits:\n{text}");
            }
            other => panic!("expected message, got {other:?}"),
        }
        // A cache-off instance registers no counters — clean output.
        let plain = H2Cloud::new(H2Config {
            cache_capacity: 0,
            ..H2Config::for_test()
        });
        let api = H2Api::new(&plain);
        ok(api.handle(&WebRequest::new(Method::Put, "/v1/bob")));
        let r =
            ok(api.handle(&WebRequest::new(Method::Get, "/v1/bob").with_query("op", "metrics")));
        match r.body {
            ResponseBody::Message(text) => {
                assert!(!text.contains("ring_cache"), "{text}");
            }
            other => panic!("expected message, got {other:?}"),
        }
    }

    #[test]
    fn metrics_route_reports_fault_and_retry_counters() {
        // The loss-path counters are pre-registered at layer construction,
        // so operators see them (at 0) before the first failure — a flat-
        // lining gauge is monitorable, an absent one is not.
        let fs = api_fs();
        let api = H2Api::new(&fs);
        ok(api.handle(&WebRequest::new(Method::Put, "/v1/alice")));
        let r =
            ok(api.handle(&WebRequest::new(Method::Get, "/v1/alice").with_query("op", "metrics")));
        match r.body {
            ResponseBody::Message(text) => {
                assert!(text.contains(crate::layer::GOSSIP_APPLY_FAILURES), "{text}");
                assert!(text.contains(crate::layer::MERGE_FAILURES), "{text}");
                assert!(text.contains(h2util::retry::OP_RETRIES), "{text}");
                assert!(text.contains(h2util::retry::OP_GAVE_UP), "{text}");
                assert!(text.contains(h2util::retry::RETRY_BACKOFF_MS), "{text}");
            }
            other => panic!("expected message, got {other:?}"),
        }
    }

    #[test]
    fn trace_route_returns_recent_root_spans() {
        // `for_test()` samples every op, so client traffic must surface as
        // root spans with nested middleware/cloud/replica stages, and the
        // per-stage histograms must land on the metrics route.
        let fs = api_fs();
        let api = H2Api::new(&fs);
        ok(api.handle(&WebRequest::new(Method::Put, "/v1/alice")));
        ok(api.handle(&WebRequest::new(Method::Put, "/v1/alice/fs/d").with_query("type", "dir")));
        ok(api.handle(
            &WebRequest::new(Method::Put, "/v1/alice/fs/d/f").with_body(FileContent::from_str("x")),
        ));
        ok(api.handle(&WebRequest::new(Method::Get, "/v1/alice/fs/d/f")));
        let r =
            ok(api.handle(&WebRequest::new(Method::Get, "/v1/alice").with_query("op", "trace")));
        match r.body {
            ResponseBody::Message(text) => {
                assert!(text.contains("\"traces\""), "{text}");
                assert!(text.contains("\"op\": \"WRITE\""), "{text}");
                assert!(text.contains("\"op\": \"READ\""), "{text}");
                // Stages from every layer of the stack appear.
                for stage in ["mw", "cloud", "quorum", "replica"] {
                    assert!(
                        text.contains(&format!("\"stage\": \"{stage}\"")),
                        "missing stage {stage}:\n{text}"
                    );
                }
                // Per-replica votes are recorded on the span notes.
                assert!(text.contains("\"vote\""), "{text}");
            }
            other => panic!("expected message, got {other:?}"),
        }
        // `n` bounds the number of root traces returned.
        let r = ok(api.handle(
            &WebRequest::new(Method::Get, "/v1/alice")
                .with_query("op", "trace")
                .with_query("n", "1"),
        ));
        match r.body {
            ResponseBody::Message(text) => {
                assert_eq!(text.matches("\"seq\"").count(), 1, "{text}");
            }
            other => panic!("expected message, got {other:?}"),
        }
        // Closed spans fed the per-stage latency histograms.
        let r =
            ok(api.handle(&WebRequest::new(Method::Get, "/v1/alice").with_query("op", "metrics")));
        match r.body {
            ResponseBody::Message(text) => {
                for h in [
                    h2util::trace::STAGE_RING_MS,
                    h2util::trace::STAGE_CONTENT_MS,
                    h2util::trace::STAGE_QUORUM_MS,
                    h2util::trace::STAGE_BACKOFF_MS,
                ] {
                    assert!(text.contains(h), "missing {h}:\n{text}");
                }
            }
            other => panic!("expected message, got {other:?}"),
        }
    }

    #[test]
    fn root_listing_works() {
        let fs = api_fs();
        let api = H2Api::new(&fs);
        ok(api.handle(&WebRequest::new(Method::Put, "/v1/alice")));
        let r =
            ok(api.handle(&WebRequest::new(Method::Get, "/v1/alice/fs/").with_query("op", "list")));
        assert_eq!(r.body, ResponseBody::Names(vec![]));
    }
}
