//! The H2Middleware (§4.2): H2 Lookup, NameRing Maintenance, Gossip.
//!
//! Each middleware wraps the object cloud the way a Swift proxy server is
//! wrapped in the paper's deployment. It holds:
//!
//! * the **File Descriptor Cache** — one descriptor per NameRing this node
//!   has touched, tracking the node's local (possibly not yet globally
//!   merged) version of the ring and the chain of submitted-but-unmerged
//!   patches (§3.3.2 phase 2, step 1);
//! * the **Background Merger** — merges a node's patch chain into one "big"
//!   patch and folds it into the NameRing object in the cloud;
//! * the **Gossip Arrangement** — emits `(N_i, H_j, t_k)` update
//!   notifications to peer middlewares and applies incoming ones, aborting
//!   forwarding when the local version is already at least as new
//!   (§3.3.2's loop-back avoidance).
//!
//! Maintenance runs in one of two modes:
//!
//! * [`MaintenanceMode::Eager`] — patches merge synchronously inside the
//!   submitting operation (deterministic; what the figure harness uses; the
//!   merge cost is visible in the operation time, which is why H2Cloud's
//!   MKDIR is slower than Swift's in Figure 12);
//! * [`MaintenanceMode::Deferred`] — patches accumulate per descriptor and
//!   merge when [`H2Middleware::step_merges`] (or the layer's pump/threads)
//!   runs, the paper's actual asynchronous protocol.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

use h2util::id::NamespaceAllocator;
use h2util::metrics::{Counter, MetricsRegistry};
use h2util::trace::{TraceCollector, STAGE_GOSSIP, STAGE_MERGE, STAGE_MW, STAGE_RESOLVE};
use h2util::{
    H2Error, HybridClock, LruCache, NamespaceId, NodeId, OpCtx, Result, RetryPolicy, Timestamp,
};
use swiftsim::{Cluster, Meta, ObjectKey, ObjectStore, Payload};

use crate::formatter;
use crate::keys::{DirDescriptor, H2Keys};
use crate::namering::NameRing;

/// When patches are merged into their NameRings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintenanceMode {
    /// Merge at submission time, inside the client operation.
    Eager,
    /// Merge when the background merger runs (`step_merges` / layer pump).
    Deferred,
}

/// A `(N_i, H_j, t_k)` gossip tuple: "the local version of NameRing `ns` in
/// node `from` has been updated at `version`".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GossipMsg {
    pub account: String,
    pub ns: NamespaceId,
    pub from: NodeId,
    pub version: Timestamp,
}

/// Per-NameRing state in the File Descriptor Cache.
#[derive(Debug, Default)]
struct FileDescriptor {
    /// This node's local version of the ring (its own submitted patches are
    /// always folded in, giving read-your-writes on this middleware).
    local: NameRing,
    /// Patch numbers submitted but not yet merged (the patch chain,
    /// starting at 0 like the paper's "patch No. 0").
    pending: Vec<u32>,
    /// Next patch number to hand out.
    next_patch: u32,
}

/// Key of a per-(account, namespace) entry.
type FdKey = (String, NamespaceId);

/// A parsed global ring held by the NameRing cache, stamped with the
/// version (max tuple timestamp) it carried when it entered the cache.
struct CachedRing {
    version: Timestamp,
    ring: NameRing,
}

/// Hit/miss accounting for the NameRing cache, shared with the owning
/// registry so `op=metrics` and the benches can read it.
struct CacheCounters {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    /// NameRing GETs that the cache absorbed (one per hit — kept as its own
    /// counter so dashboards don't have to know that equivalence).
    gets_saved: Arc<Counter>,
}

/// One H2Middleware instance.
pub struct H2Middleware {
    node: NodeId,
    store: Arc<Cluster>,
    mode: MaintenanceMode,
    clock: HybridClock,
    ns_alloc: NamespaceAllocator,
    metrics: Arc<MetricsRegistry>,
    /// Version-stamped cache of parsed *global* rings (no local overlay),
    /// consulted by [`read_ring`](Self::read_ring) — the O(d) resolve hot
    /// path. Kept fresh by write-through in `put_global_ring` and refresh
    /// on gossip; never consulted by `fetch_global_ring`, which must see
    /// the cloud's current object (merge cycles and gossip handling depend
    /// on that). Capacity 0 disables it.
    ring_cache: Mutex<LruCache<FdKey, CachedRing>>,
    /// `Some` iff the cache is enabled (counters are only registered then,
    /// so disabled instances keep their metrics output clean).
    cache_counters: Option<CacheCounters>,
    fds: Mutex<HashMap<FdKey, FileDescriptor>>,
    /// Per-ring merge serialisation: a merge cycle is a read-modify-write
    /// of the ring object, so two concurrent cycles for the same ring on
    /// this node could overwrite each other. (Cycles on *different* nodes
    /// are reconciled by gossip, by design.)
    merge_locks: Mutex<HashMap<FdKey, Arc<Mutex<()>>>>,
    /// Backoff schedule for transient cloud failures (`Unavailable` /
    /// `Conflict`) on the middleware's own cloud ops — ring reads/writes,
    /// patch submission, descriptor I/O. Seeded per node so independent
    /// middlewares draw decorrelated jitter, yet replays are identical.
    retry: RetryPolicy,
    /// Bounded ring buffer of sampled operation traces served by `op=trace`;
    /// a disabled collector (the default) keeps the span machinery inert.
    tracer: Arc<TraceCollector>,
    outbox: Mutex<Vec<GossipMsg>>,
    /// Virtual time + op counts spent on background maintenance (merges and
    /// gossip handling in Deferred mode) — the ablation benches report it.
    background: Mutex<(std::time::Duration, h2util::BackendCounts)>,
}

impl H2Middleware {
    /// Plain middleware: private metrics registry, NameRing cache disabled.
    pub fn new(node: NodeId, store: Arc<Cluster>, mode: MaintenanceMode) -> Arc<Self> {
        Self::with_cache(node, store, mode, Arc::new(MetricsRegistry::new()), 0)
    }

    /// Middleware reporting into a shared `metrics` registry, with a
    /// NameRing cache of `cache_capacity` parsed rings (0 disables it).
    pub fn with_cache(
        node: NodeId,
        store: Arc<Cluster>,
        mode: MaintenanceMode,
        metrics: Arc<MetricsRegistry>,
        cache_capacity: usize,
    ) -> Arc<Self> {
        Self::with_observability(
            node,
            store,
            mode,
            metrics,
            cache_capacity,
            Arc::new(TraceCollector::disabled()),
        )
    }

    /// Full constructor: like [`with_cache`](Self::with_cache), plus a span
    /// collector for sampled operation traces.
    pub fn with_observability(
        node: NodeId,
        store: Arc<Cluster>,
        mode: MaintenanceMode,
        metrics: Arc<MetricsRegistry>,
        cache_capacity: usize,
        tracer: Arc<TraceCollector>,
    ) -> Arc<Self> {
        assert!(
            node.0 > 0,
            "middleware node ids are 1-based (0 is reserved)"
        );
        let cache_counters = (cache_capacity > 0).then(|| CacheCounters {
            hits: metrics.counter("ring_cache_hits"),
            misses: metrics.counter("ring_cache_misses"),
            gets_saved: metrics.counter("gets_saved"),
        });
        Arc::new(H2Middleware {
            node,
            clock: HybridClock::new(node, 1_600_000_000_000),
            ns_alloc: NamespaceAllocator::new(node),
            store,
            mode,
            metrics,
            ring_cache: Mutex::new(LruCache::new(cache_capacity)),
            cache_counters,
            fds: Mutex::new(HashMap::new()),
            merge_locks: Mutex::new(HashMap::new()),
            retry: RetryPolicy::new(0x4852_5452 ^ node.0 as u64),
            tracer,
            outbox: Mutex::new(Vec::new()),
            background: Mutex::new(Default::default()),
        })
    }

    /// The metrics registry this middleware reports into.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    pub fn node(&self) -> NodeId {
        self.node
    }

    pub fn mode(&self) -> MaintenanceMode {
        self.mode
    }

    pub fn store(&self) -> &Arc<Cluster> {
        &self.store
    }

    /// Next hybrid timestamp from this middleware's clock.
    pub fn tick(&self) -> Timestamp {
        self.clock.tick()
    }

    /// Allocate a fresh namespace UUID (`seq.node.millis`).
    pub fn allocate_namespace(&self) -> NamespaceId {
        self.ns_alloc.allocate(self.clock.peek().millis)
    }

    /// Total background maintenance spend so far.
    pub fn background_spend(&self) -> (std::time::Duration, h2util::BackendCounts) {
        *self.background.lock()
    }

    /// The retry policy this middleware applies to its own cloud ops.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    /// The span collector holding this middleware's sampled traces.
    pub fn tracer(&self) -> &Arc<TraceCollector> {
        &self.tracer
    }

    /// Run a cloud operation under this middleware's retry policy, charging
    /// backoff as virtual latency and recording `op_retries` / `op_gave_up`
    /// in the middleware's registry. The fs layer routes content-object I/O
    /// through here so file data gets the same availability treatment as
    /// metadata.
    pub fn with_retry<T, F>(&self, ctx: &mut OpCtx, op: &str, f: F) -> Result<T>
    where
        F: FnMut(&mut OpCtx) -> Result<T>,
    {
        ctx.span(STAGE_MW, op, |ctx| {
            self.retry.run_virtual(ctx, Some(&self.metrics), op, f)
        })
    }

    fn absorb_background(&self, ctx: &OpCtx) {
        let mut bg = self.background.lock();
        bg.0 += ctx.elapsed();
        bg.1.add(&ctx.counts());
    }

    // ----- ring access ----------------------------------------------------

    /// Cached copy of the global ring for `key`, if the cache is enabled
    /// and holds one. Counts hit/miss.
    fn cached_global(&self, key: &FdKey) -> Option<NameRing> {
        let counters = self.cache_counters.as_ref()?;
        let mut cache = self.ring_cache.lock();
        match cache.get(key) {
            Some(entry) => {
                let ring = entry.ring.clone();
                drop(cache);
                counters.hits.incr();
                counters.gets_saved.incr();
                Some(ring)
            }
            None => {
                drop(cache);
                counters.misses.incr();
                None
            }
        }
    }

    /// Store a ring obtained from a cloud *read*. Guarded: a fetch that
    /// raced with a concurrent write-through must not replace the newer
    /// entry, so the ring only enters the cache if its version is at least
    /// the cached one.
    fn cache_store_fetched(&self, key: FdKey, ring: &NameRing) {
        if self.cache_counters.is_none() {
            return;
        }
        let mut cache = self.ring_cache.lock();
        let version = ring.version();
        if cache.peek(&key).is_none_or(|e| version >= e.version) {
            cache.insert(
                key,
                CachedRing {
                    version,
                    ring: ring.clone(),
                },
            );
        }
    }

    /// Store a ring this middleware just *wrote* to the cloud. Replaces
    /// unconditionally — the cloud object now IS this ring, even if its
    /// version went backwards (GC compaction can drop the newest
    /// tombstone).
    fn cache_store_written(&self, key: FdKey, ring: &NameRing) {
        if self.cache_counters.is_none() {
            return;
        }
        self.ring_cache.lock().insert(
            key,
            CachedRing {
                version: ring.version(),
                ring: ring.clone(),
            },
        );
    }

    /// Drop the cached copy of `(account, ns)`, if any. Called by GC after
    /// it deletes a dead ring object out from under the middleware.
    pub fn invalidate_ring(&self, account: &str, ns: NamespaceId) {
        self.ring_cache.lock().remove(&(account.to_string(), ns));
    }

    /// GC notification: the global ring for `(account, ns)` was compacted
    /// at `horizon`. Floor this middleware's local version to the same
    /// horizon, so a tombstone GC already reclaimed can't re-enter the
    /// global object through a later merge's local-overlay join (tombstone
    /// resurrection). The cached global copy is dropped too — it predates
    /// the compaction.
    pub fn gc_floor(&self, account: &str, ns: NamespaceId, horizon: Timestamp) {
        {
            let mut fds = self.fds.lock();
            if let Some(fd) = fds.get_mut(&(account.to_string(), ns)) {
                fd.local.floor_tombstones(horizon);
            }
        }
        self.invalidate_ring(account, ns);
    }

    /// GC notification: the ring object for `(account, ns)` was deleted
    /// (its directory is unreachable). Drop every bit of local state that
    /// refers to it, so this middleware can't write the dead ring back.
    pub fn forget_ring(&self, account: &str, ns: NamespaceId) {
        self.fds.lock().remove(&(account.to_string(), ns));
        self.invalidate_ring(account, ns);
    }

    /// NameRing-cache `(hits, misses)` so far (zeros when disabled).
    pub fn ring_cache_stats(&self) -> (u64, u64) {
        match &self.cache_counters {
            Some(c) => (c.hits.get(), c.misses.get()),
            None => (0, 0),
        }
    }

    /// Fetch the NameRing object for `ns` — from the cache when it holds a
    /// copy, from the cloud otherwise (empty if the object does not exist
    /// yet) — and join it with this node's local version, so the caller
    /// sees both global state and this node's own not-yet-merged updates.
    pub fn read_ring(&self, ctx: &mut OpCtx, keys: &H2Keys, ns: NamespaceId) -> Result<NameRing> {
        ctx.span(STAGE_RESOLVE, "read_ring", |ctx| {
            ctx.span_note("ns", || ns.to_string());
            let key = (keys.account().to_string(), ns);
            let mut ring = match self.cached_global(&key) {
                Some(cached) => {
                    ctx.span_note("ring_cache", || "hit".to_string());
                    cached
                }
                None => {
                    if self.cache_counters.is_some() {
                        ctx.span_note("ring_cache", || "miss".to_string());
                    }
                    let global = self.fetch_global_ring(ctx, keys, ns)?;
                    self.cache_store_fetched(key.clone(), &global);
                    global
                }
            };
            let fds = self.fds.lock();
            if let Some(fd) = fds.get(&key) {
                ring.merge_from(&fd.local);
            }
            Ok(ring)
        })
    }

    /// The ring object exactly as stored (no local overlay).
    pub fn fetch_global_ring(
        &self,
        ctx: &mut OpCtx,
        keys: &H2Keys,
        ns: NamespaceId,
    ) -> Result<NameRing> {
        let key = keys.namering(ns);
        match self.with_retry(ctx, "fetch_ring", |ctx| self.store.get(ctx, &key)) {
            Ok(obj) => {
                let s = obj.payload.as_str().ok_or_else(|| {
                    H2Error::Corrupt(format!("NameRing {ns} is not a string object"))
                })?;
                formatter::namering_from_str(s)
            }
            Err(H2Error::NotFound(_)) => Ok(NameRing::new()),
            Err(e) => Err(e),
        }
    }

    /// Write a ring object back (formatter + PUT), writing through to the
    /// NameRing cache on success. Every ring write on this middleware —
    /// COPY's `write_ring`, merge cycles, gossip write-backs, `create_ring`
    /// — funnels through here, so the cache can never serve a ring older
    /// than what this middleware itself last wrote.
    fn put_global_ring(
        &self,
        ctx: &mut OpCtx,
        keys: &H2Keys,
        ns: NamespaceId,
        ring: &NameRing,
    ) -> Result<()> {
        let body = formatter::namering_to_string(ring);
        let key = keys.namering(ns);
        self.with_retry(ctx, "put_ring", |ctx| {
            self.store
                .put(ctx, &key, Payload::from_string(body.clone()), Meta::new())
        })?;
        self.cache_store_written((keys.account().to_string(), ns), ring);
        Ok(())
    }

    /// Create the (empty) NameRing object for a fresh namespace.
    pub fn create_ring(&self, ctx: &mut OpCtx, keys: &H2Keys, ns: NamespaceId) -> Result<()> {
        self.put_global_ring(ctx, keys, ns, &NameRing::new())
    }

    /// Write a fully materialised ring for a namespace this node just
    /// created (COPY builds destination rings wholesale — no concurrent
    /// writers can exist for a namespace nobody else has seen). Also primes
    /// the local descriptor cache.
    pub fn write_ring(
        &self,
        ctx: &mut OpCtx,
        keys: &H2Keys,
        ns: NamespaceId,
        ring: &NameRing,
    ) -> Result<()> {
        self.put_global_ring(ctx, keys, ns, ring)?;
        let mut fds = self.fds.lock();
        let fd = fds.entry((keys.account().to_string(), ns)).or_default();
        fd.local = ring.clone();
        Ok(())
    }

    // ----- patch submission (§3.3.2 phase 1) -------------------------------

    /// Submit a patch against `ns`'s NameRing: PUT the patch object (keyed
    /// `ns::/NameRing/.Node<this>.Patch<k>`), append it to the node's chain,
    /// and fold it into the local version immediately. In Eager mode the
    /// merge into the global ring happens here too.
    pub fn submit_patch(
        &self,
        ctx: &mut OpCtx,
        keys: &H2Keys,
        ns: NamespaceId,
        patch: NameRing,
    ) -> Result<()> {
        ctx.charge_time(self.store.cost_model().patch_cycle_cpu);
        let key = (keys.account().to_string(), ns);
        // Allocate the patch number AND chain it in one critical section,
        // before the PUT. If it only entered the chain after the PUT (as an
        // earlier revision did), there was a window in which the patch was
        // invisible to `pending_descriptors` — `is_quiescent` could report
        // a quiet layer while a submitted update had reached neither the
        // chain nor the local ring.
        let patch_no = {
            let mut fds = self.fds.lock();
            let fd = fds.entry(key.clone()).or_default();
            let no = fd.next_patch;
            fd.next_patch += 1;
            fd.pending.push(no);
            no
        };
        let body = formatter::patch_to_string(&patch);
        let patch_key = keys.patch(ns, self.node, patch_no);
        let put = self.with_retry(ctx, "submit_patch", |ctx| {
            self.store.put(
                ctx,
                &patch_key,
                Payload::from_string(body.clone()),
                Meta::new(),
            )
        });
        // Re-validate under the lock now that the PUT has settled.
        {
            let mut fds = self.fds.lock();
            let fd = fds.entry(key).or_default();
            match &put {
                Ok(()) => {
                    fd.local.merge_from(&patch);
                    if !fd.pending.contains(&patch_no) {
                        // A concurrent merge cycle consumed the chain entry
                        // while the PUT was in flight; it saw NotFound for
                        // this patch object and skipped it, so the object
                        // we just wrote is referenced by nothing. Re-chain
                        // it: the next cycle merges and deletes it. (The
                        // content is also safe in `fd.local`, which every
                        // cycle folds in.)
                        fd.pending.push(patch_no);
                    }
                }
                Err(_) => {
                    // The patch object never made it to the cloud: drop the
                    // chain entry so the merger does not chase a ghost, and
                    // skip the local fold so the failed write stays
                    // invisible, like any other failed operation.
                    fd.pending.retain(|&no| no != patch_no);
                }
            }
        }
        put?;
        if self.mode == MaintenanceMode::Eager {
            self.merge_ns(ctx, keys, ns)?;
        }
        Ok(())
    }

    /// How many descriptors have unmerged patch chains.
    pub fn pending_descriptors(&self) -> usize {
        self.fds
            .lock()
            .values()
            .filter(|fd| !fd.pending.is_empty())
            .count()
    }

    // ----- intra-node merging (§3.3.2 phase 2, step 1) ---------------------

    /// Merge this node's patch chain for `ns` into the global NameRing
    /// object: fetch each patch in chain order, merge them into one "big"
    /// patch, fold it into the ring, write the ring back, delete the patch
    /// objects, and queue a gossip notification. Returns true if any patch
    /// was merged.
    pub fn merge_ns(&self, ctx: &mut OpCtx, keys: &H2Keys, ns: NamespaceId) -> Result<bool> {
        ctx.span(STAGE_MERGE, "merge_ns", |ctx| {
            ctx.span_note("ns", || ns.to_string());
            self.merge_ns_inner(ctx, keys, ns)
        })
    }

    fn merge_ns_inner(&self, ctx: &mut OpCtx, keys: &H2Keys, ns: NamespaceId) -> Result<bool> {
        // One merge cycle per ring at a time on this node.
        let gate = self
            .merge_locks
            .lock()
            .entry((keys.account().to_string(), ns))
            .or_insert_with(|| Arc::new(Mutex::new(())))
            .clone();
        let _guard = gate.lock();
        let chain: Vec<u32> = {
            let mut fds = self.fds.lock();
            match fds.get_mut(&(keys.account().to_string(), ns)) {
                Some(fd) if !fd.pending.is_empty() => std::mem::take(&mut fd.pending),
                _ => return Ok(false),
            }
        };
        ctx.charge_time(self.store.cost_model().patch_cycle_cpu);
        // Run the fallible cycle; on *any* failure, restore the chain so a
        // retry re-merges (crash recovery for the Background Merger).
        let ring = match self.merge_cycle(ctx, keys, ns, &chain) {
            Ok(ring) => ring,
            Err(e) => {
                let mut fds = self.fds.lock();
                let fd = fds.entry((keys.account().to_string(), ns)).or_default();
                let mut restored = chain.clone();
                restored.append(&mut fd.pending);
                fd.pending = restored;
                return Err(e);
            }
        };
        let version = ring.version();
        {
            let mut fds = self.fds.lock();
            let fd = fds.entry((keys.account().to_string(), ns)).or_default();
            // Monotone: a patch submitted while this merge was in flight
            // must stay visible in the local version (its chain entry will
            // carry it into the global object on the next cycle).
            fd.local.merge_from(&ring);
        }
        self.outbox.lock().push(GossipMsg {
            account: keys.account().to_string(),
            ns,
            from: self.node,
            version,
        });
        Ok(true)
    }

    /// The fallible portion of one merge cycle: fetch the chain's patch
    /// objects, merge them (plus the local version) into the global ring,
    /// write it back and delete the consumed patches.
    fn merge_cycle(
        &self,
        ctx: &mut OpCtx,
        keys: &H2Keys,
        ns: NamespaceId,
        chain: &[u32],
    ) -> Result<NameRing> {
        // Walk the linked list: start with patch No. chain[0], repeatedly
        // fetch the successor and merge the two.
        let mut big = NameRing::new();
        for &no in chain {
            let key = keys.patch(ns, self.node, no);
            match self.with_retry(ctx, "fetch_patch", |ctx| self.store.get(ctx, &key)) {
                Ok(obj) => {
                    let s = obj.payload.as_str().ok_or_else(|| {
                        H2Error::Corrupt(format!("patch {key} is not a string object"))
                    })?;
                    big.merge_from(&formatter::patch_from_str(s)?);
                }
                // A patch can be missing if a previous merge crashed between
                // deleting patches and clearing state; the local ring
                // already contains its effect, so skip it.
                Err(H2Error::NotFound(_)) => {}
                Err(e) => return Err(e),
            }
        }
        // Merge the big patch into the ring object.
        let mut ring = self.fetch_global_ring(ctx, keys, ns)?;
        ring.merge_from(&big);
        // Also fold in anything only our local version knows (e.g. effects
        // of patches deleted by an earlier interrupted merge).
        {
            let fds = self.fds.lock();
            if let Some(fd) = fds.get(&(keys.account().to_string(), ns)) {
                ring.merge_from(&fd.local);
            }
        }
        self.put_global_ring(ctx, keys, ns, &ring)?;
        for &no in chain {
            // Patch objects are transient; a NotFound here is harmless.
            let key = keys.patch(ns, self.node, no);
            match self.with_retry(ctx, "delete_patch", |ctx| self.store.delete(ctx, &key)) {
                Ok(()) | Err(H2Error::NotFound(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(ring)
    }

    /// Run the Background Merger over every descriptor with pending patches
    /// (Deferred mode's pump). Background spend is accounted internally.
    /// Returns the number of rings merged.
    pub fn step_merges(&self) -> Result<usize> {
        let work: Vec<(String, NamespaceId)> = {
            let fds = self.fds.lock();
            fds.iter()
                .filter(|(_, fd)| !fd.pending.is_empty())
                .map(|((acct, ns), _)| (acct.clone(), *ns))
                .collect()
        };
        let mut merged = 0usize;
        let mut ctx = OpCtx::new(self.store.cost_model());
        // Background merge pumps are sampled like client ops, so Deferred
        // mode's maintenance shows up as MERGE-PUMP root traces.
        let sampled = !work.is_empty() && self.tracer.sample_next();
        if sampled {
            ctx.begin_trace(STAGE_MERGE, "MERGE-PUMP");
        }
        let mut failure = None;
        for (account, ns) in work {
            let keys = H2Keys::new(&account);
            match self.merge_ns(&mut ctx, &keys, ns) {
                Ok(true) => merged += 1,
                Ok(false) => {}
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        if sampled {
            let err = failure.as_ref().map(|e| e.to_string());
            if let Some(spans) = ctx.end_trace(err) {
                self.tracer.offer(spans, &self.metrics);
            }
        }
        if let Some(e) = failure {
            return Err(e);
        }
        self.absorb_background(&ctx);
        Ok(merged)
    }

    // ----- gossip (§3.3.2 phase 2, step 2) ---------------------------------

    /// Drain queued outbound gossip messages.
    pub fn take_outbox(&self) -> Vec<GossipMsg> {
        std::mem::take(&mut *self.outbox.lock())
    }

    /// Handle one incoming gossip tuple. Returns true when the update was
    /// news to this node (and should be forwarded); false aborts the flood
    /// (the local version is already at least as new — §3.3.2's loop-back
    /// avoidance by timestamp comparison).
    pub fn on_gossip(&self, msg: &GossipMsg) -> Result<bool> {
        {
            let fds = self.fds.lock();
            if let Some(fd) = fds.get(&(msg.account.clone(), msg.ns)) {
                if fd.local.version() >= msg.version {
                    return Ok(false);
                }
            }
        }
        let mut ctx = OpCtx::new(self.store.cost_model());
        // Gossip hops run on their own context, so they self-sample into
        // GOSSIP-APPLY root traces.
        let sampled = self.tracer.sample_next();
        if sampled {
            ctx.begin_trace(STAGE_GOSSIP, "GOSSIP-APPLY");
            ctx.span_note("ns", || msg.ns.to_string());
            ctx.span_note("from", || msg.from.0.to_string());
        }
        let result = self.apply_gossip(&mut ctx, msg);
        if sampled {
            let err = result.as_ref().err().map(|e| e.to_string());
            if let Some(spans) = ctx.end_trace(err) {
                self.tracer.offer(spans, &self.metrics);
            }
        }
        result?;
        self.clock.observe(msg.version);
        self.absorb_background(&ctx);
        Ok(true)
    }

    /// The fallible portion of one gossip application (split out so the
    /// wrapper can flush the trace on both outcomes).
    fn apply_gossip(&self, ctx: &mut OpCtx, msg: &GossipMsg) -> Result<()> {
        // Fetch the updated ring version and merge it into the local view.
        // The fresh global also refreshes the NameRing cache — gossip is
        // what keeps cached rings from going stale across middlewares.
        let keys = H2Keys::new(&msg.account);
        let global = self.fetch_global_ring(ctx, &keys, msg.ns)?;
        self.cache_store_fetched((msg.account.clone(), msg.ns), &global);
        let had_extra = {
            let mut fds = self.fds.lock();
            let fd = fds.entry((msg.account.clone(), msg.ns)).or_default();
            let mut merged = global.clone();
            merged.merge_from(&fd.local);
            let extra = merged != global;
            fd.local = merged;
            extra
        };
        // If this node knew updates the global object lacked, write the
        // join back and re-gossip (our information is now part of the
        // global version).
        if had_extra {
            let local = {
                let fds = self.fds.lock();
                fds[&(msg.account.clone(), msg.ns)].local.clone()
            };
            ctx.span_note("write_back", || {
                "local updates joined into global".to_string()
            });
            self.put_global_ring(ctx, &keys, msg.ns, &local)?;
            self.outbox.lock().push(GossipMsg {
                account: msg.account.clone(),
                ns: msg.ns,
                from: self.node,
                version: local.version(),
            });
        }
        Ok(())
    }

    // ----- descriptor objects ----------------------------------------------

    /// PUT a directory descriptor object at `parent_ns::name`.
    pub fn put_descriptor(
        &self,
        ctx: &mut OpCtx,
        keys: &H2Keys,
        parent_ns: NamespaceId,
        name: &str,
        desc: &DirDescriptor,
    ) -> Result<()> {
        let mut meta = Meta::new();
        meta.insert("content-type".into(), "h2/dir".into());
        let key = keys.child(parent_ns, name);
        let body = formatter::dir_to_string(desc);
        self.with_retry(ctx, "put_descriptor", |ctx| {
            self.store
                .put(ctx, &key, Payload::from_string(body.clone()), meta.clone())
        })
    }

    /// GET and parse a directory descriptor.
    pub fn get_descriptor(
        &self,
        ctx: &mut OpCtx,
        keys: &H2Keys,
        parent_ns: NamespaceId,
        name: &str,
    ) -> Result<DirDescriptor> {
        let key = keys.child(parent_ns, name);
        let obj = self.with_retry(ctx, "get_descriptor", |ctx| self.store.get(ctx, &key))?;
        let s = obj
            .payload
            .as_str()
            .ok_or_else(|| H2Error::Corrupt(format!("descriptor {name} not a string")))?;
        formatter::dir_from_str(s)
    }

    /// Object key helper (exposed for the fs layer).
    pub fn child_key(&self, keys: &H2Keys, ns: NamespaceId, name: &str) -> ObjectKey {
        keys.child(ns, name)
    }

    /// Charge middleware CPU for processing `entries` listing rows.
    pub fn charge_listing_cpu(&self, ctx: &mut OpCtx, entries: usize) {
        ctx.charge_time(self.store.cost_model().per_entry_cpu * entries as u32);
    }

    /// Charge one lookup step of middleware CPU (hashing, tuple search,
    /// middleware HTTP plumbing).
    pub fn charge_lookup_cpu(&self, ctx: &mut OpCtx) {
        ctx.charge_time(self.store.cost_model().lookup_cpu);
    }

    /// Record an index-server-free primitive count for Table 1 (H2 issues
    /// no IndexRpc; method exists so call sites read symmetrically with the
    /// DP baseline).
    pub fn no_index_rpc(&self, _ctx: &mut OpCtx) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::namering::Tuple;
    use swiftsim::ClusterConfig;

    fn setup(mode: MaintenanceMode) -> (Arc<Cluster>, Arc<H2Middleware>, H2Keys) {
        let cluster = Cluster::new(ClusterConfig {
            nodes: 4,
            replicas: 3,
            part_power: 6,
            cost: Arc::new(h2util::CostModel::zero()),
            faults: None,
        });
        cluster.create_account("alice").unwrap();
        cluster
            .create_container("alice", crate::keys::H2_CONTAINER, false)
            .unwrap();
        let mw = H2Middleware::new(NodeId(1), cluster.clone(), mode);
        (cluster, mw, H2Keys::new("alice"))
    }

    fn ns(seq: u64) -> NamespaceId {
        NamespaceId::new(seq, NodeId(1), 42)
    }

    #[test]
    fn missing_ring_reads_as_empty() {
        let (_c, mw, keys) = setup(MaintenanceMode::Eager);
        let mut ctx = OpCtx::for_test();
        let ring = mw.read_ring(&mut ctx, &keys, ns(9)).unwrap();
        assert!(ring.is_empty());
    }

    #[test]
    fn eager_patch_is_immediately_global() {
        let (_c, mw, keys) = setup(MaintenanceMode::Eager);
        let mut ctx = OpCtx::for_test();
        let mut patch = NameRing::new();
        patch.apply("file1", Tuple::file(mw.tick(), 10));
        mw.submit_patch(&mut ctx, &keys, ns(1), patch).unwrap();
        // Globally visible (no local overlay needed).
        let global = mw.fetch_global_ring(&mut ctx, &keys, ns(1)).unwrap();
        assert!(global.get("file1").is_some());
        assert_eq!(mw.pending_descriptors(), 0);
        // Patch object was deleted after the merge.
        let patch_key = keys.patch(ns(1), NodeId(1), 0);
        assert!(mw.store().get(&mut ctx, &patch_key).is_err());
        // A gossip message was queued.
        assert_eq!(mw.take_outbox().len(), 1);
    }

    #[test]
    fn deferred_patch_visible_locally_only_until_merge() {
        let (_c, mw, keys) = setup(MaintenanceMode::Deferred);
        let mut ctx = OpCtx::for_test();
        let mut patch = NameRing::new();
        patch.apply("f", Tuple::file(mw.tick(), 1));
        mw.submit_patch(&mut ctx, &keys, ns(1), patch).unwrap();
        // Local overlay sees it; global object does not.
        assert!(mw
            .read_ring(&mut ctx, &keys, ns(1))
            .unwrap()
            .get("f")
            .is_some());
        assert!(mw
            .fetch_global_ring(&mut ctx, &keys, ns(1))
            .unwrap()
            .get("f")
            .is_none());
        assert_eq!(mw.pending_descriptors(), 1);
        // Patch object exists in the cloud under the paper's key scheme.
        assert!(mw
            .store()
            .get(&mut ctx, &keys.patch(ns(1), NodeId(1), 0))
            .is_ok());
        // Background merger folds it in.
        assert_eq!(mw.step_merges().unwrap(), 1);
        assert!(mw
            .fetch_global_ring(&mut ctx, &keys, ns(1))
            .unwrap()
            .get("f")
            .is_some());
        let (bg_time, bg_counts) = mw.background_spend();
        assert_eq!(bg_time, std::time::Duration::ZERO); // zero cost model
        assert!(bg_counts.total() > 0);
    }

    #[test]
    fn chain_of_patches_merges_in_order() {
        let (_c, mw, keys) = setup(MaintenanceMode::Deferred);
        let mut ctx = OpCtx::for_test();
        for i in 0..5u64 {
            let mut p = NameRing::new();
            p.apply(&format!("f{i}"), Tuple::file(mw.tick(), i));
            mw.submit_patch(&mut ctx, &keys, ns(1), p).unwrap();
        }
        // One descriptor, five chained patches.
        assert_eq!(mw.pending_descriptors(), 1);
        mw.step_merges().unwrap();
        let g = mw.fetch_global_ring(&mut ctx, &keys, ns(1)).unwrap();
        assert_eq!(g.live_len(), 5);
    }

    #[test]
    fn delete_then_recreate_through_patches() {
        let (_c, mw, keys) = setup(MaintenanceMode::Eager);
        let mut ctx = OpCtx::for_test();
        let t1 = mw.tick();
        let mut p = NameRing::new();
        p.apply("f", Tuple::file(t1, 1));
        mw.submit_patch(&mut ctx, &keys, ns(1), p).unwrap();
        let mut p = NameRing::new();
        p.apply("f", Tuple::file(t1, 1).tombstone(mw.tick()));
        mw.submit_patch(&mut ctx, &keys, ns(1), p).unwrap();
        assert!(mw
            .read_ring(&mut ctx, &keys, ns(1))
            .unwrap()
            .get("f")
            .is_none());
        let mut p = NameRing::new();
        p.apply("f", Tuple::file(mw.tick(), 2));
        mw.submit_patch(&mut ctx, &keys, ns(1), p).unwrap();
        let ring = mw.read_ring(&mut ctx, &keys, ns(1)).unwrap();
        assert_eq!(
            ring.get("f").unwrap().child,
            crate::namering::ChildRef::File { size: 2 }
        );
    }

    #[test]
    fn gossip_round_trip_between_two_middlewares() {
        let (cluster, mw1, keys) = setup(MaintenanceMode::Eager);
        let mw2 = H2Middleware::new(NodeId(2), cluster, MaintenanceMode::Eager);
        let mut ctx = OpCtx::for_test();
        let mut p = NameRing::new();
        p.apply("shared", Tuple::file(mw1.tick(), 7));
        mw1.submit_patch(&mut ctx, &keys, ns(1), p).unwrap();
        let msgs = mw1.take_outbox();
        assert_eq!(msgs.len(), 1);
        // mw2 learns of the update and fetches it.
        assert!(mw2.on_gossip(&msgs[0]).unwrap());
        let ring = mw2.read_ring(&mut ctx, &keys, ns(1)).unwrap();
        assert!(ring.get("shared").is_some());
        // Replayed gossip is aborted (loop-back avoidance).
        assert!(!mw2.on_gossip(&msgs[0]).unwrap());
    }

    #[test]
    fn gossip_merges_divergent_views_both_ways() {
        let (cluster, mw1, keys) = setup(MaintenanceMode::Deferred);
        let mw2 = H2Middleware::new(NodeId(2), cluster, MaintenanceMode::Deferred);
        let mut ctx = OpCtx::for_test();
        // Both nodes patch the same ring, unaware of each other.
        let mut p1 = NameRing::new();
        p1.apply("from-1", Tuple::file(mw1.tick(), 1));
        mw1.submit_patch(&mut ctx, &keys, ns(1), p1).unwrap();
        let mut p2 = NameRing::new();
        p2.apply("from-2", Tuple::file(mw2.tick(), 2));
        mw2.submit_patch(&mut ctx, &keys, ns(1), p2).unwrap();
        // Node 1 merges first; node 2 merges after — the global object now
        // has both (step_merges folds local knowledge in).
        mw1.step_merges().unwrap();
        mw2.step_merges().unwrap();
        let g = mw1.fetch_global_ring(&mut ctx, &keys, ns(1)).unwrap();
        assert_eq!(g.live_len(), 2, "second merge lost first node's update");
        // Gossip completes the exchange: node 1 hears node 2's update.
        for msg in mw2.take_outbox() {
            mw1.on_gossip(&msg).unwrap();
        }
        let r1 = mw1.read_ring(&mut ctx, &keys, ns(1)).unwrap();
        assert_eq!(r1.live_len(), 2);
    }

    #[test]
    fn descriptor_roundtrip_through_cloud() {
        let (_c, mw, keys) = setup(MaintenanceMode::Eager);
        let mut ctx = OpCtx::for_test();
        let desc = DirDescriptor {
            ns: ns(5),
            name: "docs".into(),
            created: mw.tick(),
        };
        mw.put_descriptor(&mut ctx, &keys, NamespaceId::ROOT, "docs", &desc)
            .unwrap();
        let got = mw
            .get_descriptor(&mut ctx, &keys, NamespaceId::ROOT, "docs")
            .unwrap();
        assert_eq!(got, desc);
    }

    #[test]
    fn merge_failure_restores_the_patch_chain_for_retry() {
        // Submit patches in Deferred mode, kill the whole cluster, watch
        // the merge fail — then recover and verify nothing was lost.
        let (cluster, mw, keys) = setup(MaintenanceMode::Deferred);
        let mut ctx = OpCtx::for_test();
        for i in 0..3u64 {
            let mut p = NameRing::new();
            p.apply(&format!("f{i}"), Tuple::file(mw.tick(), i));
            mw.submit_patch(&mut ctx, &keys, ns(1), p).unwrap();
        }
        for i in 0..4 {
            cluster.set_node_down(h2ring::DeviceId(i), true);
        }
        assert!(
            mw.step_merges().is_err(),
            "merge should fail with cluster down"
        );
        // The chain survived the failure.
        assert_eq!(mw.pending_descriptors(), 1);
        for i in 0..4 {
            cluster.set_node_down(h2ring::DeviceId(i), false);
        }
        assert_eq!(mw.step_merges().unwrap(), 1);
        let g = mw.fetch_global_ring(&mut ctx, &keys, ns(1)).unwrap();
        assert_eq!(g.live_len(), 3, "updates lost across merge crash/retry");
        // Patch objects were cleaned up after the successful merge.
        for no in 0..3 {
            assert!(mw
                .store()
                .get(&mut ctx, &keys.patch(ns(1), NodeId(1), no))
                .is_err());
        }
    }

    #[test]
    fn namespaces_allocated_are_unique_per_middleware() {
        let (_c, mw, _keys) = setup(MaintenanceMode::Eager);
        let a = mw.allocate_namespace();
        let b = mw.allocate_namespace();
        assert_ne!(a, b);
        assert_eq!(a.node, NodeId(1));
    }
}
