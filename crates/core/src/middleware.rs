//! The H2Middleware (§4.2): H2 Lookup, NameRing Maintenance, Gossip.
//!
//! Each middleware wraps the object cloud the way a Swift proxy server is
//! wrapped in the paper's deployment. It holds:
//!
//! * the **File Descriptor Cache** — one descriptor per NameRing this node
//!   has touched, tracking the node's local (possibly not yet globally
//!   merged) version of the ring and the chain of submitted-but-unmerged
//!   patches (§3.3.2 phase 2, step 1);
//! * the **Background Merger** — merges a node's patch chain into one "big"
//!   patch and folds it into the NameRing object in the cloud;
//! * the **Gossip Arrangement** — emits `(N_i, H_j, t_k)` update
//!   notifications to peer middlewares and applies incoming ones, aborting
//!   forwarding when the local version is already at least as new
//!   (§3.3.2's loop-back avoidance).
//!
//! Maintenance runs in one of two modes:
//!
//! * [`MaintenanceMode::Eager`] — patches merge synchronously inside the
//!   submitting operation (deterministic; what the figure harness uses; the
//!   merge cost is visible in the operation time, which is why H2Cloud's
//!   MKDIR is slower than Swift's in Figure 12);
//! * [`MaintenanceMode::Deferred`] — patches accumulate per descriptor and
//!   merge when [`H2Middleware::step_merges`] (or the layer's pump/threads)
//!   runs, the paper's actual asynchronous protocol.

use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;

use h2util::chunker::{self, ChunkParams};
use h2util::hash::{hash128, Digest128};
use h2util::hash64;
use h2util::id::NamespaceAllocator;
use h2util::metrics::{Counter, MetricsRegistry};
use h2util::trace::{TraceCollector, STAGE_GOSSIP, STAGE_MERGE, STAGE_MW, STAGE_RESOLVE};
use h2util::{
    H2Error, HybridClock, LruCache, NamespaceId, NodeId, OpCtx, Result, RetryPolicy, Timestamp,
};
use swiftsim::{Cluster, Meta, Object, ObjectKey, ObjectStore, Payload};

use crate::formatter;
use crate::keys::{DirDescriptor, H2Keys};
use crate::namering::{NameRing, RingView};

/// Counter name for merge cycles that failed and were left for retry
/// (chain restored). Incremented by [`H2Middleware::step_merges`].
pub const MERGE_FAILURES: &str = "merge_failures";

/// Counter name for global-ring GETs actually issued against the cloud
/// (cache hits and group-commit coalescing both avoid these).
pub const RING_FETCHES: &str = "ring_fetches";

/// Counter name for name-ring cache hits (ring served from memory).
pub const RING_CACHE_HITS: &str = "ring_cache_hits";

/// Counter name for name-ring cache misses (ring fetched or rebuilt).
pub const RING_CACHE_MISSES: &str = "ring_cache_misses";

/// Counter name for cloud GETs avoided by the ring cache.
pub const GETS_SAVED: &str = "gets_saved";

/// Counter name for full-path resolve cache hits.
pub const PATH_CACHE_HITS: &str = "path_cache_hits";

/// Counter name for full-path resolve cache misses.
pub const PATH_CACHE_MISSES: &str = "path_cache_misses";

/// Counter name for negative-entry cache hits (known-absent paths).
pub const NEG_CACHE_HITS: &str = "neg_cache_hits";

/// Files larger than this are striped into fixed-size part objects moved
/// with bounded parallel fan-out ([`OpCtx::parallel`]) — the way real
/// object stores move big blobs (S3 multipart upload, Azure block blobs).
/// 4 MiB keeps per-part request overhead under ~2% of the part's transfer.
pub const PART_BYTES: u64 = 4 * 1024 * 1024;

/// `content-type` meta of a plain single-object file.
pub const CONTENT_TYPE_FILE: &str = "h2/file";

/// `content-type` meta of a multipart manifest stored at a file's content
/// key (the parts live under the reserved `::/Part/` namespace).
pub const CONTENT_TYPE_MULTIPART: &str = "h2/multipart";

/// `content-type` meta of a CAS manifest stored at a file's content key
/// (the blocks live under the cluster's reserved `::cas/blk` namespace).
pub const CONTENT_TYPE_CAS: &str = "h2/cas";

/// Fan-out of the CAS block tree: a manifest or branch block points at up
/// to this many children before another branch level is introduced.
/// Venti-style: 128 pointers ≈ 6 KiB of ASCII per branch, and two levels
/// already cover 128² × 1 MiB ≈ 16 TiB files.
pub const CAS_FANOUT: usize = 128;

/// Meta key on a manifest carrying the file's logical byte size, so one
/// HEAD answers STAT for multipart files without fetching the manifest.
pub const META_LOGICAL_BYTES: &str = "h2-logical-bytes";

/// When patches are merged into their NameRings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintenanceMode {
    /// Merge at submission time, inside the client operation.
    Eager,
    /// Merge when the background merger runs (`step_merges` / layer pump).
    Deferred,
}

/// A `(N_i, H_j, t_k)` gossip tuple: "the local version of NameRing `ns` in
/// node `from` has been updated at `version`".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GossipMsg {
    pub account: String,
    pub ns: NamespaceId,
    pub from: NodeId,
    pub version: Timestamp,
}

/// The patch chain: patch numbers submitted but not yet merged, with an
/// O(1) membership index.
///
/// Acking a patch used to run `pending.retain(|&no| no != patch_no)` — a
/// linear scan under the descriptor lock, O(chain) per acked patch and
/// O(chain²) across a deep chain. The index makes removal a swap-remove
/// plus one index fix-up. Physical order in `order` is *not* submission
/// order after a removal; [`PatchChain::take`] sorts on drain, and patch
/// numbers are allocated monotonically, so merge cycles still walk the
/// chain in submission order — order is preserved everywhere it is
/// observable (the merge itself is a commutative CRDT join regardless).
#[derive(Debug, Default)]
struct PatchChain {
    order: Vec<u32>,
    pos: HashMap<u32, usize>,
}

impl PatchChain {
    fn push(&mut self, no: u32) {
        if self.pos.contains_key(&no) {
            return;
        }
        self.pos.insert(no, self.order.len());
        self.order.push(no);
    }

    /// O(1) removal: swap-remove and re-point the moved element's index.
    fn remove(&mut self, no: u32) {
        if let Some(idx) = self.pos.remove(&no) {
            self.order.swap_remove(idx);
            if let Some(&moved) = self.order.get(idx) {
                self.pos.insert(moved, idx);
            }
        }
    }

    fn contains(&self, no: u32) -> bool {
        self.pos.contains_key(&no)
    }

    fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.order.len()
    }

    /// Drain the chain in submission order (patch numbers are monotone).
    fn take(&mut self) -> Vec<u32> {
        self.pos.clear();
        let mut chain = std::mem::take(&mut self.order);
        chain.sort_unstable();
        chain
    }

    /// Re-chain numbers after a failed merge cycle (order is restored by
    /// the sort in `take`, so a plain re-insert suffices).
    fn restore(&mut self, chain: &[u32]) {
        for &no in chain {
            self.push(no);
        }
    }
}

/// What one Background Merger sweep accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeOutcome {
    /// Rings whose chains merged into the cloud this sweep.
    pub applied: usize,
    /// Rings whose merge cycle failed (chain restored for retry; also
    /// counted in the [`MERGE_FAILURES`] metric).
    pub failed: usize,
}

impl MergeOutcome {
    /// Total rings attempted this sweep.
    pub fn attempted(&self) -> usize {
        self.applied + self.failed
    }
}

/// Per-NameRing state in the File Descriptor Cache.
#[derive(Debug, Default)]
struct FileDescriptor {
    /// This node's local version of the ring (its own submitted patches are
    /// always folded in, giving read-your-writes on this middleware).
    /// `Arc`-backed so the resolve path can snapshot it without cloning the
    /// tuple map; writers go through `Arc::make_mut`.
    local: Arc<NameRing>,
    /// Patch numbers submitted but not yet merged (the patch chain,
    /// starting at 0 like the paper's "patch No. 0").
    pending: PatchChain,
    /// Next patch number to hand out.
    next_patch: u32,
}

/// Key of a per-(account, namespace) entry.
type FdKey = (String, NamespaceId);

/// A parsed global ring held by the NameRing cache, stamped with the
/// version (max tuple timestamp) it carried when it entered the cache.
/// The ring is shared: a cache hit hands out a refcount bump, not a clone
/// of the tuple map.
struct CachedRing {
    version: Timestamp,
    ring: Arc<NameRing>,
}

/// Lock stripes for the NameRing cache. The cache sits on every resolve
/// level of every operation; one mutex over the whole LRU serialised all
/// of them. Striping by ring key keeps resolves of unrelated directories
/// off each other's lock (total capacity is split evenly across stripes,
/// so eviction becomes per-stripe LRU — same budget, slightly coarser
/// recency).
const RING_SHARDS: usize = 8;

/// Lock stripes for the full-path resolve cache (entries are tiny and
/// probed once per operation, so contention is the only sizing concern).
const PATH_SHARDS: usize = 16;

/// The path cache holds `PATH_CACHE_FACTOR ×` the ring-cache capacity:
/// one entry is a couple of strings plus a tuple, versus a whole parsed
/// ring per ring-cache entry, and a working set of files is a multiple of
/// its directory count.
const PATH_CACHE_FACTOR: usize = 8;

/// A full-path resolve-cache answer (tentpole of the read-path overhaul):
/// what one O(1) probe replaces the O(d) NameRing walk with.
#[derive(Debug, Clone)]
pub enum PathAnswer {
    /// The path's final component is this live tuple in `parent_ns`'s ring.
    Hit {
        parent_ns: NamespaceId,
        tuple: crate::namering::Tuple,
    },
    /// The path was NotFound when the entry was stored (negative entry).
    Missing,
}

/// One full-path cache entry: the answer plus the epoch fingerprint of
/// every ring consulted to produce it. The entry is valid exactly while
/// every `(namespace, epoch)` pair still matches [`H2Middleware::ns_epoch`]
/// — any ring write, gossip application, patch fold or GC notification on
/// an ancestor bumps that ancestor's epoch and thereby invalidates exactly
/// the affected subtree's entries (checked lazily at probe time).
struct PathEntry {
    fp: Vec<(NamespaceId, u64)>,
    answer: PathAnswer,
}

/// Hit/miss accounting for the full-path cache.
struct PathCounters {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    neg_hits: Arc<Counter>,
}

/// The outcome one group-commit waiter receives: the shared batch result
/// plus the virtual time the leader spent on the batch (charged to each
/// waiter's context — every submitter waited out the same PUT).
#[derive(Debug, Clone)]
struct CommitResult {
    outcome: Result<()>,
    cost: std::time::Duration,
}

/// Per-ring group-commit coordination point. Arrivals enqueue their patch;
/// whoever finds the queue idle becomes the commit leader, drains the
/// batch, performs one combined submission, posts per-ticket results and
/// wakes the waiters parked on `cv`.
#[derive(Default)]
struct CommitQueue {
    state: Mutex<CommitState>,
    cv: Condvar,
}

#[derive(Default)]
struct CommitState {
    /// True while a leader is processing; arrivals during that window park.
    busy: bool,
    /// Waiting patches, tagged with their wake-up tickets.
    batch: Vec<(u64, NameRing)>,
    /// Finished results, keyed by ticket, awaiting pickup.
    results: HashMap<u64, CommitResult>,
    next_ticket: u64,
}

/// Hit/miss accounting for the NameRing cache, shared with the owning
/// registry so `op=metrics` and the benches can read it.
struct CacheCounters {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    /// NameRing GETs that the cache absorbed (one per hit — kept as its own
    /// counter so dashboards don't have to know that equivalence).
    gets_saved: Arc<Counter>,
}

/// One H2Middleware instance.
pub struct H2Middleware {
    node: NodeId,
    store: Arc<Cluster>,
    mode: MaintenanceMode,
    clock: HybridClock,
    ns_alloc: NamespaceAllocator,
    metrics: Arc<MetricsRegistry>,
    /// Version-stamped cache of parsed *global* rings (no local overlay),
    /// consulted by [`read_ring`](Self::read_ring) — the O(d) resolve hot
    /// path. Kept fresh by write-through in `put_global_ring` and refresh
    /// on gossip; never consulted by `fetch_global_ring`, which must see
    /// the cloud's current object (merge cycles and gossip handling depend
    /// on that). Capacity 0 disables it. Striped by ring key
    /// ([`RING_SHARDS`]); each stripe is an independent LRU over an even
    /// share of the capacity.
    ring_cache: Vec<Mutex<LruCache<FdKey, CachedRing>>>,
    /// `Some` iff the cache is enabled (counters are only registered then,
    /// so disabled instances keep their metrics output clean).
    cache_counters: Option<CacheCounters>,
    /// Full-path resolve cache: decorated path → [`PathEntry`], striped by
    /// path hash. Empty (no stripes) when disabled — positive entries need
    /// `path_cache_on`, negative entries `neg_cache_on`, and both require
    /// the ring cache to be enabled (the epoch fingerprints assume ring
    /// freshness is driven by write-through and gossip, exactly the ring
    /// cache's contract).
    path_cache: Vec<Mutex<LruCache<(String, String), PathEntry>>>,
    path_counters: Option<PathCounters>,
    path_cache_on: bool,
    neg_cache_on: bool,
    /// Per-namespace mutation epochs backing the path-cache fingerprints.
    /// Bumped after *every* mutation of this middleware's joined view of a
    /// ring — global-cache store (fetched or written), local-overlay patch
    /// fold, gossip application, GC floor/forget/invalidate. Keyed by
    /// namespace alone: non-root namespaces are globally unique UUIDs, and
    /// the shared `ROOT` id merely makes a bump in one account invalidate
    /// other accounts' root-anchored entries too — over-invalidation,
    /// never staleness. Entries are never evicted (one u64 per touched
    /// namespace), so a fingerprint can always be checked in O(1).
    ns_epochs: RwLock<HashMap<NamespaceId, u64>>,
    /// `modified_ms` of this middleware's last ring PUT per key — the
    /// freshness floor handed to [`Cluster::get_expecting`] on the read
    /// path, proving a handoff scan redundant when the best assigned
    /// replica already carries at least this node's own last write.
    ring_put_ms: Mutex<HashMap<FdKey, u64>>,
    fds: Mutex<HashMap<FdKey, FileDescriptor>>,
    /// Per-ring merge serialisation: a merge cycle is a read-modify-write
    /// of the ring object, so two concurrent cycles for the same ring on
    /// this node could overwrite each other. (Cycles on *different* nodes
    /// are reconciled by gossip, by design.)
    merge_locks: Mutex<HashMap<FdKey, Arc<Mutex<()>>>>,
    /// When true, concurrent `submit_patch` calls against the same ring
    /// coalesce behind a per-ring commit leader (one combined patch PUT per
    /// batch) instead of each issuing their own PUT.
    group_commit: bool,
    /// Per-ring group-commit queues (populated lazily, like `merge_locks`).
    commit_queues: Mutex<HashMap<FdKey, Arc<CommitQueue>>>,
    /// Upload-generation counter for multipart part keys and CAS manifest
    /// stamps; combined with the node id so generations are unique across
    /// middlewares.
    part_stamp: std::sync::atomic::AtomicU64,
    /// When true, file content is stored through the content-addressed
    /// block plane (chunk → dedup'd leaf blocks → branch tree → manifest)
    /// instead of whole objects / multipart stripes.
    cas: bool,
    /// Global-ring GETs actually issued (see [`RING_FETCHES`]).
    ring_fetches: Arc<Counter>,
    /// Merge cycles that failed and were restored for retry.
    merge_failures: Arc<Counter>,
    /// Backoff schedule for transient cloud failures (`Unavailable` /
    /// `Conflict`) on the middleware's own cloud ops — ring reads/writes,
    /// patch submission, descriptor I/O. Seeded per node so independent
    /// middlewares draw decorrelated jitter, yet replays are identical.
    retry: RetryPolicy,
    /// Bounded ring buffer of sampled operation traces served by `op=trace`;
    /// a disabled collector (the default) keeps the span machinery inert.
    tracer: Arc<TraceCollector>,
    outbox: Mutex<Vec<GossipMsg>>,
    /// Virtual time + op counts spent on background maintenance (merges and
    /// gossip handling in Deferred mode) — the ablation benches report it.
    background: Mutex<(std::time::Duration, h2util::BackendCounts)>,
}

impl H2Middleware {
    /// Plain middleware: private metrics registry, NameRing cache disabled.
    pub fn new(node: NodeId, store: Arc<Cluster>, mode: MaintenanceMode) -> Arc<Self> {
        Self::with_cache(node, store, mode, Arc::new(MetricsRegistry::new()), 0)
    }

    /// Middleware reporting into a shared `metrics` registry, with a
    /// NameRing cache of `cache_capacity` parsed rings (0 disables it).
    pub fn with_cache(
        node: NodeId,
        store: Arc<Cluster>,
        mode: MaintenanceMode,
        metrics: Arc<MetricsRegistry>,
        cache_capacity: usize,
    ) -> Arc<Self> {
        Self::with_observability(
            node,
            store,
            mode,
            metrics,
            cache_capacity,
            Arc::new(TraceCollector::disabled()),
            false,
            false,
            false,
            false,
        )
    }

    /// Full constructor: like [`with_cache`](Self::with_cache), plus a span
    /// collector for sampled operation traces, the group-commit switch,
    /// the read-path switches (full-path resolve cache / negative-entry
    /// cache — both also require `cache_capacity > 0`), and the CAS
    /// content-plane switch.
    #[allow(clippy::too_many_arguments)]
    pub fn with_observability(
        node: NodeId,
        store: Arc<Cluster>,
        mode: MaintenanceMode,
        metrics: Arc<MetricsRegistry>,
        cache_capacity: usize,
        tracer: Arc<TraceCollector>,
        group_commit: bool,
        path_cache: bool,
        neg_cache: bool,
        cas: bool,
    ) -> Arc<Self> {
        assert!(
            node.0 > 0,
            "middleware node ids are 1-based (0 is reserved)"
        );
        let cache_counters = (cache_capacity > 0).then(|| CacheCounters {
            hits: metrics.counter(RING_CACHE_HITS),
            misses: metrics.counter(RING_CACHE_MISSES),
            gets_saved: metrics.counter(GETS_SAVED),
        });
        let path_cache_on = path_cache && cache_capacity > 0;
        let neg_cache_on = neg_cache && cache_capacity > 0;
        let path_counters = (path_cache_on || neg_cache_on).then(|| PathCounters {
            hits: metrics.counter(PATH_CACHE_HITS),
            misses: metrics.counter(PATH_CACHE_MISSES),
            neg_hits: metrics.counter(NEG_CACHE_HITS),
        });
        let path_stripes = if path_counters.is_some() {
            let per_stripe = (cache_capacity * PATH_CACHE_FACTOR).div_ceil(PATH_SHARDS);
            (0..PATH_SHARDS)
                .map(|_| Mutex::new(LruCache::new(per_stripe)))
                .collect()
        } else {
            Vec::new()
        };
        let ring_fetches = metrics.counter(RING_FETCHES);
        let merge_failures = metrics.counter(MERGE_FAILURES);
        Arc::new(H2Middleware {
            node,
            clock: HybridClock::new(node, 1_600_000_000_000),
            ns_alloc: NamespaceAllocator::new(node),
            store,
            mode,
            metrics,
            ring_cache: (0..RING_SHARDS)
                .map(|_| Mutex::new(LruCache::new(cache_capacity.div_ceil(RING_SHARDS))))
                .collect(),
            cache_counters,
            path_cache: path_stripes,
            path_counters,
            path_cache_on,
            neg_cache_on,
            ns_epochs: RwLock::new(HashMap::new()),
            ring_put_ms: Mutex::new(HashMap::new()),
            fds: Mutex::new(HashMap::new()),
            merge_locks: Mutex::new(HashMap::new()),
            group_commit,
            commit_queues: Mutex::new(HashMap::new()),
            part_stamp: std::sync::atomic::AtomicU64::new(0),
            cas,
            ring_fetches,
            merge_failures,
            retry: RetryPolicy::new(0x4852_5452 ^ node.0 as u64),
            tracer,
            outbox: Mutex::new(Vec::new()),
            background: Mutex::new(Default::default()),
        })
    }

    /// The metrics registry this middleware reports into.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    pub fn node(&self) -> NodeId {
        self.node
    }

    pub fn mode(&self) -> MaintenanceMode {
        self.mode
    }

    pub fn store(&self) -> &Arc<Cluster> {
        &self.store
    }

    /// Next hybrid timestamp from this middleware's clock.
    pub fn tick(&self) -> Timestamp {
        self.clock.tick()
    }

    /// Allocate a fresh namespace UUID (`seq.node.millis`).
    pub fn allocate_namespace(&self) -> NamespaceId {
        self.ns_alloc.allocate(self.clock.peek().millis)
    }

    /// Total background maintenance spend so far.
    pub fn background_spend(&self) -> (std::time::Duration, h2util::BackendCounts) {
        *self.background.lock()
    }

    /// The retry policy this middleware applies to its own cloud ops.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    /// The span collector holding this middleware's sampled traces.
    pub fn tracer(&self) -> &Arc<TraceCollector> {
        &self.tracer
    }

    /// Run a cloud operation under this middleware's retry policy, charging
    /// backoff as virtual latency and recording `op_retries` / `op_gave_up`
    /// in the middleware's registry. The fs layer routes content-object I/O
    /// through here so file data gets the same availability treatment as
    /// metadata.
    pub fn with_retry<T, F>(&self, ctx: &mut OpCtx, op: &str, f: F) -> Result<T>
    where
        F: FnMut(&mut OpCtx) -> Result<T>,
    {
        ctx.span(STAGE_MW, op, |ctx| {
            self.retry.run_virtual(ctx, Some(&self.metrics), op, f)
        })
    }

    fn absorb_background(&self, ctx: &OpCtx) {
        let mut bg = self.background.lock();
        bg.0 += ctx.elapsed();
        bg.1.add(&ctx.counts());
    }

    // ----- content I/O (multipart striping) ---------------------------------
    //
    // Content at or below [`PART_BYTES`] is one object at the child key —
    // exactly the pre-striping layout and request counts. Bigger content is
    // split into `PART_BYTES` slices under `{ns}::/Part/{stamp}/{name}.{i}`
    // keys and committed by a small manifest written *last* at the child
    // key: the manifest is the commit point, so a failure mid-upload leaves
    // unreachable orphan parts, never a readable file with holes. Overwrites
    // use a fresh stamp, then best-effort delete the old generation.

    fn next_part_stamp(&self) -> u64 {
        let n = self
            .part_stamp
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        (n << 8) | (self.node.0 as u64 & 0xff)
    }

    fn file_meta() -> Meta {
        let mut meta = Meta::new();
        meta.insert("content-type".into(), CONTENT_TYPE_FILE.into());
        meta
    }

    fn manifest_meta(total: u64) -> Meta {
        let mut meta = Meta::new();
        meta.insert("content-type".into(), CONTENT_TYPE_MULTIPART.into());
        meta.insert(META_LOGICAL_BYTES.into(), total.to_string());
        meta
    }

    /// The manifest at a file's content key, or `None` when the key holds
    /// plain content. `NotFound` propagates.
    fn fetch_manifest(
        &self,
        ctx: &mut OpCtx,
        keys: &H2Keys,
        ns: NamespaceId,
        name: &str,
    ) -> Result<Option<formatter::PartManifest>> {
        let key = keys.child(ns, name);
        let obj = self.with_retry(ctx, "get_manifest", |ctx| self.store.get(ctx, &key))?;
        if obj.meta.get("content-type").map(String::as_str) != Some(CONTENT_TYPE_MULTIPART) {
            return Ok(None);
        }
        let s = obj
            .payload
            .as_str()
            .ok_or_else(|| H2Error::Corrupt(format!("manifest {key} is not a string object")))?;
        formatter::manifest_from_str(s).map(Some)
    }

    /// Store a file's content. `prev_size` is the size of the content this
    /// write replaces (from the parent's live tuple), if any — needed to
    /// reclaim a replaced multipart generation, whose manifest is about to
    /// be overwritten.
    pub fn put_content(
        &self,
        ctx: &mut OpCtx,
        keys: &H2Keys,
        ns: NamespaceId,
        name: &str,
        payload: Payload,
        prev_size: Option<u64>,
    ) -> Result<()> {
        if self.cas {
            return self.cas_put(ctx, keys, ns, name, payload);
        }
        // Learn the old generation's stamp *before* the content key is
        // overwritten; afterwards its parts are unreachable. Best-effort: a
        // racing delete just means there is nothing left to clean.
        let old = if prev_size.is_some_and(|s| s > PART_BYTES) {
            self.fetch_manifest(ctx, keys, ns, name).ok().flatten()
        } else {
            None
        };
        let total = payload.len();
        if total <= PART_BYTES {
            let key = keys.child(ns, name);
            self.with_retry(ctx, "put_content", |ctx| {
                self.store
                    .put(ctx, &key, payload.clone(), Self::file_meta())
            })?;
        } else {
            self.put_multipart(ctx, keys, ns, name, &payload, total)?;
        }
        if let Some(m) = old {
            self.delete_parts(ctx, keys, ns, name, &m);
        }
        Ok(())
    }

    fn put_multipart(
        &self,
        ctx: &mut OpCtx,
        keys: &H2Keys,
        ns: NamespaceId,
        name: &str,
        payload: &Payload,
        total: u64,
    ) -> Result<()> {
        let m = formatter::PartManifest {
            stamp: self.next_part_stamp(),
            part_bytes: PART_BYTES,
            total,
            inline: matches!(payload, Payload::Inline(_)),
            digest: payload.digest(),
        };
        ctx.parallel(m.part_count() as usize, |ctx, i| {
            let i = i as u32;
            let pkey = keys.part(ns, name, m.stamp, i);
            let part = match payload {
                // Zero-copy: each part is a view over the caller's buffer.
                Payload::Inline(b) => {
                    let start = (i as u64 * m.part_bytes) as usize;
                    Payload::Inline(b.slice(start..start + m.part_size(i) as usize))
                }
                Payload::Simulated { .. } => Payload::simulated(m.part_size(i), &pkey.ring_key()),
            };
            self.with_retry(ctx, "put_part", |ctx| {
                self.store.put(ctx, &pkey, part.clone(), Meta::new())
            })
        })?;
        let body = Payload::from_string(formatter::manifest_to_string(&m));
        let key = keys.child(ns, name);
        self.with_retry(ctx, "put_manifest", |ctx| {
            self.store
                .put(ctx, &key, body.clone(), Self::manifest_meta(total))
        })
    }

    /// Fetch a file's logical content. Small files stay exactly one GET;
    /// multipart files read the manifest, then their parts in one bounded
    /// parallel wave.
    pub fn get_content(
        &self,
        ctx: &mut OpCtx,
        keys: &H2Keys,
        ns: NamespaceId,
        name: &str,
    ) -> Result<Payload> {
        let key = keys.child(ns, name);
        let obj = self.with_retry(ctx, "get_content", |ctx| self.store.get(ctx, &key))?;
        match obj.meta.get("content-type").map(String::as_str) {
            Some(CONTENT_TYPE_MULTIPART) => {
                let s = obj.payload.as_str().ok_or_else(|| {
                    H2Error::Corrupt(format!("manifest {key} is not a string object"))
                })?;
                let m = formatter::manifest_from_str(s)?;
                self.get_parts(ctx, keys, ns, name, &m)
            }
            Some(CONTENT_TYPE_CAS) => {
                let s = obj.payload.as_str().ok_or_else(|| {
                    H2Error::Corrupt(format!("cas manifest {key} is not a string object"))
                })?;
                let m = formatter::cas_manifest_from_str(s)?;
                self.cas_get(ctx, &key, &m)
            }
            _ => Ok(obj.payload),
        }
    }

    fn get_parts(
        &self,
        ctx: &mut OpCtx,
        keys: &H2Keys,
        ns: NamespaceId,
        name: &str,
        m: &formatter::PartManifest,
    ) -> Result<Payload> {
        let n = m.part_count() as usize;
        let mut fetched: Vec<Option<Payload>> = vec![None; n];
        {
            let fetched = std::cell::RefCell::new(&mut fetched);
            ctx.parallel(n, |ctx, i| {
                let pkey = keys.part(ns, name, m.stamp, i as u32);
                let obj = self.with_retry(ctx, "get_part", |ctx| self.store.get(ctx, &pkey))?;
                if obj.payload.len() != m.part_size(i as u32) {
                    return Err(H2Error::Corrupt(format!(
                        "part {pkey} holds {} bytes, manifest says {}",
                        obj.payload.len(),
                        m.part_size(i as u32)
                    )));
                }
                fetched.borrow_mut()[i] = Some(obj.payload);
                Ok(())
            })?;
        }
        if !m.inline {
            return Ok(Payload::Simulated {
                size: m.total,
                digest: m.digest,
            });
        }
        let mut out = Vec::with_capacity(m.total as usize);
        for (i, p) in fetched.into_iter().enumerate() {
            match p {
                Some(Payload::Inline(b)) => out.extend_from_slice(&b),
                _ => {
                    return Err(H2Error::Corrupt(format!(
                        "inline manifest part {i} of {} is not inline",
                        keys.child(ns, name)
                    )))
                }
            }
        }
        Ok(Payload::Inline(bytes::Bytes::from(out)))
    }

    /// Delete a file's content. `size` is the logical size from the
    /// parent's tuple, which every caller has at hand — files at or below
    /// [`PART_BYTES`] pay exactly one DELETE, as before striping.
    pub fn delete_content(
        &self,
        ctx: &mut OpCtx,
        keys: &H2Keys,
        ns: NamespaceId,
        name: &str,
        size: u64,
    ) -> Result<()> {
        let key = keys.child(ns, name);
        if self.cas {
            return self.cas_delete(ctx, &key);
        }
        if size <= PART_BYTES {
            return self.with_retry(ctx, "delete_content", |ctx| self.store.delete(ctx, &key));
        }
        let m = self.fetch_manifest(ctx, keys, ns, name)?;
        self.with_retry(ctx, "delete_content", |ctx| self.store.delete(ctx, &key))?;
        if let Some(m) = m {
            self.delete_parts(ctx, keys, ns, name, &m);
        }
        Ok(())
    }

    /// Best-effort reclaim of one multipart generation. Failures leave
    /// unreachable orphans (harmless; a later GC sweep or overwrite cannot
    /// resurrect them) — never an error.
    fn delete_parts(
        &self,
        ctx: &mut OpCtx,
        keys: &H2Keys,
        ns: NamespaceId,
        name: &str,
        m: &formatter::PartManifest,
    ) {
        let _ = ctx.parallel(m.part_count() as usize, |ctx, i| {
            let pkey = keys.part(ns, name, m.stamp, i as u32);
            let _ = self.with_retry(ctx, "delete_part", |ctx| self.store.delete(ctx, &pkey));
            Ok(())
        });
    }

    /// Server-side copy of a file's content. Small files stay one COPY;
    /// multipart files copy their parts in one bounded parallel wave to a
    /// fresh generation under the destination, then write its manifest.
    #[allow(clippy::too_many_arguments)]
    pub fn copy_content(
        &self,
        ctx: &mut OpCtx,
        keys: &H2Keys,
        src_ns: NamespaceId,
        src_name: &str,
        dst_ns: NamespaceId,
        dst_name: &str,
        size: u64,
    ) -> Result<()> {
        if self.cas {
            return self.cas_copy(
                ctx,
                &keys.child(src_ns, src_name),
                &keys.child(dst_ns, dst_name),
            );
        }
        if size <= PART_BYTES {
            return self.store.copy(
                ctx,
                &keys.child(src_ns, src_name),
                &keys.child(dst_ns, dst_name),
            );
        }
        let Some(m) = self.fetch_manifest(ctx, keys, src_ns, src_name)? else {
            // Tuple says big but the object is plain (predates striping):
            // fall back to a whole-object copy.
            return self.store.copy(
                ctx,
                &keys.child(src_ns, src_name),
                &keys.child(dst_ns, dst_name),
            );
        };
        let new = formatter::PartManifest {
            stamp: self.next_part_stamp(),
            ..m
        };
        ctx.parallel(m.part_count() as usize, |ctx, i| {
            let i = i as u32;
            let from = keys.part(src_ns, src_name, m.stamp, i);
            let to = keys.part(dst_ns, dst_name, new.stamp, i);
            self.with_retry(ctx, "copy_part", |ctx| self.store.copy(ctx, &from, &to))
        })?;
        let body = Payload::from_string(formatter::manifest_to_string(&new));
        let key = keys.child(dst_ns, dst_name);
        self.with_retry(ctx, "put_manifest", |ctx| {
            self.store
                .put(ctx, &key, body.clone(), Self::manifest_meta(new.total))
        })
    }

    // ----- content I/O (content-addressed block plane) ---------------------
    //
    // With `cas` on, file content is chunked (FastCDC-style, ~1 MiB target
    // leaves), each chunk stored as an immutable refcounted block under the
    // cluster's reserved `::cas/blk` namespace, children grouped
    // [`CAS_FANOUT`] at a time into branch blocks, and a small manifest
    // written at the file's child key as the commit point (root list +
    // logical length, so STAT stays one HEAD). Identical chunks across
    // files and users collapse to the same block — a share costs one
    // HEAD-shaped refcount bump instead of a replicated write.
    //
    // Failure policy: block references are released only after a manifest
    // that held them was verifiably displaced or deleted. A failed upload
    // releases exactly the references it took; a failed *manifest* PUT
    // releases nothing (the write may have torn — replicas of the new
    // manifest can exist, so its blocks must stay pinned). Leaks are
    // bounded and unreachable; a readable file pointing at missing blocks
    // is impossible.

    /// Whether this middleware stores content through the CAS block plane.
    pub fn cas_active(&self) -> bool {
        self.cas
    }

    fn cas_meta(total: u64) -> Meta {
        let mut meta = Meta::new();
        meta.insert("content-type".into(), CONTENT_TYPE_CAS.into());
        meta.insert(META_LOGICAL_BYTES.into(), total.to_string());
        meta
    }

    /// Leaf chunks of `payload`: content-defined for real bytes, the
    /// digest-seeded schedule for simulated content.
    fn cas_chunks(params: &ChunkParams, payload: &Payload) -> Vec<chunker::Chunk> {
        match payload {
            Payload::Inline(b) => chunker::chunk_bytes(params, b),
            Payload::Simulated { size, digest } => chunker::chunk_simulated(params, *digest, *size),
        }
    }

    /// The block payload for one leaf chunk of `payload`.
    fn cas_leaf(payload: &Payload, c: &chunker::Chunk) -> Payload {
        match payload {
            // Zero-copy: each leaf is a view over the caller's buffer.
            Payload::Inline(b) => {
                Payload::Inline(b.slice(c.offset as usize..(c.offset + c.len) as usize))
            }
            Payload::Simulated { .. } => Payload::Simulated {
                size: c.len,
                digest: c.digest,
            },
        }
    }

    /// Store a file's content through the block plane.
    fn cas_put(
        &self,
        ctx: &mut OpCtx,
        keys: &H2Keys,
        ns: NamespaceId,
        name: &str,
        payload: Payload,
    ) -> Result<()> {
        let params = ChunkParams::default();
        let total = payload.len();
        let chunks = Self::cas_chunks(&params, &payload);
        // 1. Leaves, one bounded parallel wave. Track which landed so a
        //    mid-wave failure releases exactly the references taken.
        let mut landed: Vec<bool> = vec![false; chunks.len()];
        if !chunks.is_empty() {
            let wave = {
                let landed = std::cell::RefCell::new(&mut landed);
                ctx.parallel(chunks.len(), |ctx, i| {
                    let c = &chunks[i];
                    let leaf = Self::cas_leaf(&payload, c);
                    self.with_retry(ctx, "cas_put_block", |ctx| {
                        self.store
                            .cas_put_block(
                                ctx,
                                &c.digest.to_hex(),
                                leaf.clone(),
                                Meta::new(),
                                c.len,
                            )
                            .map(|_| ())
                    })?;
                    landed.borrow_mut()[i] = true;
                    Ok(())
                })
            };
            if let Err(e) = wave {
                let owned = chunks
                    .iter()
                    .zip(&landed)
                    .filter(|(_, ok)| **ok)
                    .map(|(c, _)| c.digest)
                    .collect();
                self.cas_release(ctx, owned);
                return Err(e);
            }
        }
        // 2. Branch levels until the root list fits one manifest.
        let mut level: Vec<(Digest128, u64)> = chunks.iter().map(|c| (c.digest, c.len)).collect();
        let mut depth = 0u32;
        while level.len() > CAS_FANOUT {
            let mut next: Vec<(Digest128, u64)> =
                Vec::with_capacity(level.len().div_ceil(CAS_FANOUT));
            for (g, group) in level.chunks(CAS_FANOUT).enumerate() {
                let body = formatter::cas_branch_to_string(group);
                let digest = hash128(body.as_bytes());
                let span: u64 = group.iter().map(|(_, l)| *l).sum();
                let put = self.with_retry(ctx, "cas_put_branch", |ctx| {
                    self.store.cas_put_block(
                        ctx,
                        &digest.to_hex(),
                        Payload::from_string(body.clone()),
                        Meta::new(),
                        span,
                    )
                });
                match put {
                    // Fresh branch: it takes over the references this
                    // upload held on its children; the upload now owns one
                    // reference to the branch instead.
                    Ok(true) => {}
                    Ok(false) => {
                        // The branch already existed and already owns
                        // references to exactly these children — drop the
                        // duplicates taken while writing them. The live
                        // branch pins every child, so nothing can cascade.
                        for (d, _) in group {
                            let _ = self.store.cas_decref(ctx, &d.to_hex());
                        }
                    }
                    Err(e) => {
                        // Release everything this upload still owns: the
                        // roots built so far plus the unconsumed tail.
                        let mut owned: Vec<Digest128> = next.iter().map(|(d, _)| *d).collect();
                        owned.extend(level[g * CAS_FANOUT..].iter().map(|(d, _)| *d));
                        self.cas_release(ctx, owned);
                        return Err(e);
                    }
                }
                next.push((digest, span));
            }
            level = next;
            depth += 1;
        }
        // 3. The manifest is the commit point.
        let m = formatter::CasManifest {
            stamp: self.next_part_stamp(),
            depth,
            inline: matches!(payload, Payload::Inline(_)),
            total,
            digest: payload.digest(),
            params,
            entries: level,
        };
        let body = formatter::cas_manifest_to_string(&m);
        let key = keys.child(ns, name);
        // On failure the new blocks stay pinned (see the failure policy
        // above): the PUT may have torn, leaving readable replicas of the
        // new manifest.
        let prev = self.with_retry(ctx, "put_manifest", |ctx| {
            self.store.put_returning_prev(
                ctx,
                &key,
                Payload::from_string(body.clone()),
                Self::cas_meta(total),
            )
        })?;
        // Release the generation this write displaced — unless it is this
        // very body: then a retry displaced its own torn earlier attempt
        // (same stamp), whose references this upload owns exactly once.
        if let Some(prev) = prev {
            if prev.payload.as_str() != Some(body.as_str()) {
                self.cas_release_manifest(ctx, &prev);
            }
        }
        Ok(())
    }

    /// Fetch and reassemble a CAS file. Every hop re-checks content
    /// addresses — the read path *is* the integrity check (fsck's file
    /// pass reads through here).
    fn cas_get(
        &self,
        ctx: &mut OpCtx,
        key: &ObjectKey,
        m: &formatter::CasManifest,
    ) -> Result<Payload> {
        // Descend branch levels to the leaf list.
        let mut entries = m.entries.clone();
        for _ in 0..m.depth {
            let n = entries.len();
            let mut fetched: Vec<Option<Vec<(Digest128, u64)>>> = vec![None; n];
            {
                let fetched = std::cell::RefCell::new(&mut fetched);
                ctx.parallel(n, |ctx, i| {
                    let (d, len) = entries[i];
                    let children = self.cas_fetch_branch(ctx, d, len)?;
                    fetched.borrow_mut()[i] = Some(children);
                    Ok(())
                })?;
            }
            entries = fetched
                .into_iter()
                .flat_map(|c| c.expect("every branch fetched"))
                .collect();
        }
        let span: u64 = entries.iter().map(|(_, l)| *l).sum();
        if span != m.total {
            return Err(H2Error::Corrupt(format!(
                "cas file {key}: leaves cover {span} bytes, manifest says {}",
                m.total
            )));
        }
        // Leaves in one bounded parallel wave, each verified against its
        // content address.
        let n = entries.len();
        let mut leaves: Vec<Option<Payload>> = vec![None; n];
        if n > 0 {
            let leaves = std::cell::RefCell::new(&mut leaves);
            ctx.parallel(n, |ctx, i| {
                let (d, len) = entries[i];
                let p = self.cas_fetch_leaf(ctx, d, len, m.inline)?;
                leaves.borrow_mut()[i] = Some(p);
                Ok(())
            })?;
        }
        if !m.inline {
            return Ok(Payload::Simulated {
                size: m.total,
                digest: m.digest,
            });
        }
        let mut out = Vec::with_capacity(m.total as usize);
        for p in leaves {
            match p.expect("every leaf fetched") {
                Payload::Inline(b) => out.extend_from_slice(&b),
                Payload::Simulated { .. } => unreachable!("cas_fetch_leaf verified the leaf kind"),
            }
        }
        if hash128(&out) != m.digest {
            return Err(H2Error::Corrupt(format!(
                "cas file {key}: content digest mismatch"
            )));
        }
        Ok(Payload::Inline(bytes::Bytes::from(out)))
    }

    fn cas_fetch_branch(
        &self,
        ctx: &mut OpCtx,
        d: Digest128,
        len: u64,
    ) -> Result<Vec<(Digest128, u64)>> {
        let bkey = Cluster::cas_block_key(&d.to_hex());
        let obj = self.with_retry(ctx, "get_cas_branch", |ctx| self.store.get(ctx, &bkey))?;
        let s = obj
            .payload
            .as_str()
            .ok_or_else(|| H2Error::Corrupt(format!("cas branch {bkey} is not a string object")))?;
        if hash128(s.as_bytes()) != d {
            return Err(H2Error::Corrupt(format!(
                "cas branch {bkey} fails its content address"
            )));
        }
        let children = formatter::cas_branch_from_str(s)?;
        let span: u64 = children.iter().map(|(_, l)| *l).sum();
        if span != len {
            return Err(H2Error::Corrupt(format!(
                "cas branch {bkey} spans {span} bytes, parent says {len}"
            )));
        }
        Ok(children)
    }

    fn cas_fetch_leaf(
        &self,
        ctx: &mut OpCtx,
        d: Digest128,
        len: u64,
        inline: bool,
    ) -> Result<Payload> {
        let bkey = Cluster::cas_block_key(&d.to_hex());
        let obj = self.with_retry(ctx, "get_cas_block", |ctx| self.store.get(ctx, &bkey))?;
        let ok = match (&obj.payload, inline) {
            (Payload::Inline(b), true) => b.len() as u64 == len && hash128(b) == d,
            (Payload::Simulated { size, digest }, false) => *size == len && *digest == d,
            _ => false,
        };
        if !ok {
            return Err(H2Error::Corrupt(format!(
                "cas leaf {bkey} fails its content address"
            )));
        }
        Ok(obj.payload)
    }

    /// Delete a CAS file: tombstone the manifest, then release the block
    /// references it held. A repeated delete — or one retried past its own
    /// torn tombstone — finds no manifest and releases nothing, so
    /// references drop exactly once per committed generation.
    fn cas_delete(&self, ctx: &mut OpCtx, key: &ObjectKey) -> Result<()> {
        let prev = self.with_retry(ctx, "delete_content", |ctx| {
            self.store.delete_returning_prev(ctx, key)
        })?;
        self.cas_release_manifest(ctx, &prev);
        Ok(())
    }

    /// Server-side copy of a CAS file: no content moves — the destination
    /// manifest reuses the source's block tree after taking one extra
    /// reference per top entry. Losing the race with a delete that
    /// reclaimed a block rolls the references back and reports the miss.
    fn cas_copy(&self, ctx: &mut OpCtx, src: &ObjectKey, dst: &ObjectKey) -> Result<()> {
        let obj = self.with_retry(ctx, "get_manifest", |ctx| self.store.get(ctx, src))?;
        if obj.meta.get("content-type").map(String::as_str) != Some(CONTENT_TYPE_CAS) {
            // Not block-plane content (written before the knob): plain copy.
            return self.store.copy(ctx, src, dst);
        }
        let s = obj.payload.as_str().ok_or_else(|| {
            H2Error::Corrupt(format!("cas manifest {src} is not a string object"))
        })?;
        let m = formatter::cas_manifest_from_str(s)?;
        let mut taken = 0usize;
        for (d, _) in &m.entries {
            match self.store.cas_incref(ctx, &d.to_hex()) {
                Ok(()) => taken += 1,
                Err(e) => {
                    let owned = m.entries[..taken].iter().map(|(d, _)| *d).collect();
                    self.cas_release(ctx, owned);
                    return Err(e);
                }
            }
        }
        let new = formatter::CasManifest {
            stamp: self.next_part_stamp(),
            ..m
        };
        let body = formatter::cas_manifest_to_string(&new);
        let prev = self.with_retry(ctx, "put_manifest", |ctx| {
            self.store.put_returning_prev(
                ctx,
                dst,
                Payload::from_string(body.clone()),
                Self::cas_meta(new.total),
            )
        })?;
        if let Some(prev) = prev {
            if prev.payload.as_str() != Some(body.as_str()) {
                self.cas_release_manifest(ctx, &prev);
            }
        }
        Ok(())
    }

    /// Release one reference to each root, cascading through branch blocks
    /// whose count reaches zero (their children lose their referrer too).
    /// Iterative worklist — never holds two block op stripes at once.
    /// Best-effort: a failure strands unreachable blocks, never an error.
    fn cas_release(&self, ctx: &mut OpCtx, mut work: Vec<Digest128>) {
        while let Some(d) = work.pop() {
            let Ok(Some(obj)) = self.store.cas_decref(ctx, &d.to_hex()) else {
                continue;
            };
            // The block was reclaimed; if it was a branch, cascade.
            if let Some(s) = obj.payload.as_str() {
                if s.starts_with(formatter::CAS_BRANCH_MAGIC) {
                    if let Ok(children) = formatter::cas_branch_from_str(s) {
                        work.extend(children.into_iter().map(|(d, _)| d));
                    }
                }
            }
        }
    }

    /// Release the block tree a displaced or deleted CAS manifest held.
    fn cas_release_manifest(&self, ctx: &mut OpCtx, prev: &Object) {
        if prev.meta.get("content-type").map(String::as_str) != Some(CONTENT_TYPE_CAS) {
            return;
        }
        let Some(s) = prev.payload.as_str() else {
            return;
        };
        let Ok(m) = formatter::cas_manifest_from_str(s) else {
            return;
        };
        self.cas_release(ctx, m.entries.into_iter().map(|(d, _)| d).collect());
    }

    // ----- ring access ----------------------------------------------------

    /// The ring-cache stripe holding `key`.
    fn ring_shard(&self, key: &FdKey) -> &Mutex<LruCache<FdKey, CachedRing>> {
        let h = hash64(key.0.as_bytes())
            ^ key.1.seq.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ ((key.1.node.0 as u64) << 48)
            ^ key.1.millis;
        &self.ring_cache[h as usize % RING_SHARDS]
    }

    /// Cached copy of the global ring for `key`, if the cache is enabled
    /// and holds one. Counts hit/miss. A hit is a refcount bump.
    fn cached_global(&self, key: &FdKey) -> Option<Arc<NameRing>> {
        let counters = self.cache_counters.as_ref()?;
        let mut cache = self.ring_shard(key).lock();
        match cache.get(key) {
            Some(entry) => {
                let ring = Arc::clone(&entry.ring);
                drop(cache);
                counters.hits.incr();
                counters.gets_saved.incr();
                Some(ring)
            }
            None => {
                drop(cache);
                counters.misses.incr();
                None
            }
        }
    }

    /// Store a ring obtained from a cloud *read*. Guarded: a fetch that
    /// raced with a concurrent write-through must not replace the newer
    /// entry, so the ring only enters the cache if its version is at least
    /// the cached one. The epoch bumps only when the entry actually
    /// changed.
    fn cache_store_fetched(&self, key: FdKey, ring: &Arc<NameRing>) {
        if self.cache_counters.is_none() {
            return;
        }
        let version = ring.version();
        let stored = {
            let mut cache = self.ring_shard(&key).lock();
            let store = cache.peek(&key).is_none_or(|e| version >= e.version);
            if store {
                cache.insert(
                    key.clone(),
                    CachedRing {
                        version,
                        ring: Arc::clone(ring),
                    },
                );
            }
            store
        };
        if stored {
            self.bump_ns_epoch(key.1);
        }
    }

    /// Store a ring this middleware just *wrote* to the cloud. Replaces
    /// unconditionally — the cloud object now IS this ring, even if its
    /// version went backwards (GC compaction can drop the newest
    /// tombstone).
    fn cache_store_written(&self, key: FdKey, ring: &Arc<NameRing>) {
        if self.cache_counters.is_none() {
            return;
        }
        let ns = key.1;
        self.ring_shard(&key).lock().insert(
            key,
            CachedRing {
                version: ring.version(),
                ring: Arc::clone(ring),
            },
        );
        self.bump_ns_epoch(ns);
    }

    /// Drop the cached copy of `(account, ns)`, if any. Called by GC after
    /// it deletes a dead ring object out from under the middleware.
    pub fn invalidate_ring(&self, account: &str, ns: NamespaceId) {
        let key = (account.to_string(), ns);
        self.ring_shard(&key).lock().remove(&key);
        self.bump_ns_epoch(ns);
    }

    // ----- namespace epochs + full-path cache (read-path overhaul) ---------

    /// Current mutation epoch of `ns` on this middleware (0 if never
    /// bumped). See the `ns_epochs` field for what counts as a mutation.
    pub fn ns_epoch(&self, ns: NamespaceId) -> u64 {
        if self.path_cache.is_empty() {
            return 0;
        }
        self.ns_epochs.read().get(&ns).copied().unwrap_or(0)
    }

    /// Bump `ns`'s epoch. Called *after* the mutation is visible, so a
    /// fingerprint captured before a concurrent mutation's data is always
    /// invalidated by its bump (the conservative direction — a racing
    /// reader can over-invalidate, never validate stale data).
    fn bump_ns_epoch(&self, ns: NamespaceId) {
        if self.path_cache.is_empty() {
            return;
        }
        *self.ns_epochs.write().entry(ns).or_insert(0) += 1;
    }

    /// Whether this middleware caches positive full-path resolutions.
    pub fn path_cache_active(&self) -> bool {
        self.path_cache_on
    }

    /// Whether this middleware caches negative (NotFound) resolutions.
    pub fn neg_cache_active(&self) -> bool {
        self.neg_cache_on
    }

    /// Full-path cache `(hits, misses, neg_hits)` so far (zeros when
    /// disabled). A negative hit counts in both `hits` and `neg_hits`.
    pub fn path_cache_stats(&self) -> (u64, u64, u64) {
        match &self.path_counters {
            Some(c) => (c.hits.get(), c.misses.get(), c.neg_hits.get()),
            None => (0, 0, 0),
        }
    }

    fn path_shard(
        &self,
        account: &str,
        path: &str,
    ) -> &Mutex<LruCache<(String, String), PathEntry>> {
        let h = hash64(path.as_bytes()) ^ hash64(account.as_bytes());
        &self.path_cache[h as usize % PATH_SHARDS]
    }

    /// Probe the full-path cache for `path` under `account`. The entry's
    /// epoch fingerprint is validated against the current namespace
    /// epochs; a mismatched entry is dropped on the spot (lazy
    /// invalidation) and reported as a miss. A valid hit returns the
    /// answer together with its fingerprint, so a child resolve can extend
    /// it by one level instead of re-walking.
    pub fn path_cache_lookup(
        &self,
        account: &str,
        path: &str,
    ) -> Option<(PathAnswer, Vec<(NamespaceId, u64)>)> {
        let counters = self.path_counters.as_ref()?;
        let key = (account.to_string(), path.to_string());
        let mut cache = self.path_shard(account, path).lock();
        let Some(entry) = cache.get(&key) else {
            drop(cache);
            counters.misses.incr();
            return None;
        };
        // Epoch map is the innermost lock in this crate: it is only ever
        // taken as a leaf, so holding the path stripe across it is safe.
        let valid = {
            let epochs = self.ns_epochs.read();
            entry
                .fp
                .iter()
                .all(|(ns, e)| epochs.get(ns).copied().unwrap_or(0) == *e)
        };
        if !valid {
            cache.remove(&key);
            drop(cache);
            counters.misses.incr();
            return None;
        }
        let hit = (entry.answer.clone(), entry.fp.clone());
        drop(cache);
        counters.hits.incr();
        if matches!(hit.0, PathAnswer::Missing) {
            counters.neg_hits.incr();
        }
        Some(hit)
    }

    /// Store a resolve outcome for `path`. Positive answers are kept only
    /// when the path cache is on, negative ones only when the negative
    /// cache is on — the store is a no-op otherwise, so resolve can call
    /// it unconditionally.
    pub fn path_cache_store(
        &self,
        account: &str,
        path: &str,
        answer: PathAnswer,
        fp: Vec<(NamespaceId, u64)>,
    ) {
        if self.path_counters.is_none() {
            return;
        }
        match answer {
            PathAnswer::Hit { .. } if !self.path_cache_on => return,
            PathAnswer::Missing if !self.neg_cache_on => return,
            _ => {}
        }
        self.path_shard(account, path).lock().insert(
            (account.to_string(), path.to_string()),
            PathEntry { fp, answer },
        );
    }

    /// Charge the cost of one full-path cache probe (hash lookup plus
    /// fingerprint validation).
    pub fn charge_path_probe(&self, ctx: &mut OpCtx) {
        ctx.charge_time(self.store.cost_model().path_cache_cpu);
    }

    /// GC notification: the global ring for `(account, ns)` was compacted
    /// at `horizon`. Floor this middleware's local version to the same
    /// horizon, so a tombstone GC already reclaimed can't re-enter the
    /// global object through a later merge's local-overlay join (tombstone
    /// resurrection). The cached global copy is dropped too — it predates
    /// the compaction.
    pub fn gc_floor(&self, account: &str, ns: NamespaceId, horizon: Timestamp) {
        {
            let mut fds = self.fds.lock();
            if let Some(fd) = fds.get_mut(&(account.to_string(), ns)) {
                Arc::make_mut(&mut fd.local).floor_tombstones(horizon);
            }
        }
        self.invalidate_ring(account, ns);
    }

    /// GC notification: the ring object for `(account, ns)` was deleted
    /// (its directory is unreachable). Drop every bit of local state that
    /// refers to it, so this middleware can't write the dead ring back.
    pub fn forget_ring(&self, account: &str, ns: NamespaceId) {
        self.fds.lock().remove(&(account.to_string(), ns));
        self.invalidate_ring(account, ns);
    }

    /// NameRing-cache `(hits, misses)` so far (zeros when disabled).
    pub fn ring_cache_stats(&self) -> (u64, u64) {
        match &self.cache_counters {
            Some(c) => (c.hits.get(), c.misses.get()),
            None => (0, 0),
        }
    }

    /// Materialised variant of [`read_ring_view`](Self::read_ring_view) for
    /// callers that need an owned ring (fsck, GC, bulk import).
    pub fn read_ring(&self, ctx: &mut OpCtx, keys: &H2Keys, ns: NamespaceId) -> Result<NameRing> {
        Ok(self.read_ring_view(ctx, keys, ns)?.materialize())
    }

    /// Fetch the NameRing object for `ns` — from the cache when it holds a
    /// copy, from the cloud otherwise (empty if the object does not exist
    /// yet) — joined with this node's local version, so the caller sees
    /// both global state and this node's own not-yet-merged updates. The
    /// result is a per-key join *view* over shared ring snapshots: the
    /// resolve hot path allocates nothing proportional to ring size.
    pub fn read_ring_view(
        &self,
        ctx: &mut OpCtx,
        keys: &H2Keys,
        ns: NamespaceId,
    ) -> Result<RingView> {
        self.read_ring_view_stamped(ctx, keys, ns).map(|(v, _)| v)
    }

    /// [`read_ring_view`](Self::read_ring_view) plus the namespace epoch
    /// observed *before* the ring was read. Fingerprinting resolves with
    /// this pre-read epoch is conservative by construction: any mutation
    /// that lands after the epoch read bumps past it, so an entry built
    /// from this view can never validate against data it did not see. (The
    /// cost is one wasted store when the read itself was a cloud fetch —
    /// the fetch's own cache store bumps the epoch — which a subsequent
    /// all-cached walk repairs.)
    pub fn read_ring_view_stamped(
        &self,
        ctx: &mut OpCtx,
        keys: &H2Keys,
        ns: NamespaceId,
    ) -> Result<(RingView, u64)> {
        ctx.span(STAGE_RESOLVE, "read_ring", |ctx| {
            ctx.span_note("ns", || ns.to_string());
            let key = (keys.account().to_string(), ns);
            let epoch = self.ns_epoch(ns);
            let (global, hit) = match self.cached_global(&key) {
                Some(cached) => {
                    ctx.span_note("ring_cache", || "hit".to_string());
                    (cached, true)
                }
                None => {
                    if self.cache_counters.is_some() {
                        ctx.span_note("ring_cache", || "miss".to_string());
                    }
                    let global = Arc::new(self.fetch_global_ring_hinted(ctx, keys, ns)?);
                    self.cache_store_fetched(key.clone(), &global);
                    (global, false)
                }
            };
            let overlay = self.fds.lock().get(&key).map(|fd| Arc::clone(&fd.local));
            let view = RingView::new(global, overlay);
            Ok((if hit { view.mark_cached() } else { view }, epoch))
        })
    }

    /// The ring object exactly as stored (no local overlay). Merge cycles
    /// and gossip use this un-hinted variant: both are read-modify-write
    /// paths whose written result shadows older copies at the object level
    /// (LWW by `modified_ms`), so they must see the freshest copy any
    /// handoff may hold or its updates would be lost for good.
    pub fn fetch_global_ring(
        &self,
        ctx: &mut OpCtx,
        keys: &H2Keys,
        ns: NamespaceId,
    ) -> Result<NameRing> {
        self.fetch_ring_inner(ctx, keys, ns, None)
    }

    /// Read-path variant of [`fetch_global_ring`](Self::fetch_global_ring):
    /// passes this middleware's last ring-PUT stamp as a freshness hint, so
    /// the cluster can skip a handoff scan that provably cannot change the
    /// answer this caller needs (read-your-writes is already satisfied;
    /// anything newer on a handoff still reaches this node through gossip
    /// or repair, which never use the hint). Pure reads only — never a
    /// read-modify-write.
    fn fetch_global_ring_hinted(
        &self,
        ctx: &mut OpCtx,
        keys: &H2Keys,
        ns: NamespaceId,
    ) -> Result<NameRing> {
        let expected = self
            .ring_put_ms
            .lock()
            .get(&(keys.account().to_string(), ns))
            .copied();
        self.fetch_ring_inner(ctx, keys, ns, expected)
    }

    fn fetch_ring_inner(
        &self,
        ctx: &mut OpCtx,
        keys: &H2Keys,
        ns: NamespaceId,
        expected_ms: Option<u64>,
    ) -> Result<NameRing> {
        let key = keys.namering(ns);
        self.ring_fetches.incr();
        match self.with_retry(ctx, "fetch_ring", |ctx| {
            self.store.get_expecting(ctx, &key, expected_ms)
        }) {
            Ok(obj) => {
                let s = obj.payload.as_str().ok_or_else(|| {
                    H2Error::Corrupt(format!("NameRing {ns} is not a string object"))
                })?;
                formatter::namering_from_str(s)
            }
            Err(H2Error::NotFound(_)) => Ok(NameRing::new()),
            Err(e) => Err(e),
        }
    }

    /// Write a ring object back (formatter + PUT), writing through to the
    /// NameRing cache on success. Every ring write on this middleware —
    /// COPY's `write_ring`, merge cycles, gossip write-backs, `create_ring`
    /// — funnels through here, so the cache can never serve a ring older
    /// than what this middleware itself last wrote.
    fn put_global_ring(
        &self,
        ctx: &mut OpCtx,
        keys: &H2Keys,
        ns: NamespaceId,
        ring: &Arc<NameRing>,
    ) -> Result<()> {
        let body = formatter::namering_to_string(ring);
        let key = keys.namering(ns);
        // Build the payload once; retry attempts re-send the same shared
        // bytes instead of re-materialising the serialised ring.
        let payload = Payload::from_string(body);
        let ms = self.with_retry(ctx, "put_ring", |ctx| {
            self.store
                .put_stamped(ctx, &key, payload.clone(), Meta::new())
        })?;
        self.ring_put_ms
            .lock()
            .insert((keys.account().to_string(), ns), ms);
        self.cache_store_written((keys.account().to_string(), ns), ring);
        Ok(())
    }

    /// Create the (empty) NameRing object for a fresh namespace.
    pub fn create_ring(&self, ctx: &mut OpCtx, keys: &H2Keys, ns: NamespaceId) -> Result<()> {
        self.put_global_ring(ctx, keys, ns, &Arc::new(NameRing::new()))
    }

    /// Write a fully materialised ring for a namespace this node just
    /// created (COPY builds destination rings wholesale — no concurrent
    /// writers can exist for a namespace nobody else has seen). Also primes
    /// the local descriptor cache.
    pub fn write_ring(
        &self,
        ctx: &mut OpCtx,
        keys: &H2Keys,
        ns: NamespaceId,
        ring: &NameRing,
    ) -> Result<()> {
        let shared = Arc::new(ring.clone());
        self.put_global_ring(ctx, keys, ns, &shared)?;
        {
            let mut fds = self.fds.lock();
            let fd = fds.entry((keys.account().to_string(), ns)).or_default();
            fd.local = shared;
        }
        self.bump_ns_epoch(ns);
        Ok(())
    }

    // ----- patch submission (§3.3.2 phase 1) -------------------------------

    /// Submit a patch against `ns`'s NameRing: PUT the patch object (keyed
    /// `ns::/NameRing/.Node<this>.Patch<k>`), append it to the node's chain,
    /// and fold it into the local version immediately. In Eager mode the
    /// merge into the global ring happens here too.
    ///
    /// With group commit enabled, concurrent submissions against the same
    /// ring coalesce: one leader joins the waiting patches into a single
    /// combined patch object, allocates the batch a contiguous patch-number
    /// range, and performs one PUT (plus, in Eager mode, one merge) on
    /// behalf of everyone — waiters park on a condvar and wake with the
    /// shared result.
    pub fn submit_patch(
        &self,
        ctx: &mut OpCtx,
        keys: &H2Keys,
        ns: NamespaceId,
        patch: NameRing,
    ) -> Result<()> {
        ctx.charge_time(self.store.cost_model().patch_submit_cpu);
        if self.group_commit {
            self.submit_patch_grouped(ctx, keys, ns, patch)
        } else {
            self.submit_patch_direct(ctx, keys, ns, patch)
        }
    }

    fn submit_patch_direct(
        &self,
        ctx: &mut OpCtx,
        keys: &H2Keys,
        ns: NamespaceId,
        patch: NameRing,
    ) -> Result<()> {
        let key = (keys.account().to_string(), ns);
        // Allocate the patch number AND chain it in one critical section,
        // before the PUT. If it only entered the chain after the PUT (as an
        // earlier revision did), there was a window in which the patch was
        // invisible to `pending_descriptors` — `is_quiescent` could report
        // a quiet layer while a submitted update had reached neither the
        // chain nor the local ring.
        let patch_no = {
            let mut fds = self.fds.lock();
            let fd = fds.entry(key.clone()).or_default();
            let no = fd.next_patch;
            fd.next_patch += 1;
            fd.pending.push(no);
            no
        };
        let put = self.put_patch_object(ctx, keys, ns, patch_no, &patch);
        self.settle_patch(&key, patch_no, &patch, &put);
        put?;
        if self.mode == MaintenanceMode::Eager {
            self.merge_ns(ctx, keys, ns)?;
        }
        Ok(())
    }

    /// Serialise and PUT one patch object (payload built once; retries
    /// re-send the same shared bytes).
    fn put_patch_object(
        &self,
        ctx: &mut OpCtx,
        keys: &H2Keys,
        ns: NamespaceId,
        patch_no: u32,
        patch: &NameRing,
    ) -> Result<()> {
        let payload = Payload::from_string(formatter::patch_to_string(patch));
        let patch_key = keys.patch(ns, self.node, patch_no);
        self.with_retry(ctx, "submit_patch", |ctx| {
            self.store
                .put(ctx, &patch_key, payload.clone(), Meta::new())
        })
    }

    /// Re-validate the descriptor under the lock once a patch PUT settled.
    fn settle_patch(&self, key: &FdKey, patch_no: u32, patch: &NameRing, put: &Result<()>) {
        {
            let mut fds = self.fds.lock();
            let fd = fds.entry(key.clone()).or_default();
            match put {
                Ok(()) => {
                    Arc::make_mut(&mut fd.local).merge_from(patch);
                    if !fd.pending.contains(patch_no) {
                        // A concurrent merge cycle consumed the chain entry
                        // while the PUT was in flight; it saw NotFound for
                        // this patch object and skipped it, so the object
                        // we just wrote is referenced by nothing. Re-chain
                        // it: the next cycle merges and deletes it. (The
                        // content is also safe in `fd.local`, which every
                        // cycle folds in.)
                        fd.pending.push(patch_no);
                    }
                }
                Err(_) => {
                    // The patch object never made it to the cloud: drop the
                    // chain entry so the merger does not chase a ghost, and
                    // skip the local fold so the failed write stays
                    // invisible, like any other failed operation.
                    fd.pending.remove(patch_no);
                }
            }
        }
        if put.is_ok() {
            // The local overlay gained the patch: write-through
            // invalidation for any path/negative entry under this ring.
            self.bump_ns_epoch(key.1);
        }
    }

    /// Group-commit submission: enqueue the patch; lead or wait.
    fn submit_patch_grouped(
        &self,
        ctx: &mut OpCtx,
        keys: &H2Keys,
        ns: NamespaceId,
        patch: NameRing,
    ) -> Result<()> {
        let key = (keys.account().to_string(), ns);
        let queue = self.commit_queues.lock().entry(key).or_default().clone();
        let mut st = queue.state.lock();
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.batch.push((ticket, patch));
        if st.busy {
            // Follower: park until the leader posts this ticket's result,
            // then charge the batch's virtual cost — every waiter sat out
            // the same combined PUT.
            loop {
                if let Some(res) = st.results.remove(&ticket) {
                    drop(st);
                    ctx.charge_time(res.cost);
                    return res.outcome;
                }
                st = queue.cv.wait(st);
            }
        }
        // Leader: drain and commit batches until no new arrivals remain.
        st.busy = true;
        loop {
            let batch = std::mem::take(&mut st.batch);
            drop(st);
            let results = self.commit_batch(ctx, keys, ns, batch);
            st = queue.state.lock();
            st.results.extend(results);
            queue.cv.notify_all();
            if st.batch.is_empty() {
                st.busy = false;
                break;
            }
        }
        let own = st
            .results
            .remove(&ticket)
            .expect("leader's own commit result");
        drop(st);
        // The leader's context already carried the batch's charges.
        own.outcome
    }

    /// Commit one batch on the leader's context: join the patches into one
    /// combined patch, allocate the batch a contiguous patch-number range
    /// (only the base number carries an object — the combined PUT), chain
    /// the base pre-PUT, perform the PUT, re-validate, and (Eager) merge.
    /// Failure unwinding matches the single-patch path exactly: a failed
    /// PUT unchains the base and skips the local fold, so the whole batch
    /// stays invisible.
    fn commit_batch(
        &self,
        ctx: &mut OpCtx,
        keys: &H2Keys,
        ns: NamespaceId,
        batch: Vec<(u64, NameRing)>,
    ) -> Vec<(u64, CommitResult)> {
        let start = ctx.elapsed();
        let mut combined = NameRing::new();
        for (_, patch) in &batch {
            combined.merge_from(patch);
        }
        let key = (keys.account().to_string(), ns);
        let base = {
            let mut fds = self.fds.lock();
            let fd = fds.entry(key.clone()).or_default();
            let base = fd.next_patch;
            fd.next_patch += batch.len() as u32;
            fd.pending.push(base);
            base
        };
        let put = self.put_patch_object(ctx, keys, ns, base, &combined);
        self.settle_patch(&key, base, &combined, &put);
        let mut outcome = put;
        if outcome.is_ok() && self.mode == MaintenanceMode::Eager {
            outcome = self.merge_ns(ctx, keys, ns).map(|_| ());
        }
        let cost = ctx.elapsed().saturating_sub(start);
        batch
            .into_iter()
            .map(|(ticket, _)| {
                (
                    ticket,
                    CommitResult {
                        outcome: outcome.clone(),
                        cost,
                    },
                )
            })
            .collect()
    }

    /// How many descriptors have unmerged patch chains.
    pub fn pending_descriptors(&self) -> usize {
        self.fds
            .lock()
            .values()
            .filter(|fd| !fd.pending.is_empty())
            .count()
    }

    // ----- intra-node merging (§3.3.2 phase 2, step 1) ---------------------

    /// Merge this node's patch chain for `ns` into the global NameRing
    /// object: fetch each patch in chain order, merge them into one "big"
    /// patch, fold it into the ring, write the ring back, delete the patch
    /// objects, and queue a gossip notification. Returns true if any patch
    /// was merged.
    pub fn merge_ns(&self, ctx: &mut OpCtx, keys: &H2Keys, ns: NamespaceId) -> Result<bool> {
        ctx.span(STAGE_MERGE, "merge_ns", |ctx| {
            ctx.span_note("ns", || ns.to_string());
            self.merge_ns_inner(ctx, keys, ns)
        })
    }

    fn merge_ns_inner(&self, ctx: &mut OpCtx, keys: &H2Keys, ns: NamespaceId) -> Result<bool> {
        // One merge cycle per ring at a time on this node.
        let gate = self
            .merge_locks
            .lock()
            .entry((keys.account().to_string(), ns))
            .or_insert_with(|| Arc::new(Mutex::new(())))
            .clone();
        let _guard = gate.lock();
        let chain: Vec<u32> = {
            let mut fds = self.fds.lock();
            match fds.get_mut(&(keys.account().to_string(), ns)) {
                Some(fd) if !fd.pending.is_empty() => fd.pending.take(),
                _ => return Ok(false),
            }
        };
        ctx.charge_time(self.store.cost_model().patch_cycle_cpu);
        // Run the fallible cycle; on *any* failure, restore the chain so a
        // retry re-merges (crash recovery for the Background Merger).
        let ring = match self.merge_cycle(ctx, keys, ns, &chain) {
            Ok(ring) => ring,
            Err(e) => {
                let mut fds = self.fds.lock();
                let fd = fds.entry((keys.account().to_string(), ns)).or_default();
                fd.pending.restore(&chain);
                return Err(e);
            }
        };
        let version = ring.version();
        {
            let mut fds = self.fds.lock();
            let fd = fds.entry((keys.account().to_string(), ns)).or_default();
            // Monotone: a patch submitted while this merge was in flight
            // must stay visible in the local version (its chain entry will
            // carry it into the global object on the next cycle).
            Arc::make_mut(&mut fd.local).merge_from(&ring);
        }
        self.bump_ns_epoch(ns);
        self.outbox.lock().push(GossipMsg {
            account: keys.account().to_string(),
            ns,
            from: self.node,
            version,
        });
        Ok(true)
    }

    /// The fallible portion of one merge cycle: fetch the chain's patch
    /// objects, merge them (plus the local version) into the global ring,
    /// write it back and delete the consumed patches.
    fn merge_cycle(
        &self,
        ctx: &mut OpCtx,
        keys: &H2Keys,
        ns: NamespaceId,
        chain: &[u32],
    ) -> Result<Arc<NameRing>> {
        // Walk the linked list: start with patch No. chain[0], repeatedly
        // fetch the successor and merge the two.
        let mut big = NameRing::new();
        for &no in chain {
            let key = keys.patch(ns, self.node, no);
            match self.with_retry(ctx, "fetch_patch", |ctx| self.store.get(ctx, &key)) {
                Ok(obj) => {
                    let s = obj.payload.as_str().ok_or_else(|| {
                        H2Error::Corrupt(format!("patch {key} is not a string object"))
                    })?;
                    big.merge_from(&formatter::patch_from_str(s)?);
                }
                // A patch can be missing if a previous merge crashed between
                // deleting patches and clearing state; the local ring
                // already contains its effect, so skip it.
                Err(H2Error::NotFound(_)) => {}
                Err(e) => return Err(e),
            }
        }
        // Merge the big patch into the ring object.
        let mut ring = self.fetch_global_ring(ctx, keys, ns)?;
        ring.merge_from(&big);
        // Also fold in anything only our local version knows (e.g. effects
        // of patches deleted by an earlier interrupted merge).
        {
            let fds = self.fds.lock();
            if let Some(fd) = fds.get(&(keys.account().to_string(), ns)) {
                ring.merge_from(&fd.local);
            }
        }
        let ring = Arc::new(ring);
        self.put_global_ring(ctx, keys, ns, &ring)?;
        for &no in chain {
            // Patch objects are transient; a NotFound here is harmless.
            let key = keys.patch(ns, self.node, no);
            match self.with_retry(ctx, "delete_patch", |ctx| self.store.delete(ctx, &key)) {
                Ok(()) | Err(H2Error::NotFound(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(ring)
    }

    /// Run the Background Merger over every descriptor with pending patches
    /// (Deferred mode's pump). Background spend is accounted internally.
    ///
    /// Every ring with a pending chain is attempted; a failing cycle
    /// restores its chain, bumps [`MERGE_FAILURES`], and does *not* stop
    /// the sweep. The outcome separates applied from failed counts so
    /// callers that loop "until nothing merges" terminate even while some
    /// rings keep failing (an earlier revision returned the *attempted*
    /// count, which such loops would spin on).
    pub fn step_merges(&self) -> MergeOutcome {
        let work: Vec<(String, NamespaceId)> = {
            let fds = self.fds.lock();
            fds.iter()
                .filter(|(_, fd)| !fd.pending.is_empty())
                .map(|((acct, ns), _)| (acct.clone(), *ns))
                .collect()
        };
        let mut outcome = MergeOutcome::default();
        let mut ctx = OpCtx::new(self.store.cost_model());
        // Background merge pumps are sampled like client ops, so Deferred
        // mode's maintenance shows up as MERGE-PUMP root traces.
        let sampled = !work.is_empty() && self.tracer.sample_next();
        if sampled {
            ctx.begin_trace(STAGE_MERGE, "MERGE-PUMP");
        }
        let mut first_error: Option<H2Error> = None;
        for (account, ns) in work {
            let keys = H2Keys::new(&account);
            match self.merge_ns(&mut ctx, &keys, ns) {
                Ok(true) => outcome.applied += 1,
                Ok(false) => {}
                Err(e) => {
                    outcome.failed += 1;
                    self.merge_failures.incr();
                    first_error.get_or_insert(e);
                }
            }
        }
        if sampled {
            let err = first_error.as_ref().map(|e| e.to_string());
            if let Some(spans) = ctx.end_trace(err) {
                self.tracer.offer(spans, &self.metrics);
            }
        }
        self.absorb_background(&ctx);
        outcome
    }

    // ----- gossip (§3.3.2 phase 2, step 2) ---------------------------------

    /// Drain queued outbound gossip messages.
    pub fn take_outbox(&self) -> Vec<GossipMsg> {
        std::mem::take(&mut *self.outbox.lock())
    }

    /// Handle one incoming gossip tuple. Returns true when the update was
    /// news to this node (and should be forwarded); false aborts the flood
    /// (the local version is already at least as new — §3.3.2's loop-back
    /// avoidance by timestamp comparison).
    pub fn on_gossip(&self, msg: &GossipMsg) -> Result<bool> {
        self.on_gossip_batch(std::slice::from_ref(msg))
            .pop()
            .expect("one result per message")
    }

    /// Handle a whole inbox of gossip tuples in one sweep, with per-message
    /// results (index-aligned with `msgs`, so a failing message can be
    /// requeued individually — batching never couples one message's fate
    /// to another's).
    ///
    /// Compared with applying messages one at a time, a batch takes the
    /// descriptor lock O(1) times instead of O(messages): one acquisition
    /// for the loop-back version check, one for applying every fetched
    /// ring. Messages for the same ring are deduplicated — the ring is
    /// fetched and joined once on behalf of all of them (each such message
    /// reports `Ok(true)`, since the update was news to this node).
    pub fn on_gossip_batch(&self, msgs: &[GossipMsg]) -> Vec<Result<bool>> {
        let mut results: Vec<Option<Result<bool>>> = (0..msgs.len()).map(|_| None).collect();
        // Pass 1 — loop-back avoidance for the whole batch under one lock;
        // fresh messages are grouped by ring.
        let mut fresh: Vec<(FdKey, Vec<usize>)> = Vec::new();
        {
            let mut slots: HashMap<FdKey, usize> = HashMap::new();
            let fds = self.fds.lock();
            for (i, msg) in msgs.iter().enumerate() {
                let key = (msg.account.clone(), msg.ns);
                let stale = fds
                    .get(&key)
                    .is_some_and(|fd| fd.local.version() >= msg.version);
                if stale {
                    results[i] = Some(Ok(false));
                } else {
                    match slots.get(&key) {
                        Some(&slot) => fresh[slot].1.push(i),
                        None => {
                            slots.insert(key.clone(), fresh.len());
                            fresh.push((key, vec![i]));
                        }
                    }
                }
            }
        }
        if fresh.is_empty() {
            return results
                .into_iter()
                .map(|r| r.expect("stale message settled"))
                .collect();
        }
        // Gossip runs on its own context, so batches self-sample into
        // GOSSIP-APPLY root traces.
        let mut ctx = OpCtx::new(self.store.cost_model());
        let sampled = self.tracer.sample_next();
        if sampled {
            ctx.begin_trace(STAGE_GOSSIP, "GOSSIP-APPLY");
            ctx.span_note("batch", || msgs.len().to_string());
            ctx.span_note("rings", || fresh.len().to_string());
        }
        let mut first_error: Option<String> = None;
        // Pass 2 — fetch each unique ring once, refreshing the NameRing
        // cache (gossip is what keeps cached rings fresh across nodes).
        let mut fetched: Vec<(FdKey, Arc<NameRing>, Vec<usize>)> = Vec::new();
        for (key, idxs) in fresh {
            let keys = H2Keys::new(&key.0);
            match self.fetch_global_ring(&mut ctx, &keys, key.1) {
                Ok(global) => {
                    let global = Arc::new(global);
                    self.cache_store_fetched(key.clone(), &global);
                    fetched.push((key, global, idxs));
                }
                Err(e) => {
                    first_error.get_or_insert_with(|| e.to_string());
                    for i in idxs {
                        results[i] = Some(Err(e.clone()));
                    }
                }
            }
        }
        // Pass 3 — one descriptor-lock acquisition applies every join.
        let mut writebacks: Vec<(FdKey, Arc<NameRing>, Vec<usize>)> = Vec::new();
        let mut applied_ns: Vec<NamespaceId> = Vec::new();
        {
            let mut fds = self.fds.lock();
            for (key, global, idxs) in fetched {
                let fd = fds.entry(key.clone()).or_default();
                let merged = NameRing::merged((*global).clone(), &fd.local);
                let had_extra = merged != *global;
                let merged = Arc::new(merged);
                fd.local = Arc::clone(&merged);
                applied_ns.push(key.1);
                if had_extra {
                    writebacks.push((key, merged, idxs));
                } else {
                    for i in idxs {
                        results[i] = Some(Ok(true));
                    }
                }
            }
        }
        for ns in applied_ns {
            self.bump_ns_epoch(ns);
        }
        // Pass 4 — when this node knew updates the global object lacked,
        // write the join back and re-gossip (our information is now part
        // of the global version). A write-back failure fails only that
        // ring's messages; the local join above is idempotent on requeue.
        for (key, local, idxs) in writebacks {
            let keys = H2Keys::new(&key.0);
            ctx.span_note("write_back", || {
                "local updates joined into global".to_string()
            });
            match self.put_global_ring(&mut ctx, &keys, key.1, &local) {
                Ok(()) => {
                    self.outbox.lock().push(GossipMsg {
                        account: key.0.clone(),
                        ns: key.1,
                        from: self.node,
                        version: local.version(),
                    });
                    for i in idxs {
                        results[i] = Some(Ok(true));
                    }
                }
                Err(e) => {
                    first_error.get_or_insert_with(|| e.to_string());
                    for i in idxs {
                        results[i] = Some(Err(e.clone()));
                    }
                }
            }
        }
        if sampled {
            if let Some(spans) = ctx.end_trace(first_error) {
                self.tracer.offer(spans, &self.metrics);
            }
        }
        // Observe the newest version this node actually absorbed.
        let applied_max = msgs
            .iter()
            .enumerate()
            .filter(|(i, _)| matches!(results[*i], Some(Ok(true))))
            .map(|(_, m)| m.version)
            .max();
        if let Some(v) = applied_max {
            self.clock.observe(v);
        }
        self.absorb_background(&ctx);
        results
            .into_iter()
            .map(|r| r.expect("every message settled"))
            .collect()
    }

    /// Bounded anti-entropy sweep: re-fetch from the cloud every NameRing
    /// this middleware holds state for — descriptor-cache entries and
    /// cached global rings alike — join each with the local version, and
    /// write back + re-gossip any ring where this node knew updates the
    /// global object lacked. Returns how many rings were refreshed.
    ///
    /// This closes the post-fault re-convergence gap: gossip only refreshes
    /// rings whose update notifications *arrived*, so a notification dropped
    /// during a fault window leaves the cached copy stale until some later
    /// write happens to touch that ring. A resync revalidates every known
    /// ring unconditionally (each refresh bumps the namespace epoch, so
    /// dependent full-path cache entries are invalidated too). The sweep is
    /// bounded by this node's own state — it never enumerates the cloud —
    /// and the same call doubles as the cache refresh after a placement
    /// ring swap ([`Cluster::ring_epoch`] bump): the re-fetches run under
    /// the new placement, re-validating any answer the old one produced.
    pub fn resync(&self) -> Result<usize> {
        let keys: Vec<FdKey> = {
            let mut set: std::collections::HashSet<FdKey> =
                self.fds.lock().keys().cloned().collect();
            for shard in &self.ring_cache {
                set.extend(shard.lock().keys().cloned());
            }
            let mut v: Vec<FdKey> = set.into_iter().collect();
            v.sort();
            v
        };
        let mut ctx = OpCtx::new(self.store.cost_model());
        let sampled = !keys.is_empty() && self.tracer.sample_next();
        if sampled {
            ctx.begin_trace(STAGE_GOSSIP, "RESYNC");
            ctx.span_note("rings", || keys.len().to_string());
        }
        let mut first_error: Option<H2Error> = None;
        let mut refreshed = 0usize;
        for key in keys {
            let h2keys = H2Keys::new(&key.0);
            let global = match self.fetch_global_ring(&mut ctx, &h2keys, key.1) {
                Ok(g) => Arc::new(g),
                Err(e) => {
                    first_error.get_or_insert(e);
                    continue;
                }
            };
            self.cache_store_fetched(key.clone(), &global);
            let (had_extra, merged) = {
                let mut fds = self.fds.lock();
                match fds.get_mut(&key) {
                    Some(fd) => {
                        let merged = NameRing::merged((*global).clone(), &fd.local);
                        let had_extra = merged != *global;
                        let merged = Arc::new(merged);
                        fd.local = Arc::clone(&merged);
                        (had_extra, merged)
                    }
                    None => (false, global),
                }
            };
            self.bump_ns_epoch(key.1);
            refreshed += 1;
            if had_extra {
                match self.put_global_ring(&mut ctx, &h2keys, key.1, &merged) {
                    Ok(()) => self.outbox.lock().push(GossipMsg {
                        account: key.0.clone(),
                        ns: key.1,
                        from: self.node,
                        version: merged.version(),
                    }),
                    Err(e) => {
                        first_error.get_or_insert(e);
                    }
                }
            }
        }
        if sampled {
            let err = first_error.as_ref().map(|e| e.to_string());
            if let Some(spans) = ctx.end_trace(err) {
                self.tracer.offer(spans, &self.metrics);
            }
        }
        self.absorb_background(&ctx);
        match first_error {
            Some(e) => Err(e),
            None => Ok(refreshed),
        }
    }

    // ----- descriptor objects ----------------------------------------------

    /// PUT a directory descriptor object at `parent_ns::name`.
    pub fn put_descriptor(
        &self,
        ctx: &mut OpCtx,
        keys: &H2Keys,
        parent_ns: NamespaceId,
        name: &str,
        desc: &DirDescriptor,
    ) -> Result<()> {
        let mut meta = Meta::new();
        meta.insert("content-type".into(), "h2/dir".into());
        let key = keys.child(parent_ns, name);
        let payload = Payload::from_string(formatter::dir_to_string(desc));
        self.with_retry(ctx, "put_descriptor", |ctx| {
            self.store.put(ctx, &key, payload.clone(), meta.clone())
        })
    }

    /// GET and parse a directory descriptor.
    pub fn get_descriptor(
        &self,
        ctx: &mut OpCtx,
        keys: &H2Keys,
        parent_ns: NamespaceId,
        name: &str,
    ) -> Result<DirDescriptor> {
        let key = keys.child(parent_ns, name);
        let obj = self.with_retry(ctx, "get_descriptor", |ctx| self.store.get(ctx, &key))?;
        let s = obj
            .payload
            .as_str()
            .ok_or_else(|| H2Error::Corrupt(format!("descriptor {name} not a string")))?;
        formatter::dir_from_str(s)
    }

    /// Object key helper (exposed for the fs layer).
    pub fn child_key(&self, keys: &H2Keys, ns: NamespaceId, name: &str) -> ObjectKey {
        keys.child(ns, name)
    }

    /// Charge middleware CPU for processing `entries` listing rows.
    pub fn charge_listing_cpu(&self, ctx: &mut OpCtx, entries: usize) {
        ctx.charge_time(self.store.cost_model().per_entry_cpu * entries as u32);
    }

    /// Charge one resolve level. A level whose ring came from the
    /// parsed-ring cache skipped the GET *and* the parse/plumbing work, so
    /// it pays the in-memory `cached_lookup_cpu` instead of `lookup_cpu`.
    pub fn charge_lookup_step(&self, ctx: &mut OpCtx, cached: bool) {
        let model = self.store.cost_model();
        ctx.charge_time(if cached {
            model.cached_lookup_cpu
        } else {
            model.lookup_cpu
        });
    }

    /// Record an index-server-free primitive count for Table 1 (H2 issues
    /// no IndexRpc; method exists so call sites read symmetrically with the
    /// DP baseline).
    pub fn no_index_rpc(&self, _ctx: &mut OpCtx) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::namering::Tuple;
    use swiftsim::ClusterConfig;

    fn setup(mode: MaintenanceMode) -> (Arc<Cluster>, Arc<H2Middleware>, H2Keys) {
        let cluster = Cluster::new(ClusterConfig {
            nodes: 4,
            replicas: 3,
            part_power: 6,
            cost: Arc::new(h2util::CostModel::zero()),
            faults: None,
        });
        cluster.create_account("alice").unwrap();
        cluster
            .create_container("alice", crate::keys::H2_CONTAINER, false)
            .unwrap();
        let mw = H2Middleware::new(NodeId(1), cluster.clone(), mode);
        (cluster, mw, H2Keys::new("alice"))
    }

    fn ns(seq: u64) -> NamespaceId {
        NamespaceId::new(seq, NodeId(1), 42)
    }

    #[test]
    fn missing_ring_reads_as_empty() {
        let (_c, mw, keys) = setup(MaintenanceMode::Eager);
        let mut ctx = OpCtx::for_test();
        let ring = mw.read_ring(&mut ctx, &keys, ns(9)).unwrap();
        assert!(ring.is_empty());
    }

    #[test]
    fn eager_patch_is_immediately_global() {
        let (_c, mw, keys) = setup(MaintenanceMode::Eager);
        let mut ctx = OpCtx::for_test();
        let mut patch = NameRing::new();
        patch.apply("file1", Tuple::file(mw.tick(), 10));
        mw.submit_patch(&mut ctx, &keys, ns(1), patch).unwrap();
        // Globally visible (no local overlay needed).
        let global = mw.fetch_global_ring(&mut ctx, &keys, ns(1)).unwrap();
        assert!(global.get("file1").is_some());
        assert_eq!(mw.pending_descriptors(), 0);
        // Patch object was deleted after the merge.
        let patch_key = keys.patch(ns(1), NodeId(1), 0);
        assert!(mw.store().get(&mut ctx, &patch_key).is_err());
        // A gossip message was queued.
        assert_eq!(mw.take_outbox().len(), 1);
    }

    #[test]
    fn deferred_patch_visible_locally_only_until_merge() {
        let (_c, mw, keys) = setup(MaintenanceMode::Deferred);
        let mut ctx = OpCtx::for_test();
        let mut patch = NameRing::new();
        patch.apply("f", Tuple::file(mw.tick(), 1));
        mw.submit_patch(&mut ctx, &keys, ns(1), patch).unwrap();
        // Local overlay sees it; global object does not.
        assert!(mw
            .read_ring(&mut ctx, &keys, ns(1))
            .unwrap()
            .get("f")
            .is_some());
        assert!(mw
            .fetch_global_ring(&mut ctx, &keys, ns(1))
            .unwrap()
            .get("f")
            .is_none());
        assert_eq!(mw.pending_descriptors(), 1);
        // Patch object exists in the cloud under the paper's key scheme.
        assert!(mw
            .store()
            .get(&mut ctx, &keys.patch(ns(1), NodeId(1), 0))
            .is_ok());
        // Background merger folds it in.
        assert_eq!(
            mw.step_merges(),
            MergeOutcome {
                applied: 1,
                failed: 0
            }
        );
        assert!(mw
            .fetch_global_ring(&mut ctx, &keys, ns(1))
            .unwrap()
            .get("f")
            .is_some());
        let (bg_time, bg_counts) = mw.background_spend();
        assert_eq!(bg_time, std::time::Duration::ZERO); // zero cost model
        assert!(bg_counts.total() > 0);
    }

    #[test]
    fn chain_of_patches_merges_in_order() {
        let (_c, mw, keys) = setup(MaintenanceMode::Deferred);
        let mut ctx = OpCtx::for_test();
        for i in 0..5u64 {
            let mut p = NameRing::new();
            p.apply(&format!("f{i}"), Tuple::file(mw.tick(), i));
            mw.submit_patch(&mut ctx, &keys, ns(1), p).unwrap();
        }
        // One descriptor, five chained patches.
        assert_eq!(mw.pending_descriptors(), 1);
        assert_eq!(mw.step_merges().applied, 1);
        let g = mw.fetch_global_ring(&mut ctx, &keys, ns(1)).unwrap();
        assert_eq!(g.live_len(), 5);
    }

    #[test]
    fn delete_then_recreate_through_patches() {
        let (_c, mw, keys) = setup(MaintenanceMode::Eager);
        let mut ctx = OpCtx::for_test();
        let t1 = mw.tick();
        let mut p = NameRing::new();
        p.apply("f", Tuple::file(t1, 1));
        mw.submit_patch(&mut ctx, &keys, ns(1), p).unwrap();
        let mut p = NameRing::new();
        p.apply("f", Tuple::file(t1, 1).tombstone(mw.tick()));
        mw.submit_patch(&mut ctx, &keys, ns(1), p).unwrap();
        assert!(mw
            .read_ring(&mut ctx, &keys, ns(1))
            .unwrap()
            .get("f")
            .is_none());
        let mut p = NameRing::new();
        p.apply("f", Tuple::file(mw.tick(), 2));
        mw.submit_patch(&mut ctx, &keys, ns(1), p).unwrap();
        let ring = mw.read_ring(&mut ctx, &keys, ns(1)).unwrap();
        assert_eq!(
            ring.get("f").unwrap().child,
            crate::namering::ChildRef::File { size: 2 }
        );
    }

    #[test]
    fn gossip_round_trip_between_two_middlewares() {
        let (cluster, mw1, keys) = setup(MaintenanceMode::Eager);
        let mw2 = H2Middleware::new(NodeId(2), cluster, MaintenanceMode::Eager);
        let mut ctx = OpCtx::for_test();
        let mut p = NameRing::new();
        p.apply("shared", Tuple::file(mw1.tick(), 7));
        mw1.submit_patch(&mut ctx, &keys, ns(1), p).unwrap();
        let msgs = mw1.take_outbox();
        assert_eq!(msgs.len(), 1);
        // mw2 learns of the update and fetches it.
        assert!(mw2.on_gossip(&msgs[0]).unwrap());
        let ring = mw2.read_ring(&mut ctx, &keys, ns(1)).unwrap();
        assert!(ring.get("shared").is_some());
        // Replayed gossip is aborted (loop-back avoidance).
        assert!(!mw2.on_gossip(&msgs[0]).unwrap());
    }

    #[test]
    fn gossip_merges_divergent_views_both_ways() {
        let (cluster, mw1, keys) = setup(MaintenanceMode::Deferred);
        let mw2 = H2Middleware::new(NodeId(2), cluster, MaintenanceMode::Deferred);
        let mut ctx = OpCtx::for_test();
        // Both nodes patch the same ring, unaware of each other.
        let mut p1 = NameRing::new();
        p1.apply("from-1", Tuple::file(mw1.tick(), 1));
        mw1.submit_patch(&mut ctx, &keys, ns(1), p1).unwrap();
        let mut p2 = NameRing::new();
        p2.apply("from-2", Tuple::file(mw2.tick(), 2));
        mw2.submit_patch(&mut ctx, &keys, ns(1), p2).unwrap();
        // Node 1 merges first; node 2 merges after — the global object now
        // has both (step_merges folds local knowledge in).
        assert_eq!(mw1.step_merges().applied, 1);
        assert_eq!(mw2.step_merges().applied, 1);
        let g = mw1.fetch_global_ring(&mut ctx, &keys, ns(1)).unwrap();
        assert_eq!(g.live_len(), 2, "second merge lost first node's update");
        // Gossip completes the exchange: node 1 hears node 2's update.
        for msg in mw2.take_outbox() {
            mw1.on_gossip(&msg).unwrap();
        }
        let r1 = mw1.read_ring(&mut ctx, &keys, ns(1)).unwrap();
        assert_eq!(r1.live_len(), 2);
    }

    #[test]
    fn descriptor_roundtrip_through_cloud() {
        let (_c, mw, keys) = setup(MaintenanceMode::Eager);
        let mut ctx = OpCtx::for_test();
        let desc = DirDescriptor {
            ns: ns(5),
            name: "docs".into(),
            created: mw.tick(),
        };
        mw.put_descriptor(&mut ctx, &keys, NamespaceId::ROOT, "docs", &desc)
            .unwrap();
        let got = mw
            .get_descriptor(&mut ctx, &keys, NamespaceId::ROOT, "docs")
            .unwrap();
        assert_eq!(got, desc);
    }

    #[test]
    fn merge_failure_restores_the_patch_chain_for_retry() {
        // Submit patches in Deferred mode, kill the whole cluster, watch
        // the merge fail — then recover and verify nothing was lost.
        let (cluster, mw, keys) = setup(MaintenanceMode::Deferred);
        let mut ctx = OpCtx::for_test();
        for i in 0..3u64 {
            let mut p = NameRing::new();
            p.apply(&format!("f{i}"), Tuple::file(mw.tick(), i));
            mw.submit_patch(&mut ctx, &keys, ns(1), p).unwrap();
        }
        for i in 0..4 {
            cluster.set_node_down(h2ring::DeviceId(i), true);
        }
        let out = mw.step_merges();
        assert_eq!(
            out,
            MergeOutcome {
                applied: 0,
                failed: 1
            },
            "merge should fail with cluster down"
        );
        assert!(out.attempted() == 1);
        assert!(mw.metrics().counter_value(MERGE_FAILURES) >= 1);
        // The chain survived the failure.
        assert_eq!(mw.pending_descriptors(), 1);
        for i in 0..4 {
            cluster.set_node_down(h2ring::DeviceId(i), false);
        }
        assert_eq!(mw.step_merges().applied, 1);
        let g = mw.fetch_global_ring(&mut ctx, &keys, ns(1)).unwrap();
        assert_eq!(g.live_len(), 3, "updates lost across merge crash/retry");
        // Patch objects were cleaned up after the successful merge.
        for no in 0..3 {
            assert!(mw
                .store()
                .get(&mut ctx, &keys.patch(ns(1), NodeId(1), no))
                .is_err());
        }
    }

    #[test]
    fn namespaces_allocated_are_unique_per_middleware() {
        let (_c, mw, _keys) = setup(MaintenanceMode::Eager);
        let a = mw.allocate_namespace();
        let b = mw.allocate_namespace();
        assert_ne!(a, b);
        assert_eq!(a.node, NodeId(1));
    }

    #[test]
    fn patch_chain_survives_many_pending_patches() {
        // The chain must ack (remove) patches in arbitrary order without
        // losing entries, and drain in submission order afterwards.
        let mut chain = PatchChain::default();
        for no in 0..200u32 {
            chain.push(no);
        }
        assert_eq!(chain.len(), 200);
        // Ack every third patch, front-biased — the pattern the old
        // `retain` scan paid O(chain) for.
        for no in (0..200u32).step_by(3) {
            chain.remove(no);
        }
        for no in 0..200u32 {
            assert_eq!(chain.contains(no), no % 3 != 0, "patch {no}");
        }
        // Removing a missing number is a no-op.
        chain.remove(0);
        chain.remove(999);
        // Drain comes out sorted == submission order (numbers are monotone).
        let drained = chain.take();
        let expect: Vec<u32> = (0..200).filter(|n| n % 3 != 0).collect();
        assert_eq!(drained, expect);
        assert!(chain.is_empty());
        // Restore after a failed merge keeps the set intact even if new
        // numbers were pushed meanwhile.
        chain.push(500);
        chain.restore(&drained);
        assert_eq!(chain.len(), expect.len() + 1);
        assert!(chain.contains(500));
        let redrained = chain.take();
        let mut expect2 = expect.clone();
        expect2.push(500);
        assert_eq!(redrained, expect2);
    }

    fn setup_grouped(mode: MaintenanceMode) -> (Arc<Cluster>, Arc<H2Middleware>, H2Keys) {
        let cluster = Cluster::new(ClusterConfig {
            nodes: 4,
            replicas: 3,
            part_power: 6,
            cost: Arc::new(h2util::CostModel::zero()),
            faults: None,
        });
        cluster.create_account("alice").unwrap();
        cluster
            .create_container("alice", crate::keys::H2_CONTAINER, false)
            .unwrap();
        let mw = H2Middleware::with_observability(
            NodeId(1),
            cluster.clone(),
            mode,
            Arc::new(MetricsRegistry::new()),
            0,
            Arc::new(TraceCollector::disabled()),
            true,
            false,
            false,
            false,
        );
        (cluster, mw, H2Keys::new("alice"))
    }

    #[test]
    fn group_commit_single_submitter_behaves_like_direct_path() {
        let (_c, mw, keys) = setup_grouped(MaintenanceMode::Deferred);
        let mut ctx = OpCtx::for_test();
        let mut p = NameRing::new();
        p.apply("f", Tuple::file(mw.tick(), 1));
        mw.submit_patch(&mut ctx, &keys, ns(1), p).unwrap();
        assert!(mw
            .read_ring(&mut ctx, &keys, ns(1))
            .unwrap()
            .get("f")
            .is_some());
        assert_eq!(mw.pending_descriptors(), 1);
        assert_eq!(mw.step_merges().applied, 1);
        assert!(mw
            .fetch_global_ring(&mut ctx, &keys, ns(1))
            .unwrap()
            .get("f")
            .is_some());
    }

    #[test]
    fn group_commit_coalesces_concurrent_submissions() {
        // N threads submit against the same ring; every update must land,
        // and the combined patch objects must number strictly fewer than
        // the submissions whenever any batch formed (the contiguous-range
        // allocation leaves gaps where coalesced patches would have been).
        const THREADS: usize = 8;
        const PER_THREAD: usize = 4;
        let (_c, mw, keys) = setup_grouped(MaintenanceMode::Deferred);
        let barrier = Arc::new(std::sync::Barrier::new(THREADS));
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let mw = Arc::clone(&mw);
            let keys = H2Keys::new("alice");
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                for i in 0..PER_THREAD {
                    let mut ctx = OpCtx::for_test();
                    let mut p = NameRing::new();
                    p.apply(&format!("t{t}-f{i}"), Tuple::file(mw.tick(), 1));
                    mw.submit_patch(&mut ctx, &keys, ns(1), p).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut ctx = OpCtx::for_test();
        // Read-your-writes on this middleware: every name is visible.
        let local = mw.read_ring(&mut ctx, &keys, ns(1)).unwrap();
        assert_eq!(local.live_len(), THREADS * PER_THREAD);
        // Merge drains the chain and the global object has everything.
        while mw.step_merges().applied > 0 {}
        assert_eq!(mw.pending_descriptors(), 0);
        let global = mw.fetch_global_ring(&mut ctx, &keys, ns(1)).unwrap();
        assert_eq!(global.live_len(), THREADS * PER_THREAD);
    }

    #[test]
    fn group_commit_failed_batch_leaves_no_trace() {
        let (cluster, mw, keys) = setup_grouped(MaintenanceMode::Deferred);
        let mut ctx = OpCtx::for_test();
        for i in 0..4 {
            cluster.set_node_down(h2ring::DeviceId(i), true);
        }
        let mut p = NameRing::new();
        p.apply("ghost", Tuple::file(mw.tick(), 1));
        assert!(mw.submit_patch(&mut ctx, &keys, ns(1), p).is_err());
        // The failed batch unchained itself and skipped the local fold.
        assert_eq!(mw.pending_descriptors(), 0);
        for i in 0..4 {
            cluster.set_node_down(h2ring::DeviceId(i), false);
        }
        assert!(mw
            .read_ring(&mut ctx, &keys, ns(1))
            .unwrap()
            .get("ghost")
            .is_none());
    }

    #[test]
    fn merge_pump_loop_terminates_while_merges_keep_failing() {
        // Regression: `step_merges` used to report the *attempted* count,
        // so "pump until 0" loops spun forever against a down cluster.
        let (cluster, mw, keys) = setup(MaintenanceMode::Deferred);
        let mut ctx = OpCtx::for_test();
        let mut p = NameRing::new();
        p.apply("f", Tuple::file(mw.tick(), 1));
        mw.submit_patch(&mut ctx, &keys, ns(1), p).unwrap();
        for i in 0..4 {
            cluster.set_node_down(h2ring::DeviceId(i), true);
        }
        // The canonical caller loop: merge until nothing more applies.
        // With the cluster down this must exit on the first sweep (and the
        // failure is still visible via `failed` and the counter).
        let mut sweeps = 0;
        while mw.step_merges().applied > 0 {
            sweeps += 1;
            assert!(sweeps < 100, "merge pump failed to terminate");
        }
        assert_eq!(sweeps, 0);
        assert!(mw.metrics().counter_value(MERGE_FAILURES) >= 1);
        // Chain intact for the eventual retry.
        assert_eq!(mw.pending_descriptors(), 1);
    }
}
