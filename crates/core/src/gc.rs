//! Lazy reclamation: compacting tombstones and deleting unreachable state.
//!
//! The paper defers "really removing the tuple from the NameRing … until
//! this NameRing is in use" (§3.3.2) and removes directories in O(1) by
//! tombstoning the parent tuple only — leaving the subtree's objects in the
//! cloud. This module is the background pass that finishes the job:
//!
//! 1. walk the live tree from the root, NameRing by NameRing;
//! 2. compact each ring: tombstones older than the horizon are dropped
//!    (the ring object is rewritten if anything changed);
//! 3. for every dropped directory tombstone, recursively delete the whole
//!    orphaned subtree (descriptors, NameRings, content objects);
//! 4. for every dropped file tombstone, delete the content object (a no-op
//!    if the file delete already reclaimed it eagerly).
//!
//! GC is driven explicitly ([`collect`]) — benches and examples call it the
//! way an operator would schedule a nightly pass.

use h2util::{H2Error, NamespaceId, OpCtx, Result, Timestamp};
use swiftsim::ObjectStore;

use crate::fs::H2Cloud;
use crate::keys::H2Keys;
use crate::middleware::H2Middleware;
use crate::namering::ChildRef;

/// Outcome of one GC pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Tombstoned tuples compacted out of NameRings.
    pub tuples_compacted: usize,
    /// Objects (descriptors, rings, file content) deleted from the cloud.
    pub objects_deleted: usize,
    /// NameRing objects rewritten.
    pub rings_rewritten: usize,
}

/// Run a GC pass over `account`'s tree. Tombstones with timestamps `<
/// horizon` are compacted; pass the current clock reading to reclaim
/// everything, or an older stamp to keep a concurrency grace window.
pub fn collect(
    fs: &H2Cloud,
    ctx: &mut OpCtx,
    account: &str,
    horizon: Timestamp,
) -> Result<GcReport> {
    let keys = H2Keys::new(account);
    let mw = fs.layer().mw_for_account(account).clone();
    let mut report = GcReport::default();
    // Pass 1: namespaces reachable through *live* tuples. A MOVE leaves a
    // tombstone in the old parent that still carries the directory's
    // namespace — the subtree must survive because the new parent's live
    // tuple points at the same namespace.
    let mut live = std::collections::HashSet::new();
    live.insert(NamespaceId::ROOT);
    collect_live(&mw, ctx, &keys, NamespaceId::ROOT, &mut live)?;
    // Pass 2: compact and reclaim.
    walk_and_compact(
        fs,
        &mw,
        ctx,
        &keys,
        NamespaceId::ROOT,
        horizon,
        &live,
        &mut report,
    )?;
    Ok(report)
}

/// Worklist traversal, not recursion: directory chains can be arbitrarily
/// deep (one stack frame per level overflowed around a few thousand), so
/// every tree walk in this module drives an explicit stack instead.
fn collect_live(
    mw: &H2Middleware,
    ctx: &mut OpCtx,
    keys: &H2Keys,
    ns: NamespaceId,
    live: &mut std::collections::HashSet<NamespaceId>,
) -> Result<()> {
    let mut stack = vec![ns];
    while let Some(ns) = stack.pop() {
        let ring = mw.read_ring(ctx, keys, ns)?;
        for (_, tuple) in ring.live() {
            if let ChildRef::Dir { ns: child } = tuple.child {
                if live.insert(child) {
                    stack.push(child);
                }
            }
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn walk_and_compact(
    fs: &H2Cloud,
    mw: &H2Middleware,
    ctx: &mut OpCtx,
    keys: &H2Keys,
    ns: NamespaceId,
    horizon: Timestamp,
    live: &std::collections::HashSet<NamespaceId>,
    report: &mut GcReport,
) -> Result<()> {
    let mut stack = vec![ns];
    while let Some(ns) = stack.pop() {
        let mut ring = mw.read_ring(ctx, keys, ns)?;
        let removed = ring.compact(horizon);
        if !removed.is_empty() {
            mw.write_ring(ctx, keys, ns, &ring)?;
            // Floor every middleware's local ring to the GC horizon. A peer
            // whose local version still held a compacted tombstone would
            // otherwise fold it back into the global object on its next
            // merge — resurrecting the tuple GC just reclaimed.
            for m in fs.layer().middlewares() {
                m.gc_floor(keys.account(), ns, horizon);
            }
            report.rings_rewritten += 1;
            report.tuples_compacted += removed.len();
            for (name, tuple) in removed {
                match tuple.child {
                    ChildRef::File { size } => {
                        delete_quiet(fs, mw, ctx, keys, ns, &name, Some(size), report)?;
                    }
                    // Only reclaim subtrees nothing live points at: a MOVE's
                    // tombstone still names the (re-parented, live) namespace.
                    ChildRef::Dir { ns: dead_ns } if !live.contains(&dead_ns) => {
                        delete_subtree(fs, mw, ctx, keys, dead_ns, report)?;
                        delete_quiet(fs, mw, ctx, keys, ns, &name, None, report)?;
                        // descriptor
                    }
                    ChildRef::Dir { .. } => {}
                }
            }
        }
        // Visit live children (worklist, not recursion — sibling order is
        // irrelevant, compaction is per-namespace).
        for (_, t) in ring.live() {
            if let ChildRef::Dir { ns: child } = t.child {
                stack.push(child);
            }
        }
    }
    Ok(())
}

/// Delete everything reachable from `ns` (the directory was tombstoned:
/// nothing live points here anymore).
fn delete_subtree(
    fs: &H2Cloud,
    mw: &H2Middleware,
    ctx: &mut OpCtx,
    keys: &H2Keys,
    ns: NamespaceId,
    report: &mut GcReport,
) -> Result<()> {
    let mut stack = vec![ns];
    while let Some(ns) = stack.pop() {
        let ring = mw.read_ring(ctx, keys, ns)?;
        for (name, tuple) in ring.iter() {
            match tuple.child {
                ChildRef::File { size } => {
                    delete_quiet(fs, mw, ctx, keys, ns, name, Some(size), report)?;
                }
                ChildRef::Dir { ns: child_ns } => {
                    stack.push(child_ns);
                    delete_quiet(fs, mw, ctx, keys, ns, name, None, report)?; // descriptor
                }
            }
        }
        // The ring object itself.
        match fs.cluster().delete(ctx, &keys.namering(ns)) {
            Ok(()) => report.objects_deleted += 1,
            Err(H2Error::NotFound(_)) => {}
            Err(e) => return Err(e),
        }
        // The object is gone; every middleware's local state for it (cached
        // global copy, local overlay, pending chain) must go too, or a peer
        // could write the dead ring straight back into the cloud.
        for m in fs.layer().middlewares() {
            m.forget_ring(keys.account(), ns);
        }
    }
    Ok(())
}

/// Delete one child object, tolerating its prior eager reclaim.
/// `content_size` is the tuple's size for file content (`None` for
/// descriptors) — multipart generations are reclaimed along with their
/// manifest.
#[allow(clippy::too_many_arguments)]
fn delete_quiet(
    fs: &H2Cloud,
    mw: &H2Middleware,
    ctx: &mut OpCtx,
    keys: &H2Keys,
    ns: NamespaceId,
    name: &str,
    content_size: Option<u64>,
    report: &mut GcReport,
) -> Result<()> {
    let outcome = match content_size {
        Some(size) => mw.delete_content(ctx, keys, ns, name, size),
        None => fs.cluster().delete(ctx, &keys.child(ns, name)),
    };
    match outcome {
        Ok(()) => {
            report.objects_deleted += 1;
            Ok(())
        }
        Err(H2Error::NotFound(_)) => Ok(()), // already reclaimed eagerly
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::{H2Cloud, H2Config};
    use h2fsapi::{CloudFs, FileContent, FsPath};

    fn p(s: &str) -> FsPath {
        FsPath::parse(s).unwrap()
    }

    fn far_future() -> Timestamp {
        Timestamp::new(u64::MAX, 0, h2util::NodeId(0))
    }

    fn setup() -> (H2Cloud, OpCtx) {
        let fs = H2Cloud::new(H2Config::for_test());
        let mut ctx = OpCtx::for_test();
        fs.create_account(&mut ctx, "alice").unwrap();
        (fs, ctx)
    }

    #[test]
    fn rmdir_leaves_garbage_until_gc() {
        let (fs, mut ctx) = setup();
        fs.mkdir(&mut ctx, "alice", &p("/docs")).unwrap();
        for i in 0..10 {
            fs.write(
                &mut ctx,
                "alice",
                &p(&format!("/docs/f{i}")),
                FileContent::from_str("data"),
            )
            .unwrap();
        }
        let before = fs.storage_stats().objects;
        fs.rmdir(&mut ctx, "alice", &p("/docs")).unwrap();
        // O(1) rmdir: the subtree is still physically present.
        let after_rmdir = fs.storage_stats().objects;
        assert!(after_rmdir >= before - 1, "rmdir must not walk the subtree");
        let report = collect(&fs, &mut ctx, "alice", far_future()).unwrap();
        assert_eq!(report.tuples_compacted, 1);
        assert!(report.objects_deleted >= 11, "{report:?}"); // 10 files + ring + descriptor
        let after_gc = fs.storage_stats().objects;
        assert!(after_gc < after_rmdir, "{after_gc} !< {after_rmdir}");
        // The directory is really gone.
        assert!(fs.list(&mut ctx, "alice", &p("/docs")).is_err());
    }

    #[test]
    fn gc_recurses_into_nested_removed_trees() {
        let (fs, mut ctx) = setup();
        fs.mkdir(&mut ctx, "alice", &p("/a")).unwrap();
        fs.mkdir(&mut ctx, "alice", &p("/a/b")).unwrap();
        fs.mkdir(&mut ctx, "alice", &p("/a/b/c")).unwrap();
        fs.write(
            &mut ctx,
            "alice",
            &p("/a/b/c/deep"),
            FileContent::from_str("x"),
        )
        .unwrap();
        fs.rmdir(&mut ctx, "alice", &p("/a")).unwrap();
        let report = collect(&fs, &mut ctx, "alice", far_future()).unwrap();
        // file + 3 rings + 2 nested descriptors + 1 top descriptor
        assert!(report.objects_deleted >= 7, "{report:?}");
        // Only the root ring remains.
        assert_eq!(fs.storage_stats().objects, 1);
    }

    #[test]
    fn gc_respects_horizon() {
        let (fs, mut ctx) = setup();
        fs.mkdir(&mut ctx, "alice", &p("/keep")).unwrap();
        fs.write(&mut ctx, "alice", &p("/f"), FileContent::from_str("x"))
            .unwrap();
        fs.delete_file(&mut ctx, "alice", &p("/f")).unwrap();
        // Horizon in the past: nothing is old enough to compact.
        let report = collect(
            &fs,
            &mut ctx,
            "alice",
            Timestamp::new(0, 0, h2util::NodeId(0)),
        )
        .unwrap();
        assert_eq!(report.tuples_compacted, 0);
        assert_eq!(report.rings_rewritten, 0);
        // Live tree untouched.
        assert_eq!(fs.list(&mut ctx, "alice", &p("/")).unwrap(), vec!["keep"]);
    }

    #[test]
    fn gc_never_reclaims_moved_subtrees() {
        // Regression: MOVE leaves a tombstone in the old parent that still
        // carries the directory's namespace; GC must not treat it as dead.
        let (fs, mut ctx) = setup();
        fs.mkdir(&mut ctx, "alice", &p("/photos")).unwrap();
        fs.write(
            &mut ctx,
            "alice",
            &p("/photos/trip.jpg"),
            FileContent::Simulated(4 << 20),
        )
        .unwrap();
        fs.mv(&mut ctx, "alice", &p("/photos"), &p("/pictures"))
            .unwrap();
        collect(&fs, &mut ctx, "alice", far_future()).unwrap();
        // The moved content must still be fully readable.
        assert_eq!(
            fs.read(&mut ctx, "alice", &p("/pictures/trip.jpg"))
                .unwrap(),
            FileContent::Simulated(4 << 20)
        );
        assert!(fs.storage_stats().bytes >= 4 << 20);
        // Same for a rename chained after the move.
        fs.mv(&mut ctx, "alice", &p("/pictures"), &p("/final"))
            .unwrap();
        collect(&fs, &mut ctx, "alice", far_future()).unwrap();
        assert!(fs.read(&mut ctx, "alice", &p("/final/trip.jpg")).is_ok());
    }

    #[test]
    fn deep_directory_chains_do_not_overflow_the_stack() {
        // Regression: collect_live / walk_and_compact / delete_subtree were
        // recursive — one stack frame per directory level — and blew the
        // stack on chains a few thousand deep. Built through middleware
        // primitives (O(depth)); fs.mkdir would resolve from the root each
        // time (O(depth²)).
        use crate::keys::DirDescriptor;
        use crate::namering::{NameRing, Tuple};
        let (fs, mut ctx) = setup();
        let mw = fs.layer().mw_for_account("alice").clone();
        let keys = H2Keys::new("alice");
        const DEPTH: usize = 5000;
        let mut parent = NamespaceId::ROOT;
        for i in 0..DEPTH {
            let child = mw.allocate_namespace();
            mw.create_ring(&mut ctx, &keys, child).unwrap();
            let name = format!("d{i}");
            mw.put_descriptor(
                &mut ctx,
                &keys,
                parent,
                &name,
                &DirDescriptor {
                    ns: child,
                    name: name.clone(),
                    created: mw.tick(),
                },
            )
            .unwrap();
            let mut patch = NameRing::new();
            patch.apply(&name, Tuple::dir(mw.tick(), child));
            mw.submit_patch(&mut ctx, &keys, parent, patch).unwrap();
            parent = child;
        }
        // The live walk must traverse all 5k levels without recursing.
        let report = collect(&fs, &mut ctx, "alice", far_future()).unwrap();
        assert_eq!(report.tuples_compacted, 0);
        // Tombstone the chain's top link, then reclaim every level.
        fs.rmdir(&mut ctx, "alice", &p("/d0")).unwrap();
        let report = collect(&fs, &mut ctx, "alice", far_future()).unwrap();
        assert!(
            report.objects_deleted >= 2 * DEPTH - 1,
            "expected ~2 objects per level, got {report:?}"
        );
        // Only the root ring remains.
        assert_eq!(fs.storage_stats().objects, 1);
    }

    #[test]
    fn gc_is_idempotent() {
        let (fs, mut ctx) = setup();
        fs.mkdir(&mut ctx, "alice", &p("/d")).unwrap();
        fs.write(&mut ctx, "alice", &p("/d/f"), FileContent::from_str("x"))
            .unwrap();
        fs.rmdir(&mut ctx, "alice", &p("/d")).unwrap();
        collect(&fs, &mut ctx, "alice", far_future()).unwrap();
        let second = collect(&fs, &mut ctx, "alice", far_future()).unwrap();
        assert_eq!(second, GcReport::default());
    }
}
