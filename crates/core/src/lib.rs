//! `h2cloud` — the paper's contribution: Hierarchical Hash (H2) and the
//! H2Cloud filesystem middleware on top of an object storage cloud.
//!
//! The crate is organised the way §3–§4 of the paper describe the system:
//!
//! * [`namering`] — the NameRing data structure (§3.1): per-directory list
//!   of `(child, timestamp)` tuples with `Deleted` tags, plus the merge
//!   algorithm of §3.3.2. The merge is a last-writer-wins CRDT: commutative,
//!   associative, idempotent (property-tested), which is what lets the
//!   asynchronous maintenance protocol converge.
//! * [`formatter`] — §4.4's Formatter: stringifies directories, NameRings
//!   and patches into ASCII objects (tuples alphabetically sorted) and
//!   parses them back.
//! * [`keys`] — namespace-decorated relative paths (`N94::ubuntu`) and the
//!   object-key scheme for descriptors, NameRings and patches.
//! * [`middleware`] — §4.2's H2Middleware: the H2 Lookup module (quick O(1)
//!   and regular O(d) file access, §3.2), the NameRing Maintenance module
//!   (File Descriptors, patch chains, Background Merger) and the Gossip
//!   Arrangement sub-module (§3.3.2 phase 2).
//! * [`layer`] — the H2Layer: a set of H2Middlewares in front of one object
//!   cloud, with gossip transport between them (deterministic pump or real
//!   threads).
//! * [`api`] — §4.3's Inbound API: the HTTP-shaped web surface (Account,
//!   Directory and File Content APIs) routed onto the filesystem.
//! * [`fs`] — the public filesystem facade implementing
//!   [`h2fsapi::CloudFs`]: READ/WRITE/MKDIR/RMDIR/MOVE/LIST/COPY mapped to
//!   object-level operations.
//! * [`gc`] — the lazy reclamation pass the paper alludes to ("we leave the
//!   work of really removing the tuple … until this NameRing is in use"):
//!   compacts tombstoned tuples and deletes unreachable objects.

pub mod api;
pub mod check;
pub mod formatter;
pub mod fs;
pub mod gc;
pub mod keys;
pub mod layer;
pub mod middleware;
pub mod namering;
pub mod tools;

pub use api::{H2Api, Method, ResponseBody, WebRequest, WebResponse};
pub use fs::{H2Cloud, H2Config, MaintenanceMode};
pub use keys::{DirDescriptor, H2Keys};
pub use layer::H2Layer;
pub use middleware::H2Middleware;
pub use namering::{ChildRef, NameRing, RingView, Tuple};
