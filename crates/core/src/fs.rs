//! The H2Cloud filesystem: POSIX-like operations mapped to object-level
//! operations via H2 (§3, §4).
//!
//! Every operation resolves paths with the regular O(d) method — walking one
//! NameRing GET per level — then performs O(1) NameRing patches for
//! structural changes:
//!
//! | op            | object-level work                                     |
//! |---------------|-------------------------------------------------------|
//! | MKDIR         | PUT descriptor + PUT empty NameRing + patch parent    |
//! | RMDIR         | patch parent (tombstone) — subtree reclaimed lazily   |
//! | MOVE/RENAME   | re-key descriptor or content + two parent patches     |
//! | LIST          | the directory's NameRing (names) or + m HEADs (detail)|
//! | COPY          | n server-side object copies + fresh NameRings         |
//! | WRITE         | PUT content + patch parent                            |
//! | READ          | O(d) lookup + GET content                             |
//!
//! The "quick method" of §3.2 — O(1) access through a namespace-decorated
//! relative path — is exposed as [`H2Cloud::read_relative`] /
//! [`H2Cloud::stat_relative`] and used internally by COPY and GC.

use std::sync::Arc;

use h2fsapi::{CloudFs, DirEntry, EntryKind, FileContent, FsPath, StoreStats};
use h2util::{H2Error, NamespaceId, OpCtx, Result, Timestamp};
use swiftsim::{Cluster, ClusterConfig, ObjectStore, Payload};

use crate::keys::{DirDescriptor, H2Keys, H2_CONTAINER};
use crate::layer::H2Layer;
pub use crate::middleware::MaintenanceMode;
use crate::middleware::{H2Middleware, PathAnswer, META_LOGICAL_BYTES};
use crate::namering::{ChildRef, NameRing, Tuple};

/// Configuration of an H2Cloud instance.
#[derive(Debug, Clone)]
pub struct H2Config {
    /// Number of H2Middlewares in the layer.
    pub middlewares: usize,
    /// When patches merge (see [`MaintenanceMode`]).
    pub mode: MaintenanceMode,
    /// Shape of the underlying object cloud.
    pub cluster: ClusterConfig,
    /// Per-middleware NameRing cache size, in parsed rings (0 disables).
    ///
    /// The cache serves `read_ring` — one saved GET per level on the O(d)
    /// resolve path — and is kept fresh by write-through on every ring
    /// write plus refresh on gossip. Default **off**: the figure harness
    /// reproduces the paper's uncached resolution costs, and reads bound
    /// to a specific middleware (`via`) keep their read-through-global
    /// freshness even when gossip messages are lost. With the cache on,
    /// such a middleware serves its last written/gossiped version instead
    /// — within the eventual consistency the paper already accepts, but a
    /// behaviour change operators must opt into.
    pub cache_capacity: usize,
    /// Fraction of operations sampled into span traces, in `[0, 1]`
    /// (0 disables tracing; `for_test()` samples everything). Sampled ops
    /// record per-stage spans into a bounded per-middleware ring buffer,
    /// served by the API `op=trace` route; closed spans also feed the
    /// `stage_*` histograms on `op=metrics`. Sampling is deterministic
    /// (every ⌈1/rate⌉-th candidate), and tracing never charges virtual
    /// time, so traced and untraced runs behave identically.
    pub trace_sample: f64,
    /// Group-commit patch submission: concurrent `submit_patch` calls to
    /// the same NameRing coalesce behind a per-ring commit leader that
    /// allocates a contiguous patch-number range and PUTs one combined
    /// patch object for the whole batch (see DESIGN.md, "Concurrency
    /// model"). Observationally equivalent to per-call submission — the
    /// equivalence suite proves it — but collapses the per-submitter PUT
    /// (and, in Eager mode, the per-submitter merge cycle) under
    /// contention. Defaults to the `group-commit` cargo feature so the CI
    /// matrix exercises both paths.
    pub group_commit: bool,
    /// Full-path resolve cache: each middleware keeps a map from resolved
    /// full path → descriptor, fingerprinted by the version epoch of every
    /// ancestor NameRing, turning the O(d) walk into one probe on the hot
    /// path. Any write, gossip application, or GC touching an ancestor
    /// ring bumps that ring's epoch and thereby invalidates exactly the
    /// affected subtree. Requires `cache_capacity > 0` (the path cache
    /// shares the ring cache's budget, scaled up — see
    /// [`H2Middleware::path_cache_lookup`]). Same consistency envelope as
    /// the ring cache itself: exact with a single Eager middleware,
    /// eventual across middlewares. Defaults to the `read-path-opt` cargo
    /// feature so the CI matrix exercises both paths.
    pub path_cache: bool,
    /// Negative-entry cache: NotFound resolve outcomes are cached under
    /// the same epoch fingerprint as positive ones, so repeated stats of
    /// missing paths stop re-walking the tree. Write-through invalidation
    /// plus the epoch guard ensure a stale negative can never outlive the
    /// ancestor version stamp that disproves it. Requires `path_cache`
    /// plumbing (`cache_capacity > 0`); independent of `path_cache` being
    /// on. Defaults to the `read-path-opt` cargo feature.
    pub neg_cache: bool,
    /// Hedged replica reads: probe all assigned devices as one parallel
    /// wave (charged max-of-probes, not sum), and when the assigned answers
    /// are suspect, fan the handoff fallback scan out as a second wave
    /// instead of serialising it. Identical probes in identical order —
    /// results and injected-fault draws are byte-for-byte the same as the
    /// serial path; only the virtual-time charging and span shape change.
    /// Defaults to the `read-path-opt` cargo feature.
    pub hedged_reads: bool,
    /// Content-addressed content plane: file content is chunked
    /// (FastCDC-style, ~1 MiB target leaves) into immutable, refcounted,
    /// hash-addressed blocks under the cluster's reserved `::cas/blk`
    /// namespace, with branch blocks above [`crate::middleware::CAS_FANOUT`]
    /// children and a small manifest at the file key (root list + logical
    /// length, so STAT stays one HEAD). Identical content — within a file,
    /// across files, across users — collapses to the same blocks; see the
    /// `dedup_bytes_saved` / `cas_blocks_written` / `cas_blocks_shared`
    /// counters. Observationally equivalent to whole-object storage (the
    /// equivalence suite proves it). Defaults to the `cas` cargo feature
    /// so the CI matrix exercises both planes.
    pub cas: bool,
}

impl Default for H2Config {
    fn default() -> Self {
        H2Config {
            middlewares: 1,
            mode: MaintenanceMode::Eager,
            cluster: ClusterConfig::default(),
            cache_capacity: 0,
            trace_sample: 0.0,
            group_commit: cfg!(feature = "group-commit"),
            path_cache: cfg!(feature = "read-path-opt"),
            neg_cache: cfg!(feature = "read-path-opt"),
            hedged_reads: cfg!(feature = "read-path-opt"),
            cas: cfg!(feature = "cas"),
        }
    }
}

impl H2Config {
    /// Zero-latency, single-middleware config for semantic tests. The
    /// NameRing cache is ON here: with a single Eager middleware every
    /// ring write goes through the owning middleware, so caching is
    /// exactly consistent and the semantic suites double as cache
    /// correctness coverage.
    pub fn for_test() -> Self {
        H2Config {
            middlewares: 1,
            mode: MaintenanceMode::Eager,
            cluster: ClusterConfig::tiny(),
            cache_capacity: 128,
            trace_sample: 1.0,
            group_commit: cfg!(feature = "group-commit"),
            // Always on in tests (like the ring cache above): with a
            // single Eager middleware the caches are exactly consistent,
            // so the semantic suites double as cache correctness coverage.
            path_cache: true,
            neg_cache: true,
            hedged_reads: true,
            cas: cfg!(feature = "cas"),
        }
    }
}

/// A resolved path target.
#[derive(Debug, Clone)]
enum Resolved {
    Root,
    Dir {
        parent_ns: NamespaceId,
        name: String,
        ns: NamespaceId,
        ts: Timestamp,
    },
    File {
        parent_ns: NamespaceId,
        name: String,
        size: u64,
        ts: Timestamp,
    },
}

/// Reconstruct a [`Resolved`] from a cached path-cache hit: the tuple the
/// parent ring held for the path's last component.
fn resolved_from(parent_ns: NamespaceId, name: &str, tuple: Tuple) -> Resolved {
    match tuple.child {
        ChildRef::Dir { ns } => Resolved::Dir {
            parent_ns,
            name: name.to_string(),
            ns,
            ts: tuple.ts,
        },
        ChildRef::File { size } => Resolved::File {
            parent_ns,
            name: name.to_string(),
            size,
            ts: tuple.ts,
        },
    }
}

/// The H2Cloud system: an [`H2Layer`] over one object cloud.
pub struct H2Cloud {
    layer: H2Layer,
    /// §4.2's system monitoring: per-operation latency histograms, plus
    /// the middlewares' NameRing cache counters. Shared with every
    /// middleware in the layer.
    metrics: Arc<h2util::metrics::MetricsRegistry>,
}

impl H2Cloud {
    pub fn new(cfg: H2Config) -> Self {
        let cluster = Cluster::new(cfg.cluster.clone());
        cluster.set_hedged_reads(cfg.hedged_reads);
        let metrics = Arc::new(h2util::metrics::MetricsRegistry::new());
        H2Cloud {
            layer: H2Layer::with_observability(
                cluster,
                cfg.middlewares,
                cfg.mode,
                metrics.clone(),
                cfg.cache_capacity,
                cfg.trace_sample,
                cfg.group_commit,
                cfg.path_cache,
                cfg.neg_cache,
                cfg.cas,
            ),
            metrics,
        }
    }

    /// The monitoring registry: one latency histogram per operation kind,
    /// fed by every `CloudFs` call on this instance.
    pub fn metrics(&self) -> &h2util::metrics::MetricsRegistry {
        &self.metrics
    }

    /// Fold the cluster's read-path and migration counters (hedged
    /// replica-read waves, handoff scans skipped via freshness hints,
    /// rebalance progress) into the monitoring registry, so `op=metrics`
    /// reports them alongside the middleware cache counters. Counters are
    /// monotone: this tops each one up to the cluster's current value.
    pub fn sync_cluster_counters(&self) {
        use h2util::trace::{
            MIGRATION_DUAL_WRITES, MIGRATION_KEYS_COPIED, MIGRATION_PARTS_MOVED,
            MIGRATION_READ_RESCUES,
        };
        for (name, val) in [
            ("hedged_reads", self.cluster().hedged_read_count()),
            ("handoff_scans_skipped", self.cluster().handoff_scan_skips()),
            (
                MIGRATION_PARTS_MOVED,
                self.cluster().migration_parts_moved_count(),
            ),
            (
                MIGRATION_KEYS_COPIED,
                self.cluster().migration_keys_copied_count(),
            ),
            (
                MIGRATION_READ_RESCUES,
                self.cluster().migration_read_rescue_count(),
            ),
            (
                MIGRATION_DUAL_WRITES,
                self.cluster().migration_dual_write_count(),
            ),
            (
                "cas_blocks_written",
                self.cluster().cas_blocks_written_count(),
            ),
            (
                "cas_blocks_shared",
                self.cluster().cas_blocks_shared_count(),
            ),
            (
                "dedup_bytes_saved",
                self.cluster().dedup_bytes_saved_count(),
            ),
        ] {
            let c = self.metrics.counter(name);
            let cur = c.get();
            if val > cur {
                c.add(val - cur);
            }
        }
    }

    /// Record an operation's virtual service time (the delta this op added
    /// to `ctx`) and, when `mw`'s collector samples this op, wrap it in a
    /// root span flushed to the collector on completion.
    fn observe<T>(
        &self,
        mw: &H2Middleware,
        name: &str,
        ctx: &mut OpCtx,
        f: impl FnOnce(&mut OpCtx) -> Result<T>,
    ) -> Result<T> {
        // Ops arriving on an already-traced context (none today) keep their
        // existing root span.
        let sampled = !ctx.trace_active() && mw.tracer().sample_next();
        if sampled {
            ctx.begin_trace(h2util::trace::STAGE_OP, name);
        }
        let before = ctx.elapsed();
        let result = f(ctx);
        self.metrics
            .record(name, ctx.elapsed().saturating_sub(before));
        if sampled {
            let err = result.as_ref().err().map(|e| e.to_string());
            if let Some(spans) = ctx.end_trace(err) {
                mw.tracer().offer(spans, &self.metrics);
            }
        }
        result
    }

    /// The most recent `n` sampled operation traces across every middleware
    /// in the layer, newest first (interleaved by per-collector sequence —
    /// there is no global order across middlewares).
    pub fn recent_traces(&self, n: usize) -> Vec<h2util::trace::RootTrace> {
        let mut all: Vec<h2util::trace::RootTrace> = self
            .layer
            .middlewares()
            .iter()
            .flat_map(|mw| mw.tracer().recent(n))
            .collect();
        all.sort_by(|a, b| b.seq.cmp(&a.seq).then(a.node.cmp(&b.node)));
        all.truncate(n);
        all
    }

    /// Rack-shaped instance with calibrated costs (the figure harness's
    /// default).
    pub fn rack() -> Self {
        H2Cloud::new(H2Config::default())
    }

    pub fn layer(&self) -> &H2Layer {
        &self.layer
    }

    pub fn cluster(&self) -> &Arc<Cluster> {
        self.layer.cluster()
    }

    pub fn cost_model(&self) -> Arc<h2util::CostModel> {
        self.cluster().cost_model()
    }

    /// A view of the filesystem bound to one specific middleware — used by
    /// multi-middleware convergence tests; normal clients go through the
    /// sticky routing of the [`CloudFs`] impl.
    pub fn via(&self, idx: usize) -> H2View<'_> {
        H2View {
            fs: self,
            mw: self.layer.mw(idx).clone(),
        }
    }

    fn mw(&self, account: &str) -> Arc<H2Middleware> {
        self.layer.mw_for_account(account).clone()
    }

    // ----- path resolution (§3.2 regular method, O(d)) ---------------------

    /// Walk `path` level by level along NameRings. Each level reads a
    /// [`crate::namering::RingView`] — a lazy join of the fetched global
    /// ring and the middleware's local overlay — so resolution never
    /// materialises (deep-clones) a ring per level.
    ///
    /// With the path cache on, the walk is preceded by up to two O(1)
    /// probes: the full requested path (hit → done, cached NotFound →
    /// done), then the parent prefix (hit → one ring read instead of d).
    /// Every entry carries the epoch fingerprint of the ancestor rings it
    /// was resolved through, so any ancestor mutation invalidates it — see
    /// [`H2Middleware::path_cache_lookup`] for the protocol.
    fn resolve(
        &self,
        mw: &H2Middleware,
        ctx: &mut OpCtx,
        keys: &H2Keys,
        path: &FsPath,
    ) -> Result<Resolved> {
        if path.is_root() {
            return Ok(Resolved::Root);
        }
        let comps = path.components();
        let caching = mw.path_cache_active() || mw.neg_cache_active();
        if caching {
            mw.charge_path_probe(ctx);
            let full = path.to_string();
            if let Some((answer, _)) = mw.path_cache_lookup(keys.account(), &full) {
                return match answer {
                    PathAnswer::Hit { parent_ns, tuple } => {
                        Ok(resolved_from(parent_ns, comps.last().unwrap(), tuple))
                    }
                    PathAnswer::Missing => Err(H2Error::NotFound(full)),
                };
            }
            // Full path missed; if the parent directory's resolution is
            // cached, finish with a single ring read instead of the walk.
            if comps.len() > 1 {
                let parent = &full[..full.len() - comps.last().unwrap().len() - 1];
                if let Some((PathAnswer::Hit { tuple: ptuple, .. }, parent_fp)) =
                    mw.path_cache_lookup(keys.account(), parent)
                {
                    if let ChildRef::Dir { ns: dir_ns } = ptuple.child {
                        let (view, epoch) = mw.read_ring_view_stamped(ctx, keys, dir_ns)?;
                        mw.charge_lookup_step(ctx, view.from_cache());
                        let mut fp = parent_fp;
                        fp.push((dir_ns, epoch));
                        let comp = comps.last().unwrap();
                        return match view.get(comp).copied() {
                            Some(tuple) => {
                                let answer = PathAnswer::Hit {
                                    parent_ns: dir_ns,
                                    tuple,
                                };
                                mw.path_cache_store(keys.account(), &full, answer, fp);
                                Ok(resolved_from(dir_ns, comp, tuple))
                            }
                            None => {
                                mw.path_cache_store(keys.account(), &full, PathAnswer::Missing, fp);
                                Err(H2Error::NotFound(full))
                            }
                        };
                    }
                }
            }
        }
        let mut ns = NamespaceId::ROOT;
        // The epoch fingerprint accumulated over the rings this walk
        // consults, and the path prefix resolved so far — every prefix's
        // answer is cached on the way down so later lookups deeper in the
        // same subtree start from the nearest cached ancestor.
        let mut fp: Vec<(NamespaceId, u64)> = Vec::new();
        let mut prefix = String::new();
        for (i, comp) in comps.iter().enumerate() {
            let (view, epoch) = mw.read_ring_view_stamped(ctx, keys, ns)?;
            mw.charge_lookup_step(ctx, view.from_cache());
            fp.push((ns, epoch));
            prefix.push('/');
            prefix.push_str(comp);
            let Some(tuple) = view.get(comp).copied() else {
                if caching {
                    // Cache the negative under the FULL requested path:
                    // its fingerprint covers exactly the ancestors that
                    // were consulted to prove the absence, so creating any
                    // of the missing levels (which must patch one of those
                    // rings first) invalidates it.
                    mw.path_cache_store(keys.account(), &path.to_string(), PathAnswer::Missing, fp);
                }
                return Err(H2Error::NotFound(path.to_string()));
            };
            let last = i + 1 == comps.len();
            match tuple.child {
                ChildRef::Dir { ns: child_ns } => {
                    if caching {
                        let answer = PathAnswer::Hit {
                            parent_ns: ns,
                            tuple,
                        };
                        mw.path_cache_store(keys.account(), &prefix, answer, fp.clone());
                    }
                    if last {
                        return Ok(Resolved::Dir {
                            parent_ns: ns,
                            name: comp.clone(),
                            ns: child_ns,
                            ts: tuple.ts,
                        });
                    }
                    ns = child_ns;
                }
                ChildRef::File { size } => {
                    if last {
                        if caching {
                            let answer = PathAnswer::Hit {
                                parent_ns: ns,
                                tuple,
                            };
                            mw.path_cache_store(keys.account(), &prefix, answer, fp);
                        }
                        return Ok(Resolved::File {
                            parent_ns: ns,
                            name: comp.clone(),
                            size,
                            ts: tuple.ts,
                        });
                    }
                    return Err(H2Error::NotADirectory(path.to_string()));
                }
            }
        }
        unreachable!("non-root path has components")
    }

    /// Resolve a path that must be a directory, returning its namespace.
    fn resolve_dir_ns(
        &self,
        mw: &H2Middleware,
        ctx: &mut OpCtx,
        keys: &H2Keys,
        path: &FsPath,
    ) -> Result<NamespaceId> {
        match self.resolve(mw, ctx, keys, path)? {
            Resolved::Root => Ok(NamespaceId::ROOT),
            Resolved::Dir { ns, .. } => Ok(ns),
            Resolved::File { .. } => Err(H2Error::NotADirectory(path.to_string())),
        }
    }

    fn check_account(&self, account: &str) -> Result<()> {
        if self.cluster().account_exists(account) {
            Ok(())
        } else {
            Err(H2Error::NoSuchAccount(account.to_string()))
        }
    }

    // ----- quick method (§3.2, O(1) via relative path) ----------------------

    /// O(1) file access through a namespace-decorated relative path: hash
    /// `ns::name` straight into the consistent hashing ring — one GET, no
    /// directory walk. "Mainly used by the system's internal operations."
    pub fn read_relative(
        &self,
        ctx: &mut OpCtx,
        account: &str,
        ns: NamespaceId,
        name: &str,
    ) -> Result<FileContent> {
        let keys = H2Keys::new(account);
        let mw = self.mw(account);
        Ok(payload_to_content(mw.get_content(ctx, &keys, ns, name)?))
    }

    /// O(1) existence/metadata check through a relative path (one HEAD).
    /// For multipart files the HEAD lands on the manifest, whose meta
    /// carries the logical size — still one request.
    pub fn stat_relative(
        &self,
        ctx: &mut OpCtx,
        account: &str,
        ns: NamespaceId,
        name: &str,
    ) -> Result<(u64, u64)> {
        let keys = H2Keys::new(account);
        let info = self.cluster().head(ctx, &keys.child(ns, name))?;
        let size = match info.meta.get(META_LOGICAL_BYTES) {
            Some(s) => s
                .parse()
                .map_err(|_| H2Error::Corrupt(format!("bad {META_LOGICAL_BYTES} meta {s:?}")))?,
            None => info.size,
        };
        Ok((size, info.modified_ms))
    }

    // ----- operations shared by CloudFs and H2View --------------------------

    fn op_create_account(&self, mw: &H2Middleware, ctx: &mut OpCtx, account: &str) -> Result<()> {
        self.cluster().create_account(account)?;
        self.cluster()
            .create_container(account, H2_CONTAINER, false)?;
        // The root directory's (empty) NameRing.
        let keys = H2Keys::new(account);
        mw.create_ring(ctx, &keys, NamespaceId::ROOT)
    }

    fn op_mkdir(
        &self,
        mw: &H2Middleware,
        ctx: &mut OpCtx,
        account: &str,
        path: &FsPath,
    ) -> Result<()> {
        self.check_account(account)?;
        let keys = H2Keys::new(account);
        let name = path
            .name()
            .ok_or_else(|| H2Error::AlreadyExists("/".into()))?;
        let parent = path.parent().expect("non-root path has a parent");
        let parent_ns = self.resolve_dir_ns(mw, ctx, &keys, &parent)?;
        let view = mw.read_ring_view(ctx, &keys, parent_ns)?;
        if view.get(name).is_some() {
            return Err(H2Error::AlreadyExists(path.to_string()));
        }
        drop(view);
        let ns = mw.allocate_namespace();
        let ts = mw.tick();
        let desc = DirDescriptor {
            ns,
            name: name.to_string(),
            created: ts,
        };
        // The new directory's descriptor and its empty NameRing live under
        // independent keys; neither is reachable until the parent patch
        // below lands, so the two PUTs go out in one parallel wave.
        ctx.parallel(2, |ctx, i| {
            if i == 0 {
                mw.put_descriptor(ctx, &keys, parent_ns, name, &desc)
            } else {
                mw.create_ring(ctx, &keys, ns)
            }
        })?;
        let mut patch = NameRing::new();
        patch.apply(name, Tuple::dir(ts, ns));
        mw.submit_patch(ctx, &keys, parent_ns, patch)
    }

    fn op_rmdir(
        &self,
        mw: &H2Middleware,
        ctx: &mut OpCtx,
        account: &str,
        path: &FsPath,
    ) -> Result<()> {
        self.check_account(account)?;
        let keys = H2Keys::new(account);
        let resolved = self.resolve(mw, ctx, &keys, path)?;
        match resolved {
            Resolved::Root => Err(H2Error::InvalidPath("cannot remove /".into())),
            Resolved::File { .. } => Err(H2Error::NotADirectory(path.to_string())),
            Resolved::Dir {
                parent_ns,
                name,
                ns,
                ts: _,
            } => {
                // O(1): one tombstone patch on the parent's NameRing. The
                // subtree stays in the cloud until GC compacts it (§3.3.2's
                // deferred "really removing").
                let mut patch = NameRing::new();
                patch.apply(&name, Tuple::dir(mw.tick(), ns).tombstone(mw.tick()));
                mw.submit_patch(ctx, &keys, parent_ns, patch)
            }
        }
    }

    fn op_mv(
        &self,
        mw: &H2Middleware,
        ctx: &mut OpCtx,
        account: &str,
        from: &FsPath,
        to: &FsPath,
    ) -> Result<()> {
        self.check_account(account)?;
        if from.is_root() || to.is_root() {
            return Err(H2Error::InvalidPath("cannot move to or from /".into()));
        }
        if from == to {
            return Ok(());
        }
        if from.is_ancestor_of(to) {
            return Err(H2Error::InvalidPath(format!(
                "cannot move {from} inside itself ({to})"
            )));
        }
        let keys = H2Keys::new(account);
        let src = self.resolve(mw, ctx, &keys, from)?;
        let to_name = to.name().expect("non-root");
        let to_parent = to.parent().expect("non-root");
        let dst_parent_ns = self.resolve_dir_ns(mw, ctx, &keys, &to_parent)?;
        let dst_view = mw.read_ring_view(ctx, &keys, dst_parent_ns)?;
        if dst_view.get(to_name).is_some() {
            return Err(H2Error::AlreadyExists(to.to_string()));
        }
        match src {
            Resolved::Root => unreachable!("non-root checked"),
            Resolved::Dir {
                parent_ns,
                name,
                ns,
                ..
            } => {
                // The directory's NameRing and entire subtree are keyed by
                // its namespace, which does not change — this is the O(1)
                // MOVE the paper gets from preserving hierarchy in H2.
                let desc = mw.get_descriptor(ctx, &keys, parent_ns, &name)?;
                mw.put_descriptor(
                    ctx,
                    &keys,
                    dst_parent_ns,
                    to_name,
                    &DirDescriptor {
                        ns,
                        name: to_name.to_string(),
                        created: desc.created,
                    },
                )?;
                self.cluster().delete(ctx, &keys.child(parent_ns, &name))?;
                let ts = mw.tick();
                let mut out_patch = NameRing::new();
                out_patch.apply(&name, Tuple::dir(ts, ns).tombstone(mw.tick()));
                mw.submit_patch(ctx, &keys, parent_ns, out_patch)?;
                let mut in_patch = NameRing::new();
                in_patch.apply(to_name, Tuple::dir(mw.tick(), ns));
                mw.submit_patch(ctx, &keys, dst_parent_ns, in_patch)
            }
            Resolved::File {
                parent_ns,
                name,
                size,
                ..
            } => {
                // A file's content object is keyed by its parent namespace,
                // so moving it re-keys the object: one server-side copy +
                // delete (per part, fanned out, for multipart files), then
                // the two parent patches.
                mw.copy_content(ctx, &keys, parent_ns, &name, dst_parent_ns, to_name, size)?;
                mw.delete_content(ctx, &keys, parent_ns, &name, size)?;
                let mut out_patch = NameRing::new();
                out_patch.apply(&name, Tuple::file(mw.tick(), size).tombstone(mw.tick()));
                mw.submit_patch(ctx, &keys, parent_ns, out_patch)?;
                let mut in_patch = NameRing::new();
                in_patch.apply(to_name, Tuple::file(mw.tick(), size));
                mw.submit_patch(ctx, &keys, dst_parent_ns, in_patch)
            }
        }
    }

    fn op_copy(
        &self,
        mw: &H2Middleware,
        ctx: &mut OpCtx,
        account: &str,
        from: &FsPath,
        to: &FsPath,
    ) -> Result<()> {
        self.check_account(account)?;
        if from.is_root() || to.is_root() {
            return Err(H2Error::InvalidPath("cannot copy to or from /".into()));
        }
        if from == to || from.is_ancestor_of(to) {
            return Err(H2Error::InvalidPath(format!(
                "cannot copy {from} onto/inside itself"
            )));
        }
        let keys = H2Keys::new(account);
        let src = self.resolve(mw, ctx, &keys, from)?;
        let to_name = to.name().expect("non-root");
        let to_parent = to.parent().expect("non-root");
        let dst_parent_ns = self.resolve_dir_ns(mw, ctx, &keys, &to_parent)?;
        let dst_view = mw.read_ring_view(ctx, &keys, dst_parent_ns)?;
        if dst_view.get(to_name).is_some() {
            return Err(H2Error::AlreadyExists(to.to_string()));
        }
        match src {
            Resolved::Root => unreachable!("non-root checked"),
            Resolved::File {
                parent_ns,
                name,
                size,
                ..
            } => {
                mw.copy_content(ctx, &keys, parent_ns, &name, dst_parent_ns, to_name, size)?;
                let mut patch = NameRing::new();
                patch.apply(to_name, Tuple::file(mw.tick(), size));
                mw.submit_patch(ctx, &keys, dst_parent_ns, patch)
            }
            Resolved::Dir { ns, .. } => {
                let new_ns = self.copy_tree(mw, ctx, &keys, ns, to_name)?;
                let ts = mw.tick();
                mw.put_descriptor(
                    ctx,
                    &keys,
                    dst_parent_ns,
                    to_name,
                    &DirDescriptor {
                        ns: new_ns,
                        name: to_name.to_string(),
                        created: ts,
                    },
                )?;
                let mut patch = NameRing::new();
                patch.apply(to_name, Tuple::dir(ts, new_ns));
                mw.submit_patch(ctx, &keys, dst_parent_ns, patch)
            }
        }
    }

    /// Deep-copy the subtree under `src_ns` into a brand-new namespace and
    /// return it. O(n) in the number of objects copied.
    fn copy_tree(
        &self,
        mw: &H2Middleware,
        ctx: &mut OpCtx,
        keys: &H2Keys,
        src_ns: NamespaceId,
        new_name: &str,
    ) -> Result<NamespaceId> {
        let new_ns = mw.allocate_namespace();
        let src_view = mw.read_ring_view(ctx, keys, src_ns)?;
        let mut new_ring = NameRing::new();
        for (child, tuple) in src_view.live() {
            match tuple.child {
                ChildRef::File { size } => {
                    mw.copy_content(ctx, keys, src_ns, child, new_ns, child, size)?;
                    new_ring.apply(child, Tuple::file(mw.tick(), size));
                }
                ChildRef::Dir { ns: child_ns } => {
                    let copied = self.copy_tree(mw, ctx, keys, child_ns, child)?;
                    let ts = mw.tick();
                    mw.put_descriptor(
                        ctx,
                        keys,
                        new_ns,
                        child,
                        &DirDescriptor {
                            ns: copied,
                            name: child.to_string(),
                            created: ts,
                        },
                    )?;
                    new_ring.apply(child, Tuple::dir(ts, copied));
                }
            }
        }
        mw.write_ring(ctx, keys, new_ns, &new_ring)?;
        // The caller writes this directory's descriptor into *its* parent;
        // here we only need the subtree materialised.
        let _ = new_name;
        Ok(new_ns)
    }

    fn op_list(
        &self,
        mw: &H2Middleware,
        ctx: &mut OpCtx,
        account: &str,
        path: &FsPath,
    ) -> Result<Vec<String>> {
        self.check_account(account)?;
        let keys = H2Keys::new(account);
        let ns = self.resolve_dir_ns(mw, ctx, &keys, path)?;
        let view = mw.read_ring_view(ctx, &keys, ns)?;
        let names: Vec<String> = view.live().map(|(n, _)| n.to_string()).collect();
        mw.charge_listing_cpu(ctx, names.len());
        Ok(names)
    }

    fn op_list_detailed(
        &self,
        mw: &H2Middleware,
        ctx: &mut OpCtx,
        account: &str,
        path: &FsPath,
    ) -> Result<Vec<DirEntry>> {
        self.check_account(account)?;
        let keys = H2Keys::new(account);
        let ns = self.resolve_dir_ns(mw, ctx, &keys, path)?;
        let view = mw.read_ring_view(ctx, &keys, ns)?;
        let children: Vec<(String, Tuple)> =
            view.live().map(|(n, t)| (n.to_string(), *t)).collect();
        mw.charge_listing_cpu(ctx, children.len());
        // O(m): fetch each child's own object for its detailed information
        // (the middleware fans the HEADs out with bounded parallelism —
        // that's why LISTing 1000 files lands near 0.35 s, §1).
        let mut entries: Vec<DirEntry> = Vec::with_capacity(children.len());
        let store = self.cluster().clone();
        let mut fetched: Vec<Option<u64>> = vec![None; children.len()];
        {
            let fetched = std::cell::RefCell::new(&mut fetched);
            ctx.parallel(children.len(), |ctx, i| {
                let (name, _t) = &children[i];
                match store.head(ctx, &keys.child(ns, name)) {
                    Ok(info) => {
                        fetched.borrow_mut()[i] = Some(info.modified_ms);
                        Ok(())
                    }
                    // A child whose object lags behind its NameRing entry
                    // (eventual consistency) still lists from tuple data.
                    Err(H2Error::NotFound(_)) => Ok(()),
                    Err(e) => Err(e),
                }
            })?;
        }
        for (i, (name, t)) in children.into_iter().enumerate() {
            let (kind, size) = match t.child {
                ChildRef::File { size } => (EntryKind::File, size),
                ChildRef::Dir { .. } => (EntryKind::Directory, 0),
            };
            entries.push(DirEntry {
                name,
                kind,
                size,
                modified_ms: fetched[i].unwrap_or(t.ts.millis),
            });
        }
        Ok(entries)
    }

    fn op_write(
        &self,
        mw: &H2Middleware,
        ctx: &mut OpCtx,
        account: &str,
        path: &FsPath,
        content: FileContent,
    ) -> Result<()> {
        self.check_account(account)?;
        let keys = H2Keys::new(account);
        let name = path
            .name()
            .ok_or_else(|| H2Error::IsADirectory("/".into()))?;
        let parent = path.parent().expect("non-root");
        let parent_ns = self.resolve_dir_ns(mw, ctx, &keys, &parent)?;
        let view = mw.read_ring_view(ctx, &keys, parent_ns)?;
        let mut prev_size = None;
        if let Some(t) = view.get(name) {
            match t.child {
                ChildRef::Dir { .. } => return Err(H2Error::IsADirectory(path.to_string())),
                ChildRef::File { size } => prev_size = Some(size),
            }
        }
        drop(view);
        let size = content.len();
        let payload = content_to_payload(content, &path.to_string());
        // §3.3.3(b) blocking: the content stream completes before the patch
        // is submitted, so no merge can observe the tuple without the data.
        mw.put_content(ctx, &keys, parent_ns, name, payload, prev_size)?;
        let mut patch = NameRing::new();
        patch.apply(name, Tuple::file(mw.tick(), size));
        mw.submit_patch(ctx, &keys, parent_ns, patch)
    }

    fn op_read(
        &self,
        mw: &H2Middleware,
        ctx: &mut OpCtx,
        account: &str,
        path: &FsPath,
    ) -> Result<FileContent> {
        self.check_account(account)?;
        let keys = H2Keys::new(account);
        match self.resolve(mw, ctx, &keys, path)? {
            Resolved::File {
                parent_ns, name, ..
            } => Ok(payload_to_content(
                mw.get_content(ctx, &keys, parent_ns, &name)?,
            )),
            _ => Err(H2Error::IsADirectory(path.to_string())),
        }
    }

    fn op_delete_file(
        &self,
        mw: &H2Middleware,
        ctx: &mut OpCtx,
        account: &str,
        path: &FsPath,
    ) -> Result<()> {
        self.check_account(account)?;
        let keys = H2Keys::new(account);
        match self.resolve(mw, ctx, &keys, path)? {
            Resolved::File {
                parent_ns,
                name,
                size,
                ..
            } => {
                // Fake deletion (§3.3.3a): tombstone the tuple FIRST. An
                // earlier revision deleted the content object before the
                // patch; if the patch submission then failed, the client
                // saw a failed delete while the data was already gone — a
                // live name pointing at nothing. Tombstone-first means a
                // failed delete changes nothing visible.
                let mut patch = NameRing::new();
                patch.apply(&name, Tuple::file(mw.tick(), size).tombstone(mw.tick()));
                mw.submit_patch(ctx, &keys, parent_ns, patch)?;
                // Eager content reclaim is best-effort: the tombstone is
                // durable, so if this DELETE fails the object is merely
                // garbage — GC deletes it when it compacts the tombstone.
                let _ = mw.delete_content(ctx, &keys, parent_ns, &name, size);
                Ok(())
            }
            _ => Err(H2Error::IsADirectory(path.to_string())),
        }
    }

    fn op_stat(
        &self,
        mw: &H2Middleware,
        ctx: &mut OpCtx,
        account: &str,
        path: &FsPath,
    ) -> Result<DirEntry> {
        self.check_account(account)?;
        let keys = H2Keys::new(account);
        let resolved = self.resolve(mw, ctx, &keys, path)?;
        Ok(match &resolved {
            Resolved::Root => DirEntry {
                name: "/".into(),
                kind: EntryKind::Directory,
                size: 0,
                modified_ms: 0,
            },
            Resolved::Dir { name, ts, .. } => DirEntry {
                name: name.clone(),
                kind: EntryKind::Directory,
                size: 0,
                modified_ms: ts.millis,
            },
            Resolved::File { name, size, ts, .. } => DirEntry {
                name: name.clone(),
                kind: EntryKind::File,
                size: *size,
                modified_ms: ts.millis,
            },
        })
    }
}

fn content_to_payload(content: FileContent, seed: &str) -> Payload {
    match content {
        FileContent::Inline(b) => Payload::Inline(b.into_bytes()),
        FileContent::Simulated(size) => Payload::simulated(size, seed),
        // Identity is the caller's seed, not the path: equal seeds mean
        // equal bytes, so the CAS plane dedups them across files.
        FileContent::SimulatedShared { size, seed } => {
            Payload::simulated(size, &format!("shared:{seed}"))
        }
    }
}

fn payload_to_content(p: Payload) -> FileContent {
    match p {
        Payload::Inline(b) => FileContent::Inline(h2util::SharedBuf::from_bytes(b)),
        Payload::Simulated { size, .. } => FileContent::Simulated(size),
    }
}

impl CloudFs for H2Cloud {
    fn name(&self) -> &'static str {
        "H2Cloud"
    }

    fn uses_separate_index(&self) -> bool {
        false
    }

    fn create_account(&self, ctx: &mut OpCtx, account: &str) -> Result<()> {
        let mw = self.mw(account);
        self.op_create_account(&mw, ctx, account)
    }

    fn delete_account(&self, ctx: &mut OpCtx, account: &str) -> Result<()> {
        self.cluster().delete_account_ctx(ctx, account)
    }

    fn mkdir(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<()> {
        let mw = self.mw(account);
        self.observe(&mw, "MKDIR", ctx, |ctx| {
            self.op_mkdir(&mw, ctx, account, path)
        })
    }

    fn rmdir(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<()> {
        let mw = self.mw(account);
        self.observe(&mw, "RMDIR", ctx, |ctx| {
            self.op_rmdir(&mw, ctx, account, path)
        })
    }

    fn mv(&self, ctx: &mut OpCtx, account: &str, from: &FsPath, to: &FsPath) -> Result<()> {
        let mw = self.mw(account);
        self.observe(&mw, "MOVE", ctx, |ctx| {
            self.op_mv(&mw, ctx, account, from, to)
        })
    }

    fn copy(&self, ctx: &mut OpCtx, account: &str, from: &FsPath, to: &FsPath) -> Result<()> {
        let mw = self.mw(account);
        self.observe(&mw, "COPY", ctx, |ctx| {
            self.op_copy(&mw, ctx, account, from, to)
        })
    }

    fn list(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<Vec<String>> {
        let mw = self.mw(account);
        self.observe(&mw, "LIST", ctx, |ctx| {
            self.op_list(&mw, ctx, account, path)
        })
    }

    fn list_detailed(
        &self,
        ctx: &mut OpCtx,
        account: &str,
        path: &FsPath,
    ) -> Result<Vec<DirEntry>> {
        let mw = self.mw(account);
        self.observe(&mw, "LIST-DETAIL", ctx, |ctx| {
            self.op_list_detailed(&mw, ctx, account, path)
        })
    }

    fn write(
        &self,
        ctx: &mut OpCtx,
        account: &str,
        path: &FsPath,
        content: FileContent,
    ) -> Result<()> {
        let mw = self.mw(account);
        self.observe(&mw, "WRITE", ctx, |ctx| {
            self.op_write(&mw, ctx, account, path, content)
        })
    }

    fn read(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<FileContent> {
        let mw = self.mw(account);
        self.observe(&mw, "READ", ctx, |ctx| {
            self.op_read(&mw, ctx, account, path)
        })
    }

    fn delete_file(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<()> {
        let mw = self.mw(account);
        self.observe(&mw, "DELETE", ctx, |ctx| {
            self.op_delete_file(&mw, ctx, account, path)
        })
    }

    fn stat(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<DirEntry> {
        let mw = self.mw(account);
        self.observe(&mw, "STAT", ctx, |ctx| {
            self.op_stat(&mw, ctx, account, path)
        })
    }

    fn quiesce(&self) {
        self.layer.pump().expect("gossip pump failed");
    }

    /// Mass import: allocate namespaces for every directory, write content
    /// objects and descriptors, and write each NameRing object exactly
    /// once — instead of one patch-merge cycle per entry.
    fn bulk_import(
        &self,
        ctx: &mut OpCtx,
        account: &str,
        dirs: &[FsPath],
        files: &[(FsPath, u64)],
    ) -> Result<()> {
        use std::collections::HashMap;
        self.check_account(account)?;
        let keys = H2Keys::new(account);
        let mw = self.mw(account);
        let mut ns_of: HashMap<FsPath, NamespaceId> = HashMap::new();
        ns_of.insert(FsPath::root(), NamespaceId::ROOT);
        // Start each touched ring from its current state so imports into a
        // live tree merge rather than clobber.
        let mut rings: HashMap<NamespaceId, NameRing> = HashMap::new();
        let ring_of = |mw: &H2Middleware,
                       ctx: &mut OpCtx,
                       rings: &mut HashMap<NamespaceId, NameRing>,
                       ns: NamespaceId|
         -> Result<()> {
            if let std::collections::hash_map::Entry::Vacant(e) = rings.entry(ns) {
                let existing = mw.read_ring(ctx, &keys, ns)?;
                e.insert(existing);
            }
            Ok(())
        };
        for d in dirs {
            let parent = d
                .parent()
                .ok_or_else(|| H2Error::AlreadyExists("/".into()))?;
            let &parent_ns = ns_of
                .get(&parent)
                .ok_or_else(|| H2Error::NotFound(format!("import parent {parent}")))?;
            ring_of(&mw, ctx, &mut rings, parent_ns)?;
            let name = d.name().expect("non-root");
            if rings[&parent_ns].get(name).is_some() {
                return Err(H2Error::AlreadyExists(d.to_string()));
            }
            let ns = mw.allocate_namespace();
            let ts = mw.tick();
            mw.put_descriptor(
                ctx,
                &keys,
                parent_ns,
                name,
                &DirDescriptor {
                    ns,
                    name: name.to_string(),
                    created: ts,
                },
            )?;
            rings
                .get_mut(&parent_ns)
                .expect("ring loaded")
                .apply(name, Tuple::dir(ts, ns));
            rings.entry(ns).or_default();
            ns_of.insert(d.clone(), ns);
        }
        for (f, size) in files {
            let parent = f
                .parent()
                .ok_or_else(|| H2Error::IsADirectory("/".into()))?;
            let parent_ns = match ns_of.get(&parent) {
                Some(&ns) => ns,
                None => self.resolve_dir_ns(&mw, ctx, &keys, &parent)?,
            };
            ns_of.insert(parent.clone(), parent_ns);
            ring_of(&mw, ctx, &mut rings, parent_ns)?;
            let name = f.name().expect("non-root");
            mw.put_content(
                ctx,
                &keys,
                parent_ns,
                name,
                Payload::simulated(*size, &f.to_string()),
                None,
            )?;
            rings
                .get_mut(&parent_ns)
                .expect("ring loaded")
                .apply(name, Tuple::file(mw.tick(), *size));
        }
        for (ns, ring) in rings {
            mw.write_ring(ctx, &keys, ns, &ring)?;
        }
        Ok(())
    }

    fn storage_stats(&self) -> StoreStats {
        StoreStats {
            objects: self.cluster().object_count(),
            bytes: self.cluster().byte_count(),
            index_records: 0,
            index_bytes: 0,
        }
    }
}

/// A filesystem view bound to one specific middleware (see
/// [`H2Cloud::via`]). Implements the same [`CloudFs`] interface.
pub struct H2View<'a> {
    fs: &'a H2Cloud,
    mw: Arc<H2Middleware>,
}

impl H2View<'_> {
    pub fn middleware(&self) -> &Arc<H2Middleware> {
        &self.mw
    }
}

impl CloudFs for H2View<'_> {
    fn name(&self) -> &'static str {
        "H2Cloud"
    }

    fn uses_separate_index(&self) -> bool {
        false
    }

    fn create_account(&self, ctx: &mut OpCtx, account: &str) -> Result<()> {
        self.fs.op_create_account(&self.mw, ctx, account)
    }

    fn delete_account(&self, ctx: &mut OpCtx, account: &str) -> Result<()> {
        self.fs.cluster().delete_account_ctx(ctx, account)
    }

    fn mkdir(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<()> {
        self.fs.observe(&self.mw, "MKDIR", ctx, |ctx| {
            self.fs.op_mkdir(&self.mw, ctx, account, path)
        })
    }

    fn rmdir(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<()> {
        self.fs.observe(&self.mw, "RMDIR", ctx, |ctx| {
            self.fs.op_rmdir(&self.mw, ctx, account, path)
        })
    }

    fn mv(&self, ctx: &mut OpCtx, account: &str, from: &FsPath, to: &FsPath) -> Result<()> {
        self.fs.observe(&self.mw, "MOVE", ctx, |ctx| {
            self.fs.op_mv(&self.mw, ctx, account, from, to)
        })
    }

    fn copy(&self, ctx: &mut OpCtx, account: &str, from: &FsPath, to: &FsPath) -> Result<()> {
        self.fs.observe(&self.mw, "COPY", ctx, |ctx| {
            self.fs.op_copy(&self.mw, ctx, account, from, to)
        })
    }

    fn list(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<Vec<String>> {
        self.fs.observe(&self.mw, "LIST", ctx, |ctx| {
            self.fs.op_list(&self.mw, ctx, account, path)
        })
    }

    fn list_detailed(
        &self,
        ctx: &mut OpCtx,
        account: &str,
        path: &FsPath,
    ) -> Result<Vec<DirEntry>> {
        self.fs.observe(&self.mw, "LIST-DETAIL", ctx, |ctx| {
            self.fs.op_list_detailed(&self.mw, ctx, account, path)
        })
    }

    fn write(
        &self,
        ctx: &mut OpCtx,
        account: &str,
        path: &FsPath,
        content: FileContent,
    ) -> Result<()> {
        self.fs.observe(&self.mw, "WRITE", ctx, |ctx| {
            self.fs.op_write(&self.mw, ctx, account, path, content)
        })
    }

    fn read(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<FileContent> {
        self.fs.observe(&self.mw, "READ", ctx, |ctx| {
            self.fs.op_read(&self.mw, ctx, account, path)
        })
    }

    fn delete_file(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<()> {
        self.fs.observe(&self.mw, "DELETE", ctx, |ctx| {
            self.fs.op_delete_file(&self.mw, ctx, account, path)
        })
    }

    fn stat(&self, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<DirEntry> {
        self.fs.observe(&self.mw, "STAT", ctx, |ctx| {
            self.fs.op_stat(&self.mw, ctx, account, path)
        })
    }

    fn quiesce(&self) {
        self.fs.quiesce()
    }

    fn storage_stats(&self) -> StoreStats {
        self.fs.storage_stats()
    }
}
