//! The Formatter (§4.4): stringifying every data type into ASCII objects.
//!
//! Three object kinds need string forms beyond raw file bytes:
//!
//! * **NameRings** — "represented in lists of tuples … alphabetically
//!   sorted by their names and packed to ASCII strings one after another";
//! * **NameRing patches** — "firstly converted to the form of a normal
//!   NameRing and then represented in lists of tuples";
//! * **Directories** — "converted to ASCII strings corresponding to their
//!   namespaces" (the descriptor object holding the directory's UUID).
//!
//! The wire format is line-oriented: a magic+version header, then one
//! tab-separated tuple per line. Child names may not contain control
//! characters (enforced by [`h2fsapi::FsPath`]), so `\t`/`\n` are safe
//! separators. Parsing is strict: any malformed line is a
//! [`H2Error::Corrupt`] — better to surface corruption than to silently
//! drop filesystem state.

use h2util::hash::Digest128;
use h2util::{H2Error, NamespaceId, Result, Timestamp};

use crate::keys::DirDescriptor;
use crate::namering::{ChildRef, NameRing, Tuple};

/// Header of a serialised NameRing object.
pub const NAMERING_MAGIC: &str = "H2NR1";
/// Header of a serialised patch object (same body as a NameRing).
pub const PATCH_MAGIC: &str = "H2PT1";
/// Header of a directory descriptor object.
pub const DIR_MAGIC: &str = "H2DIR1";
/// Header of a multipart-file manifest object.
pub const MANIFEST_MAGIC: &str = "H2MP1";

/// Manifest stored at a multipart file's content key: enough to locate,
/// size and verify every part without per-part records. Parts are uniform
/// `part_bytes` slices of the logical content except the (possibly short)
/// last one, so the part list is fully derived from `total`/`part_bytes`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartManifest {
    /// Upload generation; part keys embed it so an overwrite never aliases
    /// the previous generation's parts.
    pub stamp: u64,
    /// Bytes per part (last part may be shorter).
    pub part_bytes: u64,
    /// Logical file size.
    pub total: u64,
    /// Whether parts carry inline bytes (`true`) or simulated content.
    pub inline: bool,
    /// Digest of the whole logical content (the file's ETag).
    pub digest: Digest128,
}

impl PartManifest {
    pub fn part_count(&self) -> u32 {
        self.total.div_ceil(self.part_bytes) as u32
    }

    /// Size of part `i` (all `part_bytes` except a short final part).
    pub fn part_size(&self, i: u32) -> u64 {
        let start = i as u64 * self.part_bytes;
        (self.total - start).min(self.part_bytes)
    }
}

/// Multipart manifest → ASCII object body.
pub fn manifest_to_string(m: &PartManifest) -> String {
    format!(
        "{MANIFEST_MAGIC}\n{}\t{}\t{}\t{}\t{}\n",
        m.stamp,
        m.part_bytes,
        m.total,
        if m.inline { 'I' } else { 'S' },
        m.digest
    )
}

/// ASCII object body → multipart manifest.
pub fn manifest_from_str(s: &str) -> Result<PartManifest> {
    let mut lines = s.lines();
    match lines.next() {
        Some(MANIFEST_MAGIC) => {}
        other => {
            return Err(H2Error::Corrupt(format!(
                "expected {MANIFEST_MAGIC} object, found {other:?}"
            )))
        }
    }
    let body = lines
        .next()
        .ok_or_else(|| H2Error::Corrupt("missing manifest body".into()))?;
    let mut f = body.split('\t');
    let (stamp, part_bytes, total, kind, digest) =
        match (f.next(), f.next(), f.next(), f.next(), f.next()) {
            (Some(a), Some(b), Some(c), Some(d), Some(e)) if f.next().is_none() => (a, b, c, d, e),
            _ => return Err(H2Error::Corrupt(format!("bad manifest body {body:?}"))),
        };
    let stamp: u64 = stamp
        .parse()
        .map_err(|_| H2Error::Corrupt(format!("bad manifest stamp {stamp:?}")))?;
    let part_bytes: u64 = part_bytes
        .parse()
        .map_err(|_| H2Error::Corrupt(format!("bad part size {part_bytes:?}")))?;
    let total: u64 = total
        .parse()
        .map_err(|_| H2Error::Corrupt(format!("bad total size {total:?}")))?;
    if part_bytes == 0 || total == 0 {
        return Err(H2Error::Corrupt(format!(
            "degenerate manifest: total {total}, part size {part_bytes}"
        )));
    }
    let inline = match kind {
        "I" => true,
        "S" => false,
        other => return Err(H2Error::Corrupt(format!("bad manifest kind {other:?}"))),
    };
    let digest = Digest128::from_hex(digest)
        .ok_or_else(|| H2Error::Corrupt(format!("bad manifest digest {digest:?}")))?;
    Ok(PartManifest {
        stamp,
        part_bytes,
        total,
        inline,
        digest,
    })
}

/// Serialise a NameRing (or, with [`PATCH_MAGIC`], a patch).
fn write_ring(magic: &str, ring: &NameRing) -> String {
    // Rough size: header + ~64 bytes per tuple.
    let mut out = String::with_capacity(16 + ring.len() * 64);
    out.push_str(magic);
    out.push(' ');
    out.push_str(&ring.len().to_string());
    out.push('\n');
    for (name, t) in ring.iter() {
        out.push_str(name);
        out.push('\t');
        out.push_str(&t.ts.to_string());
        out.push('\t');
        match t.child {
            ChildRef::File { size } => {
                out.push('F');
                out.push('\t');
                out.push_str(&size.to_string());
            }
            ChildRef::Dir { ns } => {
                out.push('D');
                out.push('\t');
                out.push_str(&ns.to_string());
            }
        }
        out.push('\t');
        // The paper's Deleted tag.
        out.push(if t.deleted { 'D' } else { 'A' });
        out.push('\n');
    }
    out
}

fn parse_ring(magic: &str, s: &str) -> Result<NameRing> {
    let mut lines = s.lines();
    let header = lines
        .next()
        .ok_or_else(|| H2Error::Corrupt("empty ring object".into()))?;
    let (got_magic, count) = header
        .split_once(' ')
        .ok_or_else(|| H2Error::Corrupt(format!("bad ring header {header:?}")))?;
    if got_magic != magic {
        return Err(H2Error::Corrupt(format!(
            "expected {magic} object, found {got_magic:?}"
        )));
    }
    let count: usize = count
        .parse()
        .map_err(|_| H2Error::Corrupt(format!("bad tuple count {count:?}")))?;
    let mut ring = NameRing::new();
    let mut seen = 0usize;
    for line in lines {
        let mut f = line.split('\t');
        let (name, ts, kind, aux, flag) = match (f.next(), f.next(), f.next(), f.next(), f.next()) {
            (Some(a), Some(b), Some(c), Some(d), Some(e)) if f.next().is_none() => (a, b, c, d, e),
            _ => return Err(H2Error::Corrupt(format!("bad tuple line {line:?}"))),
        };
        let ts: Timestamp = ts
            .parse()
            .map_err(|e| H2Error::Corrupt(format!("bad timestamp: {e}")))?;
        let child = match kind {
            "F" => ChildRef::File {
                size: aux
                    .parse()
                    .map_err(|_| H2Error::Corrupt(format!("bad size {aux:?}")))?,
            },
            "D" => ChildRef::Dir {
                ns: aux
                    .parse()
                    .map_err(|e| H2Error::Corrupt(format!("bad namespace: {e}")))?,
            },
            other => return Err(H2Error::Corrupt(format!("bad child kind {other:?}"))),
        };
        let deleted = match flag {
            "A" => false,
            "D" => true,
            other => return Err(H2Error::Corrupt(format!("bad deleted flag {other:?}"))),
        };
        ring.apply(name, Tuple { ts, child, deleted });
        seen += 1;
    }
    if seen != count {
        return Err(H2Error::Corrupt(format!(
            "tuple count mismatch: header says {count}, found {seen}"
        )));
    }
    Ok(ring)
}

/// NameRing → ASCII object body.
pub fn namering_to_string(ring: &NameRing) -> String {
    write_ring(NAMERING_MAGIC, ring)
}

/// ASCII object body → NameRing.
pub fn namering_from_str(s: &str) -> Result<NameRing> {
    parse_ring(NAMERING_MAGIC, s)
}

/// Patch → ASCII object body (a patch *is* a NameRing, §3.3.2).
pub fn patch_to_string(patch: &NameRing) -> String {
    write_ring(PATCH_MAGIC, patch)
}

/// ASCII object body → patch.
pub fn patch_from_str(s: &str) -> Result<NameRing> {
    parse_ring(PATCH_MAGIC, s)
}

/// Directory descriptor → ASCII object body.
pub fn dir_to_string(d: &DirDescriptor) -> String {
    format!("{DIR_MAGIC}\n{}\t{}\t{}\n", d.ns, d.name, d.created)
}

/// ASCII object body → directory descriptor.
pub fn dir_from_str(s: &str) -> Result<DirDescriptor> {
    let mut lines = s.lines();
    match lines.next() {
        Some(DIR_MAGIC) => {}
        other => {
            return Err(H2Error::Corrupt(format!(
                "expected {DIR_MAGIC} object, found {other:?}"
            )))
        }
    }
    let body = lines
        .next()
        .ok_or_else(|| H2Error::Corrupt("missing descriptor body".into()))?;
    let mut f = body.split('\t');
    let (ns, name, created) = match (f.next(), f.next(), f.next()) {
        (Some(a), Some(b), Some(c)) if f.next().is_none() => (a, b, c),
        _ => return Err(H2Error::Corrupt(format!("bad descriptor body {body:?}"))),
    };
    let ns: NamespaceId = ns
        .parse()
        .map_err(|e| H2Error::Corrupt(format!("bad namespace: {e}")))?;
    let created: Timestamp = created
        .parse()
        .map_err(|e| H2Error::Corrupt(format!("bad created ts: {e}")))?;
    Ok(DirDescriptor {
        ns,
        name: name.to_string(),
        created,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2util::NodeId;

    fn ts(m: u64) -> Timestamp {
        Timestamp::new(m, 0, NodeId(1))
    }

    fn sample_ring() -> NameRing {
        let mut r = NameRing::new();
        r.apply("cat", Tuple::file(ts(1), 4096));
        r.apply("bash", Tuple::file(ts(2), 1_048_576));
        r.apply(
            "docs",
            Tuple::dir(ts(3), NamespaceId::new(6, NodeId(1), 1_469_346_604_539)),
        );
        r.apply("gone", Tuple::file(ts(4), 7).tombstone(ts(5)));
        r
    }

    #[test]
    fn namering_roundtrip() {
        let r = sample_ring();
        let s = namering_to_string(&r);
        assert!(s.starts_with("H2NR1 4\n"));
        let back = namering_from_str(&s).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn tuples_are_alphabetical_in_the_string() {
        let s = namering_to_string(&sample_ring());
        let names: Vec<&str> = s
            .lines()
            .skip(1)
            .map(|l| l.split('\t').next().unwrap())
            .collect();
        assert_eq!(names, ["bash", "cat", "docs", "gone"]);
    }

    #[test]
    fn patch_roundtrip_and_magic_mismatch() {
        let r = sample_ring();
        let s = patch_to_string(&r);
        assert!(s.starts_with("H2PT1"));
        assert_eq!(patch_from_str(&s).unwrap(), r);
        // A patch is not accepted where a NameRing is expected.
        assert_eq!(namering_from_str(&s).unwrap_err().code(), "corrupt");
    }

    #[test]
    fn empty_ring_roundtrip() {
        let r = NameRing::new();
        let s = namering_to_string(&r);
        assert_eq!(s, "H2NR1 0\n");
        assert_eq!(namering_from_str(&s).unwrap(), r);
    }

    #[test]
    fn corruption_is_detected() {
        assert!(namering_from_str("").is_err());
        assert!(namering_from_str("H2NR1 notanumber\n").is_err());
        assert!(namering_from_str("H2NR1 1\nname-without-fields\n").is_err());
        assert!(namering_from_str("H2NR1 2\na\t1.0000.01\tF\t1\tA\n").is_err()); // count mismatch
        assert!(namering_from_str("H2NR1 1\na\t1.0000.01\tX\t1\tA\n").is_err()); // bad kind
        assert!(namering_from_str("H2NR1 1\na\t1.0000.01\tF\t1\tZ\n").is_err()); // bad flag
        assert!(namering_from_str("H2NR1 1\na\tbadts\tF\t1\tA\n").is_err());
    }

    #[test]
    fn descriptor_roundtrip() {
        let d = DirDescriptor {
            ns: NamespaceId::new(6, NodeId(1), 1_469_346_604_539),
            name: "home".to_string(),
            created: ts(42),
        };
        let s = dir_to_string(&d);
        assert!(s.starts_with("H2DIR1\n"));
        assert_eq!(dir_from_str(&s).unwrap(), d);
        assert!(dir_from_str("garbage").is_err());
        assert!(dir_from_str("H2DIR1\nonly-one-field\n").is_err());
    }

    #[test]
    fn manifest_roundtrip_and_part_geometry() {
        let m = PartManifest {
            stamp: 7,
            part_bytes: 4 << 20,
            total: (10 << 20) + 3,
            inline: false,
            digest: h2util::hash::hash128(b"content"),
        };
        let s = manifest_to_string(&m);
        assert!(s.starts_with("H2MP1\n"));
        assert!(s.is_ascii());
        assert_eq!(manifest_from_str(&s).unwrap(), m);
        assert_eq!(m.part_count(), 3);
        assert_eq!(m.part_size(0), 4 << 20);
        assert_eq!(m.part_size(1), 4 << 20);
        assert_eq!(m.part_size(2), (2 << 20) + 3);
        // Exact multiple: no empty trailing part.
        let even = PartManifest {
            total: 8 << 20,
            ..m
        };
        assert_eq!(even.part_count(), 2);
        assert_eq!(even.part_size(1), 4 << 20);
    }

    #[test]
    fn manifest_corruption_is_detected() {
        assert!(manifest_from_str("garbage").is_err());
        assert!(manifest_from_str("H2MP1\n").is_err());
        assert!(manifest_from_str("H2MP1\n1\t2\t3\tI\n").is_err()); // missing digest
        assert!(manifest_from_str("H2MP1\n1\t0\t3\tI\tdead\n").is_err()); // zero part size
        assert!(
            manifest_from_str("H2MP1\n1\t2\t3\tX\t00000000000000000000000000000000\n").is_err()
        );
        assert!(manifest_from_str("H2MP1\n1\t2\t3\tI\tnothex\n").is_err());
        // A manifest is not accepted where a ring is expected and vice versa.
        let m = PartManifest {
            stamp: 1,
            part_bytes: 2,
            total: 3,
            inline: true,
            digest: h2util::hash::hash128(b"x"),
        };
        assert!(namering_from_str(&manifest_to_string(&m)).is_err());
    }

    #[test]
    fn serialised_form_is_ascii() {
        let s = namering_to_string(&sample_ring());
        assert!(s.is_ascii(), "formatter must emit ASCII strings");
    }
}
