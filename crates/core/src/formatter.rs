//! The Formatter (§4.4): stringifying every data type into ASCII objects.
//!
//! Three object kinds need string forms beyond raw file bytes:
//!
//! * **NameRings** — "represented in lists of tuples … alphabetically
//!   sorted by their names and packed to ASCII strings one after another";
//! * **NameRing patches** — "firstly converted to the form of a normal
//!   NameRing and then represented in lists of tuples";
//! * **Directories** — "converted to ASCII strings corresponding to their
//!   namespaces" (the descriptor object holding the directory's UUID).
//!
//! The wire format is line-oriented: a magic+version header, then one
//! tab-separated tuple per line. Child names may not contain control
//! characters (enforced by [`h2fsapi::FsPath`]), so `\t`/`\n` are safe
//! separators. Parsing is strict: any malformed line is a
//! [`H2Error::Corrupt`] — better to surface corruption than to silently
//! drop filesystem state.

use h2util::chunker::ChunkParams;
use h2util::hash::Digest128;
use h2util::{H2Error, NamespaceId, Result, Timestamp};

use crate::keys::DirDescriptor;
use crate::namering::{ChildRef, NameRing, Tuple};

/// Header of a serialised NameRing object.
pub const NAMERING_MAGIC: &str = "H2NR1";
/// Header of a serialised patch object (same body as a NameRing).
pub const PATCH_MAGIC: &str = "H2PT1";
/// Header of a directory descriptor object.
pub const DIR_MAGIC: &str = "H2DIR1";
/// Header of a multipart-file manifest object.
pub const MANIFEST_MAGIC: &str = "H2MP1";
/// Header of a CAS-file manifest object (root of the block tree).
pub const CAS_MANIFEST_MAGIC: &str = "H2CAS1";
/// Header of a CAS branch (pointer) block.
pub const CAS_BRANCH_MAGIC: &str = "H2BR1";

/// Manifest stored at a multipart file's content key: enough to locate,
/// size and verify every part without per-part records. Parts are uniform
/// `part_bytes` slices of the logical content except the (possibly short)
/// last one, so the part list is fully derived from `total`/`part_bytes`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartManifest {
    /// Upload generation; part keys embed it so an overwrite never aliases
    /// the previous generation's parts.
    pub stamp: u64,
    /// Bytes per part (last part may be shorter).
    pub part_bytes: u64,
    /// Logical file size.
    pub total: u64,
    /// Whether parts carry inline bytes (`true`) or simulated content.
    pub inline: bool,
    /// Digest of the whole logical content (the file's ETag).
    pub digest: Digest128,
}

impl PartManifest {
    pub fn part_count(&self) -> u32 {
        self.total.div_ceil(self.part_bytes) as u32
    }

    /// Size of part `i` (all `part_bytes` except a short final part).
    pub fn part_size(&self, i: u32) -> u64 {
        let start = i as u64 * self.part_bytes;
        (self.total - start).min(self.part_bytes)
    }
}

/// Multipart manifest → ASCII object body.
pub fn manifest_to_string(m: &PartManifest) -> String {
    format!(
        "{MANIFEST_MAGIC}\n{}\t{}\t{}\t{}\t{}\n",
        m.stamp,
        m.part_bytes,
        m.total,
        if m.inline { 'I' } else { 'S' },
        m.digest
    )
}

/// ASCII object body → multipart manifest.
pub fn manifest_from_str(s: &str) -> Result<PartManifest> {
    let mut lines = s.lines();
    match lines.next() {
        Some(MANIFEST_MAGIC) => {}
        other => {
            return Err(H2Error::Corrupt(format!(
                "expected {MANIFEST_MAGIC} object, found {other:?}"
            )))
        }
    }
    let body = lines
        .next()
        .ok_or_else(|| H2Error::Corrupt("missing manifest body".into()))?;
    let mut f = body.split('\t');
    let (stamp, part_bytes, total, kind, digest) =
        match (f.next(), f.next(), f.next(), f.next(), f.next()) {
            (Some(a), Some(b), Some(c), Some(d), Some(e)) if f.next().is_none() => (a, b, c, d, e),
            _ => return Err(H2Error::Corrupt(format!("bad manifest body {body:?}"))),
        };
    let stamp: u64 = stamp
        .parse()
        .map_err(|_| H2Error::Corrupt(format!("bad manifest stamp {stamp:?}")))?;
    let part_bytes: u64 = part_bytes
        .parse()
        .map_err(|_| H2Error::Corrupt(format!("bad part size {part_bytes:?}")))?;
    let total: u64 = total
        .parse()
        .map_err(|_| H2Error::Corrupt(format!("bad total size {total:?}")))?;
    if part_bytes == 0 || total == 0 {
        return Err(H2Error::Corrupt(format!(
            "degenerate manifest: total {total}, part size {part_bytes}"
        )));
    }
    let inline = match kind {
        "I" => true,
        "S" => false,
        other => return Err(H2Error::Corrupt(format!("bad manifest kind {other:?}"))),
    };
    let digest = Digest128::from_hex(digest)
        .ok_or_else(|| H2Error::Corrupt(format!("bad manifest digest {digest:?}")))?;
    Ok(PartManifest {
        stamp,
        part_bytes,
        total,
        inline,
        digest,
    })
}

/// Manifest stored at a CAS file's content key: the root of a Venti-style
/// hash tree. `entries` are the top-level children — leaf blocks directly,
/// or branch blocks ([`CAS_BRANCH_MAGIC`]) once the child count exceeds the
/// tree fan-out — each recorded as `(content address, logical span)`.
/// Unlike the multipart manifest, `total == 0` is legal: an empty file is a
/// manifest with no entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CasManifest {
    /// Write generation. A retried manifest PUT re-sends the identical
    /// body (same stamp), letting the writer tell "I displaced my own torn
    /// attempt" from "I displaced a real previous generation" — only the
    /// latter's blocks may be released.
    pub stamp: u64,
    /// Branch levels between `entries` and the leaves: 0 = entries are
    /// leaf blocks, 1 = entries are branch blocks over leaves, and so on.
    pub depth: u32,
    /// Whether leaves carry inline bytes (`true`) or simulated content.
    pub inline: bool,
    /// Logical file size.
    pub total: u64,
    /// Digest of the whole logical content (the file's ETag).
    pub digest: Digest128,
    /// Chunking bounds the file was split with (needed so an append can
    /// re-derive the same boundaries).
    pub params: ChunkParams,
    /// Top-level children: `(content address, logical span)`.
    pub entries: Vec<(Digest128, u64)>,
}

/// CAS manifest → ASCII object body.
pub fn cas_manifest_to_string(m: &CasManifest) -> String {
    let mut out = String::with_capacity(64 + m.entries.len() * 48);
    out.push_str(CAS_MANIFEST_MAGIC);
    out.push(' ');
    out.push_str(&m.entries.len().to_string());
    out.push('\n');
    out.push_str(&format!(
        "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
        m.stamp,
        m.depth,
        if m.inline { 'I' } else { 'S' },
        m.total,
        m.digest,
        m.params.min,
        m.params.target,
        m.params.max
    ));
    for (d, len) in &m.entries {
        out.push_str(&format!("{d}\t{len}\n"));
    }
    out
}

/// One `digest \t len` child line (shared by manifests and branches).
fn parse_child_line(line: &str) -> Result<(Digest128, u64)> {
    let mut f = line.split('\t');
    let (d, len) = match (f.next(), f.next()) {
        (Some(a), Some(b)) if f.next().is_none() => (a, b),
        _ => return Err(H2Error::Corrupt(format!("bad cas child line {line:?}"))),
    };
    let d = Digest128::from_hex(d)
        .ok_or_else(|| H2Error::Corrupt(format!("bad cas child digest {d:?}")))?;
    let len: u64 = len
        .parse()
        .map_err(|_| H2Error::Corrupt(format!("bad cas child length {len:?}")))?;
    if len == 0 {
        return Err(H2Error::Corrupt("zero-length cas child".into()));
    }
    Ok((d, len))
}

/// `MAGIC <count>` header line, returning the count.
fn parse_counted_header(magic: &str, header: &str) -> Result<usize> {
    let (got, count) = header
        .split_once(' ')
        .ok_or_else(|| H2Error::Corrupt(format!("bad {magic} header {header:?}")))?;
    if got != magic {
        return Err(H2Error::Corrupt(format!(
            "expected {magic} object, found {got:?}"
        )));
    }
    count
        .parse()
        .map_err(|_| H2Error::Corrupt(format!("bad {magic} entry count {count:?}")))
}

/// ASCII object body → CAS manifest.
pub fn cas_manifest_from_str(s: &str) -> Result<CasManifest> {
    let mut lines = s.lines();
    let header = lines
        .next()
        .ok_or_else(|| H2Error::Corrupt("empty cas manifest".into()))?;
    let count = parse_counted_header(CAS_MANIFEST_MAGIC, header)?;
    let body = lines
        .next()
        .ok_or_else(|| H2Error::Corrupt("missing cas manifest body".into()))?;
    let fields: Vec<&str> = body.split('\t').collect();
    let [stamp, depth, kind, total, digest, min, target, max] = fields[..] else {
        return Err(H2Error::Corrupt(format!("bad cas manifest body {body:?}")));
    };
    let stamp: u64 = stamp
        .parse()
        .map_err(|_| H2Error::Corrupt(format!("bad cas stamp {stamp:?}")))?;
    let depth: u32 = depth
        .parse()
        .map_err(|_| H2Error::Corrupt(format!("bad cas depth {depth:?}")))?;
    let inline = match kind {
        "I" => true,
        "S" => false,
        other => return Err(H2Error::Corrupt(format!("bad cas kind {other:?}"))),
    };
    let total: u64 = total
        .parse()
        .map_err(|_| H2Error::Corrupt(format!("bad cas total {total:?}")))?;
    let digest = Digest128::from_hex(digest)
        .ok_or_else(|| H2Error::Corrupt(format!("bad cas digest {digest:?}")))?;
    let parse_bound = |v: &str| -> Result<u64> {
        v.parse()
            .map_err(|_| H2Error::Corrupt(format!("bad cas chunk bound {v:?}")))
    };
    let params = ChunkParams {
        min: parse_bound(min)?,
        target: parse_bound(target)?,
        max: parse_bound(max)?,
    };
    if params.min == 0 || params.min > params.target || params.target > params.max {
        return Err(H2Error::Corrupt(format!(
            "degenerate cas chunk bounds {params:?}"
        )));
    }
    let entries = lines.map(parse_child_line).collect::<Result<Vec<_>>>()?;
    if entries.len() != count {
        return Err(H2Error::Corrupt(format!(
            "cas entry count mismatch: header says {count}, found {}",
            entries.len()
        )));
    }
    if total == 0 && !entries.is_empty() {
        return Err(H2Error::Corrupt("empty cas file with child entries".into()));
    }
    if depth > 0 && entries.is_empty() {
        return Err(H2Error::Corrupt("cas tree depth with no entries".into()));
    }
    Ok(CasManifest {
        stamp,
        depth,
        inline,
        total,
        digest,
        params,
        entries,
    })
}

/// CAS branch block (children of one interior tree node) → ASCII body.
pub fn cas_branch_to_string(children: &[(Digest128, u64)]) -> String {
    let mut out = String::with_capacity(16 + children.len() * 48);
    out.push_str(CAS_BRANCH_MAGIC);
    out.push(' ');
    out.push_str(&children.len().to_string());
    out.push('\n');
    for (d, len) in children {
        out.push_str(&format!("{d}\t{len}\n"));
    }
    out
}

/// ASCII body → CAS branch children.
pub fn cas_branch_from_str(s: &str) -> Result<Vec<(Digest128, u64)>> {
    let mut lines = s.lines();
    let header = lines
        .next()
        .ok_or_else(|| H2Error::Corrupt("empty cas branch".into()))?;
    let count = parse_counted_header(CAS_BRANCH_MAGIC, header)?;
    let children = lines.map(parse_child_line).collect::<Result<Vec<_>>>()?;
    if children.len() != count {
        return Err(H2Error::Corrupt(format!(
            "cas branch count mismatch: header says {count}, found {}",
            children.len()
        )));
    }
    if children.is_empty() {
        return Err(H2Error::Corrupt("empty cas branch block".into()));
    }
    Ok(children)
}

/// Serialise a NameRing (or, with [`PATCH_MAGIC`], a patch).
fn write_ring(magic: &str, ring: &NameRing) -> String {
    // Rough size: header + ~64 bytes per tuple.
    let mut out = String::with_capacity(16 + ring.len() * 64);
    out.push_str(magic);
    out.push(' ');
    out.push_str(&ring.len().to_string());
    out.push('\n');
    for (name, t) in ring.iter() {
        out.push_str(name);
        out.push('\t');
        out.push_str(&t.ts.to_string());
        out.push('\t');
        match t.child {
            ChildRef::File { size } => {
                out.push('F');
                out.push('\t');
                out.push_str(&size.to_string());
            }
            ChildRef::Dir { ns } => {
                out.push('D');
                out.push('\t');
                out.push_str(&ns.to_string());
            }
        }
        out.push('\t');
        // The paper's Deleted tag.
        out.push(if t.deleted { 'D' } else { 'A' });
        out.push('\n');
    }
    out
}

fn parse_ring(magic: &str, s: &str) -> Result<NameRing> {
    let mut lines = s.lines();
    let header = lines
        .next()
        .ok_or_else(|| H2Error::Corrupt("empty ring object".into()))?;
    let (got_magic, count) = header
        .split_once(' ')
        .ok_or_else(|| H2Error::Corrupt(format!("bad ring header {header:?}")))?;
    if got_magic != magic {
        return Err(H2Error::Corrupt(format!(
            "expected {magic} object, found {got_magic:?}"
        )));
    }
    let count: usize = count
        .parse()
        .map_err(|_| H2Error::Corrupt(format!("bad tuple count {count:?}")))?;
    let mut ring = NameRing::new();
    let mut seen = 0usize;
    for line in lines {
        let mut f = line.split('\t');
        let (name, ts, kind, aux, flag) = match (f.next(), f.next(), f.next(), f.next(), f.next()) {
            (Some(a), Some(b), Some(c), Some(d), Some(e)) if f.next().is_none() => (a, b, c, d, e),
            _ => return Err(H2Error::Corrupt(format!("bad tuple line {line:?}"))),
        };
        let ts: Timestamp = ts
            .parse()
            .map_err(|e| H2Error::Corrupt(format!("bad timestamp: {e}")))?;
        let child = match kind {
            "F" => ChildRef::File {
                size: aux
                    .parse()
                    .map_err(|_| H2Error::Corrupt(format!("bad size {aux:?}")))?,
            },
            "D" => ChildRef::Dir {
                ns: aux
                    .parse()
                    .map_err(|e| H2Error::Corrupt(format!("bad namespace: {e}")))?,
            },
            other => return Err(H2Error::Corrupt(format!("bad child kind {other:?}"))),
        };
        let deleted = match flag {
            "A" => false,
            "D" => true,
            other => return Err(H2Error::Corrupt(format!("bad deleted flag {other:?}"))),
        };
        ring.apply(name, Tuple { ts, child, deleted });
        seen += 1;
    }
    if seen != count {
        return Err(H2Error::Corrupt(format!(
            "tuple count mismatch: header says {count}, found {seen}"
        )));
    }
    Ok(ring)
}

/// NameRing → ASCII object body.
pub fn namering_to_string(ring: &NameRing) -> String {
    write_ring(NAMERING_MAGIC, ring)
}

/// ASCII object body → NameRing.
pub fn namering_from_str(s: &str) -> Result<NameRing> {
    parse_ring(NAMERING_MAGIC, s)
}

/// Patch → ASCII object body (a patch *is* a NameRing, §3.3.2).
pub fn patch_to_string(patch: &NameRing) -> String {
    write_ring(PATCH_MAGIC, patch)
}

/// ASCII object body → patch.
pub fn patch_from_str(s: &str) -> Result<NameRing> {
    parse_ring(PATCH_MAGIC, s)
}

/// Directory descriptor → ASCII object body.
pub fn dir_to_string(d: &DirDescriptor) -> String {
    format!("{DIR_MAGIC}\n{}\t{}\t{}\n", d.ns, d.name, d.created)
}

/// ASCII object body → directory descriptor.
pub fn dir_from_str(s: &str) -> Result<DirDescriptor> {
    let mut lines = s.lines();
    match lines.next() {
        Some(DIR_MAGIC) => {}
        other => {
            return Err(H2Error::Corrupt(format!(
                "expected {DIR_MAGIC} object, found {other:?}"
            )))
        }
    }
    let body = lines
        .next()
        .ok_or_else(|| H2Error::Corrupt("missing descriptor body".into()))?;
    let mut f = body.split('\t');
    let (ns, name, created) = match (f.next(), f.next(), f.next()) {
        (Some(a), Some(b), Some(c)) if f.next().is_none() => (a, b, c),
        _ => return Err(H2Error::Corrupt(format!("bad descriptor body {body:?}"))),
    };
    let ns: NamespaceId = ns
        .parse()
        .map_err(|e| H2Error::Corrupt(format!("bad namespace: {e}")))?;
    let created: Timestamp = created
        .parse()
        .map_err(|e| H2Error::Corrupt(format!("bad created ts: {e}")))?;
    Ok(DirDescriptor {
        ns,
        name: name.to_string(),
        created,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2util::NodeId;

    fn ts(m: u64) -> Timestamp {
        Timestamp::new(m, 0, NodeId(1))
    }

    fn sample_ring() -> NameRing {
        let mut r = NameRing::new();
        r.apply("cat", Tuple::file(ts(1), 4096));
        r.apply("bash", Tuple::file(ts(2), 1_048_576));
        r.apply(
            "docs",
            Tuple::dir(ts(3), NamespaceId::new(6, NodeId(1), 1_469_346_604_539)),
        );
        r.apply("gone", Tuple::file(ts(4), 7).tombstone(ts(5)));
        r
    }

    #[test]
    fn namering_roundtrip() {
        let r = sample_ring();
        let s = namering_to_string(&r);
        assert!(s.starts_with("H2NR1 4\n"));
        let back = namering_from_str(&s).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn tuples_are_alphabetical_in_the_string() {
        let s = namering_to_string(&sample_ring());
        let names: Vec<&str> = s
            .lines()
            .skip(1)
            .map(|l| l.split('\t').next().unwrap())
            .collect();
        assert_eq!(names, ["bash", "cat", "docs", "gone"]);
    }

    #[test]
    fn patch_roundtrip_and_magic_mismatch() {
        let r = sample_ring();
        let s = patch_to_string(&r);
        assert!(s.starts_with("H2PT1"));
        assert_eq!(patch_from_str(&s).unwrap(), r);
        // A patch is not accepted where a NameRing is expected.
        assert_eq!(namering_from_str(&s).unwrap_err().code(), "corrupt");
    }

    #[test]
    fn empty_ring_roundtrip() {
        let r = NameRing::new();
        let s = namering_to_string(&r);
        assert_eq!(s, "H2NR1 0\n");
        assert_eq!(namering_from_str(&s).unwrap(), r);
    }

    #[test]
    fn corruption_is_detected() {
        assert!(namering_from_str("").is_err());
        assert!(namering_from_str("H2NR1 notanumber\n").is_err());
        assert!(namering_from_str("H2NR1 1\nname-without-fields\n").is_err());
        assert!(namering_from_str("H2NR1 2\na\t1.0000.01\tF\t1\tA\n").is_err()); // count mismatch
        assert!(namering_from_str("H2NR1 1\na\t1.0000.01\tX\t1\tA\n").is_err()); // bad kind
        assert!(namering_from_str("H2NR1 1\na\t1.0000.01\tF\t1\tZ\n").is_err()); // bad flag
        assert!(namering_from_str("H2NR1 1\na\tbadts\tF\t1\tA\n").is_err());
    }

    #[test]
    fn descriptor_roundtrip() {
        let d = DirDescriptor {
            ns: NamespaceId::new(6, NodeId(1), 1_469_346_604_539),
            name: "home".to_string(),
            created: ts(42),
        };
        let s = dir_to_string(&d);
        assert!(s.starts_with("H2DIR1\n"));
        assert_eq!(dir_from_str(&s).unwrap(), d);
        assert!(dir_from_str("garbage").is_err());
        assert!(dir_from_str("H2DIR1\nonly-one-field\n").is_err());
    }

    #[test]
    fn manifest_roundtrip_and_part_geometry() {
        let m = PartManifest {
            stamp: 7,
            part_bytes: 4 << 20,
            total: (10 << 20) + 3,
            inline: false,
            digest: h2util::hash::hash128(b"content"),
        };
        let s = manifest_to_string(&m);
        assert!(s.starts_with("H2MP1\n"));
        assert!(s.is_ascii());
        assert_eq!(manifest_from_str(&s).unwrap(), m);
        assert_eq!(m.part_count(), 3);
        assert_eq!(m.part_size(0), 4 << 20);
        assert_eq!(m.part_size(1), 4 << 20);
        assert_eq!(m.part_size(2), (2 << 20) + 3);
        // Exact multiple: no empty trailing part.
        let even = PartManifest {
            total: 8 << 20,
            ..m
        };
        assert_eq!(even.part_count(), 2);
        assert_eq!(even.part_size(1), 4 << 20);
    }

    #[test]
    fn manifest_corruption_is_detected() {
        assert!(manifest_from_str("garbage").is_err());
        assert!(manifest_from_str("H2MP1\n").is_err());
        assert!(manifest_from_str("H2MP1\n1\t2\t3\tI\n").is_err()); // missing digest
        assert!(manifest_from_str("H2MP1\n1\t0\t3\tI\tdead\n").is_err()); // zero part size
        assert!(
            manifest_from_str("H2MP1\n1\t2\t3\tX\t00000000000000000000000000000000\n").is_err()
        );
        assert!(manifest_from_str("H2MP1\n1\t2\t3\tI\tnothex\n").is_err());
        // A manifest is not accepted where a ring is expected and vice versa.
        let m = PartManifest {
            stamp: 1,
            part_bytes: 2,
            total: 3,
            inline: true,
            digest: h2util::hash::hash128(b"x"),
        };
        assert!(namering_from_str(&manifest_to_string(&m)).is_err());
    }

    #[test]
    fn serialised_form_is_ascii() {
        let s = namering_to_string(&sample_ring());
        assert!(s.is_ascii(), "formatter must emit ASCII strings");
    }

    #[test]
    fn cas_manifest_roundtrip_including_empty_file() {
        let m = CasManifest {
            stamp: 77,
            depth: 1,
            inline: true,
            total: 3000,
            digest: h2util::hash::hash128(b"whole"),
            params: ChunkParams::with_target(1 << 10),
            entries: vec![
                (h2util::hash::hash128(b"c0"), 1200),
                (h2util::hash::hash128(b"c1"), 1800),
            ],
        };
        let s = cas_manifest_to_string(&m);
        assert!(s.starts_with("H2CAS1 2\n"));
        assert!(s.is_ascii());
        assert_eq!(cas_manifest_from_str(&s).unwrap(), m);
        // Empty file: zero total, no entries — legal, unlike H2MP1.
        let empty = CasManifest {
            stamp: 1,
            depth: 0,
            inline: true,
            total: 0,
            digest: h2util::hash::hash128(b""),
            params: ChunkParams::default(),
            entries: vec![],
        };
        let s = cas_manifest_to_string(&empty);
        assert_eq!(cas_manifest_from_str(&s).unwrap(), empty);
    }

    #[test]
    fn cas_branch_roundtrip() {
        let children = vec![
            (h2util::hash::hash128(b"a"), 10u64),
            (h2util::hash::hash128(b"b"), 20u64),
        ];
        let s = cas_branch_to_string(&children);
        assert!(s.starts_with("H2BR1 2\n"));
        assert_eq!(cas_branch_from_str(&s).unwrap(), children);
    }

    #[test]
    fn cas_corruption_is_detected() {
        assert!(cas_manifest_from_str("").is_err());
        assert!(cas_manifest_from_str("H2CAS1 x\n").is_err());
        assert!(cas_manifest_from_str("H2CAS1 0\n").is_err()); // missing body
        let d = h2util::hash::hash128(b"x");
        // Count mismatch.
        assert!(
            cas_manifest_from_str(&format!("H2CAS1 2\n7\t0\tI\t5\t{d}\t1\t2\t4\n{d}\t5\n"))
                .is_err()
        );
        // Degenerate chunk bounds.
        assert!(
            cas_manifest_from_str(&format!("H2CAS1 1\n7\t0\tI\t5\t{d}\t4\t2\t1\n{d}\t5\n"))
                .is_err()
        );
        assert!(
            cas_manifest_from_str(&format!("H2CAS1 1\n7\t0\tI\t5\t{d}\t0\t2\t4\n{d}\t5\n"))
                .is_err()
        );
        // Zero-length child, bad digest, empty file with entries, branch
        // depth with no entries.
        assert!(
            cas_manifest_from_str(&format!("H2CAS1 1\n7\t0\tI\t5\t{d}\t1\t2\t4\n{d}\t0\n"))
                .is_err()
        );
        assert!(
            cas_manifest_from_str(&format!("H2CAS1 1\n7\t0\tI\t5\t{d}\t1\t2\t4\nnothex\t5\n"))
                .is_err()
        );
        assert!(
            cas_manifest_from_str(&format!("H2CAS1 1\n7\t0\tI\t0\t{d}\t1\t2\t4\n{d}\t5\n"))
                .is_err()
        );
        assert!(cas_manifest_from_str(&format!("H2CAS1 0\n7\t1\tI\t5\t{d}\t1\t2\t4\n")).is_err());
        // Branches: empty blocks and magic confusion are corrupt.
        assert!(cas_branch_from_str("H2BR1 0\n").is_err());
        assert!(cas_branch_from_str(&format!("H2CAS1 1\n{d}\t5\n")).is_err());
        assert!(cas_manifest_from_str(&cas_branch_to_string(&[(d, 5)])).is_err());
    }
}
