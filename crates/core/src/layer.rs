//! The H2Layer: a set of H2Middlewares and the gossip fabric between them.
//!
//! The paper deploys "a number of H2Middlewares … to distribute workloads
//! for load balancing" (§4.1), synchronised by gossip flooding (§3.3.2).
//! The layer owns the middlewares and moves gossip between them in one of
//! two ways:
//!
//! * [`H2Layer::pump`] — deterministic, single-threaded delivery loop used
//!   by tests and the figure harness: drain every outbox, deliver to every
//!   peer, repeat until quiescent.
//! * [`H2Layer::run_threaded`] — each middleware gets a real thread with a
//!   crossbeam channel inbox; gossip flows concurrently until the layer is
//!   told to stop. Used by the concurrency integration tests and the
//!   `gossip_convergence` example.
//!
//! Delivery is at-least-once and unordered on purpose — the NameRing merge
//! is a CRDT join, so duplicates and reordering are harmless, and the tests
//! inject both.

use std::collections::VecDeque;
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use h2util::metrics::MetricsRegistry;
use h2util::{NodeId, Result};
use swiftsim::Cluster;

use crate::middleware::{GossipMsg, H2Middleware, MaintenanceMode};
// Historically defined here; the middleware now owns the counter (it bumps
// it inside `step_merges`), so the layer re-exports the name.
pub use crate::middleware::MERGE_FAILURES;

/// Counter bumped when applying an incoming gossip message fails (the
/// message is requeued with bounded attempts, not dropped).
pub const GOSSIP_APPLY_FAILURES: &str = "gossip_apply_failures";

/// How many times a gossip message that fails to apply is re-attempted
/// before it is finally dropped. Transient faults redraw on every attempt,
/// so even sustained high error rates survive this budget; a message that
/// exhausts it was facing a persistent outage, and the next merge on the
/// same ring re-gossips the state anyway.
const MAX_GOSSIP_ATTEMPTS: u32 = 32;

/// Gossip delivery fault injection for the convergence tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct GossipFaults {
    /// Drop every k-th message (0 = drop nothing). Gossip is unreliable in
    /// real systems; convergence must survive because merges re-gossip.
    pub drop_every: usize,
    /// Duplicate every k-th message (0 = duplicate nothing).
    pub duplicate_every: usize,
}

/// The middleware layer in front of one object cloud.
pub struct H2Layer {
    middlewares: Vec<Arc<H2Middleware>>,
    cluster: Arc<Cluster>,
}

impl H2Layer {
    /// Build `n` middlewares (node ids 1..=n) over `cluster`, NameRing
    /// cache disabled, each middleware with a private metrics registry.
    pub fn new(cluster: Arc<Cluster>, n: usize, mode: MaintenanceMode) -> Self {
        Self::with_cache(cluster, n, mode, Arc::new(MetricsRegistry::new()), 0)
    }

    /// Build `n` middlewares (node ids 1..=n) over `cluster`, all reporting
    /// into the shared `metrics` registry, each with a NameRing cache of
    /// `cache_capacity` rings (0 disables the cache).
    pub fn with_cache(
        cluster: Arc<Cluster>,
        n: usize,
        mode: MaintenanceMode,
        metrics: Arc<MetricsRegistry>,
        cache_capacity: usize,
    ) -> Self {
        Self::with_observability(
            cluster,
            n,
            mode,
            metrics,
            cache_capacity,
            0.0,
            false,
            false,
            false,
            false,
        )
    }

    /// Like [`with_cache`](Self::with_cache), plus span tracing: each
    /// middleware gets a bounded [`h2util::trace::TraceCollector`] sampling
    /// `trace_sample` of its operations (0 disables tracing entirely), the
    /// group-commit switch (see
    /// [`H2Middleware::submit_patch`](crate::middleware::H2Middleware)),
    /// the read-path cache switches (`path_cache` / `neg_cache`, see
    /// [`H2Middleware::path_cache_lookup`]), and the content-addressed
    /// content plane switch (`cas`, see DESIGN.md).
    #[allow(clippy::too_many_arguments)]
    pub fn with_observability(
        cluster: Arc<Cluster>,
        n: usize,
        mode: MaintenanceMode,
        metrics: Arc<MetricsRegistry>,
        cache_capacity: usize,
        trace_sample: f64,
        group_commit: bool,
        path_cache: bool,
        neg_cache: bool,
        cas: bool,
    ) -> Self {
        assert!(n >= 1, "need at least one middleware");
        // Pre-register the layer's failure counters so `op=metrics` always
        // lists them, even before the first failure.
        metrics.counter(GOSSIP_APPLY_FAILURES);
        metrics.counter(MERGE_FAILURES);
        metrics.counter(h2util::retry::OP_RETRIES);
        metrics.counter(h2util::retry::OP_GAVE_UP);
        metrics.histogram(h2util::retry::RETRY_BACKOFF_MS);
        if trace_sample > 0.0 {
            // Same idea for the per-stage breakdown histograms: only listed
            // when tracing can actually feed them.
            metrics.histogram(h2util::trace::STAGE_RING_MS);
            metrics.histogram(h2util::trace::STAGE_CONTENT_MS);
            metrics.histogram(h2util::trace::STAGE_QUORUM_MS);
            metrics.histogram(h2util::trace::STAGE_BACKOFF_MS);
        }
        let middlewares = (1..=n as u16)
            .map(|i| {
                H2Middleware::with_observability(
                    NodeId(i),
                    cluster.clone(),
                    mode,
                    metrics.clone(),
                    cache_capacity,
                    Arc::new(h2util::trace::TraceCollector::new(
                        trace_sample,
                        h2util::trace::DEFAULT_TRACE_CAP,
                        i,
                    )),
                    group_commit,
                    path_cache,
                    neg_cache,
                    cas,
                )
            })
            .collect();
        H2Layer {
            middlewares,
            cluster,
        }
    }

    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    pub fn middlewares(&self) -> &[Arc<H2Middleware>] {
        &self.middlewares
    }

    pub fn len(&self) -> usize {
        self.middlewares.len()
    }

    pub fn is_empty(&self) -> bool {
        self.middlewares.is_empty()
    }

    /// Middleware by 0-based index.
    pub fn mw(&self, idx: usize) -> &Arc<H2Middleware> {
        &self.middlewares[idx]
    }

    /// Sticky middleware choice for an account (same account always lands
    /// on the same middleware, like a load balancer with session affinity).
    pub fn mw_for_account(&self, account: &str) -> &Arc<H2Middleware> {
        let h = h2util::hash64(account.as_bytes()) as usize;
        &self.middlewares[h % self.middlewares.len()]
    }

    /// Deterministic gossip pump: run background mergers, then flood
    /// outboxes to all peers, repeating until no work remains. Returns the
    /// number of gossip deliveries performed.
    pub fn pump(&self) -> Result<usize> {
        self.pump_with_faults(GossipFaults::default())
    }

    /// [`pump`](Self::pump) but delivering each round's messages to a
    /// target middleware as one [`H2Middleware::on_gossip_batch`] call
    /// (single lock acquisition per target), the way the threaded fabric
    /// applies its inbox. Observationally equivalent to per-message
    /// delivery; the equivalence suite proves it.
    pub fn pump_batched(&self) -> Result<usize> {
        self.pump_batched_with_faults(GossipFaults::default())
    }

    /// [`pump_batched`](Self::pump_batched) with fault injection.
    pub fn pump_batched_with_faults(&self, faults: GossipFaults) -> Result<usize> {
        self.pump_impl(faults, true)
    }

    /// [`pump`](Self::pump) with fault injection.
    pub fn pump_with_faults(&self, faults: GossipFaults) -> Result<usize> {
        self.pump_impl(faults, false)
    }

    fn pump_impl(&self, faults: GossipFaults, batched: bool) -> Result<usize> {
        let mut deliveries = 0usize;
        let mut msg_seq = 0usize;
        loop {
            let mut progressed = false;
            for mw in &self.middlewares {
                if mw.step_merges().applied > 0 {
                    progressed = true;
                }
            }
            let mut batch: Vec<(NodeId, GossipMsg)> = Vec::new();
            for mw in &self.middlewares {
                for msg in mw.take_outbox() {
                    batch.push((mw.node(), msg));
                }
            }
            // Expand the batch into per-target deliveries so one failing
            // target can be retried without re-applying to the others.
            let mut queue: VecDeque<(usize, GossipMsg, u32)> = VecDeque::new();
            for (origin, msg) in batch {
                msg_seq += 1;
                if faults.drop_every > 0 && msg_seq.is_multiple_of(faults.drop_every) {
                    continue;
                }
                let copies = if faults.duplicate_every > 0
                    && msg_seq.is_multiple_of(faults.duplicate_every)
                {
                    2
                } else {
                    1
                };
                for _ in 0..copies {
                    for (idx, mw) in self.middlewares.iter().enumerate() {
                        if mw.node() != origin {
                            queue.push_back((idx, msg.clone(), 0));
                        }
                    }
                }
                progressed = true;
            }
            if batched {
                // Drain the queue in rounds: all messages bound for one
                // target this round go down in a single batch application.
                // Failures requeue individually for the next round.
                while !queue.is_empty() {
                    let mut per_target: Vec<Vec<(GossipMsg, u32)>> =
                        vec![Vec::new(); self.middlewares.len()];
                    for (idx, msg, attempts) in queue.drain(..) {
                        per_target[idx].push((msg, attempts));
                    }
                    for (idx, entries) in per_target.into_iter().enumerate() {
                        if entries.is_empty() {
                            continue;
                        }
                        let mw = &self.middlewares[idx];
                        let msgs: Vec<GossipMsg> = entries.iter().map(|(m, _)| m.clone()).collect();
                        for ((msg, attempts), res) in
                            entries.into_iter().zip(mw.on_gossip_batch(&msgs))
                        {
                            match res {
                                Ok(_) => deliveries += 1,
                                Err(e) => {
                                    mw.metrics().counter(GOSSIP_APPLY_FAILURES).incr();
                                    if attempts + 1 >= MAX_GOSSIP_ATTEMPTS {
                                        return Err(e);
                                    }
                                    queue.push_back((idx, msg, attempts + 1));
                                }
                            }
                        }
                    }
                }
            } else {
                while let Some((idx, msg, attempts)) = queue.pop_front() {
                    let mw = &self.middlewares[idx];
                    match mw.on_gossip(&msg) {
                        Ok(_) => deliveries += 1,
                        Err(e) => {
                            // An earlier revision `?`-propagated here,
                            // silently losing the message (it was already
                            // drained from the outbox). Requeue with bounded
                            // attempts — transient faults redraw on retry —
                            // and only propagate once the budget is spent.
                            mw.metrics().counter(GOSSIP_APPLY_FAILURES).incr();
                            if attempts + 1 >= MAX_GOSSIP_ATTEMPTS {
                                return Err(e);
                            }
                            queue.push_back((idx, msg, attempts + 1));
                        }
                    }
                }
            }
            if !progressed {
                return Ok(deliveries);
            }
        }
    }

    /// True when no middleware holds unmerged patches or queued gossip.
    pub fn is_quiescent(&self) -> bool {
        self.middlewares
            .iter()
            .all(|mw| mw.pending_descriptors() == 0)
    }

    /// Anti-entropy sweep across the layer: every middleware re-validates
    /// every NameRing it holds state for against the cloud
    /// ([`H2Middleware::resync`]), then a pump floods the re-gossips the
    /// sweep produced. Run this after a fault window (gossip dropped during
    /// it leaves untouched rings stale forever otherwise) or after a
    /// placement-ring swap. Returns the total rings refreshed.
    pub fn resync(&self) -> Result<usize> {
        let mut refreshed = 0usize;
        for mw in &self.middlewares {
            refreshed += mw.resync()?;
        }
        self.pump()?;
        Ok(refreshed)
    }

    // ----- elastic topology -------------------------------------------------

    /// Operator op: add a storage device and rebalance onto it — the
    /// layer-level wrapper over [`Cluster::add_node`] that also drives the
    /// migrator `steps_per_round` partitions at a time (0 = all at once)
    /// and resyncs the middleware caches once movement stops.
    pub fn add_node(&self, zone: u8, weight: f64, steps_per_round: usize) -> Result<u16> {
        let id = self.cluster.add_node(zone, weight)?;
        self.finish_rebalance(steps_per_round)?;
        Ok(id.0)
    }

    /// Operator op: drain a device out of the ring (see
    /// [`Cluster::drain_node`]), migrating its partitions away.
    pub fn drain_node(&self, device: u16, steps_per_round: usize) -> Result<()> {
        self.cluster.drain_node(swiftsim::DeviceId(device))?;
        self.finish_rebalance(steps_per_round)
    }

    /// Operator op: re-weight a device (0 drains it; see
    /// [`Cluster::set_weight`]).
    pub fn set_weight(&self, device: u16, weight: f64, steps_per_round: usize) -> Result<()> {
        self.cluster
            .set_weight(swiftsim::DeviceId(device), weight)?;
        self.finish_rebalance(steps_per_round)
    }

    /// Drive the migrator until it stops making progress, then resync the
    /// middleware caches under the new placement. Blocked partitions (down
    /// devices) stay pending — serving falls back to the old assignment —
    /// and a later call (or [`Cluster::migrate_all`]) finishes the job.
    fn finish_rebalance(&self, steps_per_round: usize) -> Result<()> {
        if steps_per_round == 0 {
            self.cluster.migrate_all();
        } else {
            loop {
                if self.cluster.migrate_step(steps_per_round) == 0 {
                    break;
                }
            }
        }
        self.resync()?;
        Ok(())
    }

    /// Spawn one thread per middleware that continuously merges pending
    /// patches and exchanges gossip over crossbeam channels. Returns a
    /// handle; drop or call [`ThreadedGossip::stop`] to join the threads.
    pub fn run_threaded(&self) -> ThreadedGossip {
        let n = self.middlewares.len();
        let (senders, receivers): (Vec<Sender<GossipMsg>>, Vec<Receiver<GossipMsg>>) =
            (0..n).map(|_| unbounded()).unzip();
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut handles = Vec::with_capacity(n);
        for (i, mw) in self.middlewares.iter().enumerate() {
            let mw = mw.clone();
            let rx = receivers[i].clone();
            let peers: Vec<Sender<GossipMsg>> = senders
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, s)| s.clone())
                .collect();
            let stop = stop.clone();
            handles.push(std::thread::spawn(move || {
                // Messages whose application failed, waiting for another
                // attempt. An earlier revision `unwrap_or`-swallowed the
                // error and dropped the message permanently — a peer that
                // hit a transient fault stayed stale until some unrelated
                // merge happened to re-gossip the same ring.
                let mut backlog: VecDeque<(GossipMsg, u32)> = VecDeque::new();
                let mut idle_rounds = 0u32;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let mut worked = false;
                    // Merge failures restore the chain internally and are
                    // counted by the middleware; the next round retries.
                    if mw.step_merges().applied > 0 {
                        worked = true;
                    }
                    for msg in mw.take_outbox() {
                        for p in &peers {
                            let _ = p.send(msg.clone());
                        }
                        worked = true;
                    }
                    while let Ok(msg) = rx.try_recv() {
                        backlog.push_back((msg, 0));
                        worked = true;
                    }
                    // One application attempt per backlog entry per round,
                    // the whole backlog applied as a single batch (one lock
                    // acquisition, one ring fetch per distinct ring).
                    // Failing messages requeue individually — a bad message
                    // never holds the rest of the batch hostage.
                    let mut max_requeued_attempt: Option<u32> = None;
                    if !backlog.is_empty() {
                        let entries: Vec<(GossipMsg, u32)> = backlog.drain(..).collect();
                        let msgs: Vec<GossipMsg> = entries.iter().map(|(m, _)| m.clone()).collect();
                        for ((msg, attempts), res) in
                            entries.into_iter().zip(mw.on_gossip_batch(&msgs))
                        {
                            match res {
                                Ok(forward) => {
                                    if forward {
                                        for p in &peers {
                                            let _ = p.send(msg.clone());
                                        }
                                    }
                                    worked = true;
                                }
                                Err(_) => {
                                    mw.metrics().counter(GOSSIP_APPLY_FAILURES).incr();
                                    if attempts + 1 < MAX_GOSSIP_ATTEMPTS {
                                        max_requeued_attempt = Some(
                                            max_requeued_attempt.unwrap_or(0).max(attempts + 1),
                                        );
                                        backlog.push_back((msg, attempts + 1));
                                    }
                                }
                            }
                        }
                    }
                    if let Some(attempt) = max_requeued_attempt {
                        // Back off before the next application round so a
                        // sustained outage doesn't burn the attempt budget
                        // in microseconds.
                        idle_rounds = 0;
                        let backoff = std::time::Duration::from_millis(1)
                            .saturating_mul(1u32 << attempt.min(5))
                            .min(std::time::Duration::from_millis(20));
                        h2util::clock::wall_sleep(backoff);
                    } else if !worked {
                        // Adaptive idle: poll tightly right after real work
                        // (more is probably coming) and ramp towards ~5ms
                        // naps on a quiet fabric instead of burning a core.
                        let nap = std::time::Duration::from_micros(200)
                            .saturating_mul(1u32 << idle_rounds.min(5))
                            .min(std::time::Duration::from_millis(5));
                        idle_rounds = idle_rounds.saturating_add(1);
                        h2util::clock::wall_sleep(nap);
                    } else {
                        idle_rounds = 0;
                    }
                }
            }));
        }
        ThreadedGossip { stop, handles }
    }
}

/// Handle to the threaded gossip fabric.
pub struct ThreadedGossip {
    stop: Arc<std::sync::atomic::AtomicBool>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadedGossip {
    /// Signal the gossip threads to finish and join them.
    pub fn stop(mut self) {
        self.stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ThreadedGossip {
    fn drop(&mut self) {
        self.stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::H2Keys;
    use crate::namering::{NameRing, Tuple};
    use h2util::{NamespaceId, OpCtx};
    use swiftsim::ClusterConfig;

    fn layer(n: usize, mode: MaintenanceMode) -> H2Layer {
        let cluster = Cluster::new(ClusterConfig {
            nodes: 4,
            replicas: 3,
            part_power: 6,
            cost: Arc::new(h2util::CostModel::zero()),
            faults: None,
        });
        cluster.create_account("alice").unwrap();
        cluster
            .create_container("alice", crate::keys::H2_CONTAINER, false)
            .unwrap();
        H2Layer::new(cluster, n, mode)
    }

    fn ns(seq: u64) -> NamespaceId {
        NamespaceId::new(seq, NodeId(1), 42)
    }

    #[test]
    fn pump_converges_all_middlewares() {
        let layer = layer(3, MaintenanceMode::Deferred);
        let keys = H2Keys::new("alice");
        let mut ctx = OpCtx::for_test();
        // Each middleware writes a different child into the same ring.
        for (i, mw) in layer.middlewares().iter().enumerate() {
            let mut p = NameRing::new();
            p.apply(&format!("f{i}"), Tuple::file(mw.tick(), i as u64));
            mw.submit_patch(&mut ctx, &keys, ns(1), p).unwrap();
        }
        assert!(!layer.is_quiescent());
        layer.pump().unwrap();
        assert!(layer.is_quiescent());
        // Every middleware's view has all three children.
        for mw in layer.middlewares() {
            let r = mw.read_ring(&mut ctx, &keys, ns(1)).unwrap();
            assert_eq!(r.live_len(), 3, "node {} diverged", mw.node());
        }
    }

    #[test]
    fn pump_survives_dropped_and_duplicated_gossip() {
        let layer = layer(4, MaintenanceMode::Deferred);
        let keys = H2Keys::new("alice");
        let mut ctx = OpCtx::for_test();
        for round in 0..3 {
            for (i, mw) in layer.middlewares().iter().enumerate() {
                let mut p = NameRing::new();
                p.apply(&format!("r{round}-f{i}"), Tuple::file(mw.tick(), i as u64));
                mw.submit_patch(&mut ctx, &keys, ns(1), p).unwrap();
            }
            layer
                .pump_with_faults(GossipFaults {
                    drop_every: 3,
                    duplicate_every: 4,
                })
                .unwrap();
        }
        // Gossip losses may leave some nodes behind, but the global object
        // must contain everything (merges write through) …
        let g = layer
            .mw(0)
            .fetch_global_ring(&mut ctx, &keys, ns(1))
            .unwrap();
        assert_eq!(g.live_len(), 12);
        // … and a clean pump round brings every local view up to date.
        layer.pump().unwrap();
        for mw in layer.middlewares() {
            let local_plus_global = mw.read_ring(&mut ctx, &keys, ns(1)).unwrap();
            assert_eq!(local_plus_global.live_len(), 12);
        }
    }

    #[test]
    fn batched_pump_survives_dropped_and_duplicated_gossip() {
        let layer = layer(4, MaintenanceMode::Deferred);
        let keys = H2Keys::new("alice");
        let mut ctx = OpCtx::for_test();
        for round in 0..3 {
            for (i, mw) in layer.middlewares().iter().enumerate() {
                let mut p = NameRing::new();
                p.apply(&format!("r{round}-f{i}"), Tuple::file(mw.tick(), i as u64));
                mw.submit_patch(&mut ctx, &keys, ns(1), p).unwrap();
            }
            layer
                .pump_batched_with_faults(GossipFaults {
                    drop_every: 3,
                    duplicate_every: 4,
                })
                .unwrap();
        }
        let g = layer
            .mw(0)
            .fetch_global_ring(&mut ctx, &keys, ns(1))
            .unwrap();
        assert_eq!(g.live_len(), 12);
        layer.pump_batched().unwrap();
        for mw in layer.middlewares() {
            let local_plus_global = mw.read_ring(&mut ctx, &keys, ns(1)).unwrap();
            assert_eq!(local_plus_global.live_len(), 12);
        }
    }

    #[test]
    fn threaded_gossip_converges() {
        let layer = layer(3, MaintenanceMode::Deferred);
        let keys = H2Keys::new("alice");
        let handle = layer.run_threaded();
        let mut ctx = OpCtx::for_test();
        for (i, mw) in layer.middlewares().iter().enumerate() {
            let mut p = NameRing::new();
            p.apply(&format!("t{i}"), Tuple::file(mw.tick(), i as u64));
            mw.submit_patch(&mut ctx, &keys, ns(2), p).unwrap();
        }
        // Wait (bounded) for the threads to merge and gossip everything.
        let deadline = h2util::clock::wall_now() + std::time::Duration::from_secs(10);
        loop {
            let done = layer.middlewares().iter().all(|mw| {
                let mut c = OpCtx::for_test();
                mw.read_ring(&mut c, &keys, ns(2))
                    .map(|r| r.live_len() == 3)
                    .unwrap_or(false)
            });
            if done {
                break;
            }
            assert!(
                h2util::clock::wall_now() < deadline,
                "threaded gossip failed to converge within 10s"
            );
            h2util::clock::wall_sleep(std::time::Duration::from_millis(5));
        }
        handle.stop();
    }

    #[test]
    fn threaded_gossip_survives_transient_apply_failures() {
        use h2util::faults::{FaultPlan, FaultSpec, OpClass};
        let layer = layer(3, MaintenanceMode::Deferred);
        let keys = H2Keys::new("alice");
        let mut ctx = OpCtx::for_test();
        // Heavy transient GET faults: merge cycles and gossip applications
        // fail often — even through the middleware's retry budget — until
        // the plan is cleared. Patch PUTs stay clean so submission works.
        let plan = FaultPlan::new(21).set(OpClass::Get, FaultSpec::errors(0.9));
        layer.cluster().set_fault_plan(Some(plan));
        for (i, mw) in layer.middlewares().iter().enumerate() {
            let mut p = NameRing::new();
            p.apply(&format!("g{i}"), Tuple::file(mw.tick(), i as u64));
            mw.submit_patch(&mut ctx, &keys, ns(3), p).unwrap();
        }
        let handle = layer.run_threaded();
        // Let the workers run into the fault wall, then clear it.
        h2util::clock::wall_sleep(std::time::Duration::from_millis(100));
        layer.cluster().set_fault_plan(None);
        let deadline = h2util::clock::wall_now() + std::time::Duration::from_secs(20);
        loop {
            let done = layer.middlewares().iter().all(|mw| {
                let mut c = OpCtx::for_test();
                mw.read_ring(&mut c, &keys, ns(3))
                    .map(|r| r.live_len() == 3)
                    .unwrap_or(false)
            });
            if done {
                break;
            }
            assert!(
                h2util::clock::wall_now() < deadline,
                "gossip did not recover from transient apply failures"
            );
            h2util::clock::wall_sleep(std::time::Duration::from_millis(5));
        }
        handle.stop();
        // The failures were observed, counted, and survived.
        let m = layer.mw(0).metrics();
        assert!(
            m.counter_value(GOSSIP_APPLY_FAILURES) + m.counter_value(MERGE_FAILURES) > 0,
            "expected at least one counted transient failure"
        );
    }

    #[test]
    fn sticky_account_routing_is_stable() {
        let layer = layer(3, MaintenanceMode::Eager);
        let a = layer.mw_for_account("alice").node();
        for _ in 0..10 {
            assert_eq!(layer.mw_for_account("alice").node(), a);
        }
    }
}
