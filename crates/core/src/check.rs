//! `fsck` for H2: verify the on-cloud representation invariants.
//!
//! H2 spreads one directory across several objects (a descriptor under the
//! parent namespace, a NameRing under its own namespace, plus the parent's
//! NameRing tuple). This checker walks an account's live tree and verifies
//! that the pieces agree:
//!
//! 1. every live directory tuple has a parseable descriptor object whose
//!    namespace matches the tuple's;
//! 2. every live directory's NameRing object exists (or is validly empty);
//! 3. every live file tuple has a content object, and the object's size
//!    matches the tuple's recorded size;
//! 4. no two live directory tuples share a namespace (each NameRing has
//!    exactly one live owner);
//! 5. timestamps in tuples are never newer than the issuing middleware
//!    clocks would allow (sanity: no timestamps from the far future);
//! 6. with the CAS content plane active, every file's content re-reads
//!    cleanly — the CAS read path re-hashes every branch and leaf block
//!    against its content address, so a clean read is an end-to-end
//!    integrity proof of the file's whole block tree.
//!
//! Used by integration tests after random workloads, failure injection and
//! GC — and usable by operators the way a real deployment would run a
//! nightly consistency audit.

use std::collections::{HashMap, HashSet};

use h2util::{H2Error, NamespaceId, OpCtx, Result};

use crate::fs::H2Cloud;
use crate::keys::H2Keys;
use crate::namering::ChildRef;

/// Outcome of one fsck pass.
#[derive(Debug, Clone, Default)]
pub struct FsckReport {
    /// Live directories visited (excluding the root).
    pub dirs: usize,
    /// Live files visited.
    pub files: usize,
    /// Tombstoned tuples seen (awaiting GC — not a violation).
    pub tombstones: usize,
    /// Human-readable invariant violations.
    pub violations: Vec<String>,
}

impl FsckReport {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Run a full consistency check over `account`'s tree.
pub fn fsck(fs: &H2Cloud, ctx: &mut OpCtx, account: &str) -> Result<FsckReport> {
    let keys = H2Keys::new(account);
    let mw = fs.layer().mw_for_account(account).clone();
    let mut report = FsckReport::default();
    let mut seen_ns: HashMap<NamespaceId, String> = HashMap::new();
    let mut stack: Vec<(NamespaceId, String)> = vec![(NamespaceId::ROOT, "/".to_string())];
    let mut visited: HashSet<NamespaceId> = HashSet::new();
    visited.insert(NamespaceId::ROOT);

    while let Some((ns, dir_path)) = stack.pop() {
        let ring = mw.read_ring(ctx, &keys, ns)?;
        for (name, tuple) in ring.iter() {
            if tuple.deleted {
                report.tombstones += 1;
                continue;
            }
            let child_path = if dir_path == "/" {
                format!("/{name}")
            } else {
                format!("{dir_path}/{name}")
            };
            match tuple.child {
                ChildRef::Dir { ns: child_ns } => {
                    report.dirs += 1;
                    // (4) unique live owner per namespace.
                    if let Some(other) = seen_ns.insert(child_ns, child_path.clone()) {
                        report.violations.push(format!(
                            "namespace {child_ns} referenced live by both {other} and {child_path}"
                        ));
                    }
                    // (1) descriptor exists, parses, and agrees.
                    match mw.get_descriptor(ctx, &keys, ns, name) {
                        Ok(desc) => {
                            if desc.ns != child_ns {
                                report.violations.push(format!(
                                    "{child_path}: descriptor namespace {} != tuple namespace {child_ns}",
                                    desc.ns
                                ));
                            }
                        }
                        Err(H2Error::NotFound(_)) => report.violations.push(format!(
                            "{child_path}: live directory tuple without descriptor object"
                        )),
                        Err(e) => report
                            .violations
                            .push(format!("{child_path}: descriptor unreadable: {e}")),
                    }
                    // (2) the ring object must be fetchable (empty is fine —
                    // read_ring treats missing as empty, so only transport
                    // or corruption errors count).
                    if let Err(e) = mw.fetch_global_ring(ctx, &keys, child_ns) {
                        report
                            .violations
                            .push(format!("{child_path}: NameRing unreadable: {e}"));
                    }
                    if visited.insert(child_ns) {
                        stack.push((child_ns, child_path.clone()));
                    }
                }
                ChildRef::File { size } => {
                    report.files += 1;
                    // (3) content object present with matching size.
                    match fs.stat_relative(ctx, account, ns, name) {
                        Ok((obj_size, _)) => {
                            if obj_size != size {
                                report.violations.push(format!(
                                    "{child_path}: tuple size {size} != object size {obj_size}"
                                ));
                            }
                        }
                        Err(H2Error::NotFound(_)) => report.violations.push(format!(
                            "{child_path}: live file tuple without content object"
                        )),
                        Err(e) => report
                            .violations
                            .push(format!("{child_path}: content unreadable: {e}")),
                    }
                    // (6) CAS hash-integrity audit: re-read the content.
                    // Hash mismatches anywhere in the manifest → branch →
                    // leaf tree surface as Corrupt here.
                    if mw.cas_active() {
                        match mw.get_content(ctx, &keys, ns, name) {
                            Ok(payload) => {
                                if payload.len() != size {
                                    report.violations.push(format!(
                                        "{child_path}: reassembled content is {} bytes, tuple says {size}",
                                        payload.len()
                                    ));
                                }
                            }
                            // Already reported by (3).
                            Err(H2Error::NotFound(_)) => {}
                            Err(e) => report
                                .violations
                                .push(format!("{child_path}: content fails CAS verification: {e}")),
                        }
                    }
                }
            }
            // (5) timestamps from the far future are clock corruption.
            if tuple.ts.millis > 4_000_000_000_000 {
                report.violations.push(format!(
                    "{child_path}: tuple timestamp {} is in the far future",
                    tuple.ts
                ));
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::H2Config;
    use h2fsapi::{CloudFs, FileContent, FsPath};
    use swiftsim::ObjectStore;

    fn p(s: &str) -> FsPath {
        FsPath::parse(s).unwrap()
    }

    fn setup() -> (H2Cloud, OpCtx) {
        let fs = H2Cloud::new(H2Config::for_test());
        let mut ctx = OpCtx::for_test();
        fs.create_account(&mut ctx, "alice").unwrap();
        (fs, ctx)
    }

    #[test]
    fn clean_tree_passes() {
        let (fs, mut ctx) = setup();
        fs.mkdir(&mut ctx, "alice", &p("/a")).unwrap();
        fs.mkdir(&mut ctx, "alice", &p("/a/b")).unwrap();
        fs.write(&mut ctx, "alice", &p("/a/b/f"), FileContent::Simulated(123))
            .unwrap();
        fs.delete_file(&mut ctx, "alice", &p("/a/b/f")).unwrap();
        fs.write(&mut ctx, "alice", &p("/top"), FileContent::from_str("x"))
            .unwrap();
        let report = fsck(&fs, &mut ctx, "alice").unwrap();
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.dirs, 2);
        assert_eq!(report.files, 1);
        assert_eq!(report.tombstones, 1);
    }

    #[test]
    fn clean_after_moves_copies_and_gc() {
        let (fs, mut ctx) = setup();
        fs.mkdir(&mut ctx, "alice", &p("/src")).unwrap();
        for i in 0..5 {
            fs.write(
                &mut ctx,
                "alice",
                &p(&format!("/src/f{i}")),
                FileContent::Simulated(10 + i),
            )
            .unwrap();
        }
        fs.copy(&mut ctx, "alice", &p("/src"), &p("/copy")).unwrap();
        fs.mv(&mut ctx, "alice", &p("/src"), &p("/moved")).unwrap();
        fs.rmdir(&mut ctx, "alice", &p("/copy")).unwrap();
        crate::gc::collect(
            &fs,
            &mut ctx,
            "alice",
            h2util::Timestamp::new(u64::MAX, 0, h2util::NodeId(0)),
        )
        .unwrap();
        let report = fsck(&fs, &mut ctx, "alice").unwrap();
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.dirs, 1);
        assert_eq!(report.files, 5);
    }

    #[test]
    fn detects_missing_content_object() {
        let (fs, mut ctx) = setup();
        fs.write(&mut ctx, "alice", &p("/f"), FileContent::Simulated(7))
            .unwrap();
        // Vandalise: delete the content object directly in the cloud.
        let keys = crate::keys::H2Keys::new("alice");
        fs.cluster()
            .delete(&mut ctx, &keys.child(h2util::NamespaceId::ROOT, "f"))
            .unwrap();
        let report = fsck(&fs, &mut ctx, "alice").unwrap();
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].contains("without content object"));
    }

    #[test]
    fn detects_missing_descriptor() {
        let (fs, mut ctx) = setup();
        fs.mkdir(&mut ctx, "alice", &p("/d")).unwrap();
        let keys = crate::keys::H2Keys::new("alice");
        fs.cluster()
            .delete(&mut ctx, &keys.child(h2util::NamespaceId::ROOT, "d"))
            .unwrap();
        let report = fsck(&fs, &mut ctx, "alice").unwrap();
        assert!(!report.is_clean());
        assert!(report.violations[0].contains("without descriptor"));
    }

    #[test]
    fn cas_audit_detects_tampered_block() {
        // Forced on at runtime so this runs on every feature leg.
        let fs = H2Cloud::new(H2Config {
            cas: true,
            ..H2Config::for_test()
        });
        let mut ctx = OpCtx::for_test();
        fs.create_account(&mut ctx, "alice").unwrap();
        fs.write(
            &mut ctx,
            "alice",
            &p("/f"),
            FileContent::from_str("precious bytes"),
        )
        .unwrap();
        let report = fsck(&fs, &mut ctx, "alice").unwrap();
        assert!(report.is_clean(), "{:?}", report.violations);
        // Vandalise the leaf block behind the manifest's first entry.
        let keys = crate::keys::H2Keys::new("alice");
        let manifest = fs
            .cluster()
            .get(&mut ctx, &keys.child(h2util::NamespaceId::ROOT, "f"))
            .unwrap();
        let m =
            crate::formatter::cas_manifest_from_str(manifest.payload.as_str().unwrap()).unwrap();
        let block = swiftsim::Cluster::cas_block_key(&m.entries[0].0.to_hex());
        fs.cluster()
            .put(
                &mut ctx,
                &block,
                swiftsim::Payload::from_static("garbage"),
                swiftsim::Meta::new(),
            )
            .unwrap();
        let report = fsck(&fs, &mut ctx, "alice").unwrap();
        assert!(!report.is_clean());
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("CAS verification")),
            "{:?}",
            report.violations
        );
    }

    #[test]
    fn detects_size_mismatch() {
        let (fs, mut ctx) = setup();
        fs.write(&mut ctx, "alice", &p("/f"), FileContent::Simulated(100))
            .unwrap();
        // Vandalise: overwrite the object with different-sized content
        // without updating the NameRing tuple.
        let keys = crate::keys::H2Keys::new("alice");
        fs.cluster()
            .put(
                &mut ctx,
                &keys.child(h2util::NamespaceId::ROOT, "f"),
                swiftsim::Payload::simulated(999, "tampered"),
                swiftsim::Meta::new(),
            )
            .unwrap();
        let report = fsck(&fs, &mut ctx, "alice").unwrap();
        assert!(!report.is_clean());
        assert!(report.violations[0].contains("size"));
    }
}
