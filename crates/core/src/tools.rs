//! Operator tools: disk-usage accounting and whole-account export/restore.
//!
//! * [`usage`] — `du` for H2Cloud: walk a subtree through its NameRings and
//!   total files, directories and bytes. Uses the quick O(1) relative-path
//!   addressing internally, so the walk costs one ring GET per directory —
//!   never a per-file path resolution.
//! * [`export`] / [`ExportedTree::restore`] — dump an account's whole tree
//!   (structure + content) and rebuild it on any [`CloudFs`] — the
//!   migration story the paper's introduction motivates (moving a user's
//!   filesystem between clouds without a separate index to migrate).

use h2fsapi::{CloudFs, FileContent, FsPath};
use h2util::{NamespaceId, OpCtx, Result};

use crate::fs::H2Cloud;
use crate::keys::H2Keys;
use crate::namering::ChildRef;

/// Subtree totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Usage {
    pub dirs: u64,
    pub files: u64,
    pub bytes: u64,
}

/// `du`: totals for the subtree rooted at `path`.
pub fn usage(fs: &H2Cloud, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<Usage> {
    let keys = H2Keys::new(account);
    let mw = fs.layer().mw_for_account(account).clone();
    // Resolve the starting directory with the regular method…
    let start_ns = resolve_dir(fs, ctx, account, path)?;
    // …then walk rings only.
    let mut total = Usage::default();
    let mut stack = vec![start_ns];
    while let Some(ns) = stack.pop() {
        let ring = mw.read_ring(ctx, &keys, ns)?;
        for (_, tuple) in ring.live() {
            match tuple.child {
                ChildRef::File { size } => {
                    total.files += 1;
                    total.bytes += size;
                }
                ChildRef::Dir { ns: child } => {
                    total.dirs += 1;
                    stack.push(child);
                }
            }
        }
    }
    Ok(total)
}

fn resolve_dir(fs: &H2Cloud, ctx: &mut OpCtx, account: &str, path: &FsPath) -> Result<NamespaceId> {
    let keys = H2Keys::new(account);
    let mw = fs.layer().mw_for_account(account).clone();
    let mut ns = NamespaceId::ROOT;
    for comp in path.components() {
        let ring = mw.read_ring(ctx, &keys, ns)?;
        match ring.get(comp).map(|t| t.child) {
            Some(ChildRef::Dir { ns: child }) => ns = child,
            Some(ChildRef::File { .. }) => {
                return Err(h2util::H2Error::NotADirectory(path.to_string()))
            }
            None => return Err(h2util::H2Error::NotFound(path.to_string())),
        }
    }
    Ok(ns)
}

/// A dumped filesystem: directories parents-first, files with content.
#[derive(Debug, Clone, Default)]
pub struct ExportedTree {
    pub dirs: Vec<FsPath>,
    pub files: Vec<(FsPath, FileContent)>,
}

impl ExportedTree {
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    pub fn bytes(&self) -> u64 {
        self.files.iter().map(|(_, c)| c.len()).sum()
    }

    /// Rebuild this tree on any backend under `account` (which must exist
    /// and be empty at the target paths).
    pub fn restore(&self, fs: &dyn CloudFs, ctx: &mut OpCtx, account: &str) -> Result<()> {
        for d in &self.dirs {
            fs.mkdir(ctx, account, d)?;
        }
        for (path, content) in &self.files {
            fs.write(ctx, account, path, content.clone())?;
        }
        Ok(())
    }
}

/// Dump the whole live tree of `account`: structure from NameRings, file
/// content through the quick method (one GET per file, depth-independent).
pub fn export(fs: &H2Cloud, ctx: &mut OpCtx, account: &str) -> Result<ExportedTree> {
    let keys = H2Keys::new(account);
    let mw = fs.layer().mw_for_account(account).clone();
    let mut out = ExportedTree::default();
    let mut stack: Vec<(NamespaceId, FsPath)> = vec![(NamespaceId::ROOT, FsPath::root())];
    while let Some((ns, dir_path)) = stack.pop() {
        let ring = mw.read_ring(ctx, &keys, ns)?;
        for (name, tuple) in ring.live() {
            let child_path = dir_path.child(name)?;
            match tuple.child {
                ChildRef::Dir { ns: child } => {
                    out.dirs.push(child_path.clone());
                    stack.push((child, child_path));
                }
                ChildRef::File { .. } => {
                    let content = fs.read_relative(ctx, account, ns, name)?;
                    out.files.push((child_path, content));
                }
            }
        }
    }
    // Parents before children for restore.
    out.dirs.sort();
    out.files.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::H2Config;

    fn p(s: &str) -> FsPath {
        FsPath::parse(s).unwrap()
    }

    fn setup() -> (H2Cloud, OpCtx) {
        let fs = H2Cloud::new(H2Config::for_test());
        let mut ctx = OpCtx::for_test();
        fs.create_account(&mut ctx, "alice").unwrap();
        fs.mkdir(&mut ctx, "alice", &p("/docs")).unwrap();
        fs.mkdir(&mut ctx, "alice", &p("/docs/old")).unwrap();
        fs.write(
            &mut ctx,
            "alice",
            &p("/docs/a.txt"),
            FileContent::from_str("alpha"),
        )
        .unwrap();
        fs.write(
            &mut ctx,
            "alice",
            &p("/docs/old/b.bin"),
            FileContent::Simulated(4096),
        )
        .unwrap();
        fs.write(
            &mut ctx,
            "alice",
            &p("/top"),
            FileContent::from_str("root file"),
        )
        .unwrap();
        (fs, ctx)
    }

    #[test]
    fn usage_totals_subtrees() {
        let (fs, mut ctx) = setup();
        let all = usage(&fs, &mut ctx, "alice", &p("/")).unwrap();
        assert_eq!(all.dirs, 2);
        assert_eq!(all.files, 3);
        assert_eq!(all.bytes, 5 + 4096 + 9);
        let docs = usage(&fs, &mut ctx, "alice", &p("/docs")).unwrap();
        assert_eq!(docs.dirs, 1);
        assert_eq!(docs.files, 2);
        assert_eq!(docs.bytes, 5 + 4096);
        assert!(usage(&fs, &mut ctx, "alice", &p("/top")).is_err()); // a file
        assert!(usage(&fs, &mut ctx, "alice", &p("/nope")).is_err());
    }

    #[test]
    fn usage_ignores_tombstones() {
        let (fs, mut ctx) = setup();
        fs.delete_file(&mut ctx, "alice", &p("/docs/a.txt"))
            .unwrap();
        fs.rmdir(&mut ctx, "alice", &p("/docs/old")).unwrap();
        let docs = usage(&fs, &mut ctx, "alice", &p("/docs")).unwrap();
        assert_eq!(
            docs,
            Usage {
                dirs: 0,
                files: 0,
                bytes: 0
            }
        );
    }

    #[test]
    fn export_restore_roundtrip_h2_to_h2() {
        let (src, mut ctx) = setup();
        let dump = export(&src, &mut ctx, "alice").unwrap();
        assert_eq!(dump.file_count(), 3);
        assert_eq!(dump.dirs.len(), 2);

        let dst = H2Cloud::new(H2Config::for_test());
        let mut ctx2 = OpCtx::for_test();
        dst.create_account(&mut ctx2, "bob").unwrap();
        dump.restore(&dst, &mut ctx2, "bob").unwrap();
        assert_eq!(
            dst.read(&mut ctx2, "bob", &p("/docs/a.txt")).unwrap(),
            FileContent::from_str("alpha")
        );
        assert_eq!(
            dst.read(&mut ctx2, "bob", &p("/docs/old/b.bin")).unwrap(),
            FileContent::Simulated(4096)
        );
        // The restored account is internally consistent.
        let report = crate::check::fsck(&dst, &mut ctx2, "bob").unwrap();
        assert!(report.is_clean(), "{:?}", report.violations);
    }

    #[test]
    fn restore_works_under_deferred_maintenance() {
        let (src, mut ctx) = setup();
        let dump = export(&src, &mut ctx, "alice").unwrap();
        let dst = H2Cloud::new(H2Config {
            middlewares: 2,
            mode: crate::middleware::MaintenanceMode::Deferred,
            cluster: swiftsim::ClusterConfig::tiny(),
            cache_capacity: 0,
            trace_sample: 0.0,
            ..H2Config::default()
        });
        let mut ctx2 = OpCtx::for_test();
        dst.create_account(&mut ctx2, "carol").unwrap();
        dump.restore(&dst, &mut ctx2, "carol").unwrap();
        dst.quiesce();
        assert_eq!(
            dst.list(&mut ctx2, "carol", &p("/docs")).unwrap(),
            vec!["a.txt".to_string(), "old".to_string()]
        );
    }
}
