//! The NameRing data structure and its merge algorithm (§3.1, §3.3.2).
//!
//! A NameRing maintains the *direct children* of one directory as tuples
//! `(child, t)`; deletion appends a `Deleted` tag instead of removing the
//! tuple (the paper's "fake deletion", §3.3.3a), and the merge algorithm
//! resolves conflicts by larger-timestamp-wins. Tuples are kept sorted by
//! name (the Formatter serialises them alphabetically, §4.4).
//!
//! Patches are "in the same format as a NameRing" (§3.3.2), so a patch *is*
//! a [`NameRing`] here, and merging a patch is merging two NameRings.
//!
//! The merge is deliberately a state-based CRDT join: commutative,
//! associative and idempotent (see the property tests), because phase 2 of
//! the maintenance protocol applies patches in whatever order intra-node
//! chains and gossip deliver them.
//!
//! ```
//! use h2cloud::{NameRing, Tuple};
//! use h2util::{NodeId, Timestamp};
//!
//! let ts = |m| Timestamp::new(m, 0, NodeId(1));
//! let mut ring = NameRing::new();
//! ring.apply("cat", Tuple::file(ts(1), 4096));
//! ring.apply("bash", Tuple::file(ts(2), 1 << 20));
//!
//! // A patch is just another NameRing; merging is larger-timestamp-wins.
//! let mut patch = NameRing::new();
//! patch.apply("cat", Tuple::file(ts(1), 4096).tombstone(ts(3))); // "fake deletion"
//! ring.merge_from(&patch);
//!
//! assert!(ring.get("cat").is_none());       // hidden by the Deleted tag
//! assert_eq!(ring.live_len(), 1);           // only bash remains live
//! assert_eq!(ring.len(), 2);                // tombstone kept until compaction
//! ```

use std::collections::BTreeMap;
use std::sync::Arc;

use h2util::{NamespaceId, Timestamp};

/// What a tuple points at: a regular file (with its size) or a
/// sub-directory (with the namespace that owns its NameRing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ChildRef {
    File { size: u64 },
    Dir { ns: NamespaceId },
}

impl ChildRef {
    pub fn is_dir(&self) -> bool {
        matches!(self, ChildRef::Dir { .. })
    }
}

/// One `(child, t)` tuple. `deleted` is the paper's `Deleted` tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tuple {
    pub ts: Timestamp,
    pub child: ChildRef,
    pub deleted: bool,
}

impl Tuple {
    pub fn file(ts: Timestamp, size: u64) -> Self {
        Tuple {
            ts,
            child: ChildRef::File { size },
            deleted: false,
        }
    }

    pub fn dir(ts: Timestamp, ns: NamespaceId) -> Self {
        Tuple {
            ts,
            child: ChildRef::Dir { ns },
            deleted: false,
        }
    }

    pub fn tombstone(self, ts: Timestamp) -> Self {
        Tuple {
            ts,
            child: self.child,
            deleted: true,
        }
    }

    /// Total order used by the merge: timestamp first (larger wins, as the
    /// paper specifies), then — only for byte-identical timestamps, which
    /// hybrid clocks make impossible for distinct events — a deterministic
    /// tie-break so the merge stays commutative no matter what.
    fn merge_key(&self) -> (Timestamp, bool, ChildRef) {
        (self.ts, self.deleted, self.child)
    }
}

/// A NameRing: sorted map from child name to its latest tuple.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NameRing {
    tuples: BTreeMap<String, Tuple>,
}

impl NameRing {
    pub fn new() -> Self {
        NameRing::default()
    }

    /// Number of tuples, *including* tombstones.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Number of live (non-deleted) children — the paper's `m`.
    pub fn live_len(&self) -> usize {
        self.tuples.values().filter(|t| !t.deleted).count()
    }

    /// Upsert a tuple for `name`. The incoming tuple only lands if it wins
    /// the merge order against any existing tuple (so replayed stale
    /// updates are no-ops).
    pub fn apply(&mut self, name: &str, tuple: Tuple) {
        match self.tuples.get_mut(name) {
            Some(existing) => {
                if tuple.merge_key() > existing.merge_key() {
                    *existing = tuple;
                }
            }
            None => {
                self.tuples.insert(name.to_string(), tuple);
            }
        }
    }

    /// The live tuple for `name` (tombstones are invisible here).
    pub fn get(&self, name: &str) -> Option<&Tuple> {
        self.tuples.get(name).filter(|t| !t.deleted)
    }

    /// The raw tuple including tombstones (maintenance needs them).
    pub fn get_raw(&self, name: &str) -> Option<&Tuple> {
        self.tuples.get(name)
    }

    /// Live children in name order — exactly what a names-only LIST
    /// returns in O(1) object reads (§3.1).
    pub fn live(&self) -> impl Iterator<Item = (&str, &Tuple)> {
        self.tuples
            .iter()
            .filter(|(_, t)| !t.deleted)
            .map(|(n, t)| (n.as_str(), t))
    }

    /// All tuples, tombstones included, in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Tuple)> {
        self.tuples.iter().map(|(n, t)| (n.as_str(), t))
    }

    /// §3.3.2's merging algorithm: iterate the children of `other` (the
    /// patch, already "converted into another virtual NameRing"); a child
    /// present in both is overridden by the larger timestamp; a child only
    /// in the patch is inserted. Nothing is ever removed here — removal is
    /// deferred to [`NameRing::compact`].
    pub fn merge_from(&mut self, other: &NameRing) {
        for (name, tuple) in &other.tuples {
            self.apply(name, *tuple);
        }
    }

    /// Pure merge: `A ⊔ B`.
    pub fn merged(mut a: NameRing, b: &NameRing) -> NameRing {
        a.merge_from(b);
        a
    }

    /// Drop tombstones with `ts < horizon` — the deferred "really removing
    /// the tuple from the NameRing … when this NameRing is in use". Returns
    /// the removed `(name, tuple)` pairs so callers can reclaim the
    /// children's objects.
    pub fn compact(&mut self, horizon: Timestamp) -> Vec<(String, Tuple)> {
        let doomed: Vec<String> = self
            .tuples
            .iter()
            .filter(|(_, t)| t.deleted && t.ts < horizon)
            .map(|(n, _)| n.clone())
            .collect();
        doomed
            .into_iter()
            .map(|n| {
                let t = self.tuples.remove(&n).expect("tuple existed");
                (n, t)
            })
            .collect()
    }

    /// Drop tombstones below `horizon` without reporting them. GC floors
    /// every middleware's *local* ring with this after compacting the
    /// global object: a stale local tombstone that survived here would
    /// re-enter the global ring through the next merge's
    /// `merge_from(&fd.local)` join — resurrecting a tuple GC already
    /// reclaimed. Returns how many tombstones were dropped.
    pub fn floor_tombstones(&mut self, horizon: Timestamp) -> usize {
        self.compact(horizon).len()
    }

    /// Newest timestamp in the ring (ZERO when empty). Gossip uses this as
    /// the version stamp for loop-back avoidance.
    pub fn version(&self) -> Timestamp {
        self.tuples
            .values()
            .map(|t| t.ts)
            .max()
            .unwrap_or(Timestamp::ZERO)
    }
}

/// A read-only *join view* over a fetched global ring and a middleware's
/// local patch overlay (`fd.local`), evaluated per key.
///
/// The serving path used to deep-clone the global ring and `merge_from` the
/// overlay into the clone for every resolve level — O(ring) allocation per
/// lookup. A `RingView` holds `Arc`s to both sides and computes the CRDT
/// join lazily: `get` joins the two tuples for one key, [`RingView::live`]
/// walks both sorted maps in lockstep. Cloning the view is two refcount
/// bumps.
///
/// Note this is a *view*, not a cache: it never assumes one side subsumes
/// the other (the global ring object is not monotone across nodes —
/// concurrent merge cycles can overwrite each other's folds until gossip
/// reconciles them), so every read is a genuine per-key join.
#[derive(Debug, Clone)]
pub struct RingView {
    global: Arc<NameRing>,
    overlay: Option<Arc<NameRing>>,
    /// Whether the global ring came from the middleware's parsed-ring
    /// cache (no cloud GET) — the resolve path charges the cheaper
    /// in-memory lookup cost when it did.
    from_cache: bool,
}

impl RingView {
    pub fn new(global: Arc<NameRing>, overlay: Option<Arc<NameRing>>) -> Self {
        // An empty overlay joins as identity; drop it so the common
        // quiescent case degenerates to a plain borrow of the global ring.
        let overlay = overlay.filter(|o| !o.is_empty());
        RingView {
            global,
            overlay,
            from_cache: false,
        }
    }

    /// Mark the view as served from the parsed-ring cache.
    pub fn mark_cached(mut self) -> Self {
        self.from_cache = true;
        self
    }

    /// Whether the global ring was served from the parsed-ring cache.
    pub fn from_cache(&self) -> bool {
        self.from_cache
    }

    /// View over a single owned ring (tests, already-merged inputs).
    pub fn from_ring(ring: NameRing) -> Self {
        RingView::new(Arc::new(ring), None)
    }

    fn join<'a>(a: Option<&'a Tuple>, b: Option<&'a Tuple>) -> Option<&'a Tuple> {
        match (a, b) {
            (Some(x), Some(y)) => Some(if y.merge_key() > x.merge_key() { y } else { x }),
            (x, None) => x,
            (None, y) => y,
        }
    }

    /// The joined tuple for `name`, tombstones included.
    pub fn get_raw(&self, name: &str) -> Option<&Tuple> {
        let over = self.overlay.as_deref().and_then(|o| o.get_raw(name));
        Self::join(self.global.get_raw(name), over)
    }

    /// The joined live tuple for `name` (tombstones are invisible here).
    pub fn get(&self, name: &str) -> Option<&Tuple> {
        self.get_raw(name).filter(|t| !t.deleted)
    }

    /// All joined tuples in name order, tombstones included.
    pub fn iter(&self) -> RingViewIter<'_> {
        RingViewIter {
            global: self.global.tuples.iter().peekable(),
            overlay: self
                .overlay
                .as_deref()
                .map(|o| o.tuples.iter())
                .unwrap_or_default()
                .peekable(),
        }
    }

    /// Joined live children in name order — the LIST fast path.
    pub fn live(&self) -> impl Iterator<Item = (&str, &Tuple)> {
        self.iter().filter(|(_, t)| !t.deleted)
    }

    pub fn live_len(&self) -> usize {
        self.live().count()
    }

    /// Fold the view into an owned ring (compat path for callers that
    /// still need a materialised `NameRing`).
    pub fn materialize(&self) -> NameRing {
        match &self.overlay {
            None => (*self.global).clone(),
            Some(o) => NameRing::merged((*self.global).clone(), o),
        }
    }
}

/// Lockstep merge over the two sorted tuple maps of a [`RingView`].
pub struct RingViewIter<'a> {
    global: std::iter::Peekable<std::collections::btree_map::Iter<'a, String, Tuple>>,
    overlay: std::iter::Peekable<std::collections::btree_map::Iter<'a, String, Tuple>>,
}

impl<'a> Iterator for RingViewIter<'a> {
    type Item = (&'a str, &'a Tuple);

    fn next(&mut self) -> Option<Self::Item> {
        match (self.global.peek(), self.overlay.peek()) {
            (Some((g, _)), Some((o, _))) => match g.cmp(o) {
                std::cmp::Ordering::Less => self.global.next().map(|(n, t)| (n.as_str(), t)),
                std::cmp::Ordering::Greater => self.overlay.next().map(|(n, t)| (n.as_str(), t)),
                std::cmp::Ordering::Equal => {
                    let (name, gt) = self.global.next().expect("peeked");
                    let (_, ot) = self.overlay.next().expect("peeked");
                    let winner = if ot.merge_key() > gt.merge_key() {
                        ot
                    } else {
                        gt
                    };
                    Some((name.as_str(), winner))
                }
            },
            (Some(_), None) => self.global.next().map(|(n, t)| (n.as_str(), t)),
            (None, Some(_)) => self.overlay.next().map(|(n, t)| (n.as_str(), t)),
            (None, None) => None,
        }
    }
}

impl FromIterator<(String, Tuple)> for NameRing {
    fn from_iter<I: IntoIterator<Item = (String, Tuple)>>(iter: I) -> Self {
        let mut r = NameRing::new();
        for (n, t) in iter {
            r.apply(&n, t);
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use h2util::NodeId;

    fn ts(millis: u64, seq: u32, node: u16) -> Timestamp {
        Timestamp::new(millis, seq, NodeId(node))
    }

    #[test]
    fn apply_and_list_live_children() {
        let mut r = NameRing::new();
        r.apply("cat", Tuple::file(ts(1, 0, 1), 100));
        r.apply("bash", Tuple::file(ts(2, 0, 1), 200));
        r.apply("nc", Tuple::file(ts(3, 0, 1), 300));
        let names: Vec<_> = r.live().map(|(n, _)| n).collect();
        assert_eq!(names, ["bash", "cat", "nc"]); // alphabetical
        assert_eq!(r.live_len(), 3);
    }

    #[test]
    fn newer_timestamp_overrides() {
        let mut r = NameRing::new();
        r.apply("f", Tuple::file(ts(1, 0, 1), 10));
        r.apply("f", Tuple::file(ts(5, 0, 1), 50));
        assert_eq!(r.get("f").unwrap().child, ChildRef::File { size: 50 });
        // Stale write is a no-op.
        r.apply("f", Tuple::file(ts(3, 0, 1), 30));
        assert_eq!(r.get("f").unwrap().child, ChildRef::File { size: 50 });
    }

    #[test]
    fn fake_deletion_hides_but_keeps_tuple() {
        let mut r = NameRing::new();
        let t = Tuple::file(ts(1, 0, 1), 10);
        r.apply("f", t);
        r.apply("f", t.tombstone(ts(2, 0, 1)));
        assert!(r.get("f").is_none());
        assert!(r.get_raw("f").unwrap().deleted);
        assert_eq!(r.len(), 1);
        assert_eq!(r.live_len(), 0);
    }

    #[test]
    fn recreate_after_delete_wins_with_newer_ts() {
        let mut r = NameRing::new();
        r.apply("f", Tuple::file(ts(1, 0, 1), 10));
        r.apply("f", Tuple::file(ts(1, 0, 1), 10).tombstone(ts(2, 0, 1)));
        r.apply("f", Tuple::file(ts(3, 0, 1), 99));
        assert_eq!(r.get("f").unwrap().child, ChildRef::File { size: 99 });
    }

    #[test]
    fn merge_inserts_and_overrides_like_the_paper() {
        // N_A with children a(t1), b(t2); patch N_B with b(t5), c(t3).
        let mut a = NameRing::new();
        a.apply("a", Tuple::file(ts(1, 0, 1), 1));
        a.apply("b", Tuple::file(ts(2, 0, 1), 2));
        let mut b = NameRing::new();
        b.apply("b", Tuple::file(ts(5, 0, 1), 5));
        b.apply("c", Tuple::file(ts(3, 0, 1), 3));
        a.merge_from(&b);
        assert_eq!(a.live_len(), 3);
        assert_eq!(a.get("b").unwrap().child, ChildRef::File { size: 5 });
        assert_eq!(a.get("c").unwrap().child, ChildRef::File { size: 3 });
    }

    #[test]
    fn merge_never_removes() {
        let mut a = NameRing::new();
        a.apply("a", Tuple::file(ts(1, 0, 1), 1));
        let empty = NameRing::new();
        a.merge_from(&empty);
        assert_eq!(a.live_len(), 1);
    }

    #[test]
    fn compact_drops_old_tombstones_only() {
        let mut r = NameRing::new();
        r.apply("old", Tuple::file(ts(1, 0, 1), 1).tombstone(ts(2, 0, 1)));
        r.apply("new", Tuple::file(ts(1, 0, 1), 1).tombstone(ts(9, 0, 1)));
        r.apply("live", Tuple::file(ts(1, 0, 1), 1));
        let removed = r.compact(ts(5, 0, 0));
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].0, "old");
        assert_eq!(r.len(), 2);
        assert!(r.get_raw("new").is_some());
        assert!(r.get("live").is_some());
    }

    #[test]
    fn version_is_max_timestamp() {
        let mut r = NameRing::new();
        assert_eq!(r.version(), Timestamp::ZERO);
        r.apply("a", Tuple::file(ts(7, 2, 1), 1));
        r.apply("b", Tuple::file(ts(3, 0, 1), 1).tombstone(ts(9, 0, 2)));
        assert_eq!(r.version(), ts(9, 0, 2));
    }

    #[test]
    fn dir_tuples_carry_namespaces() {
        let ns = NamespaceId::new(6, NodeId(1), 1_469_346_604_539);
        let mut r = NameRing::new();
        r.apply("home", Tuple::dir(ts(1, 0, 1), ns));
        match r.get("home").unwrap().child {
            ChildRef::Dir { ns: got } => assert_eq!(got, ns),
            _ => panic!("expected dir"),
        }
        assert!(r.get("home").unwrap().child.is_dir());
    }

    #[test]
    fn ring_view_joins_per_key_like_a_materialised_merge() {
        let mut global = NameRing::new();
        global.apply("a", Tuple::file(ts(1, 0, 1), 1));
        global.apply("b", Tuple::file(ts(2, 0, 1), 2));
        global.apply("c", Tuple::file(ts(3, 0, 1), 3));
        let mut overlay = NameRing::new();
        overlay.apply("b", Tuple::file(ts(5, 0, 2), 20)); // newer override
        overlay.apply("c", Tuple::file(ts(1, 0, 2), 30)); // stale, loses
        overlay.apply("d", Tuple::file(ts(4, 0, 2), 40)); // overlay-only
        let view = RingView::new(Arc::new(global.clone()), Some(Arc::new(overlay.clone())));

        let folded = NameRing::merged(global, &overlay);
        for name in ["a", "b", "c", "d", "missing"] {
            assert_eq!(view.get(name), folded.get(name), "key {name}");
            assert_eq!(view.get_raw(name), folded.get_raw(name), "raw {name}");
        }
        let via_view: Vec<_> = view.live().map(|(n, t)| (n.to_string(), *t)).collect();
        let via_fold: Vec<_> = folded.live().map(|(n, t)| (n.to_string(), *t)).collect();
        assert_eq!(via_view, via_fold);
        assert_eq!(view.live_len(), folded.live_len());
        assert_eq!(view.materialize(), folded);
    }

    #[test]
    fn ring_view_overlay_tombstone_hides_global_entry() {
        let mut global = NameRing::new();
        global.apply("f", Tuple::file(ts(1, 0, 1), 1));
        let mut overlay = NameRing::new();
        overlay.apply("f", Tuple::file(ts(1, 0, 1), 1).tombstone(ts(2, 0, 2)));
        let view = RingView::new(Arc::new(global), Some(Arc::new(overlay)));
        assert!(view.get("f").is_none());
        assert!(view.get_raw("f").unwrap().deleted);
        assert_eq!(view.live_len(), 0);
        assert_eq!(view.iter().count(), 1);
    }

    #[test]
    fn ring_view_without_overlay_borrows_the_global_ring() {
        let mut global = NameRing::new();
        global.apply("x", Tuple::file(ts(1, 0, 1), 7));
        let view = RingView::new(Arc::new(global.clone()), Some(Arc::new(NameRing::new())));
        assert_eq!(view.materialize(), global);
        assert_eq!(view.get("x"), global.get("x"));
        assert_eq!(view.live().count(), 1);
    }

    #[test]
    fn equal_timestamp_tiebreak_is_symmetric() {
        // Pathological: identical timestamps, different payloads. The merge
        // must pick the same winner regardless of order.
        let t = ts(5, 0, 1);
        let x = Tuple::file(t, 1);
        let y = Tuple::file(t, 2);
        let mut ab = NameRing::new();
        ab.apply("f", x);
        ab.apply("f", y);
        let mut ba = NameRing::new();
        ba.apply("f", y);
        ba.apply("f", x);
        assert_eq!(ab, ba);
    }
}
