//! Chunk-boundary edge cases for the content-addressed content plane.
//!
//! These tests force `cas: true` at runtime (like the fsck tamper test) so
//! they exercise the CAS plane on every feature leg. They pin the chunker's
//! observable contract through the full stack: empty files, files exactly
//! at the min/target/max chunk sizes, prefix-stability of a single-byte
//! append (only the tail block is rewritten), and refcount accounting
//! under overwrite/delete churn — live blocks must return to zero when the
//! last referencing file goes away.

use h2cloud::check::fsck;
use h2cloud::{H2Cloud, H2Config};
use h2fsapi::{CloudFs, FileContent, FsPath};
use h2util::chunker::{self, ChunkParams};
use h2util::hash::hash128;
use h2util::OpCtx;

fn p(s: &str) -> FsPath {
    FsPath::parse(s).unwrap()
}

fn setup() -> (H2Cloud, OpCtx) {
    let fs = H2Cloud::new(H2Config {
        cas: true,
        ..H2Config::for_test()
    });
    let mut ctx = OpCtx::for_test();
    fs.create_account(&mut ctx, "alice").unwrap();
    (fs, ctx)
}

fn patterned(len: usize) -> FileContent {
    let bytes: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
    FileContent::Inline(h2util::SharedBuf::from_slice(&bytes))
}

#[test]
fn empty_file_round_trips_with_zero_blocks() {
    let (fs, mut ctx) = setup();
    let before = fs.cluster().cas_blocks_written_count();
    fs.write(&mut ctx, "alice", &p("/empty"), FileContent::from_str(""))
        .unwrap();
    // An empty file is a manifest with no entries: no leaf blocks at all.
    assert_eq!(fs.cluster().cas_blocks_written_count(), before);
    assert_eq!(fs.cluster().cas_live_blocks(), 0);
    assert_eq!(
        fs.read(&mut ctx, "alice", &p("/empty")).unwrap(),
        FileContent::from_str("")
    );
    assert_eq!(fs.stat(&mut ctx, "alice", &p("/empty")).unwrap().size, 0);
    // Same for a zero-length simulated file.
    fs.write(&mut ctx, "alice", &p("/empty2"), FileContent::Simulated(0))
        .unwrap();
    assert_eq!(fs.cluster().cas_blocks_written_count(), before);
    assert!(fsck(&fs, &mut ctx, "alice").unwrap().is_clean());
    fs.delete_file(&mut ctx, "alice", &p("/empty")).unwrap();
    fs.delete_file(&mut ctx, "alice", &p("/empty2")).unwrap();
    assert_eq!(fs.cluster().cas_live_blocks(), 0);
}

#[test]
fn files_exactly_at_min_target_and_max_chunk_size() {
    let (fs, mut ctx) = setup();
    let params = ChunkParams::default();

    // Exactly `min` bytes: below any cut point — exactly one leaf block.
    let at_min = patterned(params.min as usize);
    let before = fs.cluster().cas_blocks_written_count();
    fs.write(&mut ctx, "alice", &p("/min"), at_min.clone())
        .unwrap();
    assert_eq!(fs.cluster().cas_blocks_written_count(), before + 1);
    assert_eq!(fs.read(&mut ctx, "alice", &p("/min")).unwrap(), at_min);

    // Exactly `target` bytes: between 1 and target/min chunks.
    let at_target = patterned(params.target as usize);
    let before = fs.cluster().cas_blocks_written_count();
    fs.write(&mut ctx, "alice", &p("/target"), at_target.clone())
        .unwrap();
    let wrote = fs.cluster().cas_blocks_written_count() - before;
    assert!(
        (1..=params.target / params.min).contains(&wrote),
        "target-size file wrote {wrote} blocks"
    );
    assert_eq!(
        fs.read(&mut ctx, "alice", &p("/target")).unwrap(),
        at_target
    );

    // Exactly `max` bytes: the ceiling forces at most one extra cut over
    // the schedule, never more than max/min chunks.
    let at_max = patterned(params.max as usize);
    let before = fs.cluster().cas_blocks_written_count();
    fs.write(&mut ctx, "alice", &p("/max"), at_max.clone())
        .unwrap();
    let wrote = fs.cluster().cas_blocks_written_count() - before;
    assert!(
        (1..=params.max / params.min).contains(&wrote),
        "max-size file wrote {wrote} blocks"
    );
    assert_eq!(fs.read(&mut ctx, "alice", &p("/max")).unwrap(), at_max);

    // Identical content at a second path collapses to the same blocks.
    let before = fs.cluster().cas_blocks_written_count();
    let saved = fs.cluster().dedup_bytes_saved_count();
    fs.write(&mut ctx, "alice", &p("/max-dup"), at_max.clone())
        .unwrap();
    assert_eq!(fs.cluster().cas_blocks_written_count(), before);
    assert_eq!(fs.cluster().dedup_bytes_saved_count(), saved + params.max);
    assert!(fsck(&fs, &mut ctx, "alice").unwrap().is_clean());
}

#[test]
fn single_byte_append_rewrites_only_the_tail_block() {
    let (fs, mut ctx) = setup();
    let params = ChunkParams::default();
    // Irregular size so the schedule's tail chunk is truncated mid-entry.
    let size = 6 * 1024 * 1024 + 12_345u64;
    // Simulated content digests are seeded by the path, so the grown file
    // shares the original's digest and the chunk schedule is prefix-stable.
    let digest = hash128("/grow".as_bytes());
    let old = chunker::chunk_simulated(&params, digest, size);
    let new = chunker::chunk_simulated(&params, digest, size + 1);
    let old_digests: std::collections::HashSet<_> = old.iter().map(|c| c.digest).collect();
    let fresh = new
        .iter()
        .filter(|c| !old_digests.contains(&c.digest))
        .count() as u64;
    let shared = new.len() as u64 - fresh;
    // A one-byte append reshapes at most the tail entry (possibly spilling
    // one extra 1-byte chunk past it) — never a settled block.
    assert!(fresh <= 2, "append re-chunked {fresh} blocks");
    assert!(shared >= old.len() as u64 - 1);

    fs.write(&mut ctx, "alice", &p("/grow"), FileContent::Simulated(size))
        .unwrap();
    assert_eq!(fs.cluster().cas_live_blocks(), old.len() as u64);
    let written = fs.cluster().cas_blocks_written_count();
    let reused = fs.cluster().cas_blocks_shared_count();
    fs.write(
        &mut ctx,
        "alice",
        &p("/grow"),
        FileContent::Simulated(size + 1),
    )
    .unwrap();
    // Pin the rewrite to exactly the chunker's predicted fresh blocks, and
    // the share count to the surviving prefix.
    assert_eq!(fs.cluster().cas_blocks_written_count(), written + fresh);
    assert_eq!(fs.cluster().cas_blocks_shared_count(), reused + shared);
    // The displaced generation's tail was reclaimed: live blocks track the
    // new chunk set exactly.
    assert_eq!(fs.cluster().cas_live_blocks(), new.len() as u64);
    assert_eq!(
        fs.read(&mut ctx, "alice", &p("/grow")).unwrap(),
        FileContent::Simulated(size + 1)
    );
    assert!(fsck(&fs, &mut ctx, "alice").unwrap().is_clean());
}

#[test]
fn refcounts_survive_overwrite_delete_churn_across_accounts() {
    let (fs, mut ctx) = setup();
    fs.create_account(&mut ctx, "bob").unwrap();
    let shared = |seed| FileContent::SimulatedShared {
        size: 3 * 1024 * 1024,
        seed,
    };

    // Both accounts hold the same content: one physical block set.
    fs.write(&mut ctx, "alice", &p("/pkg"), shared(7)).unwrap();
    let one_copy = fs.cluster().cas_live_blocks();
    assert!(one_copy > 0);
    let written = fs.cluster().cas_blocks_written_count();
    fs.write(&mut ctx, "bob", &p("/mirror"), shared(7)).unwrap();
    assert_eq!(fs.cluster().cas_blocks_written_count(), written);
    assert_eq!(fs.cluster().cas_live_blocks(), one_copy);

    // Alice overwrites her copy with different content: seed-7 blocks stay
    // live because bob still references them.
    fs.write(&mut ctx, "alice", &p("/pkg"), shared(8)).unwrap();
    assert!(fs.cluster().cas_live_blocks() > one_copy);
    assert_eq!(
        fs.read(&mut ctx, "bob", &p("/mirror")).unwrap(),
        FileContent::Simulated(3 * 1024 * 1024)
    );

    // Bob deletes: the last seed-7 reference goes, blocks reclaim, and
    // alice's seed-8 copy is untouched.
    fs.delete_file(&mut ctx, "bob", &p("/mirror")).unwrap();
    assert_eq!(fs.cluster().cas_live_blocks(), one_copy);
    assert_eq!(
        fs.read(&mut ctx, "alice", &p("/pkg")).unwrap(),
        FileContent::Simulated(3 * 1024 * 1024)
    );

    // Churn: interleaved overwrites and deletes across both accounts must
    // leave exactly zero live blocks once every file is gone.
    for i in 0..8u64 {
        let who = if i % 2 == 0 { "alice" } else { "bob" };
        let path = p(&format!("/churn{i}"));
        fs.write(&mut ctx, who, &path, shared(i % 3)).unwrap();
        fs.write(&mut ctx, who, &path, FileContent::Simulated(512 * 1024 + i))
            .unwrap();
        fs.write(&mut ctx, who, &path, shared(i % 3)).unwrap();
    }
    for i in 0..8u64 {
        let who = if i % 2 == 0 { "alice" } else { "bob" };
        fs.delete_file(&mut ctx, who, &p(&format!("/churn{i}")))
            .unwrap();
    }
    fs.delete_file(&mut ctx, "alice", &p("/pkg")).unwrap();
    assert_eq!(fs.cluster().cas_live_blocks(), 0);
    assert!(fsck(&fs, &mut ctx, "alice").unwrap().is_clean());
    assert!(fsck(&fs, &mut ctx, "bob").unwrap().is_clean());
}
