//! End-to-end semantics of the H2Cloud filesystem (single middleware,
//! eager maintenance, zero-latency cost model).

use h2cloud::{H2Cloud, H2Config};
use h2fsapi::{CloudFs, EntryKind, FileContent, FsPath};
use h2util::OpCtx;

fn p(s: &str) -> FsPath {
    FsPath::parse(s).unwrap()
}

fn setup() -> (H2Cloud, OpCtx) {
    let fs = H2Cloud::new(H2Config::for_test());
    let mut ctx = OpCtx::for_test();
    fs.create_account(&mut ctx, "alice").unwrap();
    (fs, ctx)
}

#[test]
fn fresh_account_has_empty_root() {
    let (fs, mut ctx) = setup();
    assert!(fs.list(&mut ctx, "alice", &p("/")).unwrap().is_empty());
    let st = fs.stat(&mut ctx, "alice", &p("/")).unwrap();
    assert_eq!(st.kind, EntryKind::Directory);
}

#[test]
fn unknown_account_is_rejected() {
    let (fs, mut ctx) = setup();
    assert_eq!(
        fs.list(&mut ctx, "bob", &p("/")).unwrap_err().code(),
        "no-such-account"
    );
}

#[test]
fn mkdir_then_list_shows_child() {
    let (fs, mut ctx) = setup();
    fs.mkdir(&mut ctx, "alice", &p("/home")).unwrap();
    fs.mkdir(&mut ctx, "alice", &p("/home/ubuntu")).unwrap();
    assert_eq!(fs.list(&mut ctx, "alice", &p("/")).unwrap(), ["home"]);
    assert_eq!(fs.list(&mut ctx, "alice", &p("/home")).unwrap(), ["ubuntu"]);
}

#[test]
fn mkdir_requires_parent_and_uniqueness() {
    let (fs, mut ctx) = setup();
    assert_eq!(
        fs.mkdir(&mut ctx, "alice", &p("/a/b")).unwrap_err().code(),
        "not-found"
    );
    fs.mkdir(&mut ctx, "alice", &p("/a")).unwrap();
    assert_eq!(
        fs.mkdir(&mut ctx, "alice", &p("/a")).unwrap_err().code(),
        "already-exists"
    );
    assert_eq!(
        fs.mkdir(&mut ctx, "alice", &p("/")).unwrap_err().code(),
        "already-exists"
    );
}

#[test]
fn write_read_roundtrip() {
    let (fs, mut ctx) = setup();
    fs.mkdir(&mut ctx, "alice", &p("/docs")).unwrap();
    fs.write(
        &mut ctx,
        "alice",
        &p("/docs/report.txt"),
        FileContent::from_str("quarterly numbers"),
    )
    .unwrap();
    let back = fs.read(&mut ctx, "alice", &p("/docs/report.txt")).unwrap();
    assert_eq!(back, FileContent::from_str("quarterly numbers"));
    let st = fs.stat(&mut ctx, "alice", &p("/docs/report.txt")).unwrap();
    assert_eq!(st.kind, EntryKind::File);
    assert_eq!(st.size, 17);
}

#[test]
fn write_overwrites_and_updates_size() {
    let (fs, mut ctx) = setup();
    fs.write(&mut ctx, "alice", &p("/f"), FileContent::from_str("aa"))
        .unwrap();
    fs.write(&mut ctx, "alice", &p("/f"), FileContent::from_str("aaaa"))
        .unwrap();
    assert_eq!(fs.stat(&mut ctx, "alice", &p("/f")).unwrap().size, 4);
    assert_eq!(fs.list(&mut ctx, "alice", &p("/")).unwrap().len(), 1);
}

#[test]
fn simulated_large_files_roundtrip_by_size() {
    let (fs, mut ctx) = setup();
    fs.write(
        &mut ctx,
        "alice",
        &p("/video.mkv"),
        FileContent::Simulated(5 << 30),
    )
    .unwrap();
    match fs.read(&mut ctx, "alice", &p("/video.mkv")).unwrap() {
        FileContent::Simulated(n) => assert_eq!(n, 5 << 30),
        other => panic!("expected simulated content, got {other:?}"),
    }
}

#[test]
fn write_to_dir_path_fails() {
    let (fs, mut ctx) = setup();
    fs.mkdir(&mut ctx, "alice", &p("/d")).unwrap();
    assert_eq!(
        fs.write(&mut ctx, "alice", &p("/d"), FileContent::from_str("x"))
            .unwrap_err()
            .code(),
        "is-a-directory"
    );
    assert_eq!(
        fs.read(&mut ctx, "alice", &p("/d")).unwrap_err().code(),
        "is-a-directory"
    );
}

#[test]
fn path_through_file_is_not_a_directory() {
    let (fs, mut ctx) = setup();
    fs.write(&mut ctx, "alice", &p("/f"), FileContent::from_str("x"))
        .unwrap();
    assert_eq!(
        fs.write(
            &mut ctx,
            "alice",
            &p("/f/child"),
            FileContent::from_str("y")
        )
        .unwrap_err()
        .code(),
        "not-a-directory"
    );
    assert_eq!(
        fs.list(&mut ctx, "alice", &p("/f")).unwrap_err().code(),
        "not-a-directory"
    );
}

#[test]
fn delete_file_then_gone() {
    let (fs, mut ctx) = setup();
    fs.write(&mut ctx, "alice", &p("/f"), FileContent::from_str("x"))
        .unwrap();
    fs.delete_file(&mut ctx, "alice", &p("/f")).unwrap();
    assert_eq!(
        fs.read(&mut ctx, "alice", &p("/f")).unwrap_err().code(),
        "not-found"
    );
    assert!(fs.list(&mut ctx, "alice", &p("/")).unwrap().is_empty());
    // Recreate with the same name works (tombstone overridden).
    fs.write(&mut ctx, "alice", &p("/f"), FileContent::from_str("new"))
        .unwrap();
    assert_eq!(
        fs.read(&mut ctx, "alice", &p("/f")).unwrap(),
        FileContent::from_str("new")
    );
}

#[test]
fn rename_is_move_within_parent() {
    let (fs, mut ctx) = setup();
    fs.mkdir(&mut ctx, "alice", &p("/dir")).unwrap();
    fs.write(
        &mut ctx,
        "alice",
        &p("/dir/old"),
        FileContent::from_str("x"),
    )
    .unwrap();
    fs.mv(&mut ctx, "alice", &p("/dir/old"), &p("/dir/new"))
        .unwrap();
    assert_eq!(fs.list(&mut ctx, "alice", &p("/dir")).unwrap(), ["new"]);
    assert_eq!(
        fs.read(&mut ctx, "alice", &p("/dir/new")).unwrap(),
        FileContent::from_str("x")
    );
}

#[test]
fn move_directory_preserves_subtree() {
    let (fs, mut ctx) = setup();
    fs.mkdir(&mut ctx, "alice", &p("/src")).unwrap();
    fs.mkdir(&mut ctx, "alice", &p("/src/sub")).unwrap();
    fs.write(
        &mut ctx,
        "alice",
        &p("/src/sub/deep.txt"),
        FileContent::from_str("payload"),
    )
    .unwrap();
    fs.mkdir(&mut ctx, "alice", &p("/dst")).unwrap();
    fs.mv(&mut ctx, "alice", &p("/src"), &p("/dst/moved"))
        .unwrap();
    assert_eq!(fs.list(&mut ctx, "alice", &p("/")).unwrap(), ["dst"]);
    assert_eq!(
        fs.read(&mut ctx, "alice", &p("/dst/moved/sub/deep.txt"))
            .unwrap(),
        FileContent::from_str("payload")
    );
    assert!(fs.stat(&mut ctx, "alice", &p("/src")).is_err());
}

#[test]
fn move_rejects_cycles_and_conflicts() {
    let (fs, mut ctx) = setup();
    fs.mkdir(&mut ctx, "alice", &p("/a")).unwrap();
    fs.mkdir(&mut ctx, "alice", &p("/a/b")).unwrap();
    assert_eq!(
        fs.mv(&mut ctx, "alice", &p("/a"), &p("/a/b/inside"))
            .unwrap_err()
            .code(),
        "invalid-path"
    );
    fs.mkdir(&mut ctx, "alice", &p("/c")).unwrap();
    assert_eq!(
        fs.mv(&mut ctx, "alice", &p("/a"), &p("/c"))
            .unwrap_err()
            .code(),
        "already-exists"
    );
    // Moving to itself is a no-op.
    fs.mv(&mut ctx, "alice", &p("/a"), &p("/a")).unwrap();
    assert!(fs.stat(&mut ctx, "alice", &p("/a")).is_ok());
}

#[test]
fn copy_file_duplicates_content() {
    let (fs, mut ctx) = setup();
    fs.write(
        &mut ctx,
        "alice",
        &p("/orig"),
        FileContent::from_str("body"),
    )
    .unwrap();
    fs.copy(&mut ctx, "alice", &p("/orig"), &p("/dup")).unwrap();
    assert_eq!(
        fs.read(&mut ctx, "alice", &p("/dup")).unwrap(),
        FileContent::from_str("body")
    );
    // Independent copies: deleting one keeps the other.
    fs.delete_file(&mut ctx, "alice", &p("/orig")).unwrap();
    assert!(fs.read(&mut ctx, "alice", &p("/dup")).is_ok());
}

#[test]
fn copy_directory_is_deep_and_independent() {
    let (fs, mut ctx) = setup();
    fs.mkdir(&mut ctx, "alice", &p("/tree")).unwrap();
    fs.mkdir(&mut ctx, "alice", &p("/tree/nested")).unwrap();
    for i in 0..5 {
        fs.write(
            &mut ctx,
            "alice",
            &p(&format!("/tree/nested/f{i}")),
            FileContent::from_str(&format!("data{i}")),
        )
        .unwrap();
    }
    fs.copy(&mut ctx, "alice", &p("/tree"), &p("/clone"))
        .unwrap();
    for i in 0..5 {
        assert_eq!(
            fs.read(&mut ctx, "alice", &p(&format!("/clone/nested/f{i}")))
                .unwrap(),
            FileContent::from_str(&format!("data{i}"))
        );
    }
    // Mutating the clone leaves the original intact.
    fs.delete_file(&mut ctx, "alice", &p("/clone/nested/f0"))
        .unwrap();
    assert!(fs.read(&mut ctx, "alice", &p("/tree/nested/f0")).is_ok());
}

#[test]
fn list_detailed_reports_kinds_and_sizes() {
    let (fs, mut ctx) = setup();
    fs.mkdir(&mut ctx, "alice", &p("/d")).unwrap();
    fs.write(&mut ctx, "alice", &p("/big"), FileContent::Simulated(1000))
        .unwrap();
    let entries = fs.list_detailed(&mut ctx, "alice", &p("/")).unwrap();
    assert_eq!(entries.len(), 2);
    let big = entries.iter().find(|e| e.name == "big").unwrap();
    assert_eq!(big.kind, EntryKind::File);
    assert_eq!(big.size, 1000);
    let d = entries.iter().find(|e| e.name == "d").unwrap();
    assert_eq!(d.kind, EntryKind::Directory);
}

#[test]
fn rmdir_removes_whole_populated_directory() {
    let (fs, mut ctx) = setup();
    fs.mkdir(&mut ctx, "alice", &p("/full")).unwrap();
    for i in 0..20 {
        fs.write(
            &mut ctx,
            "alice",
            &p(&format!("/full/f{i}")),
            FileContent::from_str("x"),
        )
        .unwrap();
    }
    fs.rmdir(&mut ctx, "alice", &p("/full")).unwrap();
    assert!(fs.list(&mut ctx, "alice", &p("/")).unwrap().is_empty());
    assert!(fs.list(&mut ctx, "alice", &p("/full")).is_err());
    assert_eq!(
        fs.rmdir(&mut ctx, "alice", &p("/")).unwrap_err().code(),
        "invalid-path"
    );
}

#[test]
fn rmdir_on_file_fails() {
    let (fs, mut ctx) = setup();
    fs.write(&mut ctx, "alice", &p("/f"), FileContent::from_str("x"))
        .unwrap();
    assert_eq!(
        fs.rmdir(&mut ctx, "alice", &p("/f")).unwrap_err().code(),
        "not-a-directory"
    );
    assert_eq!(
        fs.delete_file(&mut ctx, "alice", &p("/"))
            .unwrap_err()
            .code(),
        "is-a-directory"
    );
}

#[test]
fn file_access_cost_grows_with_depth() {
    // The O(d) regular lookup: deeper files take more ring GETs.
    let fs = H2Cloud::new(H2Config {
        cluster: swiftsim::ClusterConfig {
            cost: std::sync::Arc::new(h2util::CostModel::rack_default()),
            ..swiftsim::ClusterConfig::default()
        },
        ..H2Config::default()
    });
    let mut ctx = OpCtx::new(fs.cost_model());
    fs.create_account(&mut ctx, "a").unwrap();
    let mut path = String::new();
    for i in 0..8 {
        path.push_str(&format!("/d{i}"));
        fs.mkdir(&mut ctx, "a", &p(&path)).unwrap();
    }
    fs.write(
        &mut ctx,
        "a",
        &p(&format!("{path}/leaf")),
        FileContent::from_str("x"),
    )
    .unwrap();

    let mut shallow_ctx = OpCtx::new(fs.cost_model());
    fs.stat(&mut shallow_ctx, "a", &p("/d0")).unwrap();
    let mut deep_ctx = OpCtx::new(fs.cost_model());
    fs.stat(&mut deep_ctx, "a", &p(&format!("{path}/leaf")))
        .unwrap();
    assert!(
        deep_ctx.elapsed() > shallow_ctx.elapsed() * 5,
        "depth-9 lookup ({:?}) should dwarf depth-1 ({:?})",
        deep_ctx.elapsed(),
        shallow_ctx.elapsed()
    );
    // GET count scales with depth: d rings.
    assert_eq!(deep_ctx.counts().gets, 9);
}

#[test]
fn quick_relative_access_is_one_get() {
    let (fs, mut ctx) = setup();
    fs.mkdir(&mut ctx, "alice", &p("/deep")).unwrap();
    fs.mkdir(&mut ctx, "alice", &p("/deep/deeper")).unwrap();
    fs.write(
        &mut ctx,
        "alice",
        &p("/deep/deeper/target"),
        FileContent::from_str("found"),
    )
    .unwrap();
    // Discover the parent namespace once via the regular method…
    let mw = fs.layer().mw_for_account("alice");
    let keys = h2cloud::H2Keys::new("alice");
    let mut walk = OpCtx::for_test();
    let root = mw
        .read_ring(&mut walk, &keys, h2util::NamespaceId::ROOT)
        .unwrap();
    let deep_ns = match root.get("deep").unwrap().child {
        h2cloud::ChildRef::Dir { ns } => ns,
        _ => unreachable!(),
    };
    let deep = mw.read_ring(&mut walk, &keys, deep_ns).unwrap();
    let deeper_ns = match deep.get("deeper").unwrap().child {
        h2cloud::ChildRef::Dir { ns } => ns,
        _ => unreachable!(),
    };
    // …then the quick method is exactly one GET.
    let mut quick = OpCtx::for_test();
    let content = fs
        .read_relative(&mut quick, "alice", deeper_ns, "target")
        .unwrap();
    assert_eq!(content, FileContent::from_str("found"));
    // Still depth-independent with the CAS plane on — but a content read
    // is then manifest + leaf instead of a single whole object.
    let expected = if mw.cas_active() { 2 } else { 1 };
    assert_eq!(quick.counts().gets, expected);
    assert_eq!(quick.counts().total(), expected);
}

#[test]
fn rmdir_is_o1_in_backend_ops() {
    let (fs, mut ctx) = setup();
    for &n in &[10usize, 100] {
        let dir = format!("/dir{n}");
        fs.mkdir(&mut ctx, "alice", &p(&dir)).unwrap();
        for i in 0..n {
            fs.write(
                &mut ctx,
                "alice",
                &p(&format!("{dir}/f{i}")),
                FileContent::from_str("x"),
            )
            .unwrap();
        }
    }
    let mut small = OpCtx::for_test();
    fs.rmdir(&mut small, "alice", &p("/dir10")).unwrap();
    let mut large = OpCtx::for_test();
    fs.rmdir(&mut large, "alice", &p("/dir100")).unwrap();
    assert_eq!(
        small.counts().total(),
        large.counts().total(),
        "RMDIR backend ops must not depend on n"
    );
}

#[test]
fn storage_stats_count_h2_overhead_objects() {
    let (fs, mut ctx) = setup();
    let base = fs.storage_stats().objects; // root ring
    fs.mkdir(&mut ctx, "alice", &p("/d")).unwrap();
    // +2: descriptor + the new directory's NameRing.
    assert_eq!(fs.storage_stats().objects, base + 2);
    fs.write(&mut ctx, "alice", &p("/d/f"), FileContent::from_str("x"))
        .unwrap();
    // +1 content object — or, on the CAS plane, a manifest plus one leaf
    // block (the tiny file fits a single chunk).
    let content_objects = if fs.layer().mw(0).cas_active() { 2 } else { 1 };
    assert_eq!(fs.storage_stats().objects, base + 2 + content_objects);
    assert!(!fs.uses_separate_index());
    assert_eq!(fs.storage_stats().index_records, 0);
}
