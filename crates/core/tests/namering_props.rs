//! Property tests: the NameRing merge is a CRDT join and the Formatter is a
//! faithful bijection — the two invariants the asynchronous maintenance
//! protocol (§3.3) rests on.

use h2cloud::formatter;
use h2cloud::{ChildRef, NameRing, Tuple};
use h2util::{NamespaceId, NodeId, Timestamp};
use proptest::prelude::*;

fn arb_name() -> impl Strategy<Value = String> {
    // Names the filesystem would actually accept (no control chars, no '/').
    "[a-zA-Z0-9._ -]{1,24}"
}

fn arb_timestamp() -> impl Strategy<Value = Timestamp> {
    (0u64..1_000_000, 0u32..64, 0u16..8).prop_map(|(m, s, n)| Timestamp::new(m, s, NodeId(n)))
}

fn arb_child() -> impl Strategy<Value = ChildRef> {
    prop_oneof![
        (0u64..1u64 << 40).prop_map(|size| ChildRef::File { size }),
        (1u64..1000, 0u16..8, 0u64..1_000_000).prop_map(|(seq, node, ms)| ChildRef::Dir {
            ns: NamespaceId::new(seq, NodeId(node), ms)
        }),
    ]
}

fn arb_tuple() -> impl Strategy<Value = Tuple> {
    (arb_timestamp(), arb_child(), any::<bool>()).prop_map(|(ts, child, deleted)| Tuple {
        ts,
        child,
        deleted,
    })
}

fn arb_ring() -> impl Strategy<Value = NameRing> {
    prop::collection::vec((arb_name(), arb_tuple()), 0..24)
        .prop_map(|entries| entries.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn merge_is_commutative(a in arb_ring(), b in arb_ring()) {
        let ab = NameRing::merged(a.clone(), &b);
        let ba = NameRing::merged(b, &a);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative(a in arb_ring(), b in arb_ring(), c in arb_ring()) {
        let left = NameRing::merged(NameRing::merged(a.clone(), &b), &c);
        let right = NameRing::merged(a, &NameRing::merged(b, &c));
        prop_assert_eq!(left, right);
    }

    #[test]
    fn merge_is_idempotent(a in arb_ring()) {
        let aa = NameRing::merged(a.clone(), &a);
        prop_assert_eq!(aa, a);
    }

    #[test]
    fn merge_is_monotone(a in arb_ring(), b in arb_ring()) {
        // Joining never loses a child name (only overrides tuples).
        let merged = NameRing::merged(a.clone(), &b);
        for (name, _) in a.iter() {
            prop_assert!(merged.get_raw(name).is_some());
        }
        for (name, _) in b.iter() {
            prop_assert!(merged.get_raw(name).is_some());
        }
        prop_assert!(merged.version() >= a.version());
        prop_assert!(merged.version() >= b.version());
    }

    #[test]
    fn apply_order_does_not_matter(entries in prop::collection::vec((arb_name(), arb_tuple()), 0..16), seed in any::<u64>()) {
        let forward: NameRing = entries.clone().into_iter().collect();
        // A deterministic shuffle driven by the seed.
        let mut shuffled = entries;
        let mut state = seed | 1;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        let backward: NameRing = shuffled.into_iter().collect();
        prop_assert_eq!(forward, backward);
    }

    #[test]
    fn formatter_roundtrips_namerings(a in arb_ring()) {
        let s = formatter::namering_to_string(&a);
        let back = formatter::namering_from_str(&s).unwrap();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn formatter_roundtrips_patches(a in arb_ring()) {
        let s = formatter::patch_to_string(&a);
        let back = formatter::patch_from_str(&s).unwrap();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn serialised_rings_are_ascii_and_line_structured(a in arb_ring()) {
        let s = formatter::namering_to_string(&a);
        prop_assert!(s.is_ascii());
        prop_assert_eq!(s.lines().count(), a.len() + 1);
    }

    #[test]
    fn compact_only_removes_old_tombstones(a in arb_ring(), horizon in arb_timestamp()) {
        let mut c = a.clone();
        let removed = c.compact(horizon);
        for (name, t) in &removed {
            prop_assert!(t.deleted && t.ts < horizon);
            prop_assert!(c.get_raw(name).is_none());
        }
        // Everything else survives untouched.
        for (name, t) in a.iter() {
            if !(t.deleted && t.ts < horizon) {
                prop_assert_eq!(c.get_raw(name), Some(t));
            }
        }
        prop_assert_eq!(a.len(), c.len() + removed.len());
    }
}
