//! Multipart content striping: files above `PART_BYTES` are stored as a
//! manifest plus fixed-size part objects, moved with bounded parallel
//! fan-out. These tests pin the observable contract — logical round-trips,
//! reclamation of replaced/deleted generations, O(1) stat, fsck cleanliness
//! — and the virtual-time win over a serial whole-object transfer.

use h2cloud::check::fsck;
use h2cloud::gc;
use h2cloud::middleware::PART_BYTES;
use h2cloud::{H2Cloud, H2Config};
use h2fsapi::{CloudFs, FileContent, FsPath};
use h2util::{NodeId, OpCtx, Timestamp};

fn p(s: &str) -> FsPath {
    FsPath::parse(s).unwrap()
}

fn setup() -> (H2Cloud, OpCtx) {
    let fs = H2Cloud::new(H2Config::for_test());
    let mut ctx = OpCtx::for_test();
    fs.create_account(&mut ctx, "alice").unwrap();
    (fs, ctx)
}

/// Patterned inline content so any part mis-ordering or slicing error
/// changes the bytes.
fn patterned(len: usize) -> FileContent {
    let bytes: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
    FileContent::Inline(h2util::SharedBuf::from_slice(&bytes))
}

fn far_future() -> Timestamp {
    Timestamp::new(u64::MAX, 0, NodeId(0))
}

const BIG: u64 = 2 * PART_BYTES + 4097; // 3 parts, short tail

#[test]
fn big_inline_content_round_trips() {
    let (fs, mut ctx) = setup();
    let content = patterned(BIG as usize);
    fs.write(&mut ctx, "alice", &p("/blob"), content.clone())
        .unwrap();
    let back = fs.read(&mut ctx, "alice", &p("/blob")).unwrap();
    assert_eq!(back, content);
    // Striped: the store holds a manifest plus one object per part.
    let parts = BIG.div_ceil(PART_BYTES);
    // root ring + manifest + parts
    assert_eq!(fs.storage_stats().objects, 1 + 1 + parts);
    assert!(fsck(&fs, &mut ctx, "alice").unwrap().is_clean());
}

#[test]
fn big_simulated_content_round_trips_and_stats() {
    let (fs, mut ctx) = setup();
    let size = 40 * PART_BYTES + 5;
    fs.write(&mut ctx, "alice", &p("/big"), FileContent::Simulated(size))
        .unwrap();
    assert_eq!(
        fs.read(&mut ctx, "alice", &p("/big")).unwrap(),
        FileContent::Simulated(size)
    );
    // STAT reports the logical size (the manifest object itself is tiny).
    let st = fs.stat(&mut ctx, "alice", &p("/big")).unwrap();
    assert_eq!(st.size, size);
    // The store's logical bytes equal the parts' sum, not the manifest's.
    assert!(fs.storage_stats().bytes >= size);
    assert!(fsck(&fs, &mut ctx, "alice").unwrap().is_clean());
}

#[test]
fn boundary_sizes_stay_single_object() {
    let (fs, mut ctx) = setup();
    let cas = fs.layer().mw(0).cas_active();
    fs.write(
        &mut ctx,
        "alice",
        &p("/edge"),
        FileContent::Simulated(PART_BYTES),
    )
    .unwrap();
    if cas {
        // The CAS plane chunks every file regardless of the multipart
        // boundary: root ring + manifest + at least one leaf block.
        assert!(fs.storage_stats().objects >= 3);
    } else {
        // Exactly PART_BYTES is NOT striped: root ring + one content object.
        assert_eq!(fs.storage_stats().objects, 2);
    }
    // One byte more is.
    let before = fs.storage_stats().objects;
    fs.write(
        &mut ctx,
        "alice",
        &p("/over"),
        FileContent::Simulated(PART_BYTES + 1),
    )
    .unwrap();
    if cas {
        // A second distinct file adds its own manifest plus fresh blocks.
        assert!(fs.storage_stats().objects >= before + 2);
    } else {
        assert_eq!(fs.storage_stats().objects, 2 + 1 + 2); // + manifest + 2 parts
    }
    assert_eq!(
        fs.stat(&mut ctx, "alice", &p("/over")).unwrap().size,
        PART_BYTES + 1
    );
}

#[test]
fn overwrite_reclaims_the_old_generation() {
    let (fs, mut ctx) = setup();
    fs.write(&mut ctx, "alice", &p("/f"), FileContent::Simulated(BIG))
        .unwrap();
    let striped = fs.storage_stats().objects;
    // big → big: fresh generation replaces the old one object-for-object.
    fs.write(&mut ctx, "alice", &p("/f"), FileContent::Simulated(BIG + 1))
        .unwrap();
    assert_eq!(fs.storage_stats().objects, striped);
    assert_eq!(
        fs.read(&mut ctx, "alice", &p("/f")).unwrap(),
        FileContent::Simulated(BIG + 1)
    );
    // big → small: parts and manifest collapse back to one object (under
    // CAS: root ring + manifest + one leaf block).
    fs.write(&mut ctx, "alice", &p("/f"), FileContent::from_str("tiny"))
        .unwrap();
    let small = if fs.layer().mw(0).cas_active() { 3 } else { 2 };
    assert_eq!(fs.storage_stats().objects, small);
    assert_eq!(
        fs.read(&mut ctx, "alice", &p("/f")).unwrap(),
        FileContent::from_str("tiny")
    );
    // small → big again still works.
    fs.write(&mut ctx, "alice", &p("/f"), FileContent::Simulated(BIG))
        .unwrap();
    assert_eq!(fs.storage_stats().objects, striped);
    assert!(fsck(&fs, &mut ctx, "alice").unwrap().is_clean());
}

#[test]
fn delete_and_gc_reclaim_parts() {
    let (fs, mut ctx) = setup();
    let baseline = fs.storage_stats().objects; // root ring
    fs.write(&mut ctx, "alice", &p("/f"), FileContent::Simulated(BIG))
        .unwrap();
    fs.delete_file(&mut ctx, "alice", &p("/f")).unwrap();
    // Eager reclaim drops manifest + parts immediately.
    assert_eq!(fs.storage_stats().objects, baseline);
    // A big file removed only via RMDIR is reclaimed by GC.
    fs.mkdir(&mut ctx, "alice", &p("/d")).unwrap();
    fs.write(&mut ctx, "alice", &p("/d/g"), FileContent::Simulated(BIG))
        .unwrap();
    fs.rmdir(&mut ctx, "alice", &p("/d")).unwrap();
    gc::collect(&fs, &mut ctx, "alice", far_future()).unwrap();
    assert_eq!(fs.storage_stats().objects, baseline);
}

#[test]
fn copy_and_move_big_files() {
    let (fs, mut ctx) = setup();
    let content = patterned(BIG as usize);
    fs.mkdir(&mut ctx, "alice", &p("/src")).unwrap();
    fs.mkdir(&mut ctx, "alice", &p("/dst")).unwrap();
    fs.write(&mut ctx, "alice", &p("/src/a"), content.clone())
        .unwrap();
    fs.copy(&mut ctx, "alice", &p("/src/a"), &p("/dst/b"))
        .unwrap();
    assert_eq!(fs.read(&mut ctx, "alice", &p("/src/a")).unwrap(), content);
    assert_eq!(fs.read(&mut ctx, "alice", &p("/dst/b")).unwrap(), content);
    fs.mv(&mut ctx, "alice", &p("/src/a"), &p("/dst/c"))
        .unwrap();
    assert_eq!(
        fs.read(&mut ctx, "alice", &p("/src/a")).unwrap_err().code(),
        "not-found"
    );
    assert_eq!(fs.read(&mut ctx, "alice", &p("/dst/c")).unwrap(), content);
    // Directory copy drags striped children along.
    fs.copy(&mut ctx, "alice", &p("/dst"), &p("/dup")).unwrap();
    assert_eq!(fs.read(&mut ctx, "alice", &p("/dup/b")).unwrap(), content);
    assert!(fsck(&fs, &mut ctx, "alice").unwrap().is_clean());
}

/// The point of striping: a big transfer is bounded by the slowest *part*
/// (plus the manifest), not the whole object's serial transfer time.
#[test]
fn parallel_fanout_beats_serial_transfer() {
    let fs = H2Cloud::rack();
    let model = fs.cost_model();
    let mut ctx = OpCtx::new(model.clone());
    fs.create_account(&mut ctx, "alice").unwrap();
    let size = 12 * 1024 * 1024u64; // 3 parts
    fs.write(&mut ctx, "alice", &p("/big"), FileContent::Simulated(size))
        .unwrap();
    let mut read_ctx = OpCtx::new(model.clone());
    fs.read(&mut read_ctx, "alice", &p("/big")).unwrap();
    let serial = model.get_cost(size as usize);
    assert!(
        read_ctx.elapsed() < serial,
        "striped read {:?} should beat the serial transfer {:?}",
        read_ctx.elapsed(),
        serial
    );
    // A file wider than one fan-out wave still reads in ~one part-time:
    // 32 × 4 MiB parts land together under the cost model's parallelism.
    let wide = 128 * 1024 * 1024u64;
    fs.write(&mut ctx, "alice", &p("/wide"), FileContent::Simulated(wide))
        .unwrap();
    let mut wide_ctx = OpCtx::new(model.clone());
    fs.read(&mut wide_ctx, "alice", &p("/wide")).unwrap();
    let wide_serial = model.get_cost(wide as usize);
    assert!(
        wide_ctx.elapsed() < wide_serial / 4,
        "striped read {:?} should beat a quarter of the serial transfer {:?}",
        wide_ctx.elapsed(),
        wide_serial
    );
    // Small files still pay exactly the single-GET path: resolve + 1 GET
    // (the CAS plane adds one more for the manifest → leaf hop).
    fs.write(
        &mut ctx,
        "alice",
        &p("/small"),
        FileContent::Simulated(1024),
    )
    .unwrap();
    let mut small_ctx = OpCtx::new(model.clone());
    fs.read(&mut small_ctx, "alice", &p("/small")).unwrap();
    let expected = if fs.layer().mw(0).cas_active() { 3 } else { 2 };
    assert_eq!(small_ctx.counts().gets, expected); // ring + (manifest +) content
}

/// A resolve level served from the parsed-ring cache charges the in-memory
/// `cached_lookup_cpu`, not the full uncached `lookup_cpu` + ring GET.
#[test]
fn cached_resolve_is_cheaper_than_uncached() {
    let stat_cost = |cache_capacity: usize| {
        let fs = H2Cloud::new(H2Config {
            cache_capacity,
            ..H2Config::default()
        });
        let model = fs.cost_model();
        let mut ctx = OpCtx::new(model.clone());
        fs.create_account(&mut ctx, "alice").unwrap();
        fs.mkdir(&mut ctx, "alice", &p("/a")).unwrap();
        fs.write(&mut ctx, "alice", &p("/a/f"), FileContent::Simulated(64))
            .unwrap();
        let mut stat_ctx = OpCtx::new(model.clone());
        fs.stat(&mut stat_ctx, "alice", &p("/a/f")).unwrap();
        (stat_ctx.elapsed(), stat_ctx.counts().gets, model)
    };
    let (warm, warm_gets, model) = stat_cost(64);
    let (cold, cold_gets, _) = stat_cost(0);
    // Both levels come out of the cache (write-through keeps it fresh): no
    // ring GETs, and only the cheap per-level in-memory charge.
    assert_eq!(warm_gets, 0);
    assert_eq!(warm, model.cached_lookup_cpu * 2);
    assert_eq!(cold_gets, 2);
    assert!(warm < cold, "{warm:?} !< {cold:?}");
}
