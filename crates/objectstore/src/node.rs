//! A storage node: one device of the simulated rack.
//!
//! Each node owns an in-memory map from ring keys to stored replicas,
//! **lock-striped** so concurrent PUT/GET/DELETE on different keys never
//! contend on a whole-device lock: the map is split into `stripes` shards
//! keyed by ring-key hash, each behind its own `RwLock`. The down flag is a
//! plain atomic — checking it costs one relaxed load on the hot path.
//!
//! Nodes can be marked down (failure injection); the proxy then routes to
//! handoff devices, and [`crate::cluster::Cluster::repair`] later restores
//! proper placement — the moral equivalent of Swift's object replicator.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::lock_rank;
use crate::object::{Meta, Object, ObjectKey, Payload};
use h2ring::DeviceId;
use h2util::faults::{FaultInjector, OpClass};
use h2util::OrderedRwLock;

/// Default lock-stripe count per device. Sixteen stripes keep the per-key
/// critical sections independent for any realistic client count while the
/// per-node footprint stays trivial (16 empty HashMaps).
pub const DEFAULT_NODE_STRIPES: usize = 16;

/// One replica as stored on a device.
#[derive(Debug, Clone)]
pub struct StoredReplica {
    pub payload: Payload,
    pub meta: Meta,
    pub modified_ms: u64,
    /// True when this replica lives here only because an assigned device
    /// was down at write time (Swift handoff semantics).
    pub handoff: bool,
    /// Tombstone: the object was deleted at `modified_ms`; kept so late
    /// replicas don't resurrect deleted data during repair.
    pub deleted: bool,
}

/// Outcome of one replica probe, as observed by the cluster read path.
///
/// This is the vote a device casts during a quorum read, shaped for the
/// trace layer: reachability, the stamp it answered with, and whether the
/// stored replica is a tombstone. Defining it here keeps the vote
/// vocabulary next to the storage it describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaProbe {
    /// Device down (or treated as unreachable for this request).
    Down,
    /// Device up but holds nothing under this key.
    Miss,
    /// Device answered with a replica (possibly a tombstone).
    Hit { modified_ms: u64, tombstone: bool },
}

impl ReplicaProbe {
    /// Short label recorded as the device's vote in trace span notes:
    /// `down` / `miss` / `ms=17` / `tomb ms=17`.
    pub fn vote(&self) -> String {
        match self {
            ReplicaProbe::Down => "down".to_string(),
            ReplicaProbe::Miss => "miss".to_string(),
            ReplicaProbe::Hit {
                modified_ms,
                tombstone: false,
            } => format!("ms={modified_ms}"),
            ReplicaProbe::Hit {
                modified_ms,
                tombstone: true,
            } => format!("tomb ms={modified_ms}"),
        }
    }
}

/// An in-memory storage device.
#[derive(Debug)]
pub struct StorageNode {
    id: DeviceId,
    zone: u8,
    /// Lock stripes: `stripes[hash(key) % n]` owns every replica whose ring
    /// key hashes there. All per-key operations touch exactly one stripe.
    /// Rank [`lock_rank::NODE_STRIPE`]: acquired after the proxy's op
    /// stripe, before any map shard (validated in debug builds).
    stripes: Box<[OrderedRwLock<HashMap<String, StoredReplica>>]>,
    down: AtomicBool,
    /// Shared request-level fault injector (chaos harness). When set, each
    /// client-path put/delete draws a per-replica fault and may behave as
    /// unreachable for that one request. Repair-path variants bypass it:
    /// the replicator's sweep order is nondeterministic, so drawing faults
    /// there would break seeded replay.
    fault: RwLock<Option<Arc<FaultInjector>>>,
}

impl StorageNode {
    pub fn new(id: DeviceId, zone: u8) -> Self {
        Self::with_stripes(id, zone, DEFAULT_NODE_STRIPES)
    }

    /// Node with an explicit stripe count (1 reproduces the seed's single
    /// whole-device lock; equivalence tests rely on that).
    pub fn with_stripes(id: DeviceId, zone: u8, stripes: usize) -> Self {
        assert!(stripes >= 1, "need at least one stripe");
        StorageNode {
            id,
            zone,
            stripes: (0..stripes)
                .map(|_| {
                    OrderedRwLock::new(
                        lock_rank::NODE_STRIPE,
                        "objectstore.node_stripe",
                        HashMap::new(),
                    )
                })
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            down: AtomicBool::new(false),
            fault: RwLock::new(None),
        }
    }

    /// Install (or clear) the shared fault injector for this device.
    pub fn set_fault_injector(&self, inj: Option<Arc<FaultInjector>>) {
        *self.fault.write() = inj;
    }

    /// One per-replica fault draw for this request class.
    fn request_fails(&self, class: OpClass) -> bool {
        self.fault
            .read()
            .as_ref()
            .is_some_and(|i| i.replica_fails(class))
    }

    pub fn id(&self) -> DeviceId {
        self.id
    }

    pub fn zone(&self) -> u8 {
        self.zone
    }

    fn stripe(&self, ring_key: &str) -> &OrderedRwLock<HashMap<String, StoredReplica>> {
        let i = h2util::hash64(ring_key.as_bytes()) as usize % self.stripes.len();
        &self.stripes[i]
    }

    /// Failure injection: a down node rejects all traffic.
    pub fn set_down(&self, down: bool) {
        self.down.store(down, Ordering::Release);
    }

    pub fn is_down(&self) -> bool {
        self.down.load(Ordering::Acquire)
    }

    /// Write (or overwrite) a replica. Last-writer-wins by `modified_ms`:
    /// a stale write never clobbers a newer replica or tombstone.
    /// Returns false if the node is down or an injected per-replica fault
    /// makes it unreachable for this request.
    pub fn put(
        &self,
        ring_key: &str,
        payload: Payload,
        meta: Meta,
        modified_ms: u64,
        handoff: bool,
    ) -> bool {
        if self.is_down() || self.request_fails(OpClass::Put) {
            return false;
        }
        self.apply_put(ring_key, payload, meta, modified_ms, handoff);
        true
    }

    /// Repair-path put: identical semantics but never consults the fault
    /// injector (see the `fault` field note on replay determinism).
    pub fn put_repair(
        &self,
        ring_key: &str,
        payload: Payload,
        meta: Meta,
        modified_ms: u64,
        handoff: bool,
    ) -> bool {
        if self.is_down() {
            return false;
        }
        self.apply_put(ring_key, payload, meta, modified_ms, handoff);
        true
    }

    fn apply_put(
        &self,
        ring_key: &str,
        payload: Payload,
        meta: Meta,
        modified_ms: u64,
        handoff: bool,
    ) {
        let mut store = self.stripe(ring_key).write();
        match store.get(ring_key) {
            Some(existing) if existing.modified_ms > modified_ms => {}
            _ => {
                store.insert(
                    ring_key.to_string(),
                    StoredReplica {
                        payload,
                        meta,
                        modified_ms,
                        handoff,
                        deleted: false,
                    },
                );
            }
        }
    }

    /// Read a replica (not tombstoned). `None` when down or absent.
    pub fn get(&self, ring_key: &str) -> Option<StoredReplica> {
        if self.is_down() {
            return None;
        }
        self.stripe(ring_key)
            .read()
            .get(ring_key)
            .filter(|r| !r.deleted)
            .cloned()
    }

    /// Raw replica including tombstones (repair needs to see them).
    pub fn get_raw(&self, ring_key: &str) -> Option<StoredReplica> {
        if self.is_down() {
            return None;
        }
        self.stripe(ring_key).read().get(ring_key).cloned()
    }

    /// Raw fetch plus the structured outcome the trace layer records as
    /// this device's quorum vote. Equivalent to [`StorageNode::get_raw`]
    /// with the reason for `None` made explicit.
    pub fn probe(&self, ring_key: &str) -> (Option<StoredReplica>, ReplicaProbe) {
        if self.is_down() {
            return (None, ReplicaProbe::Down);
        }
        match self.get_raw(ring_key) {
            Some(r) => {
                let p = ReplicaProbe::Hit {
                    modified_ms: r.modified_ms,
                    tombstone: r.deleted,
                };
                (Some(r), p)
            }
            None => (None, ReplicaProbe::Miss),
        }
    }

    /// Tombstone a replica. Returns false if the node is down or an
    /// injected per-replica fault makes it unreachable for this request.
    pub fn delete(&self, ring_key: &str, modified_ms: u64) -> bool {
        if self.is_down() || self.request_fails(OpClass::Delete) {
            return false;
        }
        self.apply_delete(ring_key, modified_ms);
        true
    }

    /// Repair-path delete: never consults the fault injector.
    pub fn delete_repair(&self, ring_key: &str, modified_ms: u64) -> bool {
        if self.is_down() {
            return false;
        }
        self.apply_delete(ring_key, modified_ms);
        true
    }

    fn apply_delete(&self, ring_key: &str, modified_ms: u64) {
        let mut store = self.stripe(ring_key).write();
        match store.get_mut(ring_key) {
            Some(r) => {
                if modified_ms >= r.modified_ms {
                    r.deleted = true;
                    r.modified_ms = modified_ms;
                    r.payload = Payload::Inline(bytes::Bytes::new());
                    r.meta.clear();
                }
            }
            None => {
                // Tombstone for an object this device never saw — still
                // recorded so a late replicated PUT cannot resurrect it.
                store.insert(
                    ring_key.to_string(),
                    StoredReplica {
                        payload: Payload::Inline(bytes::Bytes::new()),
                        meta: Meta::new(),
                        modified_ms,
                        handoff: false,
                        deleted: true,
                    },
                );
            }
        }
    }

    /// Drop a replica entirely (used by repair when moving handoffs home,
    /// and by tombstone reclamation).
    pub fn purge(&self, ring_key: &str) {
        self.stripe(ring_key).write().remove(ring_key);
    }

    /// Drop a replica only if it is not newer than `upto_ms`. Repair uses
    /// this instead of [`purge`](Self::purge) so a writer racing the
    /// replicator can never have its just-written newer replica removed.
    /// Returns true when a replica was removed.
    pub fn purge_upto(&self, ring_key: &str, upto_ms: u64) -> bool {
        let mut store = self.stripe(ring_key).write();
        match store.get(ring_key) {
            Some(r) if r.modified_ms <= upto_ms => {
                store.remove(ring_key);
                true
            }
            _ => false,
        }
    }

    /// Snapshot of all keys currently held (including tombstones).
    pub fn keys(&self) -> Vec<String> {
        let mut out = Vec::new();
        for s in self.stripes.iter() {
            out.extend(s.read().keys().cloned());
        }
        out
    }

    /// Live (non-tombstone) replica count.
    pub fn replica_count(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.read().values().filter(|r| !r.deleted).count())
            .sum()
    }

    /// Logical bytes of live replicas on this device.
    pub fn bytes(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| {
                s.read()
                    .values()
                    .filter(|r| !r.deleted)
                    .map(|r| r.payload.len())
                    .sum::<u64>()
            })
            .sum()
    }

    /// Materialise an [`Object`] from a stored replica.
    pub fn to_object(key: &ObjectKey, r: StoredReplica) -> Object {
        Object {
            key: key.clone(),
            payload: r.payload,
            meta: r.meta,
            modified_ms: r.modified_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> StorageNode {
        StorageNode::new(DeviceId(0), 0)
    }

    #[test]
    fn probe_reports_down_miss_hit_and_tombstone() {
        let n = node();
        assert_eq!(n.probe("/k").1, ReplicaProbe::Miss);
        assert!(n.put("/k", Payload::from_static("x"), Meta::new(), 7, false));
        let (r, p) = n.probe("/k");
        assert_eq!(r.unwrap().modified_ms, 7);
        assert_eq!(
            p,
            ReplicaProbe::Hit {
                modified_ms: 7,
                tombstone: false
            }
        );
        assert_eq!(p.vote(), "ms=7");
        assert!(n.delete("/k", 9));
        let (_, p) = n.probe("/k");
        assert_eq!(p.vote(), "tomb ms=9");
        n.set_down(true);
        let (r, p) = n.probe("/k");
        assert!(r.is_none());
        assert_eq!(p, ReplicaProbe::Down);
        assert_eq!(p.vote(), "down");
    }

    #[test]
    fn put_get_roundtrip() {
        let n = node();
        assert!(n.put("/a/c/o", Payload::from_static("hi"), Meta::new(), 1, false));
        let r = n.get("/a/c/o").unwrap();
        assert_eq!(r.payload.as_str(), Some("hi"));
        assert!(!r.handoff);
        assert_eq!(n.replica_count(), 1);
        assert_eq!(n.bytes(), 2);
    }

    #[test]
    fn last_writer_wins_on_device() {
        let n = node();
        n.put("/k", Payload::from_static("new"), Meta::new(), 10, false);
        n.put("/k", Payload::from_static("stale"), Meta::new(), 5, false);
        assert_eq!(n.get("/k").unwrap().payload.as_str(), Some("new"));
        n.put("/k", Payload::from_static("newest"), Meta::new(), 20, false);
        assert_eq!(n.get("/k").unwrap().payload.as_str(), Some("newest"));
    }

    #[test]
    fn tombstones_hide_and_block_resurrection() {
        let n = node();
        n.put("/k", Payload::from_static("x"), Meta::new(), 10, false);
        assert!(n.delete("/k", 11));
        assert!(n.get("/k").is_none());
        assert!(n.get_raw("/k").unwrap().deleted);
        // A stale write (ms 10 < tombstone 11) must not resurrect.
        n.put("/k", Payload::from_static("ghost"), Meta::new(), 10, false);
        assert!(n.get("/k").is_none());
        // A genuinely newer write may recreate.
        n.put("/k", Payload::from_static("alive"), Meta::new(), 12, false);
        assert_eq!(n.get("/k").unwrap().payload.as_str(), Some("alive"));
    }

    #[test]
    fn tombstone_without_prior_replica_is_recorded() {
        let n = node();
        assert!(n.delete("/never-seen", 5));
        assert!(n.get("/never-seen").is_none());
        n.put(
            "/never-seen",
            Payload::from_static("late"),
            Meta::new(),
            4,
            false,
        );
        assert!(n.get("/never-seen").is_none(), "late stale PUT resurrected");
    }

    #[test]
    fn down_node_rejects_everything() {
        let n = node();
        n.put("/k", Payload::from_static("x"), Meta::new(), 1, false);
        n.set_down(true);
        assert!(n.is_down());
        assert!(!n.put("/k2", Payload::from_static("y"), Meta::new(), 2, false));
        assert!(n.get("/k").is_none());
        assert!(!n.delete("/k", 3));
        n.set_down(false);
        assert!(n.get("/k").is_some());
    }

    #[test]
    fn purge_removes_outright() {
        let n = node();
        n.put("/k", Payload::from_static("x"), Meta::new(), 1, true);
        assert!(n.get("/k").unwrap().handoff);
        n.purge("/k");
        assert!(n.get_raw("/k").is_none());
        assert_eq!(n.keys().len(), 0);
    }

    #[test]
    fn purge_upto_spares_newer_replicas() {
        let n = node();
        n.put("/k", Payload::from_static("v2"), Meta::new(), 20, true);
        // Replicator decided on ms 10 → the newer handoff copy survives.
        assert!(!n.purge_upto("/k", 10));
        assert_eq!(n.get("/k").unwrap().payload.as_str(), Some("v2"));
        // With a current horizon it goes.
        assert!(n.purge_upto("/k", 20));
        assert!(n.get_raw("/k").is_none());
        // Absent key: no-op.
        assert!(!n.purge_upto("/k", 99));
    }

    #[test]
    fn striping_spreads_keys_but_preserves_semantics() {
        let one = StorageNode::with_stripes(DeviceId(1), 0, 1);
        let many = StorageNode::with_stripes(DeviceId(2), 0, 16);
        for i in 0..64 {
            let key = format!("/a/c/obj{i}");
            let val = Payload::from_string(format!("v{i}"));
            one.put(&key, val.clone(), Meta::new(), i, false);
            many.put(&key, val, Meta::new(), i, false);
        }
        assert_eq!(one.replica_count(), many.replica_count());
        assert_eq!(one.bytes(), many.bytes());
        let mut ka = one.keys();
        let mut kb = many.keys();
        ka.sort();
        kb.sort();
        assert_eq!(ka, kb);
        for i in 0..64 {
            let key = format!("/a/c/obj{i}");
            assert_eq!(
                one.get(&key).unwrap().payload,
                many.get(&key).unwrap().payload
            );
        }
    }

    #[test]
    fn replica_faults_reject_requests_but_repair_path_bypasses() {
        use h2util::faults::{FaultInjector, FaultPlan};
        let n = node();
        n.set_fault_injector(Some(Arc::new(FaultInjector::new(
            FaultPlan::new(1).with_replica_errors(1.0),
        ))));
        assert!(!n.put("/k", Payload::from_static("x"), Meta::new(), 1, false));
        assert!(n.get_raw("/k").is_none());
        assert!(!n.delete("/k", 2));
        // The repair path ignores injection entirely.
        assert!(n.put_repair("/k", Payload::from_static("x"), Meta::new(), 3, false));
        assert_eq!(n.get("/k").unwrap().payload.as_str(), Some("x"));
        assert!(n.delete_repair("/k", 4));
        assert!(n.get_raw("/k").unwrap().deleted);
        // Clearing the injector restores normal behavior.
        n.set_fault_injector(None);
        assert!(n.put("/k", Payload::from_static("y"), Meta::new(), 5, false));
        assert_eq!(n.get("/k").unwrap().payload.as_str(), Some("y"));
    }

    #[test]
    fn concurrent_distinct_keys_do_not_interfere() {
        let n = std::sync::Arc::new(node());
        std::thread::scope(|s| {
            for t in 0..4 {
                let n = n.clone();
                s.spawn(move || {
                    for i in 0..200 {
                        let key = format!("/a/c/t{t}-k{i}");
                        assert!(n.put(
                            &key,
                            Payload::from_string(format!("{t}-{i}")),
                            Meta::new(),
                            (t * 1000 + i) as u64,
                            false
                        ));
                        assert_eq!(
                            n.get(&key).unwrap().payload.as_str(),
                            Some(format!("{t}-{i}").as_str())
                        );
                    }
                });
            }
        });
        assert_eq!(n.replica_count(), 800);
    }
}
